//! Streaming/materialized equivalence suite.
//!
//! The cursor pipeline (streamed root binding, projection + conjunct
//! pushdown, quantifier early exits) must produce byte-identical results
//! to the reference materialize-then-evaluate strategy
//! (`Evaluator::materialize = true`, which drains every scan fully with
//! nothing pushed down). Every query of the paper-example and
//! misc-query suites runs both ways against real SS3 storage.
//!
//! The suite also proves the streaming claims through the new decode
//! counters: an EXISTS over a large stored table stops pulling at the
//! first witness (`cursor_early_exits`), having decoded only a fraction
//! of the table (`objects_decoded`).

use aim2::Database;
use aim2_bench::{gen_departments, WorkloadSpec};
use aim2_exec::Evaluator;
use aim2_lang::parser::parse_query;
use aim2_model::fixtures;

fn paper_db() -> Database {
    let mut db = Database::in_memory();
    db.execute_script(
        "CREATE TABLE DEPARTMENTS ( DNO INTEGER, MGRNO INTEGER,
           PROJECTS { PNO INTEGER, PNAME STRING,
                      MEMBERS { EMPNO INTEGER, FUNCTION STRING } },
           BUDGET INTEGER, EQUIP { QU INTEGER, TYPE STRING } );
         CREATE TABLE DEPARTMENTS-1NF ( DNO INTEGER, MGRNO INTEGER, BUDGET INTEGER );
         CREATE TABLE PROJECTS-1NF ( PNO INTEGER, PNAME STRING, DNO INTEGER );
         CREATE TABLE MEMBERS-1NF ( EMPNO INTEGER, PNO INTEGER, DNO INTEGER, FUNCTION STRING );
         CREATE TABLE EQUIP-1NF ( DNO INTEGER, QU INTEGER, TYPE STRING );
         CREATE TABLE EMPLOYEES-1NF ( EMPNO INTEGER, LNAME STRING, FNAME STRING, SEX STRING );
         CREATE TABLE REPORTS ( REPNO STRING, AUTHORS < NAME STRING >, TITLE TEXT,
                                DESCRIPTORS { WORD STRING, WEIGHT DOUBLE } )",
    )
    .unwrap();
    for (table, value) in [
        ("DEPARTMENTS", fixtures::departments_value()),
        ("DEPARTMENTS-1NF", fixtures::departments_1nf_value()),
        ("PROJECTS-1NF", fixtures::projects_1nf_value()),
        ("MEMBERS-1NF", fixtures::members_1nf_value()),
        ("EQUIP-1NF", fixtures::equip_1nf_value()),
        ("EMPLOYEES-1NF", fixtures::employees_1nf_value()),
        ("REPORTS", fixtures::reports_value()),
    ] {
        for t in value.tuples {
            db.insert_tuple(table, t).unwrap();
        }
    }
    db
}

/// Run `src` through the streaming pipeline and through the reference
/// materializing evaluator; results must match exactly (same schema,
/// same tuples, same order).
fn assert_equivalent(db: &mut Database, src: &str) {
    let q = parse_query(src).unwrap_or_else(|e| panic!("{}", e.render(src)));
    let streamed = Evaluator::new(db)
        .eval_query(&q)
        .unwrap_or_else(|e| panic!("streaming: {src}\n→ {e}"));
    let mut reference = Evaluator::new(db);
    reference.materialize = true;
    let reference = reference
        .eval_query(&q)
        .unwrap_or_else(|e| panic!("reference: {src}\n→ {e}"));
    assert_eq!(streamed.0, reference.0, "schema mismatch for: {src}");
    assert_eq!(streamed.1, reference.1, "result mismatch for: {src}");
}

/// The full §3/§5 example corpus (examples_paper.rs).
const PAPER_QUERIES: &[&str] = &[
    "SELECT x.DNO, x.MGRNO, x.PROJECTS, x.BUDGET, x.EQUIP FROM x IN DEPARTMENTS",
    "SELECT * FROM DEPARTMENTS",
    "SELECT x.DNO, x.MGRNO,
        PROJECTS = (SELECT y.PNO, y.PNAME,
            MEMBERS = (SELECT z.EMPNO, z.FUNCTION FROM z IN y.MEMBERS)
            FROM y IN x.PROJECTS),
        x.BUDGET,
        EQUIP = (SELECT v.QU, v.TYPE FROM v IN x.EQUIP)
     FROM x IN DEPARTMENTS",
    "SELECT x.DNO, x.MGRNO,
        PROJECTS = (SELECT y.PNO, y.PNAME,
            MEMBERS = (SELECT z.EMPNO, z.FUNCTION FROM z IN MEMBERS-1NF
                       WHERE z.PNO = y.PNO AND z.DNO = y.DNO)
            FROM y IN PROJECTS-1NF WHERE y.DNO = x.DNO),
        x.BUDGET,
        EQUIP = (SELECT v.QU, v.TYPE FROM v IN EQUIP-1NF WHERE v.DNO = x.DNO)
     FROM x IN DEPARTMENTS-1NF",
    "SELECT x.DNO, x.MGRNO, y.PNO, y.PNAME, z.EMPNO, z.FUNCTION
     FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS",
    "SELECT x.DNO, x.MGRNO, y.PNO, y.PNAME, z.EMPNO, z.FUNCTION
     FROM x IN DEPARTMENTS-1NF, y IN PROJECTS-1NF, z IN MEMBERS-1NF
     WHERE x.DNO = y.DNO AND y.PNO = z.PNO AND y.DNO = z.DNO",
    "SELECT x.DNO, x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS
     WHERE EXISTS y IN x.EQUIP : y.TYPE = 'PC/AT'",
    "SELECT x.DNO, x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS
     WHERE ALL y IN x.PROJECTS : ALL z IN y.MEMBERS : z.FUNCTION = 'Consultant'",
    "SELECT x.DNO, x.MGRNO,
        EMPLOYEES = (SELECT z.EMPNO, u.LNAME, u.FNAME, u.SEX, z.FUNCTION
                     FROM y IN x.PROJECTS, z IN y.MEMBERS, u IN EMPLOYEES-1NF
                     WHERE z.EMPNO = u.EMPNO)
     FROM x IN DEPARTMENTS",
    "SELECT x.DNO, m.LNAME, m.SEX,
        EMPLOYEES = (SELECT z.EMPNO, u.LNAME, u.FNAME, u.SEX, z.FUNCTION
                     FROM y IN x.PROJECTS, z IN y.MEMBERS, u IN EMPLOYEES-1NF
                     WHERE z.EMPNO = u.EMPNO)
     FROM x IN DEPARTMENTS, m IN EMPLOYEES-1NF
     WHERE x.MGRNO = m.EMPNO",
    "SELECT x.AUTHORS, x.TITLE FROM x IN REPORTS WHERE x.AUTHORS[1] = 'Jones A.'",
    "SELECT x.DNO FROM x IN DEPARTMENTS
     WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS : z.FUNCTION = 'Consultant'",
    "SELECT y.PNO FROM x IN DEPARTMENTS, y IN x.PROJECTS
     WHERE EXISTS z IN y.MEMBERS : z.FUNCTION = 'Consultant'",
    "SELECT x.DNO FROM x IN DEPARTMENTS
     WHERE EXISTS y IN x.PROJECTS : y.PNO = 17 AND
           EXISTS z IN y.MEMBERS : z.FUNCTION = 'Consultant'",
    "SELECT x.REPNO, x.AUTHORS, x.TITLE FROM x IN REPORTS
     WHERE x.TITLE CONTAINS '*comput*' AND EXISTS y IN x.AUTHORS : y.NAME = 'Jones A.'",
];

/// The misc-query corner cases (misc_queries.rs).
const MISC_QUERIES: &[&str] = &[
    "SELECT x.DNO, PS = (SELECT * FROM y IN x.PROJECTS) FROM x IN DEPARTMENTS
     WHERE x.DNO = 314",
    "SELECT x.DNO FROM x IN DEPARTMENTS
     WHERE (EXISTS e IN x.EQUIP : e.TYPE = '4361')
        OR (EXISTS y IN x.PROJECTS : y.PNO = 17)",
    "SELECT x.DNO, x.BUDGET FROM x IN DEPARTMENTS WHERE x.DNO = 999",
    "SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.DNO < x.MGRNO",
    "SELECT y.PNO FROM x IN DEPARTMENTS, y IN x.PROJECTS
     WHERE EXISTS z IN y.MEMBERS : z.EMPNO > x.MGRNO",
    "SELECT x.DNO, HAS = (SELECT o.BUDGET FROM o IN DEPARTMENTS
                          WHERE o.DNO = x.DNO AND
                                EXISTS e IN o.EQUIP : e.TYPE = 'PC/AT')
     FROM x IN DEPARTMENTS",
    // Stored-table quantifiers (streamed with early exit).
    "SELECT x.DNO FROM x IN DEPARTMENTS
     WHERE EXISTS o IN DEPARTMENTS : o.MGRNO = x.DNO OR o.DNO = x.DNO",
    "SELECT x.DNO FROM x IN DEPARTMENTS
     WHERE ALL o IN DEPARTMENTS-1NF : o.BUDGET > 0",
];

#[test]
fn paper_corpus_streams_identically() {
    let mut db = paper_db();
    for src in PAPER_QUERIES {
        assert_equivalent(&mut db, src);
    }
}

#[test]
fn misc_corpus_streams_identically() {
    let mut db = paper_db();
    for src in MISC_QUERIES {
        assert_equivalent(&mut db, src);
    }
}

#[test]
fn indexed_queries_stream_identically() {
    // With indexes present, the root cursor opens index-restricted;
    // results must still match the index-less reference evaluation.
    let mut db = paper_db();
    db.execute("CREATE INDEX f ON DEPARTMENTS (PROJECTS.MEMBERS.FUNCTION)")
        .unwrap();
    db.execute("CREATE INDEX p ON DEPARTMENTS (PROJECTS.PNO)")
        .unwrap();
    db.execute("CREATE TEXT INDEX tix ON REPORTS (TITLE)")
        .unwrap();
    for src in PAPER_QUERIES.iter().chain(MISC_QUERIES) {
        assert_equivalent(&mut db, src);
    }
}

/// Every flat (1NF) table of `paper_db` — all tables with rows the
/// compactor accepts.
const FLAT_TABLES: &[&str] = &[
    "DEPARTMENTS-1NF",
    "PROJECTS-1NF",
    "MEMBERS-1NF",
    "EQUIP-1NF",
    "EMPLOYEES-1NF",
];

/// With every flat table frozen into columnar cold blocks, the whole
/// paper + misc corpus still streams byte-identically to the reference
/// evaluator — the columnar batch path (zone maps, dictionary probes,
/// vectorized filters) changes access counts only, never answers.
#[test]
fn columnar_corpus_streams_identically() {
    let mut db = paper_db();
    for t in FLAT_TABLES {
        db.compact_table(t).unwrap();
    }
    for src in PAPER_QUERIES.iter().chain(MISC_QUERIES) {
        assert_equivalent(&mut db, src);
    }
}

/// Compaction is a physical reorganization: every corpus query answers
/// byte-identically on a compacted database and a never-compacted twin.
#[test]
fn compaction_preserves_query_answers() {
    let mut hot = paper_db();
    let mut cold = paper_db();
    for t in FLAT_TABLES {
        let (blocks, _) = cold.compact_table(t).unwrap();
        assert!(blocks >= 1, "{t} must actually freeze");
    }
    for src in PAPER_QUERIES.iter().chain(MISC_QUERIES) {
        let q = parse_query(src).unwrap();
        let want = Evaluator::new(&mut hot)
            .eval_query(&q)
            .unwrap_or_else(|e| panic!("hot: {src}\n→ {e}"));
        let got = Evaluator::new(&mut cold)
            .eval_query(&q)
            .unwrap_or_else(|e| panic!("cold: {src}\n→ {e}"));
        assert_eq!(want, got, "compaction changed the answer of: {src}");
    }
}

#[test]
fn versioned_queries_stream_identically() {
    let mut db = Database::in_memory();
    db.execute("CREATE TABLE SNAP ( K INTEGER, V INTEGER ) WITH VERSIONS")
        .unwrap();
    db.set_today(aim2_model::Date::parse_iso("1984-01-01").unwrap());
    db.execute("INSERT INTO SNAP VALUES (1, 10)").unwrap();
    db.set_today(aim2_model::Date::parse_iso("1985-01-01").unwrap());
    db.execute("UPDATE s IN SNAP SET s.V = 20 WHERE s.K = 1")
        .unwrap();
    assert_equivalent(
        &mut db,
        "SELECT now.K, OLD = (SELECT old.V FROM old IN SNAP ASOF '1984-06-01'
                              WHERE old.K = now.K)
         FROM now IN SNAP",
    );
    assert_equivalent(&mut db, "SELECT * FROM SNAP ASOF '1984-06-01'");
}

/// Regression: an `ASOF` read of a strictly-past date inside a 2PL
/// transaction used to queue behind writers for a table S lock — for
/// state that is immutable history and cannot conflict with any writer.
/// It now routes through the snapshot machinery (no lock acquisitions)
/// and completes even while another transaction holds the table X lock.
/// An `ASOF` at the current date is *not* immutable (today's version
/// slot still accretes writes) and must keep taking the lock path.
#[test]
fn asof_historical_reads_bypass_locks_inside_transactions() {
    use aim2_txn::SharedDatabase;

    let mut db = Database::in_memory();
    db.execute("CREATE TABLE SNAP ( K INTEGER, V INTEGER ) WITH VERSIONS")
        .unwrap();
    db.set_today(aim2_model::Date::parse_iso("1984-01-01").unwrap());
    db.execute("INSERT INTO SNAP VALUES (1, 10)").unwrap();
    db.set_today(aim2_model::Date::parse_iso("1985-01-01").unwrap());
    db.execute("UPDATE s IN SNAP SET s.V = 20 WHERE s.K = 1")
        .unwrap();
    let shared = SharedDatabase::new(db);

    // A writer parks an uncommitted update on SNAP: table X lock held.
    let mut w = shared.session();
    w.execute("UPDATE s IN SNAP SET s.V = 30 WHERE s.K = 1")
        .unwrap();

    // A second 2PL transaction reads yesterday's state: must neither
    // block behind the X lock nor touch the lock manager at all.
    let mut r = shared.session();
    r.begin().unwrap();
    let (_, rows) = r.query("SELECT * FROM SNAP ASOF '1984-06-01'").unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(
        rows.tuples[0].fields[1],
        aim2_model::Value::Atom(aim2_model::Atom::Int(10)),
        "historical read must see the 1984 version"
    );
    assert_eq!(
        r.lock_acquisitions(),
        0,
        "strictly-past ASOF read took the lock path"
    );
    r.commit().unwrap();
    w.commit().unwrap();

    // ASOF at the current date still locks: today's slot is mutable.
    let mut r2 = shared.session();
    r2.begin().unwrap();
    r2.query("SELECT * FROM SNAP ASOF '1985-01-01'").unwrap();
    assert!(
        r2.lock_acquisitions() > 0,
        "same-day ASOF must keep 2PL locking"
    );
    r2.commit().unwrap();
}

#[test]
fn exists_over_stored_table_stops_at_first_witness() {
    // SMALL has one row; BIG has 60 objects. The EXISTS quantifier over
    // BIG finds its witness in the very first pulled object (DNO = 100
    // is the first generated department), so the cursor closes early
    // and the other 59 objects are never decoded.
    let mut db = Database::in_memory();
    db.execute_script(
        "CREATE TABLE SMALL ( DNO INTEGER );
         CREATE TABLE BIG ( DNO INTEGER, MGRNO INTEGER,
           PROJECTS { PNO INTEGER, PNAME STRING,
                      MEMBERS { EMPNO INTEGER, FUNCTION STRING } },
           BUDGET INTEGER, EQUIP { QU INTEGER, TYPE STRING } )",
    )
    .unwrap();
    db.execute("INSERT INTO SMALL VALUES (1)").unwrap();
    let spec = WorkloadSpec {
        departments: 60,
        projects_per_dept: 4,
        members_per_project: 6,
        equip_per_dept: 3,
        seed: 11,
    };
    for t in gen_departments(&spec).tuples {
        db.insert_tuple("BIG", t).unwrap();
    }

    let stats = db.stats().clone();
    stats.reset();
    let (_, v) = db
        .query("SELECT s.DNO FROM s IN SMALL WHERE EXISTS y IN BIG : y.DNO = 100")
        .unwrap();
    assert_eq!(v.len(), 1);
    let snap = stats.snapshot();
    assert!(
        snap.cursor_early_exits >= 1,
        "the BIG cursor must close before exhaustion: {snap}"
    );
    assert!(
        snap.objects_decoded <= 5,
        "EXISTS decoded {} objects; early termination should stop near 2 (1 SMALL + 1 BIG witness)",
        snap.objects_decoded
    );

    // Reference point: draining BIG decodes all 60 objects.
    stats.reset();
    db.query("SELECT * FROM BIG").unwrap();
    let full = stats.snapshot();
    assert!(
        full.objects_decoded >= 60,
        "full scan decodes the whole table: {full}"
    );
    assert_eq!(
        full.cursor_early_exits, 0,
        "a drained cursor is not an early exit"
    );
}

#[test]
fn late_witness_decodes_proportionally() {
    // Witness in the last object: streaming still agrees with the
    // reference, and decodes the whole table (no false early-exit
    // savings claimed).
    let mut db = Database::in_memory();
    db.execute_script(
        "CREATE TABLE SMALL ( DNO INTEGER );
         CREATE TABLE BIG ( DNO INTEGER, V INTEGER )",
    )
    .unwrap();
    db.execute("INSERT INTO SMALL VALUES (1)").unwrap();
    for i in 0..40 {
        db.execute(&format!("INSERT INTO BIG VALUES ({i}, {i})"))
            .unwrap();
    }
    assert_equivalent(
        &mut db,
        "SELECT s.DNO FROM s IN SMALL WHERE EXISTS y IN BIG : y.DNO = 39",
    );
    let stats = db.stats().clone();
    stats.reset();
    db.query("SELECT s.DNO FROM s IN SMALL WHERE EXISTS y IN BIG : y.DNO = 39")
        .unwrap();
    let snap = stats.snapshot();
    // All 40 BIG rows pulled (witness last) — exhausted, so no early
    // exit is recorded for that cursor.
    assert!(snap.objects_decoded >= 41, "{snap}");
}
