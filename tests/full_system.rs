//! Cross-crate integration tests at scale: the planner agrees with the
//! evaluator on synthetic workloads, storage layouts are interchangeable
//! behind the facade, indexes track heavy DML, objects survive
//! check-out, and a file-backed database behaves like the in-memory one.

use aim2::{Database, DbConfig};
use aim2_bench::{gen_departments, WorkloadSpec};
use aim2_exec::planner::Sec42Planner;
use aim2_index::address::Scheme;
use aim2_index::index::NfIndex;
use aim2_model::{Atom, Path};
use aim2_storage::minidir::LayoutKind;

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        departments: 40,
        projects_per_dept: 4,
        members_per_project: 6,
        equip_per_dept: 3,
        seed: 99,
    }
}

fn db_with_workload(layout: &str) -> Database {
    let mut db = Database::in_memory();
    db.execute(&format!(
        "CREATE TABLE DEPARTMENTS ( DNO INTEGER, MGRNO INTEGER,
           PROJECTS {{ PNO INTEGER, PNAME STRING,
                      MEMBERS {{ EMPNO INTEGER, FUNCTION STRING }} }},
           BUDGET INTEGER, EQUIP {{ QU INTEGER, TYPE STRING }} ) USING {layout}"
    ))
    .unwrap();
    for t in gen_departments(&spec()).tuples {
        db.insert_tuple("DEPARTMENTS", t).unwrap();
    }
    db
}

#[test]
fn all_layouts_answer_queries_identically() {
    let queries = [
        "SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.BUDGET > 500000",
        "SELECT x.DNO FROM x IN DEPARTMENTS
         WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS : z.FUNCTION = 'Consultant'",
        "SELECT y.PNO, y.PNAME FROM x IN DEPARTMENTS, y IN x.PROJECTS
         WHERE ALL z IN y.MEMBERS : z.FUNCTION = 'Staff'",
    ];
    let mut reference: Option<Vec<aim2_model::TableValue>> = None;
    for layout in ["SS1", "SS2", "SS3"] {
        let mut db = db_with_workload(layout);
        let results: Vec<_> = queries.iter().map(|q| db.query(q).unwrap().1).collect();
        match &reference {
            None => reference = Some(results),
            Some(expect) => {
                for (got, want) in results.iter().zip(expect) {
                    assert!(got.semantically_eq(want), "layout {layout} diverged");
                }
            }
        }
    }
}

#[test]
fn planner_agrees_with_evaluator_at_scale() {
    let mut db = db_with_workload("SS3");
    // Evaluator answer for §4.2 query 1.
    let (_, v) = db
        .query(
            "SELECT x.DNO FROM x IN DEPARTMENTS
             WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS : z.FUNCTION = 'Consultant'",
        )
        .unwrap();
    let mut expect: Vec<i64> = v
        .tuples
        .iter()
        .map(|t| t.fields[0].as_atom().unwrap().as_int().unwrap())
        .collect();
    expect.sort_unstable();
    expect.dedup();
    // Planner answer under every scheme.
    let schema = db.schema("DEPARTMENTS").unwrap();
    for scheme in Scheme::ALL {
        let os = db.object_store_mut("DEPARTMENTS").unwrap();
        let mut idx = NfIndex::create(
            aim2_bench::fresh_segment(4096, 256),
            &schema,
            &Path::parse("PROJECTS.MEMBERS.FUNCTION"),
            scheme,
        )
        .unwrap();
        idx.build(os, &schema).unwrap();
        let mut planner = Sec42Planner::new(os, &schema);
        let out = planner
            .objects_with(&mut idx, &Atom::Str("Consultant".into()))
            .unwrap();
        let got: Vec<i64> = out.result.iter().map(|a| a.as_int().unwrap()).collect();
        assert_eq!(got, expect, "scheme {scheme} diverged from evaluator");
    }
}

#[test]
fn heavy_dml_with_live_index() {
    let mut db = db_with_workload("SS3");
    db.execute("CREATE INDEX f ON DEPARTMENTS (PROJECTS.MEMBERS.FUNCTION)")
        .unwrap();
    let count_via_index = |db: &mut Database| {
        let idx = db.index_mut("DEPARTMENTS", "f").unwrap();
        idx.lookup(&Atom::Str("Intern".into())).unwrap().len()
    };
    assert_eq!(count_via_index(&mut db), 0);
    // Hire interns into every project of departments with DNO < 110.
    let r = db
        .execute(
            "INSERT INTO y.MEMBERS FROM x IN DEPARTMENTS, y IN x.PROJECTS
             WHERE x.DNO < 110 VALUES (1, 'Intern')",
        )
        .unwrap();
    let hired = r.count().unwrap();
    assert_eq!(hired, 10 * spec().projects_per_dept);
    assert_eq!(count_via_index(&mut db), hired);
    // Fire them all again.
    let r = db
        .execute(
            "DELETE z FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS
             WHERE z.FUNCTION = 'Intern'",
        )
        .unwrap();
    assert_eq!(r.count().unwrap(), hired);
    assert_eq!(count_via_index(&mut db), 0);
    // Language and index agree afterwards.
    let (_, v) = db
        .query(
            "SELECT z.EMPNO FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS
             WHERE z.FUNCTION = 'Intern'",
        )
        .unwrap();
    assert!(v.is_empty());
}

#[test]
fn checkout_all_objects_and_requery() {
    let mut db = db_with_workload("SS3");
    let (_, before) = db.query("SELECT * FROM DEPARTMENTS").unwrap();
    let handles = db.handles("DEPARTMENTS").unwrap();
    let stats = db.stats().clone();
    let snap = stats.snapshot();
    {
        let os = db.object_store_mut("DEPARTMENTS").unwrap();
        for h in handles {
            os.move_object(h).unwrap();
        }
    }
    assert_eq!(
        snap.delta(&stats.snapshot()).pointer_rewrites,
        0,
        "moving every object rewrites no pointers"
    );
    let (_, after) = db.query("SELECT * FROM DEPARTMENTS").unwrap();
    assert!(after.semantically_eq(&before));
}

#[test]
fn file_backed_equals_memory() {
    let dir = std::env::temp_dir().join(format!("aim2_full_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut mem = db_with_workload("SS3");
    let mut file_db = Database::with_config(DbConfig {
        data_dir: Some(dir.clone()),
        page_size: 1024,
        buffer_frames: 8, // tiny pool: force real page traffic
        default_layout: LayoutKind::Ss3,
        ..DbConfig::default()
    });
    file_db
        .execute(
            "CREATE TABLE DEPARTMENTS ( DNO INTEGER, MGRNO INTEGER,
               PROJECTS { PNO INTEGER, PNAME STRING,
                          MEMBERS { EMPNO INTEGER, FUNCTION STRING } },
               BUDGET INTEGER, EQUIP { QU INTEGER, TYPE STRING } )",
        )
        .unwrap();
    for t in gen_departments(&spec()).tuples {
        file_db.insert_tuple("DEPARTMENTS", t).unwrap();
    }
    for q in [
        "SELECT * FROM DEPARTMENTS",
        "SELECT x.DNO FROM x IN DEPARTMENTS
         WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS : z.FUNCTION = 'Leader'",
    ] {
        let a = mem.query(q).unwrap().1;
        let b = file_db.query(q).unwrap().1;
        assert!(a.semantically_eq(&b), "file-backed diverged on {q}");
    }
    assert!(
        file_db.stats().buf_misses() > 0,
        "tiny pool produced real I/O"
    );
    drop(file_db);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn projection_pushdown_scales() {
    // The §4.1 partial-retrieval claim at scale: a query touching only
    // EQUIP must read far fewer subtuples than SELECT *.
    let mut db = db_with_workload("SS3");
    let stats = db.stats().clone();
    stats.reset();
    let _ = db
        .query("SELECT x.DNO FROM x IN DEPARTMENTS WHERE EXISTS e IN x.EQUIP : e.QU > 3")
        .unwrap();
    let narrow = stats.snapshot().subtuple_reads;
    stats.reset();
    let _ = db.query("SELECT * FROM DEPARTMENTS").unwrap();
    let full = stats.snapshot().subtuple_reads;
    assert!(
        narrow * 2 < full,
        "expected at least 2x fewer reads: narrow={narrow} full={full}"
    );
}
