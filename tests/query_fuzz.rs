//! Query fuzzing with a cross-implementation oracle: randomly assembled
//! (but well-formed) queries over the DEPARTMENTS schema must return
//! identical results when evaluated
//!
//! * over the pure in-memory provider, and
//! * over real object storage under SS1, SS2, and SS3
//!   (with projection pushdown on and off).
//!
//! Any divergence is a bug in storage, partial retrieval, or the
//! evaluator; any panic is a robustness bug.

use aim2::Database;
use aim2_bench::{gen_departments, WorkloadSpec};
use aim2_exec::{Evaluator, MemProvider};
use aim2_lang::parser::parse_query;
use aim2_model::fixtures;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Assemble a random well-formed query against DEPARTMENTS.
fn gen_query(rng: &mut StdRng) -> String {
    // Projections over x (dept), y (project), z (member), e (equip).
    let depth = rng.gen_range(0..4); // how many inner bindings
    let mut from = vec!["x IN DEPARTMENTS".to_string()];
    let mut vars: Vec<(&str, Vec<&str>)> = vec![("x", vec!["DNO", "MGRNO", "BUDGET"])];
    if depth >= 1 {
        from.push("y IN x.PROJECTS".into());
        vars.push(("y", vec!["PNO", "PNAME"]));
    }
    if depth >= 2 {
        from.push("z IN y.MEMBERS".into());
        vars.push(("z", vec!["EMPNO", "FUNCTION"]));
    }
    if depth == 3 {
        from.push("e IN x.EQUIP".into());
        vars.push(("e", vec!["QU", "TYPE"]));
    }
    // 1-3 select items from bound vars (renamed to avoid collisions).
    let nsel = rng.gen_range(1..4);
    let mut select = Vec::new();
    for i in 0..nsel {
        let (v, attrs) = &vars[rng.gen_range(0..vars.len())];
        let a = attrs[rng.gen_range(0..attrs.len())];
        select.push(format!("C{i} = {v}.{a}"));
    }
    // Optional predicate from a pool, adapted to bound vars.
    let mut preds: Vec<String> = vec![
        format!("x.BUDGET >= {}", rng.gen_range(100..900) * 1000),
        format!("x.DNO <> {}", 100 + rng.gen_range(0..30)),
        "EXISTS e2 IN x.EQUIP : e2.QU > 2".into(),
        "EXISTS p2 IN x.PROJECTS EXISTS m2 IN p2.MEMBERS : m2.FUNCTION = 'Consultant'".into(),
        "ALL p3 IN x.PROJECTS : ALL m3 IN p3.MEMBERS : m3.FUNCTION <> 'Intern'".into(),
        "NOT (x.BUDGET < 200000)".into(),
    ];
    if depth >= 1 {
        preds.push(format!("y.PNO >= {}", rng.gen_range(0..150)));
        preds.push("EXISTS m4 IN y.MEMBERS : m4.FUNCTION = 'Leader'".into());
    }
    if depth >= 2 {
        preds.push("z.FUNCTION = 'Staff'".into());
        preds.push(format!("z.EMPNO > {}", 10_000 + rng.gen_range(0..900)));
    }
    if depth == 3 {
        preds.push("e.TYPE = 'PC/AT'".into());
    }
    let npred = rng.gen_range(0..3);
    let mut where_ = Vec::new();
    for _ in 0..npred {
        where_.push(format!("({})", preds[rng.gen_range(0..preds.len())]));
    }
    let mut q = format!("SELECT {} FROM {}", select.join(", "), from.join(", "));
    if !where_.is_empty() {
        q.push_str(" WHERE ");
        q.push_str(&where_.join(if rng.gen_bool(0.7) { " AND " } else { " OR " }));
    }
    q
}

#[test]
fn random_queries_agree_across_backends() {
    let spec = WorkloadSpec {
        departments: 12,
        projects_per_dept: 3,
        members_per_project: 4,
        equip_per_dept: 3,
        seed: 77,
    };
    let schema = fixtures::departments_schema();
    let value = gen_departments(&spec);

    // Oracle: pure in-memory evaluation.
    let mut mem = MemProvider::new();
    mem.add(schema.clone(), value.clone());

    // Real storage under each layout.
    let mut dbs: Vec<(String, Database)> = ["SS1", "SS2", "SS3"]
        .iter()
        .map(|layout| {
            let mut db = Database::in_memory();
            db.execute(&format!(
                "CREATE TABLE DEPARTMENTS ( DNO INTEGER, MGRNO INTEGER,
                   PROJECTS {{ PNO INTEGER, PNAME STRING,
                              MEMBERS {{ EMPNO INTEGER, FUNCTION STRING }} }},
                   BUDGET INTEGER, EQUIP {{ QU INTEGER, TYPE STRING }} ) USING {layout}"
            ))
            .unwrap();
            for t in value.tuples.clone() {
                db.insert_tuple("DEPARTMENTS", t).unwrap();
            }
            (layout.to_string(), db)
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(0xF422);
    for case in 0..120 {
        let sql = gen_query(&mut rng);
        let q = parse_query(&sql).unwrap_or_else(|e| panic!("{}", e.render(&sql)));
        let (_, expect) = Evaluator::new(&mut mem)
            .eval_query(&q)
            .unwrap_or_else(|e| panic!("case {case} oracle failed: {e}\n{sql}"));
        // Oracle without pushdown must agree with itself with pushdown.
        {
            let mut ev = Evaluator::new(&mut mem);
            ev.projection_pushdown = false;
            let (_, nopush) = ev.eval_query(&q).unwrap();
            assert!(
                nopush.semantically_eq(&expect),
                "case {case}: pushdown changed the answer\n{sql}"
            );
        }
        for (layout, db) in &mut dbs {
            let (_, got) = db
                .query(&sql)
                .unwrap_or_else(|e| panic!("case {case} {layout} failed: {e}\n{sql}"));
            assert!(
                got.semantically_eq(&expect),
                "case {case}: {layout} diverged from oracle\n{sql}\n got: {got}\nwant: {expect}"
            );
        }
    }
}

#[test]
fn random_queries_agree_with_indexes_installed() {
    // Same oracle, but the storage database carries attribute indexes so
    // the facade's access-path selection may kick in — results must not
    // change.
    let spec = WorkloadSpec {
        departments: 12,
        projects_per_dept: 3,
        members_per_project: 4,
        equip_per_dept: 3,
        seed: 78,
    };
    let schema = fixtures::departments_schema();
    let value = gen_departments(&spec);
    let mut mem = MemProvider::new();
    mem.add(schema.clone(), value.clone());

    let mut db = Database::in_memory();
    db.execute(
        "CREATE TABLE DEPARTMENTS ( DNO INTEGER, MGRNO INTEGER,
           PROJECTS { PNO INTEGER, PNAME STRING,
                      MEMBERS { EMPNO INTEGER, FUNCTION STRING } },
           BUDGET INTEGER, EQUIP { QU INTEGER, TYPE STRING } )",
    )
    .unwrap();
    for t in value.tuples.clone() {
        db.insert_tuple("DEPARTMENTS", t).unwrap();
    }
    db.execute("CREATE INDEX f ON DEPARTMENTS (PROJECTS.MEMBERS.FUNCTION)")
        .unwrap();
    db.execute("CREATE INDEX p ON DEPARTMENTS (PROJECTS.PNO)")
        .unwrap();
    db.execute("CREATE INDEX b ON DEPARTMENTS (BUDGET)")
        .unwrap();

    let mut rng = StdRng::seed_from_u64(0xBEE5);
    for case in 0..120 {
        let sql = gen_query(&mut rng);
        let q = parse_query(&sql).unwrap();
        let (_, expect) = Evaluator::new(&mut mem).eval_query(&q).unwrap();
        let (_, got) = db
            .query(&sql)
            .unwrap_or_else(|e| panic!("case {case} failed: {e}\n{sql}"));
        assert!(
            got.semantically_eq(&expect),
            "case {case}: indexed path diverged\n{sql}\nplan: {}",
            db.last_plan()
        );
    }
}
