//! Bit-rot sweep: detection, containment, and salvage under single-bit
//! corruption of a checkpointed database.
//!
//! For all four table layouts (SS1/SS2/SS3 Mini-Directory stores and
//! the flat 1NF heap) the suite builds a checkpointed on-disk database
//! with a main table, an attribute index, and a side table, then flips
//! one bit in every page of every segment file and asserts three
//! properties per flip:
//!
//! * **detection** — [`Database::integrity_check`] reports the damage
//!   whenever the page carries a stamped checksum (pages never written
//!   since allocation carry none and legitimately escape);
//! * **containment** — the untouched table still scans cleanly, and the
//!   corrupted table either scans its surviving rows (quarantined
//!   objects are skipped) or fails with a typed error — never a panic;
//! * **recovery** — [`Database::salvage`] rebuilds a clean database
//!   whose rows are a subset of the committed state.
//!
//! Everything is deterministic: flip positions derive from the page
//! number, and no clock or RNG is involved.

use aim2::{Database, DbConfig};
use aim2_model::{fixtures, TableKind, TableValue};
use aim2_storage::minidir::LayoutKind;
use aim2_storage::CheckKind;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const PAGE: usize = 1024;

const NF2_DDL: &str = "CREATE TABLE DEPARTMENTS ( DNO INTEGER, MGRNO INTEGER,
    PROJECTS { PNO INTEGER, PNAME STRING,
               MEMBERS { EMPNO INTEGER, FUNCTION STRING } },
    BUDGET INTEGER, EQUIP { QU INTEGER, TYPE STRING } )";

#[derive(Clone, Copy, PartialEq)]
enum Variant {
    Nf2(LayoutKind),
    Flat,
}

impl Variant {
    fn layout(self) -> LayoutKind {
        match self {
            Variant::Nf2(l) => l,
            Variant::Flat => LayoutKind::Ss3,
        }
    }

    fn table(self) -> &'static str {
        match self {
            Variant::Nf2(_) => "DEPARTMENTS",
            Variant::Flat => "DEPTS",
        }
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aim2_rot_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &Path, layout: LayoutKind) -> DbConfig {
    DbConfig {
        page_size: PAGE,
        buffer_frames: 4,
        default_layout: layout,
        data_dir: Some(dir.to_path_buf()),
        fault: None,
        ..DbConfig::default()
    }
}

/// Build the checkpointed reference database; returns the committed
/// contents of the main and side tables.
fn build(dir: &Path, v: Variant) -> (TableValue, TableValue) {
    let mut db = Database::with_config(config(dir, v.layout()));
    match v {
        Variant::Nf2(_) => {
            db.execute(NF2_DDL).unwrap();
            for t in fixtures::departments_value().tuples {
                db.insert_tuple("DEPARTMENTS", t).unwrap();
            }
            db.execute("CREATE INDEX pidx ON DEPARTMENTS (PROJECTS.PNO)")
                .unwrap();
        }
        Variant::Flat => {
            db.execute("CREATE TABLE DEPTS ( DNO INTEGER, MGRNO INTEGER, BUDGET INTEGER )")
                .unwrap();
            for t in fixtures::departments_1nf_value().tuples {
                db.insert_tuple("DEPTS", t).unwrap();
            }
            // Enough rows to spread the heap over several pages.
            for i in 0..120i64 {
                db.execute(&format!(
                    "INSERT INTO DEPTS VALUES ({}, {}, {})",
                    900 + i,
                    11111 + i,
                    50000 + i * 100
                ))
                .unwrap();
            }
        }
    }
    db.execute("CREATE TABLE SIDE ( K INTEGER, V STRING )")
        .unwrap();
    db.execute("INSERT INTO SIDE VALUES (1, 'alpha')").unwrap();
    db.execute("INSERT INTO SIDE VALUES (2, 'beta')").unwrap();
    db.checkpoint().unwrap();
    let main = db.query(&format!("SELECT * FROM {}", v.table())).unwrap().1;
    let side = db.query("SELECT * FROM SIDE").unwrap().1;
    (main, side)
}

/// Segment files of the data directory, in stable order.
fn seg_files(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "seg"))
        .collect();
    out.sort();
    out
}

fn flip_bit(path: &Path, off: u64, bit: u8) {
    let mut f = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .unwrap();
    let mut b = [0u8; 1];
    f.seek(SeekFrom::Start(off)).unwrap();
    f.read_exact(&mut b).unwrap();
    b[0] ^= 1 << bit;
    f.seek(SeekFrom::Start(off)).unwrap();
    f.write_all(&b).unwrap();
}

/// One tuple-level semantic subset check (Relations are order-free).
fn is_subset_of(sub: &TableValue, sup: &TableValue) -> bool {
    sub.tuples.iter().all(|t| {
        sup.tuples.iter().any(|o| {
            TableValue {
                kind: TableKind::Relation,
                tuples: vec![t.clone()],
            }
            .semantically_eq(&TableValue {
                kind: TableKind::Relation,
                tuples: vec![o.clone()],
            })
        })
    })
}

/// A clean checkpointed database reports clean, with every storage-level
/// check actually exercised.
fn assert_clean(dir: &Path, v: Variant) {
    let mut db = Database::open(config(dir, v.layout())).unwrap();
    let report = db.integrity_check().unwrap();
    assert!(
        report.is_clean(),
        "{}: fresh DB must be clean:\n{report}",
        v.table()
    );
    for k in [
        CheckKind::PageChecksum,
        CheckKind::MdShape,
        CheckKind::MiniTid,
        CheckKind::PageAccounting,
    ] {
        assert!(
            report.checked(k) > 0,
            "{}: check {} never ran",
            v.table(),
            k.name()
        );
    }
    if let Variant::Nf2(_) = v {
        // Flat heaps have no MD entry groups and no attribute index, so
        // these two only run for NF² variants.
        assert!(report.checked(CheckKind::OrderedSubtable) > 0);
        assert!(report.checked(CheckKind::IndexLiveness) > 0);
    }
    assert!(db.quarantined().is_empty());
}

fn sweep(tag: &str, v: Variant) {
    let dir = temp_dir(tag);
    let (main_rows, side_rows) = build(&dir, v);
    assert_clean(&dir, v);

    let salvage_dir = temp_dir(&format!("{tag}_salv"));
    let mut flips = 0usize;
    let mut detected = 0usize;
    for seg in seg_files(&dir) {
        let len = std::fs::metadata(&seg).unwrap().len() as usize;
        let seg_is_side = seg.file_name().unwrap().to_string_lossy().contains("_SIDE");
        for p in 0..len / PAGE {
            // Deterministic position past the 4-byte checksum header.
            let off = (p * PAGE) as u64 + 7 + (p as u64 * 131) % 900;
            let bit = (p % 8) as u8;
            let raw = std::fs::read(&seg).unwrap();
            let stamped = raw[p * PAGE..p * PAGE + 4] != [0, 0, 0, 0];
            flip_bit(&seg, off, bit);
            flips += 1;

            let mut db = Database::open(config(&dir, v.layout()))
                .unwrap_or_else(|e| panic!("{tag}: open after flip must succeed: {e}"));
            let report = db
                .integrity_check()
                .unwrap_or_else(|e| panic!("{tag}: walker must not die on rot: {e}"));
            if stamped {
                assert!(
                    !report.is_clean(),
                    "{tag}: page {p} of {} carries a checksum; the flip must be detected",
                    seg.display()
                );
                detected += 1;
            }
            // Containment: the *other* table is untouched and must serve.
            let other = if seg_is_side { v.table() } else { "SIDE" };
            let other_ref = if seg_is_side { &main_rows } else { &side_rows };
            let (_, rows) = db
                .query(&format!("SELECT * FROM {other}"))
                .unwrap_or_else(|e| panic!("{tag}: untouched table {other} must scan: {e}"));
            assert!(
                rows.semantically_eq(other_ref),
                "{tag}: untouched table {other} changed contents"
            );
            // The corrupted table scans its survivors or fails typed.
            let hit = if seg_is_side { "SIDE" } else { v.table() };
            let hit_ref = if seg_is_side { &side_rows } else { &main_rows };
            match db.query(&format!("SELECT * FROM {hit}")) {
                Ok((_, rows)) => assert!(
                    rows.len() <= hit_ref.len(),
                    "{tag}: corrupted table serves phantom rows"
                ),
                Err(e) => {
                    let _ = e.to_string(); // typed, printable, no panic
                }
            }
            // Recovery: salvage a clean database from the survivors.
            if p % 4 == 0 {
                let _ = std::fs::remove_dir_all(&salvage_dir);
                let (mut fresh, carried) = db
                    .salvage(&salvage_dir)
                    .unwrap_or_else(|e| panic!("{tag}: salvage must succeed under rot: {e}"));
                let fresh_report = fresh.integrity_check().unwrap();
                assert!(
                    fresh_report.is_clean(),
                    "{tag}: salvaged DB must be clean:\n{fresh_report}"
                );
                let (_, salvaged) = fresh.query(&format!("SELECT * FROM {hit}")).unwrap();
                assert!(
                    is_subset_of(&salvaged, hit_ref),
                    "{tag}: salvage invented rows"
                );
                assert!(carried <= main_rows.len() + side_rows.len() + 120);
                if report.is_clean() {
                    assert!(
                        salvaged.semantically_eq(hit_ref),
                        "{tag}: clean DB must salvage completely"
                    );
                }
            }
            drop(db);
            flip_bit(&seg, off, bit); // heal for the next iteration
        }
    }
    eprintln!("{tag}: {flips} flips, {detected} stamped pages detected");
    assert!(detected > 0, "{tag}: sweep never hit a stamped page");
    // Healed database is clean again.
    assert_clean(&dir, v);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&salvage_dir);
}

#[test]
fn bit_rot_sweep_ss1() {
    sweep("ss1", Variant::Nf2(LayoutKind::Ss1));
}

#[test]
fn bit_rot_sweep_ss2() {
    sweep("ss2", Variant::Nf2(LayoutKind::Ss2));
}

#[test]
fn bit_rot_sweep_ss3() {
    sweep("ss3", Variant::Nf2(LayoutKind::Ss3));
}

#[test]
fn bit_rot_sweep_flat() {
    sweep("flat", Variant::Flat);
}

/// Bit-rot over the tiered cold store: after `compact_table` froze the
/// heap into columnar blocks, a flip anywhere in the table's segment —
/// block payload pages included — must be **detected** (page checksum
/// or block CRC), **contained** (the block's home TID is quarantined;
/// the table keeps serving its other blocks and hot rows), and
/// **salvageable** (the survivors rebuild into a clean database).
#[test]
fn corrupt_cold_block_sweep() {
    let dir = temp_dir("coldrot");
    let committed;
    {
        let mut db = Database::with_config(config(&dir, LayoutKind::Ss3));
        db.execute("CREATE TABLE COLD ( K INTEGER, V INTEGER )")
            .unwrap();
        for i in 0..1100i64 {
            db.execute(&format!("INSERT INTO COLD VALUES ({i}, {})", i * 3))
                .unwrap();
        }
        let (blocks, rows) = db.compact_table("COLD").unwrap();
        assert_eq!((blocks, rows), (2, 1100));
        // A hot tail on top of the frozen blocks.
        for i in 1100..1160i64 {
            db.execute(&format!("INSERT INTO COLD VALUES ({i}, {})", i * 3))
                .unwrap();
        }
        db.checkpoint().unwrap();
        committed = db.query("SELECT * FROM COLD").unwrap().1;
        assert!(db.integrity_check().unwrap().is_clean());
    }

    let seg = seg_files(&dir)
        .into_iter()
        .find(|p| p.file_name().unwrap().to_string_lossy().contains("COLD"))
        .expect("COLD segment file");
    let len = std::fs::metadata(&seg).unwrap().len() as usize;
    let mut detected = 0usize;
    let mut contained_scans = 0usize;
    let mut quarantines = 0usize;
    for p in 0..len / PAGE {
        let off = (p * PAGE) as u64 + 7 + (p as u64 * 131) % 900;
        let bit = (p % 8) as u8;
        let raw = std::fs::read(&seg).unwrap();
        let stamped = raw[p * PAGE..p * PAGE + 4] != [0, 0, 0, 0];
        flip_bit(&seg, off, bit);

        let mut db = Database::open(config(&dir, LayoutKind::Ss3))
            .unwrap_or_else(|e| panic!("open after cold flip must succeed: {e}"));
        let report = db
            .integrity_check()
            .unwrap_or_else(|e| panic!("walker must not die on cold rot: {e}"));
        if stamped {
            assert!(
                !report.is_clean(),
                "page {p}: stamped page flip must be detected"
            );
            detected += 1;
        }
        quarantines += usize::from(!db.quarantined().is_empty());
        // Containment: the table serves its survivors (quarantined
        // blocks skipped) or fails typed — never panics, never invents.
        match db.query("SELECT * FROM COLD") {
            Ok((_, rows)) => {
                assert!(rows.len() <= committed.len(), "phantom rows under rot");
                assert!(is_subset_of(&rows, &committed), "rot fabricated a row");
                contained_scans += 1;
            }
            Err(e) => {
                let _ = e.to_string();
            }
        }
        // Recovery: a sample of flips goes through full salvage.
        if p % 8 == 0 {
            let salvage_dir = temp_dir("coldrot_salv");
            let (mut fresh, _) = db
                .salvage(&salvage_dir)
                .unwrap_or_else(|e| panic!("salvage must succeed under cold rot: {e}"));
            assert!(fresh.integrity_check().unwrap().is_clean());
            let (_, rows) = fresh.query("SELECT * FROM COLD").unwrap();
            assert!(is_subset_of(&rows, &committed), "salvage invented rows");
            drop(fresh);
            let _ = std::fs::remove_dir_all(&salvage_dir);
        }
        drop(db);
        flip_bit(&seg, off, bit);
    }
    assert!(detected > 0, "sweep never hit a stamped cold page");
    assert!(
        contained_scans > 0,
        "no flip left the table serving survivors"
    );
    assert!(quarantines > 0, "no flip was ever quarantined");
    // Healed: clean report, full contents, tiers intact.
    let mut db = Database::open(config(&dir, LayoutKind::Ss3)).unwrap();
    assert!(db.integrity_check().unwrap().is_clean());
    let (_, rows) = db.query("SELECT * FROM COLD").unwrap();
    assert!(rows.semantically_eq(&committed));
    let tiers = db.table_tiers().unwrap();
    let cold = tiers.iter().find(|t| t.0 == "COLD").unwrap();
    assert_eq!((cold.2, cold.3), (2, 1100), "tiers survive the sweep");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn salvage_roundtrips_an_uncorrupted_database() {
    let dir = temp_dir("salv_rt");
    let (main_rows, side_rows) = build(&dir, Variant::Nf2(LayoutKind::Ss3));
    let mut db = Database::open(config(&dir, LayoutKind::Ss3)).unwrap();
    let dest = temp_dir("salv_rt_out");
    let (mut fresh, carried) = db.salvage(&dest).unwrap();
    assert_eq!(carried, main_rows.len() + side_rows.len());
    assert!(db.stats().snapshot().salvaged_objects >= carried as u64);
    let (_, rows) = fresh.query("SELECT * FROM DEPARTMENTS").unwrap();
    assert!(rows.semantically_eq(&main_rows));
    let (_, rows) = fresh.query("SELECT * FROM SIDE").unwrap();
    assert!(rows.semantically_eq(&side_rows));
    // The salvaged copy recreated the attribute index and checkpointed:
    // reopen it cold and query through the index path.
    drop(fresh);
    let mut re = Database::open(config(&dest, LayoutKind::Ss3)).unwrap();
    let (_, rows) = re
        .query("SELECT x.DNO FROM x IN DEPARTMENTS WHERE EXISTS y IN x.PROJECTS : y.PNO = 17")
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert!(re.integrity_check().unwrap().is_clean());
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dest);
}

#[test]
fn corrupt_catalog_fails_typed_never_panics() {
    let dir = temp_dir("cat");
    build(&dir, Variant::Flat);
    let cat = dir.join("catalog.aim2");
    let len = std::fs::metadata(&cat).unwrap().len();
    for off in [9u64, len / 2, len - 2] {
        flip_bit(&cat, off, 3);
        match Database::open(config(&dir, LayoutKind::Ss3)) {
            Ok(mut db) => {
                // A flip the reader tolerates (e.g. inside free-page
                // padding) must still leave a walkable database.
                let _ = db.integrity_check().unwrap();
            }
            Err(e) => {
                let _ = e.to_string();
            }
        }
        flip_bit(&cat, off, 3);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
