//! Buffer-pool stress: a starved pool must behave identically to a
//! generous one. Capacity 1 and 2 force an eviction on almost every
//! page touch, exercising clock-sweep victim selection, dirty
//! write-back, and pin bookkeeping under maximum pressure.

use aim2::{Database, DbConfig};
use aim2_model::{fixtures, TableValue};
use aim2_storage::minidir::LayoutKind;

/// A mixed workload over nested and flat tables; returns the observable
/// results every configuration must agree on.
fn run(frames: usize, layout: LayoutKind) -> Vec<TableValue> {
    let mut db = Database::with_config(DbConfig {
        page_size: 512, // small pages: more of them, more evictions
        buffer_frames: frames,
        default_layout: layout,
        ..DbConfig::default()
    });
    db.execute(
        "CREATE TABLE DEPARTMENTS ( DNO INTEGER, MGRNO INTEGER,
           PROJECTS { PNO INTEGER, PNAME STRING,
                      MEMBERS { EMPNO INTEGER, FUNCTION STRING } },
           BUDGET INTEGER, EQUIP { QU INTEGER, TYPE STRING } )",
    )
    .unwrap();
    for t in fixtures::departments_value().tuples {
        db.insert_tuple("DEPARTMENTS", t).unwrap();
    }
    db.execute("CREATE TABLE NUMS ( K INTEGER, V INTEGER )")
        .unwrap();
    for k in 0..200i64 {
        db.execute(&format!("INSERT INTO NUMS VALUES ({k}, {})", k * k % 97))
            .unwrap();
    }
    db.execute("CREATE INDEX pidx ON DEPARTMENTS (PROJECTS.PNO)")
        .unwrap();
    db.execute("UPDATE x IN DEPARTMENTS SET x.BUDGET = 123456 WHERE x.DNO = 218")
        .unwrap();
    db.execute("DELETE x FROM x IN NUMS WHERE x.V = 0").unwrap();
    if layout == LayoutKind::Ss3 {
        db.execute(
            "INSERT INTO x.PROJECTS FROM x IN DEPARTMENTS WHERE x.DNO = 417
             VALUES (88, 'POOL', {(90193, 'Leader')})",
        )
        .unwrap();
        db.execute("DELETE y FROM x IN DEPARTMENTS, y IN x.PROJECTS WHERE y.PNO = 25")
            .unwrap();
    }
    vec![
        db.query("SELECT * FROM DEPARTMENTS").unwrap().1,
        db.query("SELECT * FROM NUMS").unwrap().1,
        db.query("SELECT y.PNO, y.PNAME FROM x IN DEPARTMENTS, y IN x.PROJECTS")
            .unwrap()
            .1,
        db.query("SELECT x.K FROM x IN NUMS WHERE x.V = 1")
            .unwrap()
            .1,
    ]
}

fn assert_identical(layout: LayoutKind) {
    let reference = run(64, layout);
    for frames in [1usize, 2] {
        let got = run(frames, layout);
        assert_eq!(got.len(), reference.len());
        for (i, (g, r)) in got.iter().zip(&reference).enumerate() {
            assert!(
                g.semantically_eq(r),
                "{layout:?}: query {i} diverged with a {frames}-frame pool"
            );
        }
    }
}

#[test]
fn one_and_two_frame_pools_match_large_pool_ss1() {
    assert_identical(LayoutKind::Ss1);
}

#[test]
fn one_and_two_frame_pools_match_large_pool_ss2() {
    assert_identical(LayoutKind::Ss2);
}

#[test]
fn one_and_two_frame_pools_match_large_pool_ss3() {
    assert_identical(LayoutKind::Ss3);
}

#[test]
fn starved_pool_also_survives_checkpoint_reopen() {
    // Persistence path under a 1-frame pool: eviction write-back and the
    // WAL's before-image logging run constantly; the reopened state must
    // still match an in-memory reference.
    let dir = std::env::temp_dir().join(format!("aim2_bufstress_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = |frames: usize| DbConfig {
        page_size: 512,
        buffer_frames: frames,
        default_layout: LayoutKind::Ss3,
        data_dir: Some(dir.clone()),
        ..DbConfig::default()
    };
    let expected = {
        let mut db = Database::with_config(config(1));
        db.execute("CREATE TABLE T ( K INTEGER, S { V INTEGER } )")
            .unwrap();
        for k in 0..60i64 {
            db.execute(&format!("INSERT INTO T VALUES ({k}, {{({})}})", k * 7))
                .unwrap();
        }
        db.execute("DELETE x FROM x IN T WHERE x.K = 30").unwrap();
        db.checkpoint().unwrap();
        db.query("SELECT * FROM T").unwrap().1
    };
    let mut db = Database::open(config(64)).unwrap();
    let (_, got) = db.query("SELECT * FROM T").unwrap();
    assert!(got.semantically_eq(&expected), "reopen diverged");
    std::fs::remove_dir_all(&dir).unwrap();
}
