//! Golden-output checks: the bracket-notation rendering of the paper's
//! tables is stable (the `reproduce` binary's output format is part of
//! the reproduction contract).

use aim2_model::{fixtures, render};

#[test]
fn table5_header_golden() {
    assert_eq!(
        render::render_header(&fixtures::departments_schema()),
        "{DEPARTMENTS: DNO MGRNO {PROJECTS: PNO PNAME {MEMBERS: EMPNO FUNCTION}} BUDGET {EQUIP: QU TYPE}}"
    );
}

#[test]
fn reports_header_golden() {
    assert_eq!(
        render::render_header(&fixtures::reports_schema()),
        "{REPORTS: REPNO <AUTHORS: NAME> TITLE {DESCRIPTORS: WORD WEIGHT}}"
    );
}

#[test]
fn department_314_rendering_golden() {
    let schema = fixtures::departments_schema();
    let mut one = fixtures::departments_value();
    one.tuples.truncate(1);
    let text = render::render_table(&schema, &one);
    let expected = "\
{DEPARTMENTS: DNO MGRNO {PROJECTS: PNO PNAME {MEMBERS: EMPNO FUNCTION}} BUDGET {EQUIP: QU TYPE}}
  DNO=314  MGRNO=56194  BUDGET=320000
    {PROJECTS} (2 tuple(s))
      PNO=17  PNAME=CGA
        {MEMBERS} (3 tuple(s))
          EMPNO=39582  FUNCTION=Leader
          EMPNO=56019  FUNCTION=Consultant
          EMPNO=69011  FUNCTION=Secretary
      PNO=23  PNAME=HEAP
        {MEMBERS} (4 tuple(s))
          EMPNO=58912  FUNCTION=Staff
          EMPNO=90011  FUNCTION=Leader
          EMPNO=78218  FUNCTION=Secretary
          EMPNO=98902  FUNCTION=Staff
    {EQUIP} (3 tuple(s))
      QU=2  TYPE=3278
      QU=3  TYPE=PC/AT
      QU=1  TYPE=PC
";
    assert_eq!(text, expected);
}

#[test]
fn inline_rendering_golden() {
    let reports = fixtures::reports_value();
    let first = &reports.tuples[0];
    assert_eq!(
        first.to_string(),
        "(0179, <(Jones A.)>, Concurrency and Concurrency Control, \
         {(Concurrency, 0.6), (Recovery, 0.3), (Distribution, 0.1)})"
    );
}
