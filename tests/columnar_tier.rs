//! Tiered columnar cold store: `compact_table` semantics, tier-spanning
//! reads, melt-on-write, persistence across reopen, and the transaction
//! layer's admin wiring.
//!
//! The invariant under test everywhere: compaction is a *physical*
//! reorganization — every query answer, text search, snapshot, and
//! integrity walk must be indistinguishable (up to row order) from the
//! hot-heap answer.

use aim2::{Database, DbConfig};
use aim2_model::value::build::a;
use aim2_model::{Atom, Tuple, Value};
use aim2_txn::SharedDatabase;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aim2_tier_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn nums_db(rows: i64) -> Database {
    let mut db = Database::in_memory();
    db.execute("CREATE TABLE NUMS ( K INTEGER, V INTEGER )")
        .unwrap();
    for i in 0..rows {
        db.insert_tuple("NUMS", Tuple::new(vec![a(i), a(i * 3)]))
            .unwrap();
    }
    db
}

fn sorted_rows(db: &mut Database, sql: &str) -> Vec<Tuple> {
    let (_, v) = db.query(sql).unwrap();
    let mut rows = v.tuples;
    rows.sort_by(|x, y| format!("{x:?}").cmp(&format!("{y:?}")));
    rows
}

// =====================================================================
// compact_table semantics
// =====================================================================

#[test]
fn compact_empty_table_is_a_noop() {
    let mut db = Database::in_memory();
    db.execute("CREATE TABLE EMPTY ( K INTEGER )").unwrap();
    assert_eq!(db.compact_table("EMPTY").unwrap(), (0, 0));
    let tiers = db.table_tiers().unwrap();
    assert_eq!(tiers, vec![("EMPTY".to_string(), 0, 0, 0)]);
    assert_eq!(db.query("SELECT * FROM EMPTY").unwrap().1.len(), 0);
}

#[test]
fn compact_refuses_nf2_and_versioned_tables() {
    let mut db = Database::in_memory();
    db.execute("CREATE TABLE NEST ( DNO INTEGER, SUB { X INTEGER } )")
        .unwrap();
    let e = db.compact_table("NEST").unwrap_err().to_string();
    assert!(e.contains("NF²"), "{e}");
    db.execute("CREATE TABLE HIST ( K INTEGER ) WITH VERSIONS")
        .unwrap();
    let e = db.compact_table("HIST").unwrap_err().to_string();
    assert!(e.contains("versioned"), "{e}");
}

/// Exact multiples of the block size leave zero hot rows and no
/// partial block; one extra row spills into a final short block.
#[test]
fn block_boundary_at_batch_size() {
    let block = aim2_storage::colstore::BLOCK_ROWS as i64;

    let mut db = nums_db(2 * block);
    assert_eq!(db.compact_table("NUMS").unwrap(), (2, 2 * block as u64));
    let tiers = db.table_tiers().unwrap();
    assert_eq!(tiers, vec![("NUMS".to_string(), 0, 2, 2 * block as u64)]);
    assert_eq!(
        db.query("SELECT * FROM NUMS").unwrap().1.len(),
        2 * block as usize
    );
    // A query whose matches straddle the block boundary sees both sides.
    let (_, v) = db
        .query(&format!(
            "SELECT x.K FROM x IN NUMS WHERE x.K >= {} AND x.K <= {}",
            block - 2,
            block + 1
        ))
        .unwrap();
    assert_eq!(v.len(), 4);

    let mut db = nums_db(block + 1);
    assert_eq!(db.compact_table("NUMS").unwrap(), (2, block as u64 + 1));
}

/// A column with one distinct value dictionary-encodes to a single
/// entry; an equality probe for a value inside the zone range but
/// absent from the dictionary short-circuits without materializing a
/// single row.
#[test]
fn single_distinct_dictionary_short_circuits() {
    let mut db = Database::in_memory();
    db.execute("CREATE TABLE FLAGS ( LO INTEGER, HI INTEGER )")
        .unwrap();
    // LO alternates 10/30 (zone [10,30], two dict entries); HI constant.
    for i in 0..3000i64 {
        db.insert_tuple(
            "FLAGS",
            Tuple::new(vec![a(if i % 2 == 0 { 10i64 } else { 30 }), a(7i64)]),
        )
        .unwrap();
    }
    db.compact_table("FLAGS").unwrap();

    // 20 sits inside every zone but in no dictionary: blocks are NOT
    // pruned, yet no row is ever materialized.
    db.stats().reset();
    let (_, v) = db
        .query("SELECT x.HI FROM x IN FLAGS WHERE x.LO = 20")
        .unwrap();
    assert_eq!(v.len(), 0);
    let snap = db.stats().snapshot();
    assert_eq!(snap.colstore_blocks_pruned, 0, "zones cannot exclude 20");
    assert_eq!(snap.objects_decoded, 0, "dictionary miss short-circuits");

    // The present values still come back exactly.
    let (_, v) = db
        .query("SELECT x.HI FROM x IN FLAGS WHERE x.LO = 30")
        .unwrap();
    assert_eq!(v.len(), 1500);
}

// =====================================================================
// Tier-spanning reads
// =====================================================================

/// Rows inserted after compaction stay hot; queries and text search
/// see the union of both tiers.
#[test]
fn queries_span_hot_and_cold_tiers() {
    let mut plain = nums_db(2500);
    let mut db = nums_db(2000);
    db.compact_table("NUMS").unwrap();
    for i in 2000..2500i64 {
        db.insert_tuple("NUMS", Tuple::new(vec![a(i), a(i * 3)]))
            .unwrap();
    }
    let tiers = db.table_tiers().unwrap();
    assert_eq!(tiers[0].1, 500, "late inserts stay hot");
    assert!(tiers[0].2 >= 1, "frozen blocks remain");

    assert_eq!(
        sorted_rows(&mut db, "SELECT * FROM NUMS"),
        sorted_rows(&mut plain, "SELECT * FROM NUMS"),
    );
}

#[test]
fn text_index_covers_cold_rows() {
    let mut db = Database::in_memory();
    db.execute("CREATE TABLE NOTES ( ID INTEGER, BODY TEXT )")
        .unwrap();
    for i in 0..100i64 {
        let body = if i == 37 {
            "database machines and columnar storage".to_string()
        } else {
            format!("note number {i}")
        };
        db.insert_tuple(
            "NOTES",
            Tuple::new(vec![a(i), Value::Atom(Atom::Text(body))]),
        )
        .unwrap();
    }
    db.execute("CREATE TEXT INDEX NOTES_T ON NOTES (BODY)")
        .unwrap();
    db.compact_table("NOTES").unwrap();
    let (_, v) = db
        .query("SELECT x.ID FROM x IN NOTES WHERE x.BODY CONTAINS '*columnar*'")
        .unwrap();
    assert_eq!(v.len(), 1);
    assert_eq!(v.tuples[0].fields[0], Value::Atom(Atom::Int(37)));
    // And an index created over an already-cold table works too.
    db.execute("CREATE TEXT INDEX NOTES_T2 ON NOTES (BODY)")
        .unwrap();
    let (_, v) = db
        .query("SELECT x.ID FROM x IN NOTES WHERE x.BODY CONTAINS '*machine*'")
        .unwrap();
    assert_eq!(v.len(), 1);
}

// =====================================================================
// Melt-on-write
// =====================================================================

/// DML against a tiered table melts the cold blocks back into the hot
/// heap first; answers match a never-compacted table exactly.
#[test]
fn update_and_delete_melt_cold_blocks() {
    let mut plain = nums_db(1500);
    let mut tiered = nums_db(1500);
    tiered.compact_table("NUMS").unwrap();

    for db in [&mut plain, &mut tiered] {
        db.execute("UPDATE x IN NUMS SET x.V = 0 WHERE x.K < 10")
            .unwrap();
        db.execute("DELETE x FROM x IN NUMS WHERE x.K >= 1400")
            .unwrap();
    }
    let tiers = tiered.table_tiers().unwrap();
    assert_eq!((tiers[0].2, tiers[0].3), (0, 0), "cold tier melted");
    assert_eq!(
        sorted_rows(&mut plain, "SELECT * FROM NUMS"),
        sorted_rows(&mut tiered, "SELECT * FROM NUMS"),
    );
}

// =====================================================================
// Persistence
// =====================================================================

/// Compaction survives checkpoint + reopen: the cold directory comes
/// back from the catalog, block payloads from the segment pages, and
/// both the integrity walker and queries accept the reopened tiers.
#[test]
fn compaction_persists_across_reopen() {
    let dir = temp_dir("reopen");
    let cfg = DbConfig {
        data_dir: Some(dir.clone()),
        ..DbConfig::default()
    };
    let expected;
    {
        let mut db = Database::with_config(cfg.clone());
        db.execute("CREATE TABLE NUMS ( K INTEGER, V INTEGER )")
            .unwrap();
        for i in 0..3000i64 {
            db.insert_tuple("NUMS", Tuple::new(vec![a(i), a(i * 3)]))
                .unwrap();
        }
        let (blocks, rows) = db.compact_table("NUMS").unwrap();
        assert!(blocks >= 2);
        assert_eq!(rows, 3000);
        expected = sorted_rows(&mut db, "SELECT * FROM NUMS");
        db.checkpoint().unwrap();
    }
    let mut db = Database::open(cfg).unwrap();
    let tiers = db.table_tiers().unwrap();
    assert_eq!(tiers[0].1, 0, "no hot rows after reopen");
    assert!(tiers[0].2 >= 2, "cold blocks reopened");
    assert_eq!(tiers[0].3, 3000);
    assert_eq!(sorted_rows(&mut db, "SELECT * FROM NUMS"), expected);
    let report = db.integrity_check().unwrap();
    assert!(report.is_clean(), "{report}");
    // Zone pruning still applies to reopened block metadata.
    db.stats().reset();
    db.query("SELECT x.V FROM x IN NUMS WHERE x.K = 2999")
        .unwrap();
    assert!(db.stats().snapshot().colstore_blocks_pruned >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}

// =====================================================================
// Transaction layer
// =====================================================================

/// `SharedDatabase::compact_table` quiesces and resyncs snapshots:
/// sessions opened after the compaction read the same rows lock-free,
/// and 2PL sessions batch through the cold tier transparently.
#[test]
fn shared_database_compact_and_tiers() {
    let mut db = nums_db(2048);
    let expected = sorted_rows(&mut db, "SELECT * FROM NUMS");
    let shared = SharedDatabase::new(db);

    let (blocks, rows) = shared.compact_table("NUMS").unwrap();
    assert_eq!((blocks, rows), (2, 2048));
    let tiers = shared.tiers().unwrap();
    assert_eq!(tiers, vec![("NUMS".to_string(), 0, 2, 2048)]);

    // A 2PL session's scan pulls cold batches through the lock path.
    let mut session = shared.session();
    let got = session.query("SELECT * FROM NUMS").unwrap().1;
    assert_eq!(got.len(), 2048);
    session.commit().unwrap();

    // A read-only snapshot session sees the identical post-compaction
    // state with zero lock acquisitions.
    let mut ro = shared.session();
    ro.begin_read_only().unwrap();
    let mut got = ro.query("SELECT * FROM NUMS").unwrap().1.tuples;
    got.sort_by(|x, y| format!("{x:?}").cmp(&format!("{y:?}")));
    assert_eq!(got, expected);
    assert_eq!(ro.lock_acquisitions(), 0);
    ro.commit().unwrap();
}
