//! The canonical reproduction suite: every example query of the paper's
//! Section 3 (Examples 1–8, Figures 2–5) and the §5 extensions, executed
//! end-to-end through the integrated database — parser → binder →
//! evaluator → SS3 object storage — asserting the exact results the
//! paper states.

use aim2::Database;
use aim2_model::{fixtures, Atom, Date, TableKind};

fn paper_db() -> Database {
    let mut db = Database::in_memory();
    db.execute_script(
        "CREATE TABLE DEPARTMENTS ( DNO INTEGER, MGRNO INTEGER,
           PROJECTS { PNO INTEGER, PNAME STRING,
                      MEMBERS { EMPNO INTEGER, FUNCTION STRING } },
           BUDGET INTEGER, EQUIP { QU INTEGER, TYPE STRING } );
         CREATE TABLE DEPARTMENTS-1NF ( DNO INTEGER, MGRNO INTEGER, BUDGET INTEGER );
         CREATE TABLE PROJECTS-1NF ( PNO INTEGER, PNAME STRING, DNO INTEGER );
         CREATE TABLE MEMBERS-1NF ( EMPNO INTEGER, PNO INTEGER, DNO INTEGER, FUNCTION STRING );
         CREATE TABLE EQUIP-1NF ( DNO INTEGER, QU INTEGER, TYPE STRING );
         CREATE TABLE EMPLOYEES-1NF ( EMPNO INTEGER, LNAME STRING, FNAME STRING, SEX STRING );
         CREATE TABLE REPORTS ( REPNO STRING, AUTHORS < NAME STRING >, TITLE TEXT,
                                DESCRIPTORS { WORD STRING, WEIGHT DOUBLE } )",
    )
    .unwrap();
    for (table, value) in [
        ("DEPARTMENTS", fixtures::departments_value()),
        ("DEPARTMENTS-1NF", fixtures::departments_1nf_value()),
        ("PROJECTS-1NF", fixtures::projects_1nf_value()),
        ("MEMBERS-1NF", fixtures::members_1nf_value()),
        ("EQUIP-1NF", fixtures::equip_1nf_value()),
        ("EMPLOYEES-1NF", fixtures::employees_1nf_value()),
        ("REPORTS", fixtures::reports_value()),
    ] {
        for t in value.tuples {
            db.insert_tuple(table, t).unwrap();
        }
    }
    db
}

fn ints(v: &aim2_model::TableValue, col: usize) -> Vec<i64> {
    let mut out: Vec<i64> = v
        .tuples
        .iter()
        .map(|t| t.fields[col].as_atom().unwrap().as_int().unwrap())
        .collect();
    out.sort_unstable();
    out
}

#[test]
fn example_1_implicit_structure() {
    let mut db = paper_db();
    let (_, long) = db
        .query("SELECT x.DNO, x.MGRNO, x.PROJECTS, x.BUDGET, x.EQUIP FROM x IN DEPARTMENTS")
        .unwrap();
    let (_, short) = db.query("SELECT * FROM DEPARTMENTS").unwrap();
    assert!(long.semantically_eq(&fixtures::departments_value()));
    assert!(short.semantically_eq(&long));
}

#[test]
fn example_2_fig2_explicit_structure() {
    let mut db = paper_db();
    let (schema, v) = db
        .query(
            "SELECT x.DNO, x.MGRNO,
                PROJECTS = (SELECT y.PNO, y.PNAME,
                    MEMBERS = (SELECT z.EMPNO, z.FUNCTION FROM z IN y.MEMBERS)
                    FROM y IN x.PROJECTS),
                x.BUDGET,
                EQUIP = (SELECT v.QU, v.TYPE FROM v IN x.EQUIP)
             FROM x IN DEPARTMENTS",
        )
        .unwrap();
    assert_eq!(schema.depth(), 3, "result structure = source structure");
    assert!(v.semantically_eq(&fixtures::departments_value()));
}

#[test]
fn example_3_fig3_nest() {
    let mut db = paper_db();
    let (_, v) = db
        .query(
            "SELECT x.DNO, x.MGRNO,
                PROJECTS = (SELECT y.PNO, y.PNAME,
                    MEMBERS = (SELECT z.EMPNO, z.FUNCTION FROM z IN MEMBERS-1NF
                               WHERE z.PNO = y.PNO AND z.DNO = y.DNO)
                    FROM y IN PROJECTS-1NF WHERE y.DNO = x.DNO),
                x.BUDGET,
                EQUIP = (SELECT v.QU, v.TYPE FROM v IN EQUIP-1NF WHERE v.DNO = x.DNO)
             FROM x IN DEPARTMENTS-1NF",
        )
        .unwrap();
    assert!(
        v.semantically_eq(&fixtures::departments_value()),
        "nest(Tables 1-4) = Table 5"
    );
}

#[test]
fn example_4_unnest_and_flat_equivalent() {
    let mut db = paper_db();
    let (schema, nf2) = db
        .query(
            "SELECT x.DNO, x.MGRNO, y.PNO, y.PNAME, z.EMPNO, z.FUNCTION
             FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS",
        )
        .unwrap();
    assert!(schema.is_flat());
    assert!(nf2.semantically_eq(&fixtures::table7_value()), "Table 7");
    // The paper's point: the flat formulation needs explicit joins but
    // must agree.
    let (_, flat) = db
        .query(
            "SELECT x.DNO, x.MGRNO, y.PNO, y.PNAME, z.EMPNO, z.FUNCTION
             FROM x IN DEPARTMENTS-1NF, y IN PROJECTS-1NF, z IN MEMBERS-1NF
             WHERE x.DNO = y.DNO AND y.PNO = z.PNO AND y.DNO = z.DNO",
        )
        .unwrap();
    assert!(flat.semantically_eq(&nf2));
}

#[test]
fn example_5_exists() {
    let mut db = paper_db();
    let (_, v) = db
        .query(
            "SELECT x.DNO, x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS
             WHERE EXISTS y IN x.EQUIP : y.TYPE = 'PC/AT'",
        )
        .unwrap();
    assert_eq!(ints(&v, 0), vec![218, 314]);
    // "The output would be a flat table with 3 atomic attributes."
    assert_eq!(v.tuples[0].arity(), 3);
}

#[test]
fn example_6_all_quantifier() {
    let mut db = paper_db();
    let (_, v) = db
        .query(
            "SELECT x.DNO, x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS
             WHERE ALL y IN x.PROJECTS : ALL z IN y.MEMBERS : z.FUNCTION = 'Consultant'",
        )
        .unwrap();
    assert!(
        v.is_empty(),
        "the paper: the result set of this query is empty"
    );
}

#[test]
fn example_7_fig4_and_fig5_joins() {
    let mut db = paper_db();
    let (_, v) = db
        .query(
            "SELECT x.DNO, x.MGRNO,
                EMPLOYEES = (SELECT z.EMPNO, u.LNAME, u.FNAME, u.SEX, z.FUNCTION
                             FROM y IN x.PROJECTS, z IN y.MEMBERS, u IN EMPLOYEES-1NF
                             WHERE z.EMPNO = u.EMPNO)
             FROM x IN DEPARTMENTS",
        )
        .unwrap();
    assert_eq!(v.len(), 3);
    let sizes: Vec<usize> = v
        .tuples
        .iter()
        .map(|t| t.fields[2].as_table().unwrap().len())
        .collect();
    let mut sorted = sizes.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, vec![4, 6, 7], "members per department");

    let (_, v) = db
        .query(
            "SELECT x.DNO, m.LNAME, m.SEX,
                EMPLOYEES = (SELECT z.EMPNO, u.LNAME, u.FNAME, u.SEX, z.FUNCTION
                             FROM y IN x.PROJECTS, z IN y.MEMBERS, u IN EMPLOYEES-1NF
                             WHERE z.EMPNO = u.EMPNO)
             FROM x IN DEPARTMENTS, m IN EMPLOYEES-1NF WHERE x.MGRNO = m.EMPNO",
        )
        .unwrap();
    assert_eq!(v.len(), 3, "every manager resolves");
}

#[test]
fn example_8_ordered_list_subscript() {
    let mut db = paper_db();
    let (schema, v) = db
        .query("SELECT x.AUTHORS, x.TITLE FROM x IN REPORTS WHERE x.AUTHORS[1] = 'Jones A.'")
        .unwrap();
    assert_eq!(v.len(), 1, "0179 only — 0291 has Jones third, not first");
    assert!(
        !schema.is_flat(),
        "result is not flat: AUTHORS is non-atomic"
    );
    let authors = v.tuples[0].fields[0].as_table().unwrap();
    assert_eq!(authors.kind, TableKind::List);
    assert_eq!(
        authors.tuples[0].fields[0].as_atom().unwrap().as_str(),
        Some("Jones A.")
    );
}

#[test]
fn sec42_index_queries_through_language() {
    let mut db = paper_db();
    let (_, v) = db
        .query(
            "SELECT x.DNO FROM x IN DEPARTMENTS
             WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS : z.FUNCTION = 'Consultant'",
        )
        .unwrap();
    assert_eq!(ints(&v, 0), vec![218, 314]);
    let (_, v) = db
        .query(
            "SELECT y.PNO FROM x IN DEPARTMENTS, y IN x.PROJECTS
             WHERE EXISTS z IN y.MEMBERS : z.FUNCTION = 'Consultant'",
        )
        .unwrap();
    assert_eq!(ints(&v, 0), vec![17, 25]);
    let (_, v) = db
        .query(
            "SELECT x.DNO FROM x IN DEPARTMENTS
             WHERE EXISTS y IN x.PROJECTS : y.PNO = 17 AND
                   EXISTS z IN y.MEMBERS : z.FUNCTION = 'Consultant'",
        )
        .unwrap();
    assert_eq!(ints(&v, 0), vec![314]);
}

#[test]
fn sec5_text_query() {
    let mut db = paper_db();
    let (_, v) = db
        .query(
            "SELECT x.REPNO, x.AUTHORS, x.TITLE FROM x IN REPORTS
             WHERE x.TITLE CONTAINS '*comput*' AND EXISTS y IN x.AUTHORS : y.NAME = 'Jones A.'",
        )
        .unwrap();
    assert_eq!(v.len(), 1);
    assert_eq!(
        v.tuples[0].fields[0].as_atom().unwrap(),
        &Atom::Str("0291".into())
    );
}

#[test]
fn sec5_asof_query() {
    let mut db = Database::in_memory();
    db.execute(
        "CREATE TABLE DEPARTMENTS ( DNO INTEGER, MGRNO INTEGER,
           PROJECTS { PNO INTEGER, PNAME STRING,
                      MEMBERS { EMPNO INTEGER, FUNCTION STRING } },
           BUDGET INTEGER, EQUIP { QU INTEGER, TYPE STRING } ) WITH VERSIONS",
    )
    .unwrap();
    db.set_today(Date::parse_iso("1984-01-01").unwrap());
    db.execute(
        "INSERT INTO DEPARTMENTS VALUES (314, 56194,
           {(17, 'CGA', {(39582, 'Leader')}), (11, 'DOC', {})}, 280000, {})",
    )
    .unwrap();
    db.set_today(Date::parse_iso("1984-06-01").unwrap());
    db.execute("DELETE y FROM x IN DEPARTMENTS, y IN x.PROJECTS WHERE y.PNO = 11")
        .unwrap();
    db.execute(
        "INSERT INTO x.PROJECTS FROM x IN DEPARTMENTS WHERE x.DNO = 314
         VALUES (23, 'HEAP', {})",
    )
    .unwrap();
    let (_, v) = db
        .query(
            "SELECT y.PNO, y.PNAME FROM x IN DEPARTMENTS ASOF '1984-01-15', y IN x.PROJECTS
             WHERE x.DNO = 314",
        )
        .unwrap();
    assert_eq!(ints(&v, 0), vec![11, 17]);
}
