//! Assorted language corners through the facade: `SELECT *` in
//! subqueries, ASOF inside named subqueries, OR across quantifiers,
//! CONTAINS with `?`, empty results with intact schemas.

use aim2::Database;
use aim2_model::{fixtures, Date};

fn db() -> Database {
    let mut db = Database::in_memory();
    db.execute(
        "CREATE TABLE DEPARTMENTS ( DNO INTEGER, MGRNO INTEGER,
           PROJECTS { PNO INTEGER, PNAME STRING,
                      MEMBERS { EMPNO INTEGER, FUNCTION STRING } },
           BUDGET INTEGER, EQUIP { QU INTEGER, TYPE STRING } )",
    )
    .unwrap();
    for t in fixtures::departments_value().tuples {
        db.insert_tuple("DEPARTMENTS", t).unwrap();
    }
    db
}

#[test]
fn star_inside_named_subquery() {
    let mut d = db();
    let (schema, v) = d
        .query(
            "SELECT x.DNO, PS = (SELECT * FROM y IN x.PROJECTS) FROM x IN DEPARTMENTS
             WHERE x.DNO = 314",
        )
        .unwrap();
    let ps = schema.attr("PS").unwrap().kind.as_table().unwrap();
    assert_eq!(ps.depth(), 2, "PROJECTS structure copied wholesale");
    let projects = v.tuples[0].fields[1].as_table().unwrap();
    assert_eq!(projects.len(), 2);
    assert_eq!(
        projects.tuples[0].fields[2].as_table().unwrap().len(),
        3,
        "MEMBERS came along"
    );
}

#[test]
fn or_across_quantifiers() {
    let mut d = db();
    let (_, v) = d
        .query(
            "SELECT x.DNO FROM x IN DEPARTMENTS
             WHERE (EXISTS e IN x.EQUIP : e.TYPE = '4361')
                OR (EXISTS y IN x.PROJECTS : y.PNO = 17)",
        )
        .unwrap();
    // 417 has the 4361; 314 has project 17.
    assert_eq!(v.len(), 2);
}

#[test]
fn empty_result_keeps_schema() {
    let mut d = db();
    let (schema, v) = d
        .query("SELECT x.DNO, x.BUDGET FROM x IN DEPARTMENTS WHERE x.DNO = 999")
        .unwrap();
    assert!(v.is_empty());
    assert_eq!(schema.attrs.len(), 2);
    assert_eq!(schema.attrs[1].name, "BUDGET");
}

#[test]
fn asof_inside_named_subquery() {
    let mut d = Database::in_memory();
    d.execute("CREATE TABLE SNAP ( K INTEGER, V INTEGER ) WITH VERSIONS")
        .unwrap();
    d.set_today(Date::parse_iso("1984-01-01").unwrap());
    d.execute("INSERT INTO SNAP VALUES (1, 10)").unwrap();
    d.set_today(Date::parse_iso("1985-01-01").unwrap());
    d.execute("UPDATE s IN SNAP SET s.V = 20 WHERE s.K = 1")
        .unwrap();
    // Correlated subquery over the historical state.
    let (_, v) = d
        .query(
            "SELECT now.K, OLD = (SELECT old.V FROM old IN SNAP ASOF '1984-06-01'
                                  WHERE old.K = now.K)
             FROM now IN SNAP",
        )
        .unwrap();
    let old = v.tuples[0].fields[1].as_table().unwrap();
    assert_eq!(
        old.tuples[0].fields[0].as_atom().unwrap().as_int(),
        Some(10)
    );
}

#[test]
fn contains_question_mark_through_language() {
    let mut d = Database::in_memory();
    d.execute("CREATE TABLE NOTES ( ID INTEGER, BODY TEXT, TAGS { T STRING } )")
        .unwrap();
    d.execute("INSERT INTO NOTES VALUES (1, 'the heap and the hoop', {})")
        .unwrap();
    d.execute("INSERT INTO NOTES VALUES (2, 'nothing here', {})")
        .unwrap();
    let (_, v) = d
        .query("SELECT x.ID FROM x IN NOTES WHERE x.BODY CONTAINS 'h??p'")
        .unwrap();
    assert_eq!(v.len(), 1, "heap and hoop both match but in note 1 only");
}

#[test]
fn comparisons_between_two_attributes() {
    let mut d = db();
    // Attribute-to-attribute comparison (no literal involved).
    let (_, v) = d
        .query("SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.DNO < x.MGRNO")
        .unwrap();
    assert_eq!(v.len(), 3, "all DNOs are smaller than MGRNOs");
    let (_, v) = d
        .query(
            "SELECT y.PNO FROM x IN DEPARTMENTS, y IN x.PROJECTS
             WHERE EXISTS z IN y.MEMBERS : z.EMPNO > x.MGRNO",
        )
        .unwrap();
    assert!(!v.is_empty());
}

#[test]
fn pruned_scan_not_served_to_fuller_binding() {
    // Regression for the evaluator's scan cache: the outer binding only
    // touches DNO (every subtable pruned by partial retrieval); the
    // correlated subquery rebinds the SAME stored table and quantifies
    // over EQUIP. A cache keyed only on the table name would hand the
    // subquery the pruned, EQUIP-less materialization. This must run
    // against real storage (the in-memory test provider ignores
    // pruning).
    let mut d = db();
    let (_, v) = d
        .query(
            "SELECT x.DNO, HAS = (SELECT o.BUDGET FROM o IN DEPARTMENTS
                                  WHERE o.DNO = x.DNO AND
                                        EXISTS e IN o.EQUIP : e.TYPE = 'PC/AT')
             FROM x IN DEPARTMENTS",
        )
        .unwrap();
    let non_empty = v
        .tuples
        .iter()
        .filter(|t| !t.fields[1].as_table().unwrap().is_empty())
        .count();
    assert_eq!(non_empty, 2, "departments 314 and 218 own a PC/AT");
}
