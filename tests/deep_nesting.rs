//! Depth stress: the paper motivates "deeply nested hierarchical
//! structures" in CAD — exercise a 5-level schema end-to-end (DDL, bulk
//! insert, deep DML, deep queries, indexes on level-5 attributes, MD
//! profiling under all layouts).

use aim2::Database;
use aim2_model::Atom;
use aim2_storage::minidir::LayoutKind;

const DDL: &str = "CREATE TABLE PLANTS (
    PID INTEGER, SITE STRING,
    LINES { LID INTEGER,
      CELLS { CID INTEGER,
        MACHINES { MID INTEGER, KIND STRING,
          SENSORS { SID INTEGER, UNIT STRING } } } } )";

fn build(db: &mut Database, plants: usize) {
    db.execute(DDL).unwrap();
    for p in 0..plants {
        // 2 lines × 2 cells × 2 machines × 2 sensors per plant.
        let mut lines = String::new();
        for l in 0..2 {
            let mut cells = String::new();
            for c in 0..2 {
                let mut machines = String::new();
                for m in 0..2 {
                    let mid = ((p * 8 + l * 4 + c * 2 + m) * 10) as i64;
                    let kind = if (p + m) % 3 == 0 { "mill" } else { "lathe" };
                    let sensors = format!("({}, 'celsius'), ({}, 'rpm')", mid + 1, mid + 2);
                    machines.push_str(&format!("({mid}, '{kind}', {{{sensors}}}),"));
                }
                machines.pop();
                cells.push_str(&format!("({c}, {{{machines}}}),"));
            }
            cells.pop();
            lines.push_str(&format!("({l}, {{{cells}}}),"));
        }
        lines.pop();
        db.execute(&format!(
            "INSERT INTO PLANTS VALUES ({p}, 'site{p}', {{{lines}}})"
        ))
        .unwrap();
    }
}

#[test]
fn five_level_schema_end_to_end() {
    let mut db = Database::in_memory();
    build(&mut db, 6);
    let schema = db.schema("PLANTS").unwrap();
    assert_eq!(schema.depth(), 5);

    // Five-binding query down to sensors.
    let (_, v) = db
        .query(
            "SELECT x.PID, s.SID FROM x IN PLANTS, l IN x.LINES, c IN l.CELLS,
                    m IN c.MACHINES, s IN m.SENSORS
             WHERE s.UNIT = 'rpm'",
        )
        .unwrap();
    assert_eq!(v.len(), 6 * 8, "one rpm sensor per machine");

    // Quantifiers spanning four levels.
    let (_, v) = db
        .query(
            "SELECT x.PID FROM x IN PLANTS
             WHERE EXISTS l IN x.LINES EXISTS c IN l.CELLS
                   EXISTS m IN c.MACHINES : m.KIND = 'mill'",
        )
        .unwrap();
    assert!(!v.is_empty());

    // Index on the deepest atomic attribute.
    db.execute("CREATE INDEX su ON PLANTS (LINES.CELLS.MACHINES.SENSORS.UNIT)")
        .unwrap();
    let idx = db.index_mut("PLANTS", "su").unwrap();
    let hits = idx.lookup(&Atom::Str("rpm".into())).unwrap();
    assert_eq!(hits.len(), 48);
    // Hierarchical addresses carry 4 components (line, cell, machine,
    // sensor data subtuples).
    let aim2_index::address::IndexAddress::Hier(h) = &hits[0] else {
        panic!()
    };
    assert_eq!(h.comps.len(), 4);

    // DML at depth 4 (insert a sensor into one machine).
    let r = db
        .execute(
            "INSERT INTO m.SENSORS FROM x IN PLANTS, l IN x.LINES, c IN l.CELLS, m IN c.MACHINES
             WHERE x.PID = 0 AND l.LID = 0 AND c.CID = 0 AND m.MID = 0
             VALUES (99999, 'pascal')",
        )
        .unwrap();
    assert_eq!(r.count(), Some(1));
    let idx = db.index_mut("PLANTS", "su").unwrap();
    assert_eq!(idx.lookup(&Atom::Str("pascal".into())).unwrap().len(), 1);

    // Deep delete by predicate.
    let r = db
        .execute(
            "DELETE s FROM x IN PLANTS, l IN x.LINES, c IN l.CELLS,
                    m IN c.MACHINES, s IN m.SENSORS
             WHERE s.UNIT = 'celsius' AND x.PID = 5",
        )
        .unwrap();
    assert_eq!(r.count(), Some(8));
    let (_, v) = db
        .query(
            "SELECT s.SID FROM x IN PLANTS, l IN x.LINES, c IN l.CELLS,
                    m IN c.MACHINES, s IN m.SENSORS WHERE x.PID = 5",
        )
        .unwrap();
    assert_eq!(v.len(), 8, "only the rpm sensors remain in plant 5");

    // Partial retrieval prunes the deep subtree when untouched.
    let plan = db
        .explain_query(&aim2_lang::parser::parse_query("SELECT x.SITE FROM x IN PLANTS").unwrap())
        .unwrap();
    assert!(plan.contains("skips [LINES"), "{plan}");
}

#[test]
fn md_counts_scale_with_depth_per_layout() {
    // SS1 > SS3 > SS2 must hold for deep objects too — build one plant
    // directly against the object stores.
    use aim2_bench::fresh_segment;
    use aim2_model::value::build::{a, rel, tup};
    use aim2_model::{AtomType, TableSchema};
    use aim2_storage::object::ObjectStore;

    let schema = TableSchema::relation("PLANTS")
        .with_atom("PID", AtomType::Int)
        .with_table(
            TableSchema::relation("LINES")
                .with_atom("LID", AtomType::Int)
                .with_table(
                    TableSchema::relation("CELLS")
                        .with_atom("CID", AtomType::Int)
                        .with_table(
                            TableSchema::relation("MACHINES")
                                .with_atom("MID", AtomType::Int)
                                .with_table(
                                    TableSchema::relation("SENSORS")
                                        .with_atom("SID", AtomType::Int),
                                ),
                        ),
                ),
        );
    let sensors = || rel(vec![tup(vec![a(1)]), tup(vec![a(2)])]);
    let machines = || rel(vec![tup(vec![a(1), sensors()]), tup(vec![a(2), sensors()])]);
    let cells = || rel(vec![tup(vec![a(1), machines()])]);
    let plant = tup(vec![
        a(1),
        rel(vec![tup(vec![a(1), cells()]), tup(vec![a(2), cells()])]),
    ]);

    let mut counts = Vec::new();
    for layout in LayoutKind::ALL {
        let mut os = ObjectStore::new(fresh_segment(2048, 64), layout);
        let h = os.insert_object(&schema, &plant).unwrap();
        counts.push(os.md_profile(h).unwrap().md_subtuples);
        assert_eq!(os.read_object(&schema, h).unwrap(), plant, "{layout}");
    }
    // SS1, SS2, SS3 order in LayoutKind::ALL.
    assert!(counts[0] > counts[2] && counts[2] > counts[1], "{counts:?}");
}
