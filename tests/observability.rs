//! Observability suite: EXPLAIN ANALYZE attribution, the metrics
//! exposition layer, the slow-query log, and the grouped stats display.
//!
//! The load-bearing assertion is the ANALYZE sum invariant: for every
//! paper-example query, the per-operator `objects_decoded` deltas sum
//! exactly to the query's total Stats delta — analysis redistributes
//! the paper's §4 access counts over the operator tree without losing
//! or inventing any. Golden re-bless: `BLESS=1 cargo test --test
//! observability`.

use aim2::{Database, DbConfig};
use aim2_model::fixtures;
use aim2_model::value::build::a;
use aim2_net::{
    ChaosProxy, Client, ClientConfig, ErrorCode, FaultPlan, RetryPolicy, Server, ServerConfig,
    TraceFormat, PROTOCOL_VERSION,
};
use aim2_txn::SharedDatabase;
use std::time::Duration;

fn paper_db() -> Database {
    let mut db = Database::in_memory();
    db.execute_script(
        "CREATE TABLE DEPARTMENTS ( DNO INTEGER, MGRNO INTEGER,
           PROJECTS { PNO INTEGER, PNAME STRING,
                      MEMBERS { EMPNO INTEGER, FUNCTION STRING } },
           BUDGET INTEGER, EQUIP { QU INTEGER, TYPE STRING } );
         CREATE TABLE DEPARTMENTS-1NF ( DNO INTEGER, MGRNO INTEGER, BUDGET INTEGER );
         CREATE TABLE PROJECTS-1NF ( PNO INTEGER, PNAME STRING, DNO INTEGER );
         CREATE TABLE MEMBERS-1NF ( EMPNO INTEGER, PNO INTEGER, DNO INTEGER, FUNCTION STRING );
         CREATE TABLE EQUIP-1NF ( DNO INTEGER, QU INTEGER, TYPE STRING );
         CREATE TABLE EMPLOYEES-1NF ( EMPNO INTEGER, LNAME STRING, FNAME STRING, SEX STRING );
         CREATE TABLE REPORTS ( REPNO STRING, AUTHORS < NAME STRING >, TITLE TEXT,
                                DESCRIPTORS { WORD STRING, WEIGHT DOUBLE } )",
    )
    .unwrap();
    for (table, value) in [
        ("DEPARTMENTS", fixtures::departments_value()),
        ("DEPARTMENTS-1NF", fixtures::departments_1nf_value()),
        ("PROJECTS-1NF", fixtures::projects_1nf_value()),
        ("MEMBERS-1NF", fixtures::members_1nf_value()),
        ("EQUIP-1NF", fixtures::equip_1nf_value()),
        ("EMPLOYEES-1NF", fixtures::employees_1nf_value()),
        ("REPORTS", fixtures::reports_value()),
    ] {
        for t in value.tuples {
            db.insert_tuple(table, t).unwrap();
        }
    }
    db
}

/// The paper's example queries (§3 Examples 1–8, §4.2, §5 text search)
/// that run against the unversioned fixture database.
const PAPER_QUERIES: &[&str] = &[
    "SELECT x.DNO, x.MGRNO, x.PROJECTS, x.BUDGET, x.EQUIP FROM x IN DEPARTMENTS",
    "SELECT * FROM DEPARTMENTS",
    "SELECT x.DNO, x.MGRNO,
        PROJECTS = (SELECT y.PNO, y.PNAME,
            MEMBERS = (SELECT z.EMPNO, z.FUNCTION FROM z IN y.MEMBERS)
            FROM y IN x.PROJECTS),
        x.BUDGET,
        EQUIP = (SELECT v.QU, v.TYPE FROM v IN x.EQUIP)
     FROM x IN DEPARTMENTS",
    "SELECT x.DNO, x.MGRNO, y.PNO, y.PNAME, z.EMPNO, z.FUNCTION
     FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS",
    "SELECT x.DNO, x.MGRNO, y.PNO, y.PNAME, z.EMPNO, z.FUNCTION
     FROM x IN DEPARTMENTS-1NF, y IN PROJECTS-1NF, z IN MEMBERS-1NF
     WHERE x.DNO = y.DNO AND y.PNO = z.PNO AND y.DNO = z.DNO",
    "SELECT x.DNO, x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS
     WHERE EXISTS y IN x.EQUIP : y.TYPE = 'PC/AT'",
    "SELECT x.DNO, x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS
     WHERE ALL y IN x.PROJECTS : ALL z IN y.MEMBERS : z.FUNCTION = 'Consultant'",
    "SELECT x.DNO, x.MGRNO,
        EMPLOYEES = (SELECT z.EMPNO, u.LNAME, u.FNAME, u.SEX, z.FUNCTION
                     FROM y IN x.PROJECTS, z IN y.MEMBERS, u IN EMPLOYEES-1NF
                     WHERE z.EMPNO = u.EMPNO)
     FROM x IN DEPARTMENTS",
    "SELECT x.AUTHORS, x.TITLE FROM x IN REPORTS WHERE x.AUTHORS[1] = 'Jones A.'",
    "SELECT x.DNO FROM x IN DEPARTMENTS
     WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS : z.FUNCTION = 'Consultant'",
    "SELECT y.PNO FROM x IN DEPARTMENTS, y IN x.PROJECTS
     WHERE EXISTS z IN y.MEMBERS : z.FUNCTION = 'Consultant'",
    "SELECT x.REPNO, x.AUTHORS, x.TITLE FROM x IN REPORTS
     WHERE x.TITLE CONTAINS '*comput*' AND EXISTS y IN x.AUTHORS : y.NAME = 'Jones A.'",
];

// =====================================================================
// EXPLAIN ANALYZE
// =====================================================================

/// The acceptance invariant: on every paper-example query, the sum of
/// per-operator `objects_decoded`/`atoms_decoded` deltas equals the
/// query's total Stats delta, and the analyzed execution returns the
/// same result table (with the same decode totals) as plain execution.
#[test]
fn analyze_matches_plain_execution_on_paper_queries() {
    for sql in PAPER_QUERIES {
        // Plain execution on a fresh database.
        let mut plain = paper_db();
        let before = plain.stats().snapshot();
        let (_, expected) = plain.query(sql).unwrap();
        let plain_delta = before.delta(&plain.stats().snapshot());

        // Analyzed execution on an identically fresh database.
        let mut analyzed = paper_db();
        let before = analyzed.stats().snapshot();
        let (_, got, ap) = analyzed.analyze(sql).unwrap();
        let delta = before.delta(&analyzed.stats().snapshot());

        assert!(
            got.semantically_eq(&expected),
            "analyze changed the result of {sql}"
        );
        assert_eq!(
            ap.total_objects_decoded(),
            delta.objects_decoded,
            "per-operator objects_decoded must sum to the Stats delta for {sql}\n{}",
            ap.render(false)
        );
        assert_eq!(
            ap.total_atoms_decoded(),
            delta.atoms_decoded,
            "per-operator atoms_decoded must sum to the Stats delta for {sql}"
        );
        assert_eq!(
            delta.objects_decoded, plain_delta.objects_decoded,
            "analysis must not change what gets decoded for {sql}"
        );
        // Every node renders with an annotation.
        let rendered = ap.render(false);
        assert_eq!(
            rendered.lines().count(),
            ap.plan.nodes.len(),
            "one annotated line per operator for {sql}"
        );
        assert!(rendered.lines().all(|l| l.contains("objects=")));
    }
}

/// Golden file of the annotated plan for the paper's Example 5 (EXISTS
/// over a subtable) on SS3 storage: operator shapes, row counts, and
/// decode deltas are pinned exactly. `BLESS=1` rewrites it.
#[test]
fn analyze_example5_golden() {
    let mut db = paper_db();
    let (_, v, ap) = db
        .analyze(
            "SELECT x.DNO, x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS
             WHERE EXISTS y IN x.EQUIP : y.TYPE = 'PC/AT'",
        )
        .unwrap();
    assert_eq!(v.len(), 2, "departments 218 and 314 qualify");
    let got = ap.render(false);

    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/analyze_example5.txt");
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}; run with BLESS=1", path.display()));
    assert_eq!(
        got,
        want,
        "annotated plan drifted from {}.\n\
         If the change is intentional, re-bless with BLESS=1.",
        path.display()
    );
}

/// Timed rendering carries the total header and per-operator times;
/// `Database::last_plan` keeps the timing-free form.
#[test]
fn analyze_rendering_and_last_plan() {
    let mut db = paper_db();
    let (_, _, ap) = db.analyze("SELECT * FROM DEPARTMENTS").unwrap();
    let timed = ap.to_string();
    assert!(timed.starts_with("Analyzed plan (total time="));
    assert!(timed.contains(" time="));
    assert_eq!(db.last_plan(), ap.render(false).trim_end());
    assert!(!db.last_plan().contains("time="));
}

// =====================================================================
// Metrics exposition
// =====================================================================

#[test]
fn metrics_snapshot_json_and_prometheus_shape() {
    let mut db = paper_db();
    db.query("SELECT * FROM DEPARTMENTS").unwrap();
    let m = db.metrics();

    let json = m.to_json();
    for key in [
        "\"counters\"",
        "\"gauges\"",
        "\"histograms\"",
        "\"storage.objects_decoded\"",
        "\"buffer.hit_rate\"",
        "\"db.query\"",
        "\"p99_ns\"",
    ] {
        assert!(json.contains(key), "JSON missing {key}:\n{json}");
    }

    let prom = m.to_prometheus();
    for line in [
        "# TYPE aim2_storage_objects_decoded counter",
        "# TYPE aim2_buffer_hit_rate gauge",
        "# TYPE aim2_db_query_ns summary",
        "aim2_db_query_ns{quantile=\"0.99\"}",
        "aim2_db_query_ns_count",
    ] {
        assert!(prom.contains(line), "prometheus missing {line}:\n{prom}");
    }

    // Running a query must have fed the db.query histogram.
    let h = db.stats().histogram("db.query");
    assert!(h.count >= 1);
    assert!(h.p99() >= h.p50());
}

#[test]
fn cursor_lifetime_histogram_fed_by_scans() {
    let mut db = paper_db();
    db.query("SELECT * FROM DEPARTMENTS").unwrap();
    assert!(db.stats().histogram("exec.cursor_lifetime").count >= 1);
}

// =====================================================================
// Slow-query log
// =====================================================================

#[test]
fn slow_log_records_over_threshold_and_caps_at_ring_size() {
    let mut db = paper_db();
    // Threshold zero: everything is slow.
    db.set_slow_query_threshold(Some(Duration::ZERO));
    for _ in 0..(aim2::SLOW_LOG_CAPACITY + 8) {
        db.query("SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.BUDGET >= 300000")
            .unwrap();
    }
    assert_eq!(db.slow_log().len(), aim2::SLOW_LOG_CAPACITY);
    let rec = db.slow_log().records().next_back().unwrap();
    assert!(rec.statement.contains("SELECT x.DNO"));
    assert!(rec.plan.contains("Scan DEPARTMENTS as x"));
    assert!(rec.delta.objects_decoded > 0, "delta captured");
    assert!(
        rec.spans.iter().any(|s| s.name == "db.query"),
        "span tree captured: {:?}",
        rec.spans
    );
    // The record renders with its plan and stats delta.
    let shown = rec.to_string();
    assert!(shown.contains("stats delta:"));

    // An unreachable threshold records nothing further.
    db.slow_log_mut().clear();
    db.set_slow_query_threshold(Some(Duration::from_secs(3600)));
    db.query("SELECT * FROM DEPARTMENTS").unwrap();
    assert!(db.slow_log().is_empty());
}

// =====================================================================
// Columnar cold-store attribution
// =====================================================================

/// After `compact_table`, a selective scan plans as ColumnarScan; the
/// analyzed plan carries the pruning counters, and the decode sum
/// invariant stays exact — per-batch sampling must attribute the same
/// totals the Stats delta records.
#[test]
fn analyze_columnar_scan_attribution_and_sum_invariant() {
    let mut db = Database::in_memory();
    db.execute("CREATE TABLE NUMS ( K INTEGER, V INTEGER )")
        .unwrap();
    for i in 0..5000i64 {
        db.insert_tuple("NUMS", aim2_model::Tuple::new(vec![a(i), a(i * 7)]))
            .unwrap();
    }
    let (blocks, rows) = db.compact_table("NUMS").unwrap();
    assert!(blocks >= 4, "5000 rows at 1024/block: {blocks}");
    assert_eq!(rows, 5000);

    let sql = "SELECT x.V FROM x IN NUMS WHERE x.K = 4999";
    let before = db.stats().snapshot();
    let (_, v, ap) = db.analyze(sql).unwrap();
    let delta = before.delta(&db.stats().snapshot());
    assert_eq!(v.len(), 1);

    let rendered = ap.render(false);
    assert!(
        rendered.contains("ColumnarScan NUMS as x"),
        "plan must show the columnar operator:\n{rendered}"
    );
    assert!(
        rendered.contains("blocks_pruned=") && rendered.contains("blocks_decoded="),
        "pruning counters attributed:\n{rendered}"
    );
    assert!(
        delta.colstore_blocks_pruned >= 3,
        "zone maps prune all but the key's block: {}",
        delta.colstore_blocks_pruned
    );
    // The sum invariant must survive batch-sampled attribution.
    assert_eq!(ap.total_objects_decoded(), delta.objects_decoded);
    assert_eq!(ap.total_atoms_decoded(), delta.atoms_decoded);
}

#[test]
fn slow_log_disabled_by_default() {
    let mut db = paper_db();
    assert!(DbConfig::default().slow_query_threshold.is_none());
    db.query("SELECT * FROM DEPARTMENTS").unwrap();
    assert!(db.slow_log().is_empty());
}

// =====================================================================
// End-to-end tracing
// =====================================================================

/// The trace-completeness invariant, over the wire: for every paper
/// query run through a real TCP server with tracing on, the server
/// retains a span tree whose stage self-times sum to within the root
/// span, whose decode counters equal the Stats delta the query caused,
/// and whose trace id is the one the client minted — visible from both
/// ends (the client's attempt record and the wire `Trace` verb).
#[test]
fn tcp_trace_spans_sum_within_root_and_match_stats_delta() {
    let shared = SharedDatabase::new(paper_db());
    let stats = shared.stats();
    let mut handle = Server::start(shared, ServerConfig::default()).unwrap();
    let mut client = Client::connect_with(
        handle.local_addr(),
        ClientConfig {
            client_name: "trace-invariant".into(),
            trace: true,
            ..ClientConfig::default()
        },
    )
    .unwrap();
    assert_eq!(client.peer_version(), PROTOCOL_VERSION);

    for sql in PAPER_QUERIES {
        let before = (stats.objects_decoded(), stats.atoms_decoded());
        client.query(sql).unwrap_or_else(|e| panic!("{sql}\n→ {e}"));
        let after = (stats.objects_decoded(), stats.atoms_decoded());

        let ct = client
            .last_client_trace()
            .expect("traced statements leave a client-side record")
            .clone();
        assert_ne!(ct.trace_id, 0, "traced statements mint a nonzero id");
        assert!(ct.ok, "clean run: {sql}");
        assert_eq!(ct.attempts.len(), 1, "no retries on a clean network");

        // The same trace is fetchable over the wire in both expositions.
        // (The round-trip also orders us after the conn thread's record:
        // the final row frame races the server-side finish.)
        let text = client.trace_by_id(ct.trace_id, TraceFormat::Text).unwrap();
        assert!(
            text.contains(&format!("{:#018x}", ct.trace_id)),
            "Trace verb must render the id: {text}"
        );
        assert!(text.contains("stages:") && text.contains("decoded: objects="));
        let jsonl = client.trace_by_id(ct.trace_id, TraceFormat::Jsonl).unwrap();
        assert!(jsonl.contains("\"spans\":[") && jsonl.ends_with('\n'));

        let trace = stats
            .recorder()
            .find(ct.trace_id)
            .unwrap_or_else(|| panic!("server must retain trace {:#x} for {sql}", ct.trace_id));
        assert_eq!(trace.trace_id, ct.trace_id, "same id on both ends");
        assert_eq!(trace.root, "net.query");

        // Completeness: the stage self-times decompose the root span.
        assert!(
            trace.stage_total_ns() <= trace.total_ns,
            "stages sum past the root ({} > {}) for {sql}:\n{}",
            trace.stage_total_ns(),
            trace.total_ns,
            trace.render_text()
        );
        for stage in ["admission", "parse", "exec", "row_stream"] {
            assert!(
                trace.stages.iter().any(|(s, _)| *s == stage),
                "stage {stage} missing for {sql}:\n{}",
                trace.render_text()
            );
        }

        // The decode counters attributed to the trace are exactly the
        // Stats delta the query caused.
        assert_eq!(
            trace.objects_decoded,
            after.0 - before.0,
            "objects_decoded must equal the Stats delta for {sql}"
        );
        assert_eq!(
            trace.atoms_decoded,
            after.1 - before.1,
            "atoms_decoded must equal the Stats delta for {sql}"
        );
    }
    client.goodbye().unwrap();
    handle.shutdown();
}

/// Untraced (v2-shaped) statements must leave no flight-recorder entry:
/// the trace machinery is strictly opt-in.
#[test]
fn untraced_statements_record_no_traces() {
    let shared = SharedDatabase::new(paper_db());
    let stats = shared.stats();
    let mut handle = Server::start(shared, ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.local_addr(), "untraced").unwrap();
    client.query("SELECT * FROM DEPARTMENTS").unwrap();
    assert_eq!(stats.recorder().recorded(), 0, "opt-in means none recorded");
    assert_eq!(client.last_client_trace().unwrap().trace_id, 0);
    client.goodbye().unwrap();
    handle.shutdown();
}

/// Chaos trace test: a traced query through a fault-injecting proxy
/// that deterministically drops the query's first response frame on
/// every link. The client retries with backoff; its trace must record
/// every attempt — connection-class failures with nonzero backoff — and
/// the server must have executed each attempt under the same trace id,
/// tagging retries with a `retry.attempt` event. A second, proxy-free
/// scenario sheds at admission so the attempt records carry a typed
/// retryable error code and the server's backoff hint.
#[test]
fn chaos_trace_records_every_attempt_with_backoff() {
    let shared = SharedDatabase::new(paper_db());
    let stats = shared.stats();
    let mut handle = Server::start(shared, ServerConfig::default()).unwrap();

    // Every link drops its 2nd server→client frame: HelloOk survives,
    // the query's RowHeader vanishes, and the Rows frame that follows
    // arrives out of order — an immediate, deterministic
    // connection-class failure on every attempt.
    let s2c = FaultPlan {
        drop_nth_response: Some(2),
        ..FaultPlan::clean()
    };
    let proxy = ChaosProxy::start(handle.local_addr(), 0xc0ffee, FaultPlan::clean(), s2c).unwrap();
    let mut client = Client::connect_with(
        proxy.addr(),
        ClientConfig {
            client_name: "chaos-trace".into(),
            trace: true,
            read_timeout: Some(Duration::from_secs(2)),
            retry: RetryPolicy {
                max_attempts: 3,
                base_backoff: Duration::from_millis(4),
                max_backoff: Duration::from_millis(40),
                budget: Duration::from_secs(30),
                seed: 0x5eed,
            },
            ..ClientConfig::default()
        },
    )
    .unwrap();

    let err = client
        .query("SELECT x.DNO FROM x IN DEPARTMENTS")
        .expect_err("every attempt's response frame is dropped");
    assert!(err.is_connection_loss() || err.is_retryable());

    let ct = client.last_client_trace().unwrap().clone();
    assert_ne!(ct.trace_id, 0);
    assert!(!ct.ok);
    assert_eq!(ct.attempts.len(), 3, "one record per attempt: {ct:?}");
    for (i, a) in ct.attempts.iter().enumerate() {
        assert_eq!(a.attempt as usize, i);
        assert!(a.retryable, "drops are connection-class: {a:?}");
        assert!(!a.error.is_empty());
        if i + 1 < ct.attempts.len() {
            assert!(a.backoff_ms > 0, "backoff recorded before retry: {a:?}");
        } else {
            assert_eq!(a.backoff_ms, 0, "no backoff after the final attempt");
        }
    }

    // Server side: each attempt executed under the same trace id, and
    // the retries carry the retry.attempt tag.
    drop(client);
    proxy.shutdown();
    handle.shutdown();
    let mine: Vec<_> = stats
        .recorder()
        .recent()
        .into_iter()
        .filter(|t| t.trace_id == ct.trace_id)
        .collect();
    assert_eq!(mine.len(), 3, "server executed (and traced) each attempt");
    assert!(
        mine.iter()
            .any(|t| t.spans.iter().any(|s| s.name == "retry.attempt")),
        "retried attempts must be tagged"
    );

    // Admission shedding: typed retryable code + the server's hint.
    let mut handle = Server::start(
        SharedDatabase::new(paper_db()),
        ServerConfig {
            max_inflight: 0,
            shed_retry_after: Duration::from_millis(7),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect_with(
        handle.local_addr(),
        ClientConfig {
            client_name: "shed-trace".into(),
            trace: true,
            retry: RetryPolicy {
                max_attempts: 2,
                budget: Duration::from_secs(30),
                ..RetryPolicy::default()
            },
            ..ClientConfig::default()
        },
    )
    .unwrap();
    client
        .query("SELECT * FROM DEPARTMENTS")
        .expect_err("a zero-inflight server sheds everything");
    let ct = client.last_client_trace().unwrap().clone();
    assert_eq!(ct.attempts.len(), 2);
    assert_eq!(ct.attempts[0].code, Some(ErrorCode::Admission));
    assert!(ct.attempts[0].retryable);
    assert!(
        ct.attempts[0].backoff_ms >= 7,
        "the server's retry_after hint governs the recorded backoff: {:?}",
        ct.attempts[0]
    );
    drop(client);
    handle.shutdown();
}

// =====================================================================
// Grouped stats display
// =====================================================================

#[test]
fn stats_display_grouped_and_zero_suppressed() {
    let mut db = paper_db();
    db.query("SELECT * FROM DEPARTMENTS").unwrap();
    let snap = db.stats().snapshot();
    let shown = snap.to_string();
    assert!(shown.contains("buffer["), "grouped display: {shown}");
    assert!(shown.contains("objects-decoded="));
    assert!(!shown.contains("=0"), "zero counters suppressed: {shown}");
    // Verbose shows all nine groups, including all-zero ones.
    let verbose = snap.verbose().to_string();
    assert_eq!(verbose.lines().count(), 9);
    for group in [
        "buffer",
        "storage",
        "wal",
        "txn",
        "integrity",
        "cursor",
        "mvcc",
        "net",
        "colstore",
    ] {
        assert!(verbose.contains(group), "verbose missing {group}");
    }
    // Reset zeroes counters but keeps latency histograms.
    let queries_before = db.stats().histogram("db.query").count;
    db.stats().reset();
    assert_eq!(db.stats().snapshot().to_string(), "(no activity)");
    assert_eq!(db.stats().histogram("db.query").count, queries_before);
}
