//! System-level property tests:
//!
//! * the language evaluator and the standalone algebra operators agree
//!   on nest/unnest over random hierarchies (two independent
//!   implementations cross-check each other);
//! * a random DML sequence applied through the SQL layer produces
//!   exactly the state an in-memory model predicts (index maintenance
//!   and storage layouts included).

use aim2::Database;
use aim2_bench::{gen_departments, WorkloadSpec};
use aim2_exec::algebra::unnest;
use aim2_exec::{Evaluator, MemProvider};
use aim2_lang::parser::parse_query;
use aim2_model::value::build::{a, rel, tup};
use aim2_model::{fixtures, Atom, TableKind, TableValue, Tuple, Value};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn evaluator_unnest_equals_algebra_unnest(seed in 0u64..5000) {
        let spec = WorkloadSpec {
            departments: 6,
            projects_per_dept: 3,
            members_per_project: 4,
            equip_per_dept: 2,
            seed,
        };
        let schema = fixtures::departments_schema();
        let value = gen_departments(&spec);

        // Path A: the query language.
        let mut provider = MemProvider::new();
        provider.add(schema.clone(), value.clone());
        let q = parse_query(
            "SELECT x.DNO, x.MGRNO, y.PNO, y.PNAME, z.EMPNO, z.FUNCTION
             FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS",
        )
        .unwrap();
        let (_, via_language) = Evaluator::new(&mut provider).eval_query(&q).unwrap();

        // Path B: the algebra, plus projection.
        let (s1, v1) = unnest(&schema, &value, "PROJECTS").unwrap();
        let (s2, v2) = unnest(&s1, &v1, "MEMBERS").unwrap();
        let keep = ["DNO", "MGRNO", "PNO", "PNAME", "EMPNO", "FUNCTION"];
        let idx: Vec<usize> = keep.iter().map(|k| s2.attr_index(k).unwrap()).collect();
        let via_algebra = TableValue {
            kind: TableKind::Relation,
            tuples: v2
                .tuples
                .iter()
                .map(|t| Tuple::new(idx.iter().map(|&i| t.fields[i].clone()).collect()))
                .collect(),
        };
        prop_assert!(via_language.semantically_eq(&via_algebra));
    }
}

/// In-memory model of the table under random DML.
struct Model {
    rows: Vec<Tuple>, // (K, S{P, M{F}})
    next_k: i64,
}

impl Model {
    fn find(&mut self, k: i64) -> Option<&mut Tuple> {
        self.rows
            .iter_mut()
            .find(|t| t.fields[0].as_atom().unwrap().as_int() == Some(k))
    }
}

#[test]
fn random_dml_matches_model_under_all_layouts() {
    for layout in ["SS1", "SS2", "SS3"] {
        // SS1/SS2 support whole-object DML; element DML requires SS3 (the
        // AIM-II layout). The op mix adapts.
        let element_dml = layout == "SS3";
        for seed in 0..4u64 {
            run_dml_model(layout, element_dml, seed);
        }
    }
}

fn run_dml_model(layout: &str, element_dml: bool, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD31);
    let mut db = Database::in_memory();
    db.execute(&format!(
        "CREATE TABLE T ( K INTEGER, B INTEGER, S {{ P INTEGER, M {{ F STRING }} }} ) USING {layout}"
    ))
    .unwrap();
    // Keep an attribute index live through all mutations (SS3 only —
    // index maintenance walks are layout-independent but element DML is
    // what stresses it).
    if element_dml {
        db.execute("CREATE INDEX sp ON T (S.P)").unwrap();
    }
    let mut model = Model {
        rows: Vec::new(),
        next_k: 0,
    };
    for step in 0..60 {
        match rng.gen_range(0..6) {
            // Insert a fresh object.
            0 | 1 => {
                let k = model.next_k;
                model.next_k += 1;
                let nsub = rng.gen_range(0..3);
                let subs: Vec<(i64, Vec<String>)> = (0..nsub)
                    .map(|i| {
                        let nm = rng.gen_range(0..3);
                        (
                            k * 10 + i,
                            (0..nm).map(|j| format!("f{k}_{i}_{j}")).collect(),
                        )
                    })
                    .collect();
                let lit_subs: Vec<String> = subs
                    .iter()
                    .map(|(p, ms)| {
                        let mlits: Vec<String> = ms.iter().map(|m| format!("('{m}')")).collect();
                        format!("({p}, {{{}}})", mlits.join(", "))
                    })
                    .collect();
                db.execute(&format!(
                    "INSERT INTO T VALUES ({k}, {}, {{{}}})",
                    k * 100,
                    lit_subs.join(", ")
                ))
                .unwrap();
                model.rows.push(tup(vec![
                    a(k),
                    a(k * 100),
                    rel(subs
                        .iter()
                        .map(|(p, ms)| {
                            tup(vec![
                                a(*p),
                                rel(ms.iter().map(|m| tup(vec![a(m.as_str())])).collect()),
                            ])
                        })
                        .collect()),
                ]));
            }
            // Update an object's budget.
            2 => {
                if model.rows.is_empty() {
                    continue;
                }
                let pick = rng.gen_range(0..model.next_k);
                let newb = step * 7;
                let n = db
                    .execute(&format!(
                        "UPDATE x IN T SET x.B = {newb} WHERE x.K = {pick}"
                    ))
                    .unwrap()
                    .count()
                    .unwrap();
                if let Some(row) = model.find(pick) {
                    assert_eq!(n, 1);
                    row.fields[1] = Value::Atom(Atom::Int(newb));
                } else {
                    assert_eq!(n, 0);
                }
            }
            // Delete an object.
            3 => {
                if model.rows.is_empty() {
                    continue;
                }
                let pick = rng.gen_range(0..model.next_k);
                let n = db
                    .execute(&format!("DELETE x FROM x IN T WHERE x.K = {pick}"))
                    .unwrap()
                    .count()
                    .unwrap();
                let before = model.rows.len();
                model
                    .rows
                    .retain(|t| t.fields[0].as_atom().unwrap().as_int() != Some(pick));
                assert_eq!(n, before - model.rows.len());
            }
            // Insert an element into every matching object's subtable.
            4 if element_dml => {
                if model.rows.is_empty() {
                    continue;
                }
                let pick = rng.gen_range(0..model.next_k);
                let p = 100_000 + step;
                let n = db
                    .execute(&format!(
                        "INSERT INTO x.S FROM x IN T WHERE x.K = {pick} VALUES ({p}, {{}})"
                    ))
                    .unwrap()
                    .count()
                    .unwrap();
                if let Some(row) = model.find(pick) {
                    assert_eq!(n, 1);
                    let Value::Table(s) = &mut row.fields[2] else {
                        unreachable!()
                    };
                    s.tuples.push(tup(vec![a(p), rel(vec![])]));
                } else {
                    assert_eq!(n, 0);
                }
            }
            // Delete elements by predicate.
            5 if element_dml => {
                let cutoff = rng.gen_range(0..(model.next_k.max(1) * 10));
                let n = db
                    .execute(&format!(
                        "DELETE y FROM x IN T, y IN x.S WHERE y.P < {cutoff}"
                    ))
                    .unwrap()
                    .count()
                    .unwrap();
                let mut removed = 0;
                for row in &mut model.rows {
                    let Value::Table(s) = &mut row.fields[2] else {
                        unreachable!()
                    };
                    let before = s.tuples.len();
                    s.tuples
                        .retain(|e| e.fields[0].as_atom().unwrap().as_int().unwrap() >= cutoff);
                    removed += before - s.tuples.len();
                }
                assert_eq!(n, removed, "layout {layout} seed {seed} step {step}");
            }
            _ => continue,
        }
        // Full agreement check every few steps (and at the end).
        if step % 10 == 9 || step == 59 {
            let (_, got) = db.query("SELECT * FROM T").unwrap();
            let want = TableValue {
                kind: TableKind::Relation,
                tuples: model.rows.clone(),
            };
            assert!(
                got.semantically_eq(&want),
                "divergence at layout {layout} seed {seed} step {step}:\n got {got}\nwant {want}"
            );
        }
    }
    // The index survived everything consistent with the data.
    if element_dml {
        let expected: usize = model
            .rows
            .iter()
            .map(|t| t.fields[2].as_table().unwrap().len())
            .sum();
        let (_, v) = db.query("SELECT y.P FROM x IN T, y IN x.S").unwrap();
        assert_eq!(v.len(), expected);
        let total_indexed: usize = {
            let idx = db.index_mut("T", "sp").unwrap();
            idx.lookup_range(None, None).unwrap().len()
        };
        assert_eq!(total_indexed, expected, "index consistent after DML");
    }
}
