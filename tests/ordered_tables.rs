//! Ordered tables (lists) end-to-end: the extended NF² model's second
//! extension. Top-level `CREATE LIST`, ordered subtables, subscripts,
//! and order preservation through storage, DML, checkpoint/reopen.

use aim2::{Database, DbConfig};
use aim2_model::TableKind;
use aim2_storage::minidir::LayoutKind;

#[test]
fn create_list_preserves_top_level_order() {
    let mut db = Database::in_memory();
    db.execute("CREATE LIST QUEUE ( ITEM STRING, PRIO INTEGER )")
        .unwrap();
    let schema = db.schema("QUEUE").unwrap();
    assert_eq!(schema.kind, TableKind::List);
    for (i, item) in ["first", "second", "third", "fourth"].iter().enumerate() {
        db.execute(&format!("INSERT INTO QUEUE VALUES ('{item}', {i})"))
            .unwrap();
    }
    let (_, v) = db.query("SELECT * FROM QUEUE").unwrap();
    assert_eq!(v.kind, TableKind::List, "SELECT * keeps the source kind");
    let items: Vec<&str> = v
        .tuples
        .iter()
        .map(|t| t.fields[0].as_atom().unwrap().as_str().unwrap())
        .collect();
    assert_eq!(items, vec!["first", "second", "third", "fourth"]);
}

#[test]
fn ordered_subtable_order_survives_dml_and_restart() {
    let dir = std::env::temp_dir().join(format!("aim2_ordered_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = || DbConfig {
        data_dir: Some(dir.clone()),
        page_size: 1024,
        buffer_frames: 16,
        default_layout: LayoutKind::Ss3,
        ..DbConfig::default()
    };
    {
        let mut db = Database::with_config(cfg());
        db.execute("CREATE TABLE PLAYLISTS ( PID INTEGER, TRACKS < TITLE STRING, SECS INTEGER > )")
            .unwrap();
        db.execute("INSERT INTO PLAYLISTS VALUES (1, <('Opening', 210), ('Middle', 180)>)")
            .unwrap();
        // Appending via partial insert keeps list order (entry order IS
        // list order in the MD subtuple, §4.1).
        db.execute(
            "INSERT INTO x.TRACKS FROM x IN PLAYLISTS WHERE x.PID = 1 VALUES ('Finale', 300)",
        )
        .unwrap();
        let (_, v) = db
            .query("SELECT x.TRACKS[3].TITLE FROM x IN PLAYLISTS WHERE x.PID = 1")
            .unwrap();
        assert_eq!(
            v.tuples[0].fields[0].as_atom().unwrap().as_str(),
            Some("Finale")
        );
        db.checkpoint().unwrap();
    }
    // Order intact after reopen.
    let mut db = Database::open(cfg()).unwrap();
    let (_, v) = db
        .query("SELECT t.TITLE FROM x IN PLAYLISTS, t IN x.TRACKS WHERE x.PID = 1")
        .unwrap();
    let titles: Vec<&str> = v
        .tuples
        .iter()
        .map(|t| t.fields[0].as_atom().unwrap().as_str().unwrap())
        .collect();
    assert_eq!(titles, vec!["Opening", "Middle", "Finale"]);
    // Deleting the middle element preserves the remaining order.
    db.execute("DELETE t FROM x IN PLAYLISTS, t IN x.TRACKS WHERE t.TITLE = 'Middle'")
        .unwrap();
    let (_, v) = db
        .query("SELECT t.TITLE FROM x IN PLAYLISTS, t IN x.TRACKS")
        .unwrap();
    let titles: Vec<&str> = v
        .tuples
        .iter()
        .map(|t| t.fields[0].as_atom().unwrap().as_str().unwrap())
        .collect();
    assert_eq!(titles, vec!["Opening", "Finale"]);
    // Subscripts re-resolve against the new order.
    let (_, v) = db
        .query("SELECT x.TRACKS[2].TITLE FROM x IN PLAYLISTS")
        .unwrap();
    assert_eq!(
        v.tuples[0].fields[0].as_atom().unwrap().as_str(),
        Some("Finale")
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn lists_under_every_layout() {
    for layout in ["SS1", "SS2", "SS3"] {
        let mut db = Database::in_memory();
        db.execute(&format!(
            "CREATE TABLE R ( K INTEGER, L < V INTEGER > ) USING {layout}"
        ))
        .unwrap();
        db.execute("INSERT INTO R VALUES (1, <(30), (10), (20)>)")
            .unwrap();
        let (_, v) = db.query("SELECT e.V FROM x IN R, e IN x.L").unwrap();
        let vals: Vec<i64> = v
            .tuples
            .iter()
            .map(|t| t.fields[0].as_atom().unwrap().as_int().unwrap())
            .collect();
        assert_eq!(
            vals,
            vec![30, 10, 20],
            "insertion order kept under {layout}"
        );
    }
}
