//! Threaded transaction stress: concurrent transfers preserve a global
//! sum invariant through commit, deadlock-abort, and crash + recovery,
//! on every storage layout.
//!
//! The workload is a bank: `ACCOUNTS` holds `ACCOUNTS_N` accounts with
//! `INITIAL` balance each; every transfer moves an amount between two
//! accounts inside one transaction, so the total balance is invariant
//! at every *committed* state. `WRITERS` writer threads run
//! `TRANSFERS_PER_WRITER` transfers each — picking account pairs from a
//! seeded LCG in naive (unordered) lock order, so real deadlocks occur
//! and are retried — while `READERS` reader threads concurrently assert
//! the invariant under S locks. A checkpoint then divides history:
//! phase-B transfers commit on top, the database is dropped without a
//! checkpoint (the crash), reopened, and recovery must roll the epoch
//! back to exactly the checkpointed balances — the documented
//! durability unit of the before-image WAL — with the invariant intact.
//!
//! NF² variants transfer through the object check-out API (IX table +
//! X object locks, subtuple before-images); the flat variant uses
//! statement-level read-then-update (S → X upgrades, whose cross-waits
//! also deadlock and retry).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Barrier};

use aim2::{Database, DbConfig};
use aim2_model::{Atom, Value};
use aim2_storage::minidir::LayoutKind;
use aim2_storage::object::ElemLoc;
use aim2_txn::{Session, SharedDatabase, TxnError};

const WRITERS: usize = 8;
const READERS: usize = 4;
const TRANSFERS_PER_WRITER: usize = 12;
const READS_PER_READER: usize = 10;
const ACCOUNTS_N: i64 = 6;
const INITIAL: i64 = 1000;
const TOTAL: i64 = ACCOUNTS_N * INITIAL;
const SEED: u64 = 0xA1_B2_C3_D4;

#[derive(Clone, Copy, PartialEq)]
enum Variant {
    Nf2(LayoutKind),
    Flat,
}

impl Variant {
    fn tag(self) -> &'static str {
        match self {
            Variant::Nf2(LayoutKind::Ss1) => "ss1",
            Variant::Nf2(LayoutKind::Ss2) => "ss2",
            Variant::Nf2(LayoutKind::Ss3) => "ss3",
            Variant::Flat => "flat",
        }
    }
}

/// Tiny deterministic LCG (Numerical Recipes constants) — the stress
/// schedule depends only on `SEED`, never on wall-clock or OS entropy.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn range(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aim2_txn_stress_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &Path) -> DbConfig {
    DbConfig {
        page_size: 1024,
        buffer_frames: 8, // small pool: constant WAL-safe eviction traffic
        default_layout: LayoutKind::Ss3,
        data_dir: Some(dir.to_path_buf()),
        ..DbConfig::default()
    }
}

fn setup(v: Variant, dir: &Path) -> SharedDatabase {
    let mut db = Database::with_config(config(dir));
    match v {
        Variant::Nf2(layout) => {
            let using = match layout {
                LayoutKind::Ss1 => "SS1",
                LayoutKind::Ss2 => "SS2",
                LayoutKind::Ss3 => "SS3",
            };
            db.execute(&format!(
                "CREATE TABLE ACCOUNTS ( ANO INTEGER, BAL INTEGER, \
                 HIST {{ SEQ INTEGER }} ) USING {using}"
            ))
            .unwrap();
            for i in 0..ACCOUNTS_N {
                db.execute(&format!(
                    "INSERT INTO ACCOUNTS VALUES ({i}, {INITIAL}, {{(0)}})"
                ))
                .unwrap();
            }
        }
        Variant::Flat => {
            // No nested attributes → flat (1NF) heap storage.
            db.execute("CREATE TABLE ACCOUNTS ( ANO INTEGER, BAL INTEGER )")
                .unwrap();
            for i in 0..ACCOUNTS_N {
                db.execute(&format!("INSERT INTO ACCOUNTS VALUES ({i}, {INITIAL})"))
                    .unwrap();
            }
        }
    }
    // Checkpoint: every page is on disk, so concurrent-phase writes log
    // before-images and recovery has a baseline.
    db.checkpoint().unwrap();
    SharedDatabase::new(db)
}

fn int_atom(v: &Value) -> i64 {
    match v {
        Value::Atom(Atom::Int(i)) => *i,
        other => panic!("expected integer atom, got {other:?}"),
    }
}

/// Balances by account number, read transactionally.
fn balances(shared: &SharedDatabase) -> BTreeMap<i64, i64> {
    let mut s = shared.session();
    let (_, rows) = s.query("SELECT x.ANO, x.BAL FROM x IN ACCOUNTS").unwrap();
    s.commit().unwrap();
    rows.tuples
        .iter()
        .map(|t| (int_atom(&t.fields[0]), int_atom(&t.fields[1])))
        .collect()
}

fn assert_invariant(shared: &SharedDatabase, ctx: &str) {
    let b = balances(shared);
    let sum: i64 = b.values().sum();
    assert_eq!(sum, TOTAL, "sum invariant broken {ctx}: {b:?}");
}

/// One transfer attempt inside one transaction. Returns `Err` only for
/// retryable aborts (deadlock victim); the session is already rolled
/// back in that case.
fn transfer(s: &mut Session, v: Variant, from: i64, to: i64, amount: i64) -> Result<(), TxnError> {
    let attempt = |s: &mut Session| -> Result<(), TxnError> {
        match v {
            Variant::Nf2(_) => {
                // Naive lock order (from, then to) — cycles happen.
                let handles = s.handles("ACCOUNTS")?;
                let hf = handles[from as usize];
                let ht = handles[to as usize];
                let tf = s.checkout("ACCOUNTS", hf)?;
                let tt = s.checkout("ACCOUNTS", ht)?;
                let bf = int_atom(&tf.fields[1]);
                let bt = int_atom(&tt.fields[1]);
                s.update_atoms(
                    "ACCOUNTS",
                    hf,
                    &ElemLoc::object(),
                    &[Atom::Int(from), Atom::Int(bf - amount)],
                )?;
                s.update_atoms(
                    "ACCOUNTS",
                    ht,
                    &ElemLoc::object(),
                    &[Atom::Int(to), Atom::Int(bt + amount)],
                )?;
            }
            Variant::Flat => {
                // Read under S, then write under the S → X upgrade —
                // two concurrent transfers cross-wait and deadlock.
                let (_, rows) = s.query(&format!(
                    "SELECT x.ANO, x.BAL FROM x IN ACCOUNTS \
                     WHERE x.ANO = {from} OR x.ANO = {to}"
                ))?;
                let by_ano: BTreeMap<i64, i64> = rows
                    .tuples
                    .iter()
                    .map(|t| (int_atom(&t.fields[0]), int_atom(&t.fields[1])))
                    .collect();
                let bf = by_ano[&from];
                let bt = by_ano[&to];
                s.execute(&format!(
                    "UPDATE x IN ACCOUNTS SET x.BAL = {} WHERE x.ANO = {from}",
                    bf - amount
                ))?;
                s.execute(&format!(
                    "UPDATE x IN ACCOUNTS SET x.BAL = {} WHERE x.ANO = {to}",
                    bt + amount
                ))?;
            }
        }
        s.commit()
    };
    match attempt(s) {
        Ok(()) => Ok(()),
        Err(e) if e.is_retryable() => {
            // Victim: roll back (ignore "no open transaction" if the
            // abort happened at commit time) and report for retry.
            if s.txn_id().is_some() {
                s.rollback().expect("victim rollback must succeed");
            }
            Err(e)
        }
        Err(e) => panic!("non-retryable transfer failure: {e}"),
    }
}

/// Run the concurrent phase: writers transfer, readers assert the sum
/// under S locks. Returns the number of deadlock aborts writers saw.
fn concurrent_phase(shared: &SharedDatabase, v: Variant, writers: usize, phase_seed: u64) -> u64 {
    let barrier = Arc::new(Barrier::new(writers + READERS));
    let mut joins = Vec::new();
    for w in 0..writers {
        let shared = shared.clone();
        let barrier = barrier.clone();
        joins.push(std::thread::spawn(move || -> u64 {
            let mut rng = Lcg(phase_seed ^ (w as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15));
            let mut aborts = 0u64;
            barrier.wait();
            for _ in 0..TRANSFERS_PER_WRITER {
                let from = rng.range(ACCOUNTS_N as u64) as i64;
                let mut to = rng.range(ACCOUNTS_N as u64) as i64;
                if to == from {
                    to = (to + 1) % ACCOUNTS_N;
                }
                let amount = 1 + rng.range(50) as i64;
                loop {
                    let mut s = shared.session();
                    match transfer(&mut s, v, from, to, amount) {
                        Ok(()) => break,
                        Err(_) => aborts += 1, // deadlock victim: retry
                    }
                }
            }
            aborts
        }));
    }
    let mut reader_joins = Vec::new();
    for _ in 0..READERS {
        let shared = shared.clone();
        let barrier = barrier.clone();
        reader_joins.push(std::thread::spawn(move || {
            barrier.wait();
            for i in 0..READS_PER_READER {
                // An S table lock makes the sum atomic: transfers are
                // never observed half-done.
                assert_invariant(&shared, &format!("mid-flight read {i}"));
            }
        }));
    }
    let mut aborts = 0;
    for j in joins {
        aborts += j.join().expect("writer thread panicked");
    }
    for j in reader_joins {
        j.join().expect("reader thread panicked");
    }
    aborts
}

fn stress_variant(v: Variant) {
    let dir = temp_dir(v.tag());
    let shared = setup(v, &dir);
    let stats = shared.stats();

    // Phase A: full concurrency.
    let aborts = concurrent_phase(&shared, v, WRITERS, SEED);
    assert_invariant(&shared, "after phase A");
    assert_eq!(
        stats.deadlocks_aborted(),
        aborts,
        "every deadlock abort surfaces exactly one retryable error"
    );

    // Durability point: checkpoint, then remember the exact balances.
    shared.checkpoint().unwrap();
    let checkpointed = balances(&shared);

    // Phase B: more committed transfers on top of the checkpoint.
    concurrent_phase(&shared, v, WRITERS / 2, SEED ^ 0xFF);
    assert_invariant(&shared, "after phase B");

    // Crash: drop the database without checkpointing. Committed phase-B
    // work lives in buffer pages and WAL before-images only.
    let db = shared
        .try_into_inner()
        .unwrap_or_else(|_| panic!("sessions still alive at crash point"));
    drop(db);

    // Recovery: the WAL rolls the epoch back to the checkpoint — the
    // documented durability unit. The invariant holds there too, and
    // the balances are exactly the checkpointed ones.
    let recovered = SharedDatabase::new(Database::open(config(&dir)).unwrap());
    let after = balances(&recovered);
    assert_eq!(
        after, checkpointed,
        "recovery must restore the checkpointed balances"
    );
    assert_invariant(&recovered, "after crash recovery");

    // The recovered database is fully usable: one more transfer commits
    // and preserves the invariant.
    let mut s = recovered.session();
    while transfer(&mut s, v, 0, 1, 5).is_err() {}
    assert_invariant(&recovered, "after post-recovery transfer");

    let _ = std::fs::remove_dir_all(&dir);
}

// ====================================================================
// Read-mostly mode: MVCC snapshot readers vs disjoint writers
// ====================================================================

/// 8 read-only snapshot sessions against writers that never conflict
/// with each other (disjoint object sets for NF², a single statement
/// writer for flat). Because writer/writer waits are impossible by
/// construction, **any** `txn.lock_wait` sample during the phase would
/// have to come from a read-only session — so the phase asserts the
/// global lock-wait counter does not move at all, on top of each
/// reader's own `lock_acquisitions() == 0`. One long reader pins its
/// snapshot before the first transfer and must re-read exactly the
/// initial balances after every writer has committed and a checkpoint
/// has rewritten the heap underneath it.
fn read_mostly_variant(v: Variant) {
    let dir = temp_dir(&format!("romode_{}", v.tag()));
    let shared = setup(v, &dir);
    let stats = shared.stats();
    let lock_waits_before = stats.lock_waits();
    let snapshot_reads_before = stats.snapshot_reads();

    // The long reader: pinned before any transfer of this phase.
    let mut long_reader = shared.session();
    long_reader.begin_read_only().unwrap();
    let pinned = {
        let (_, rows) = long_reader
            .query("SELECT x.ANO, x.BAL FROM x IN ACCOUNTS")
            .unwrap();
        rows.tuples
            .iter()
            .map(|t| (int_atom(&t.fields[0]), int_atom(&t.fields[1])))
            .collect::<BTreeMap<i64, i64>>()
    };

    // Disjoint writers: NF² transfers stay inside per-writer account
    // halves (IS + IX table intents are compatible; X object locks
    // never collide); flat gets one statement writer (table X, no
    // rival). No schedule can produce a lock wait.
    let writer_count = match v {
        Variant::Nf2(_) => 2,
        Variant::Flat => 1,
    };
    let half = ACCOUNTS_N / 2;
    let barrier = Arc::new(Barrier::new(writer_count + READ_MOSTLY_READERS));
    let mut joins = Vec::new();
    for w in 0..writer_count {
        let shared = shared.clone();
        let barrier = barrier.clone();
        joins.push(std::thread::spawn(move || {
            let (lo, n) = match v {
                Variant::Nf2(_) => (w as i64 * half, half),
                Variant::Flat => (0, ACCOUNTS_N),
            };
            let mut rng = Lcg(SEED ^ 0xB0 ^ (w as u64 + 1));
            barrier.wait();
            for _ in 0..TRANSFERS_PER_WRITER {
                let from = lo + rng.range(n as u64) as i64;
                let mut to = lo + rng.range(n as u64) as i64;
                if to == from {
                    to = lo + (to - lo + 1) % n;
                }
                let mut s = shared.session();
                transfer(&mut s, v, from, to, 1 + rng.range(9) as i64)
                    .expect("disjoint writers can never deadlock");
            }
        }));
    }
    for _ in 0..READ_MOSTLY_READERS {
        let shared = shared.clone();
        let barrier = barrier.clone();
        joins.push(std::thread::spawn(move || {
            barrier.wait();
            for i in 0..READS_PER_READER {
                let mut s = shared.session();
                s.begin_read_only().unwrap();
                let (_, rows) = s.query("SELECT x.BAL FROM x IN ACCOUNTS").unwrap();
                let sum: i64 = rows.tuples.iter().map(|t| int_atom(&t.fields[0])).sum();
                assert_eq!(sum, TOTAL, "snapshot read {i} saw a torn transfer");
                assert_eq!(
                    s.lock_acquisitions(),
                    0,
                    "read-only session acquired a lock"
                );
                s.commit().unwrap();
            }
        }));
    }
    for j in joins {
        j.join().expect("read-mostly thread panicked");
    }

    // Checkpoint rewrites the heap under the still-pinned long reader.
    shared.checkpoint().unwrap();
    let (_, rows) = long_reader
        .query("SELECT x.ANO, x.BAL FROM x IN ACCOUNTS")
        .unwrap();
    let reread: BTreeMap<i64, i64> = rows
        .tuples
        .iter()
        .map(|t| (int_atom(&t.fields[0]), int_atom(&t.fields[1])))
        .collect();
    assert_eq!(
        reread, pinned,
        "long reader's snapshot drifted across commits + checkpoint"
    );
    assert_eq!(long_reader.lock_acquisitions(), 0);
    long_reader.commit().unwrap();

    // Zero writer/writer conflicts by construction ⇒ a zero delta here
    // proves read-only sessions contributed no lock waits either.
    assert_eq!(
        stats.lock_waits(),
        lock_waits_before,
        "lock wait recorded during read-mostly phase"
    );
    assert!(
        stats.snapshot_reads() > snapshot_reads_before,
        "snapshot read counter never moved"
    );
    assert_invariant(&shared, "after read-mostly phase");

    drop(shared);
    let _ = std::fs::remove_dir_all(&dir);
}

const READ_MOSTLY_READERS: usize = 8;

#[test]
fn read_mostly_ss1() {
    read_mostly_variant(Variant::Nf2(LayoutKind::Ss1));
}

#[test]
fn read_mostly_ss3() {
    read_mostly_variant(Variant::Nf2(LayoutKind::Ss3));
}

#[test]
fn read_mostly_flat() {
    read_mostly_variant(Variant::Flat);
}

#[test]
fn stress_ss1() {
    stress_variant(Variant::Nf2(LayoutKind::Ss1));
}

#[test]
fn stress_ss2() {
    stress_variant(Variant::Nf2(LayoutKind::Ss2));
}

#[test]
fn stress_ss3() {
    stress_variant(Variant::Nf2(LayoutKind::Ss3));
}

#[test]
fn stress_flat() {
    stress_variant(Variant::Flat);
}
