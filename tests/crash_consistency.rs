//! Crash-consistency sweep: the database survives a power cut after
//! *every single write*.
//!
//! The harness runs a scripted workload (inserts, updates, partial
//! deletes, index creation over nested DEPARTMENTS, plus two
//! checkpoints) once under an observing [`FaultInjector`] to count the
//! total number of writes `N` — data pages, WAL appends, and the
//! catalog temp file all share one counter. It then re-runs the same
//! workload `N` times, killing the disk after write `k` for every
//! `k in 1..=N`, reopens the database, and asserts the recovered state
//! equals one of the *committed* checkpoint states (or, before the
//! first commit, that open fails cleanly with no catalog). Finally it
//! proves the recovered database is still fully usable.
//!
//! The sweep runs for all three Mini-Directory layouts SS1/SS2/SS3 and
//! for the flat (1NF) store, plus a torn-write variant where the fatal
//! write persists only a prefix.

use aim2::{Database, DbConfig, Result};
use aim2_model::{fixtures, TableValue};
use aim2_storage::faultdisk::FaultInjector;
use aim2_storage::minidir::LayoutKind;
use std::path::{Path, PathBuf};

const NF2_DDL: &str = "CREATE TABLE DEPARTMENTS ( DNO INTEGER, MGRNO INTEGER,
    PROJECTS { PNO INTEGER, PNAME STRING,
               MEMBERS { EMPNO INTEGER, FUNCTION STRING } },
    BUDGET INTEGER, EQUIP { QU INTEGER, TYPE STRING } )";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aim2_crash_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &Path, layout: LayoutKind, fault: Option<FaultInjector>) -> DbConfig {
    DbConfig {
        page_size: 1024,
        buffer_frames: 4, // tiny pool: mid-epoch evictions constantly hit disk
        default_layout: layout,
        data_dir: Some(dir.to_path_buf()),
        fault,
        ..DbConfig::default()
    }
}

/// What kind of table the workload drives.
#[derive(Clone, Copy, PartialEq)]
enum Variant {
    Nf2(LayoutKind),
    Flat,
}

impl Variant {
    fn layout(self) -> LayoutKind {
        match self {
            Variant::Nf2(l) => l,
            Variant::Flat => LayoutKind::Ss3,
        }
    }

    fn table(self) -> &'static str {
        match self {
            Variant::Nf2(_) => "DEPARTMENTS",
            Variant::Flat => "DEPTS",
        }
    }
}

/// The scripted workload. Pushes the committed row set after each
/// successful checkpoint; any injected fault aborts via `?`.
fn run_workload(cfg: DbConfig, v: Variant, committed: &mut Vec<TableValue>) -> Result<()> {
    let query = format!("SELECT * FROM {}", v.table());
    let mut db = Database::with_config(cfg);
    match v {
        Variant::Nf2(_) => {
            db.execute(NF2_DDL)?;
            for t in fixtures::departments_value().tuples {
                db.insert_tuple("DEPARTMENTS", t)?;
            }
        }
        Variant::Flat => {
            db.execute("CREATE TABLE DEPTS ( DNO INTEGER, MGRNO INTEGER, BUDGET INTEGER )")?;
            for t in fixtures::departments_1nf_value().tuples {
                db.insert_tuple("DEPTS", t)?;
            }
        }
    }
    db.checkpoint()?;
    committed.push(db.query(&query)?.1);
    // ---- Epoch 2: heavier DML plus an index, then commit. ----
    // Element-level DML (partial insert, subtuple delete) is an SS3
    // capability; SS1/SS2 get whole-object DML only.
    match v {
        Variant::Nf2(layout) => {
            db.execute("UPDATE x IN DEPARTMENTS SET x.BUDGET = 999999 WHERE x.DNO = 314")?;
            if layout == LayoutKind::Ss3 {
                db.execute("DELETE y FROM x IN DEPARTMENTS, y IN x.PROJECTS WHERE y.PNO = 17")?;
                db.execute(
                    "INSERT INTO x.PROJECTS FROM x IN DEPARTMENTS WHERE x.DNO = 314
                     VALUES (99, 'WAL', {(58912, 'Staff')})",
                )?;
            }
            db.execute(
                "INSERT INTO DEPARTMENTS VALUES (500, 42424, {(70, 'DISK', {(7001, 'Leader'),
                 (7002, 'Staff')})}, 250000, {(2, 'VAX')})",
            )?;
            db.execute("CREATE INDEX pidx ON DEPARTMENTS (PROJECTS.PNO)")?;
            db.execute("DELETE x FROM x IN DEPARTMENTS WHERE x.DNO = 417")?;
        }
        Variant::Flat => {
            db.execute("UPDATE x IN DEPTS SET x.BUDGET = 999999 WHERE x.DNO = 314")?;
            db.execute("DELETE x FROM x IN DEPTS WHERE x.DNO = 218")?;
            for i in 0..400i64 {
                db.execute(&format!(
                    "INSERT INTO DEPTS VALUES ({}, {}, {})",
                    900 + i,
                    11111 + i,
                    50000 + i * 100
                ))?;
            }
        }
    }
    db.checkpoint()?;
    committed.push(db.query(&query)?.1);
    // ---- Epoch 3: mutations that never commit (crash fodder). ----
    match v {
        Variant::Nf2(_) => {
            db.execute("UPDATE x IN DEPARTMENTS SET x.MGRNO = 1 WHERE x.DNO = 218")?;
            db.execute("DELETE x FROM x IN DEPARTMENTS WHERE x.DNO = 314")?;
        }
        Variant::Flat => {
            db.execute("UPDATE x IN DEPTS SET x.MGRNO = 1 WHERE x.DNO = 314")?;
            db.execute("DELETE x FROM x IN DEPTS WHERE x.DNO = 955")?;
        }
    }
    Ok(())
}

/// After a simulated crash, reopen and check the invariant: either no
/// checkpoint ever committed (clean failure, no catalog file), or the
/// table equals exactly one committed checkpoint state. Returns the
/// recovered database for further abuse when one exists.
fn verify_recovered(dir: &Path, v: Variant, committed: &[TableValue], k: u64) -> Option<Database> {
    let has_catalog = dir.join("catalog.aim2").exists();
    match Database::open(config(dir, v.layout(), None)) {
        Err(e) => {
            assert!(
                !has_catalog,
                "cut {k}: open failed with a catalog present: {e}"
            );
            None
        }
        Ok(mut db) => {
            assert!(has_catalog, "cut {k}: open succeeded without a catalog");
            let (_, rows) = db
                .query(&format!("SELECT * FROM {}", v.table()))
                .unwrap_or_else(|e| panic!("cut {k}: post-recovery query failed: {e}"));
            assert!(
                committed.iter().any(|c| rows.semantically_eq(c)),
                "cut {k}: recovered state matches no committed checkpoint\n{rows:?}"
            );
            Some(db)
        }
    }
}

/// Prove the recovered database is a fully working database: mutate,
/// checkpoint, reopen, and read back.
fn verify_usable(mut db: Database, dir: &Path, v: Variant, k: u64) {
    let before = db
        .query(&format!("SELECT * FROM {}", v.table()))
        .unwrap()
        .1
        .len();
    match v {
        Variant::Nf2(_) => {
            db.execute(
                "INSERT INTO DEPARTMENTS VALUES (777, 1, {(70, 'NEW', {(7001, 'Leader')})},
                 123, {(1, 'VAX')})",
            )
            .unwrap_or_else(|e| panic!("cut {k}: post-recovery insert failed: {e}"));
        }
        Variant::Flat => {
            db.execute("INSERT INTO DEPTS VALUES (777, 1, 123)")
                .unwrap_or_else(|e| panic!("cut {k}: post-recovery insert failed: {e}"));
        }
    }
    db.checkpoint()
        .unwrap_or_else(|e| panic!("cut {k}: post-recovery checkpoint failed: {e}"));
    drop(db);
    let mut db = Database::open(config(dir, v.layout(), None))
        .unwrap_or_else(|e| panic!("cut {k}: reopen after recovery failed: {e}"));
    let (_, rows) = db.query(&format!("SELECT * FROM {}", v.table())).unwrap();
    assert_eq!(rows.len(), before + 1, "cut {k}: inserted row lost");
}

/// The full sweep for one variant: count writes, then crash after every
/// single one of them.
fn sweep(tag: &str, v: Variant) {
    // Reference run: committed states and the total write count.
    let dir = temp_dir(tag);
    let probe = FaultInjector::observer();
    let mut committed = Vec::new();
    run_workload(
        config(&dir, v.layout(), Some(probe.clone())),
        v,
        &mut committed,
    )
    .expect("reference run is fault-free");
    let total = probe.writes();
    eprintln!("{tag}: sweeping {total} crash points");
    assert_eq!(committed.len(), 2, "workload commits two checkpoints");
    assert!(
        total > 20,
        "workload must generate real write traffic (saw {total})"
    );

    for k in 1..=total {
        let _ = std::fs::remove_dir_all(&dir);
        let inj = FaultInjector::stop_after(k);
        let res = run_workload(
            config(&dir, v.layout(), Some(inj.clone())),
            v,
            &mut Vec::new(),
        );
        if k < total {
            assert!(res.is_err(), "cut {k}/{total}: a later write must fail");
        }
        if let Some(db) = verify_recovered(&dir, v, &committed, k) {
            verify_usable(db, &dir, v, k);
        }
    }

    // Torn-write variant: the fatal write persists a seed-derived
    // prefix instead of vanishing. Recovery must checksum-detect torn
    // WAL tails and roll torn data pages back from their before-images.
    for k in (1..=total).step_by(3) {
        let _ = std::fs::remove_dir_all(&dir);
        let inj = FaultInjector::tear_at(k, 0xA1A2_0000 + k);
        let _ = run_workload(
            config(&dir, v.layout(), Some(inj.clone())),
            v,
            &mut Vec::new(),
        );
        if let Some(db) = verify_recovered(&dir, v, &committed, k) {
            verify_usable(db, &dir, v, k);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_sweep_ss1() {
    sweep("ss1", Variant::Nf2(LayoutKind::Ss1));
}

#[test]
fn crash_sweep_ss2() {
    sweep("ss2", Variant::Nf2(LayoutKind::Ss2));
}

#[test]
fn crash_sweep_ss3() {
    sweep("ss3", Variant::Nf2(LayoutKind::Ss3));
}

#[test]
fn crash_sweep_flat() {
    sweep("flat", Variant::Flat);
}

#[test]
fn transient_write_error_is_survivable() {
    // A one-off I/O error fails the statement but neither corrupts the
    // database nor kills the session: the next attempt succeeds.
    let v = Variant::Nf2(LayoutKind::Ss3);
    let dir = temp_dir("transient");
    let probe = FaultInjector::observer();
    let mut committed = Vec::new();
    run_workload(
        config(&dir, v.layout(), Some(probe.clone())),
        v,
        &mut committed,
    )
    .expect("reference run");
    let total = probe.writes();

    // A one-off failure at several positions: the statement it lands in
    // errors out, but the store stays consistent at a committed state.
    for k in [1, total / 4, total / 2, total - 1] {
        let _ = std::fs::remove_dir_all(&dir);
        let inj = FaultInjector::transient_at(k);
        let _ = run_workload(
            config(&dir, v.layout(), Some(inj.clone())),
            v,
            &mut Vec::new(),
        );
        assert!(!inj.stopped(), "transient faults never stop the disk");
        if let Some(db) = verify_recovered(&dir, v, &committed, k) {
            verify_usable(db, &dir, v, k);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_fresh_pages_truncated_on_recovery() {
    // Regression: a crash mid-epoch leaves pages that were allocated
    // *after* the checkpoint on disk as zero-filled images (the
    // allocation extends the file immediately; the content only ever
    // lived in the pool). Such pages have no WAL before-image — their
    // undo is truncation. Without it, the reopened segment mistakes
    // the zero image for a page with free space, inserts through its
    // insane header, and the table is permanently corrupt (colliding
    // slots, BadTid on the first read-back).
    let dir = temp_dir("stale_fresh");
    std::fs::create_dir_all(&dir).unwrap();
    let cfg = config(&dir, LayoutKind::Ss3, None);
    {
        let mut db = Database::with_config(cfg.clone());
        db.execute("CREATE TABLE T ( A INTEGER, B INTEGER )")
            .unwrap();
        db.checkpoint().unwrap();
        // Grow the (checkpoint-empty) table: fresh pages only.
        for i in 0..64 {
            db.execute(&format!("INSERT INTO T VALUES ( {i}, {i} )"))
                .unwrap();
        }
        // Log before-images as a committing transaction would (a no-op
        // for fresh pages), then power-cut without flushing.
        db.log_table_dirty("T").unwrap();
        std::mem::forget(db);
    }
    let mut db = Database::open(cfg.clone()).expect("recovery");
    let (_, rows) = db.query("SELECT * FROM T").unwrap();
    assert_eq!(rows.tuples.len(), 0, "uncommitted epoch rolled back");
    // The recovered table must be fully usable again.
    for i in 0..8 {
        db.execute(&format!("INSERT INTO T VALUES ( {i}, {i} )"))
            .unwrap();
    }
    let (_, rows) = db.query("SELECT * FROM T").unwrap();
    assert_eq!(rows.tuples.len(), 8, "recovered table takes new rows");
    db.checkpoint().unwrap();
    drop(db);
    let mut db = Database::open(cfg).unwrap();
    let (_, rows) = db.query("SELECT * FROM T").unwrap();
    assert_eq!(rows.tuples.len(), 8, "state survives the next checkpoint");
    let _ = std::fs::remove_dir_all(&dir);
}
