//! Quickstart: create an extended NF² table, store nested data, query it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use aim2::Database;
use aim2_model::render;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::in_memory();

    // An NF² table: attribute values may themselves be tables.
    // `{ ... }` declares an unordered subtable (relation),
    // `< ... >` an ordered one (list).
    db.execute(
        "CREATE TABLE DEPARTMENTS (
           DNO INTEGER, MGRNO INTEGER,
           PROJECTS { PNO INTEGER, PNAME STRING,
                      MEMBERS { EMPNO INTEGER, FUNCTION STRING } },
           BUDGET INTEGER,
           EQUIP { QU INTEGER, TYPE STRING } ) USING SS3",
    )?;

    // Insert a whole complex object — the paper's department 314.
    db.execute(
        "INSERT INTO DEPARTMENTS VALUES (314, 56194,
           {(17, 'CGA',  {(39582, 'Leader'), (56019, 'Consultant'), (69011, 'Secretary')}),
            (23, 'HEAP', {(58912, 'Staff'), (90011, 'Leader')})},
           320000,
           {(2, '3278'), (3, 'PC/AT'), (1, 'PC')})",
    )?;

    // Query with a tuple variable ranging over an *inner* table.
    let (schema, rows) = db.query(
        "SELECT y.PNO, y.PNAME FROM x IN DEPARTMENTS, y IN x.PROJECTS
         WHERE EXISTS z IN y.MEMBERS : z.FUNCTION = 'Consultant'",
    )?;
    println!("projects with a consultant:");
    print!("{}", render::render_table(&schema, &rows));

    // Partial updates address parts of complex objects directly.
    db.execute(
        "INSERT INTO y.MEMBERS FROM x IN DEPARTMENTS, y IN x.PROJECTS
         WHERE y.PNO = 23 VALUES (77777, 'Consultant')",
    )?;
    let (_, rows) = db.query(
        "SELECT y.PNO FROM x IN DEPARTMENTS, y IN x.PROJECTS
         WHERE EXISTS z IN y.MEMBERS : z.FUNCTION = 'Consultant'",
    )?;
    println!(
        "\nafter hiring one more consultant: {} projects match",
        rows.len()
    );
    assert_eq!(rows.len(), 2);

    Ok(())
}
