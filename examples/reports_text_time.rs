//! Table 6 (REPORTS), ordered AUTHORS lists, the §5 text index, and
//! time-version (ASOF) support.
//!
//! ```text
//! cargo run --example reports_text_time
//! ```

use aim2::Database;
use aim2_model::{fixtures, render, Date, Path};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::in_memory();
    db.execute(
        "CREATE TABLE REPORTS (
           REPNO STRING,
           AUTHORS < NAME STRING >,
           TITLE TEXT,
           DESCRIPTORS { WORD STRING, WEIGHT DOUBLE } ) WITH VERSIONS",
    )?;
    db.execute("CREATE TEXT INDEX title_ix ON REPORTS (TITLE)")?;

    db.set_today(Date::parse_iso("1985-11-01")?);
    for t in fixtures::reports_value().tuples {
        db.insert_tuple("REPORTS", t)?;
    }

    // Example 8: ordered lists are first-class — AUTHORS[1] is the FIRST
    // author, and the result keeps AUTHORS nested (it is not flat).
    let (schema, rows) =
        db.query("SELECT x.AUTHORS, x.TITLE FROM x IN REPORTS WHERE x.AUTHORS[1] = 'Jones A.'")?;
    println!("== Example 8: reports with Jones as first author ==");
    print!("{}", render::render_table(&schema, &rows));

    // §5 text query: masked search over the TITLE text index plus a
    // membership test on the AUTHORS list.
    let (_, rows) = db.query(
        "SELECT x.REPNO, x.AUTHORS, x.TITLE FROM x IN REPORTS
         WHERE x.TITLE CONTAINS '*comput*' AND EXISTS y IN x.AUTHORS : y.NAME = 'Jones A.'",
    )?;
    println!("\n== §5: '*comput*' titles co-authored by Jones ==");
    for t in &rows.tuples {
        println!(
            "  {}  {}",
            t.fields[0].as_atom().unwrap(),
            t.fields[2].as_atom().unwrap()
        );
    }

    // The text index answers masked searches with fragment pruning:
    let (hits, verified) = db.text_search("REPORTS", &Path::parse("TITLE"), "*comput*")?;
    println!(
        "\ntext index: {} hit(s), {} candidate(s) verified (of {} documents)",
        hits.len(),
        verified,
        3
    );

    // Time versions: revise a report later, then ask for the old state.
    db.set_today(Date::parse_iso("1986-03-01")?);
    db.execute(
        "UPDATE x IN REPORTS SET x.TITLE = 'Concurrency Control Revisited'
         WHERE x.REPNO = '0179'",
    )?;

    let (_, now) = db.query("SELECT x.TITLE FROM x IN REPORTS WHERE x.REPNO = '0179'")?;
    let (_, then) =
        db.query("SELECT x.TITLE FROM x IN REPORTS ASOF '1986-01-01' WHERE x.REPNO = '0179'")?;
    println!("\n== ASOF ==");
    println!(
        "title today:      {}",
        now.tuples[0].fields[0].as_atom().unwrap()
    );
    println!(
        "title 1986-01-01: {}",
        then.tuples[0].fields[0].as_atom().unwrap()
    );
    assert_ne!(now, then);

    // Walk-through-time lives below the language (as in the paper):
    let h = db.handles("REPORTS")?[0];
    let hist = db
        .versions("REPORTS")?
        .object_history(h, Date::MIN, Date::MAX);
    println!("\nversion intervals of report 0179:");
    for (from, to, _) in hist {
        println!("  [{from} .. {to})");
    }
    Ok(())
}
