//! The paper's office-automation walkthrough: loads Tables 1–5 and 8 and
//! runs every example query of Section 3 (Examples 1–8, Figures 2–5),
//! printing each result.
//!
//! ```text
//! cargo run --example departments
//! ```

use aim2::Database;
use aim2_model::{fixtures, render};

fn run(db: &mut Database, title: &str, sql: &str) -> Result<(), Box<dyn std::error::Error>> {
    println!("== {title} ==");
    println!("{}", sql.trim());
    let (schema, rows) = db.query(sql)?;
    print!("{}", render::render_table(&schema, &rows));
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::in_memory();
    db.execute_script(
        "CREATE TABLE DEPARTMENTS (
           DNO INTEGER, MGRNO INTEGER,
           PROJECTS { PNO INTEGER, PNAME STRING,
                      MEMBERS { EMPNO INTEGER, FUNCTION STRING } },
           BUDGET INTEGER,
           EQUIP { QU INTEGER, TYPE STRING } );
         CREATE TABLE DEPARTMENTS-1NF ( DNO INTEGER, MGRNO INTEGER, BUDGET INTEGER );
         CREATE TABLE PROJECTS-1NF ( PNO INTEGER, PNAME STRING, DNO INTEGER );
         CREATE TABLE MEMBERS-1NF ( EMPNO INTEGER, PNO INTEGER, DNO INTEGER, FUNCTION STRING );
         CREATE TABLE EQUIP-1NF ( DNO INTEGER, QU INTEGER, TYPE STRING );
         CREATE TABLE EMPLOYEES-1NF ( EMPNO INTEGER, LNAME STRING, FNAME STRING, SEX STRING )",
    )?;

    // Load the paper's fixture data (Tables 1–5 and 8).
    for (table, value) in [
        ("DEPARTMENTS", fixtures::departments_value()),
        ("DEPARTMENTS-1NF", fixtures::departments_1nf_value()),
        ("PROJECTS-1NF", fixtures::projects_1nf_value()),
        ("MEMBERS-1NF", fixtures::members_1nf_value()),
        ("EQUIP-1NF", fixtures::equip_1nf_value()),
        ("EMPLOYEES-1NF", fixtures::employees_1nf_value()),
    ] {
        for t in value.tuples {
            db.insert_tuple(table, t)?;
        }
    }

    run(
        &mut db,
        "Example 1 — implicit result structure",
        "SELECT * FROM DEPARTMENTS",
    )?;

    run(
        &mut db,
        "Example 2 / Fig 2 — explicit result structure",
        "SELECT x.DNO, x.MGRNO,
                PROJECTS = (SELECT y.PNO, y.PNAME,
                                   MEMBERS = (SELECT z.EMPNO, z.FUNCTION FROM z IN y.MEMBERS)
                            FROM y IN x.PROJECTS),
                x.BUDGET,
                EQUIP = (SELECT v.QU, v.TYPE FROM v IN x.EQUIP)
         FROM x IN DEPARTMENTS",
    )?;

    run(
        &mut db,
        "Example 3 / Fig 3 — nest: Table 5 from Tables 1-4",
        "SELECT x.DNO, x.MGRNO,
                PROJECTS = (SELECT y.PNO, y.PNAME,
                                   MEMBERS = (SELECT z.EMPNO, z.FUNCTION FROM z IN MEMBERS-1NF
                                              WHERE z.PNO = y.PNO AND z.DNO = y.DNO)
                            FROM y IN PROJECTS-1NF WHERE y.DNO = x.DNO),
                x.BUDGET,
                EQUIP = (SELECT v.QU, v.TYPE FROM v IN EQUIP-1NF WHERE v.DNO = x.DNO)
         FROM x IN DEPARTMENTS-1NF",
    )?;

    run(
        &mut db,
        "Example 4 — unnest: Table 7",
        "SELECT x.DNO, x.MGRNO, y.PNO, y.PNAME, z.EMPNO, z.FUNCTION
         FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS",
    )?;

    run(
        &mut db,
        "Example 5 — EXISTS: departments using a PC/AT",
        "SELECT x.DNO, x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS
         WHERE EXISTS y IN x.EQUIP : y.TYPE = 'PC/AT'",
    )?;

    run(
        &mut db,
        "Example 6 — ALL: departments with only consultants (empty)",
        "SELECT x.DNO, x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS
         WHERE ALL y IN x.PROJECTS : ALL z IN y.MEMBERS : z.FUNCTION = 'Consultant'",
    )?;

    run(
        &mut db,
        "Example 7 / Fig 4 — join MEMBERS with EMPLOYEES-1NF, grouped by department",
        "SELECT x.DNO, x.MGRNO,
                EMPLOYEES = (SELECT z.EMPNO, u.LNAME, u.FNAME, u.SEX, z.FUNCTION
                             FROM y IN x.PROJECTS, z IN y.MEMBERS, u IN EMPLOYEES-1NF
                             WHERE z.EMPNO = u.EMPNO)
         FROM x IN DEPARTMENTS",
    )?;

    run(
        &mut db,
        "Fig 5 — two joins: manager name and sex instead of MGRNO",
        "SELECT x.DNO, m.LNAME, m.SEX,
                EMPLOYEES = (SELECT z.EMPNO, u.LNAME, u.FNAME, u.SEX, z.FUNCTION
                             FROM y IN x.PROJECTS, z IN y.MEMBERS, u IN EMPLOYEES-1NF
                             WHERE z.EMPNO = u.EMPNO)
         FROM x IN DEPARTMENTS, m IN EMPLOYEES-1NF
         WHERE x.MGRNO = m.EMPNO",
    )?;

    println!("(Example 8 needs the REPORTS table — see the reports_text_time example.)");
    Ok(())
}
