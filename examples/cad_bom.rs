//! The paper's motivating domain: CAD/CAM complex objects.
//!
//! Models a robot bill-of-materials as an extended NF² table and shows
//! what the integrated design buys:
//!
//! * deep hierarchical inserts and partial retrieval (only the subtables
//!   a query mentions are read — watch the subtuple counters);
//! * check-out: moving a whole complex object to a fresh page set
//!   rewrites **zero** pointers (§4.1), the workstation-transfer use
//!   case the paper highlights;
//! * tuple names (§4.3): stable system references to subobjects that
//!   survive the move.
//!
//! ```text
//! cargo run --example cad_bom
//! ```

use aim2::Database;
use aim2_index::tname::{Resolved, TupleName};
use aim2_model::render;
use aim2_storage::object::ElemLoc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::in_memory();
    db.execute(
        "CREATE TABLE ASSEMBLIES (
           ANO INTEGER, NAME STRING, REVISION INTEGER,
           PARTS { PNO INTEGER, PNAME STRING, QTY INTEGER,
                   SUPPLIERS { SNAME STRING, LEADTIME INTEGER } },
           INTERFACES { PORT STRING, SIGNAL STRING } ) USING SS3",
    )?;

    // Two robot assemblies, each a complex object.
    db.execute(
        "INSERT INTO ASSEMBLIES VALUES (1001, 'gripper', 3,
           {(55, 'finger', 2, {('Hahn GmbH', 14), ('Rapid Parts', 3)}),
            (56, 'servo',  1, {('ServoTek', 21)}),
            (57, 'sensor', 4, {})},
           {('P1', 'force'), ('P2', 'position')})",
    )?;
    db.execute(
        "INSERT INTO ASSEMBLIES VALUES (1002, 'arm segment', 1,
           {(60, 'housing', 1, {('Hahn GmbH', 30)}),
            (61, 'joint',   2, {('ServoTek', 21), ('Rapid Parts', 5)})},
           {('P1', 'torque')})",
    )?;

    // --- Partial retrieval -------------------------------------------
    let stats = db.stats().clone();
    stats.reset();
    let (schema, rows) = db.query(
        "SELECT x.ANO, x.NAME FROM x IN ASSEMBLIES
         WHERE EXISTS p IN x.PARTS :
               EXISTS s IN p.SUPPLIERS : s.LEADTIME > 20",
    )?;
    let narrow_reads = stats.snapshot().subtuple_reads;
    println!("assemblies with a long-lead supplier (INTERFACES never read):");
    print!("{}", render::render_table(&schema, &rows));

    stats.reset();
    let _ = db.query("SELECT * FROM ASSEMBLIES")?;
    let full_reads = stats.snapshot().subtuple_reads;
    println!(
        "\nsubtuple reads — partial: {narrow_reads}, full object: {full_reads} \
         (partial retrieval, §4.1)\n"
    );
    assert!(narrow_reads < full_reads);

    // --- Tuple names & check-out -------------------------------------
    let table_schema = db.schema("ASSEMBLIES")?;
    let handle = db.handles("ASSEMBLIES")?[0];
    let os = db.object_store_mut("ASSEMBLIES")?;

    // A t-name for the servo part (part element 1 of PARTS = attr 3).
    let servo = TupleName::of_subobject(os, &table_schema, handle, &ElemLoc::object().then(3, 1))?;
    println!("tuple name of the servo part: {servo}");

    let pages_before = os.object_pages(handle)?;
    let stats2 = os.stats();
    let before = stats2.snapshot();
    os.move_object(handle)?; // check-out to a fresh page set
    let delta = before.delta(&stats2.snapshot());
    let pages_after = os.object_pages(handle)?;
    println!(
        "checked out assembly 1001: pages {pages_before:?} -> {pages_after:?}, \
         pointer rewrites: {} (the §4.1 claim)",
        delta.pointer_rewrites
    );
    assert_eq!(delta.pointer_rewrites, 0);

    // The t-name still resolves after the move.
    let Resolved::Tuple(part) = servo.resolve(os, &table_schema)? else {
        unreachable!()
    };
    println!(
        "servo resolves after move: PNO={} PNAME={}",
        part.fields[0].as_atom().unwrap(),
        part.fields[1].as_atom().unwrap()
    );

    // --- Engineering change via the language -------------------------
    db.execute(
        "UPDATE x IN ASSEMBLIES, p IN x.PARTS SET p.QTY = 6
         WHERE x.ANO = 1001 AND p.PNO = 57",
    )?;
    let (_, rows) =
        db.query("SELECT p.PNO, p.QTY FROM x IN ASSEMBLIES, p IN x.PARTS WHERE x.ANO = 1001")?;
    println!("\nafter the engineering change:");
    for t in &rows.tuples {
        println!(
            "  part {} qty {}",
            t.fields[0].as_atom().unwrap(),
            t.fields[1].as_atom().unwrap()
        );
    }
    Ok(())
}
