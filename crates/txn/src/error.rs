//! Transaction-layer errors.

use std::fmt;

/// Anything that can go wrong inside a transaction.
#[derive(Debug)]
pub enum TxnError {
    /// The requested lock would close a cycle in the wait-for graph.
    /// The requester is the deterministic victim: it is the only
    /// transaction in the cycle that is still running (everyone else is
    /// parked waiting), so aborting it always breaks the cycle. The
    /// caller should roll back and retry.
    Deadlock {
        /// The transaction that was chosen as victim (the requester).
        victim: u64,
        /// The cycle found in the wait-for graph, starting and ending
        /// at the victim.
        cycle: Vec<u64>,
    },
    /// A lock wait exceeded the manager's timeout — a safety valve so a
    /// lost wakeup can never hang the test suite; treated like a
    /// deadlock victim by callers (roll back and retry).
    LockTimeout { txn: u64 },
    /// The session has no open transaction for an operation that needs
    /// one (commit/abort), or has one where it must not (nested begin).
    State(String),
    /// A write was attempted inside a read-only snapshot transaction.
    /// The snapshot stays pinned and readable; the caller can keep
    /// reading or commit and open a writing transaction.
    ReadOnly(String),
    /// An error from the database below (execution, storage, ...). The
    /// transaction is still open; the caller decides whether to roll
    /// back or continue.
    Db(aim2::DbError),
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::Deadlock { victim, cycle } => {
                write!(f, "deadlock: txn {victim} aborted (cycle")?;
                for t in cycle {
                    write!(f, " {t}")?;
                }
                write!(f, ")")
            }
            TxnError::LockTimeout { txn } => write!(f, "lock wait timeout: txn {txn}"),
            TxnError::State(m) => write!(f, "transaction state error: {m}"),
            TxnError::ReadOnly(m) => write!(f, "read-only transaction: {m}"),
            TxnError::Db(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TxnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TxnError::Db(e) => Some(e),
            _ => None,
        }
    }
}

impl From<aim2::DbError> for TxnError {
    fn from(e: aim2::DbError) -> Self {
        TxnError::Db(e)
    }
}

impl TxnError {
    /// True for errors where the canonical reaction is "roll back and
    /// retry the whole transaction" (deadlock victim, lock timeout,
    /// statement deadline expiry).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            TxnError::Deadlock { .. }
                | TxnError::LockTimeout { .. }
                | TxnError::Db(aim2::DbError::Exec(aim2_exec::ExecError::DeadlineExceeded))
        )
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, TxnError>;
