//! Object-granularity lock manager.
//!
//! The paper's check-out model (§4.1) hands a complex object to an
//! application as a unit, through its root TID. The lock manager mirrors
//! that: locks are keyed on a *table* or on one *object* (root TID)
//! inside a table, with the classic multi-granularity modes — a session
//! that checks an object out for writing takes IX on the table and X on
//! the object, so whole-table readers (S) conflict with it while
//! sessions working on *other* objects of the same table pass freely.
//!
//! Policy decisions, all deterministic:
//!
//! * **Strict 2PL** — locks are held until commit/abort and released in
//!   one batch ([`LockManager::release_all`]).
//! * **FIFO fairness** — a fresh request is granted only if it is
//!   compatible with every granted holder *and* every earlier waiter, so
//!   a stream of readers can never starve a waiting writer.
//! * **Upgrades jump the queue** — a holder strengthening its own lock
//!   (S→X, IS→IX, ...) only has to be compatible with the *other*
//!   holders; making it queue behind fresh requests would deadlock it
//!   against itself.
//! * **Deadlock = requester aborts** — at the moment a request would
//!   park, the wait-for graph (derived on demand from the queues) is
//!   searched for a cycle through the requester. Only an actively
//!   acquiring transaction can close a cycle (parked waiters never gain
//!   outgoing edges), so the requester is always a valid victim and the
//!   choice is deterministic: the caller gets [`TxnError::Deadlock`] and
//!   rolls back.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use aim2_storage::object::ObjectHandle;
use aim2_storage::stats::Stats;

use crate::error::{Result, TxnError};

/// Transaction identifier (assigned by the session layer).
pub type TxnId = u64;

/// Classic multi-granularity lock modes (no SIX; an S+IX combination is
/// promoted straight to X).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Intention shared — will take S on objects below.
    IntentShared,
    /// Intention exclusive — will take X on objects below.
    IntentExclusive,
    /// Shared — whole-granule read.
    Shared,
    /// Exclusive — whole-granule write.
    Exclusive,
}

use LockMode::*;

impl LockMode {
    /// Standard compatibility matrix.
    pub fn compatible(self, other: LockMode) -> bool {
        match (self, other) {
            (IntentShared, Exclusive) | (Exclusive, IntentShared) => false,
            (IntentShared, _) | (_, IntentShared) => true,
            (IntentExclusive, IntentExclusive) => true,
            (Shared, Shared) => true,
            _ => false,
        }
    }

    /// Does holding `self` already satisfy a request for `other`?
    pub fn covers(self, other: LockMode) -> bool {
        matches!(
            (self, other),
            (Exclusive, _)
                | (Shared, Shared)
                | (Shared, IntentShared)
                | (IntentExclusive, IntentExclusive)
                | (IntentExclusive, IntentShared)
                | (IntentShared, IntentShared)
        )
    }

    /// Least mode that covers both (upgrade target). The lattice is
    /// IS < IX < X and IS < S < X, with sup(IX, S) = X.
    pub fn lub(self, other: LockMode) -> LockMode {
        if self.covers(other) {
            self
        } else if other.covers(self) {
            other
        } else {
            // {IX, S} — the only incomparable pair without SIX.
            Exclusive
        }
    }
}

/// What a lock protects: a whole table, or one complex object (root
/// TID) inside it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LockKey {
    pub table: String,
    pub object: Option<ObjectHandle>,
}

impl LockKey {
    /// Table-granule key.
    pub fn table(name: &str) -> LockKey {
        LockKey {
            table: name.to_string(),
            object: None,
        }
    }

    /// Object-granule key (root TID inside `name`).
    pub fn object(name: &str, handle: ObjectHandle) -> LockKey {
        LockKey {
            table: name.to_string(),
            object: Some(handle),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Request {
    txn: TxnId,
    mode: LockMode,
}

/// Per-key queue: granted holders (one entry per txn, strongest mode),
/// transactions waiting to *upgrade* a lock they already hold, and
/// fresh requests in FIFO order.
#[derive(Default)]
struct Queue {
    granted: Vec<Request>,
    upgrading: Vec<Request>, // mode = upgrade *target*
    waiting: VecDeque<Request>,
}

impl Queue {
    fn granted_mode(&self, txn: TxnId) -> Option<LockMode> {
        self.granted.iter().find(|r| r.txn == txn).map(|r| r.mode)
    }

    fn is_empty(&self) -> bool {
        self.granted.is_empty() && self.upgrading.is_empty() && self.waiting.is_empty()
    }
}

#[derive(Default)]
struct LmState {
    queues: HashMap<LockKey, Queue>,
    /// Keys on which each transaction holds a granted lock (release_all).
    held: HashMap<TxnId, HashSet<LockKey>>,
}

impl LmState {
    /// Can `txn`'s pending upgrade to `target` on `key` be applied now?
    fn upgrade_grantable(&self, key: &LockKey, txn: TxnId, target: LockMode) -> bool {
        let q = &self.queues[key];
        q.granted
            .iter()
            .all(|g| g.txn == txn || g.mode.compatible(target))
    }

    /// Can the fresh request `(txn, mode)` on `key` be granted now?
    /// Fairness: it must get along with every granted holder, every
    /// pending upgrade target, and every waiter queued before it.
    fn fresh_grantable(&self, key: &LockKey, txn: TxnId, mode: LockMode) -> bool {
        let q = &self.queues[key];
        q.granted.iter().all(|g| g.mode.compatible(mode))
            && q.upgrading.iter().all(|u| u.mode.compatible(mode))
            && q.waiting
                .iter()
                .take_while(|w| w.txn != txn)
                .all(|w| w.mode.compatible(mode))
    }

    fn apply_upgrade(&mut self, key: &LockKey, txn: TxnId, target: LockMode) {
        let q = self.queues.get_mut(key).expect("queue exists");
        q.upgrading.retain(|u| u.txn != txn);
        let g = q
            .granted
            .iter_mut()
            .find(|g| g.txn == txn)
            .expect("upgrader holds the lock");
        g.mode = target;
    }

    fn apply_fresh(&mut self, key: &LockKey, txn: TxnId, mode: LockMode) {
        let q = self.queues.get_mut(key).expect("queue exists");
        q.waiting.retain(|w| w.txn != txn);
        q.granted.push(Request { txn, mode });
        self.held.entry(txn).or_default().insert(key.clone());
    }

    /// Outgoing wait-for edges of `txn`, derived from the queues: the
    /// transactions it cannot proceed past on the key it waits for.
    fn edges_of(&self, txn: TxnId) -> Vec<TxnId> {
        let mut out = Vec::new();
        for q in self.queues.values() {
            if let Some(u) = q.upgrading.iter().find(|u| u.txn == txn) {
                for g in &q.granted {
                    if g.txn != txn && !g.mode.compatible(u.mode) {
                        out.push(g.txn);
                    }
                }
            }
            if let Some(pos) = q.waiting.iter().position(|w| w.txn == txn) {
                let mode = q.waiting[pos].mode;
                for g in &q.granted {
                    if g.txn != txn && !g.mode.compatible(mode) {
                        out.push(g.txn);
                    }
                }
                for u in &q.upgrading {
                    if u.txn != txn && !u.mode.compatible(mode) {
                        out.push(u.txn);
                    }
                }
                for w in q.waiting.iter().take(pos) {
                    if w.txn != txn && !w.mode.compatible(mode) {
                        out.push(w.txn);
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Depth-first search for a cycle through `start` in the derived
    /// wait-for graph. Returns the cycle path `start → ... → start`.
    fn find_cycle(&self, start: TxnId) -> Option<Vec<TxnId>> {
        let mut path = vec![start];
        let mut visited = HashSet::new();
        self.dfs(start, start, &mut path, &mut visited)
            .then_some(path)
    }

    fn dfs(
        &self,
        start: TxnId,
        at: TxnId,
        path: &mut Vec<TxnId>,
        visited: &mut HashSet<TxnId>,
    ) -> bool {
        for next in self.edges_of(at) {
            if next == start {
                path.push(start);
                return true;
            }
            if visited.insert(next) {
                path.push(next);
                if self.dfs(start, next, path, visited) {
                    return true;
                }
                path.pop();
            }
        }
        false
    }

    fn remove_wait(&mut self, key: &LockKey, txn: TxnId) {
        if let Some(q) = self.queues.get_mut(key) {
            q.upgrading.retain(|u| u.txn != txn);
            q.waiting.retain(|w| w.txn != txn);
            if q.is_empty() {
                self.queues.remove(key);
            }
        }
    }
}

/// The lock manager. One per [`SharedDatabase`](crate::SharedDatabase);
/// all sessions share it.
pub struct LockManager {
    state: Mutex<LmState>,
    cv: Condvar,
    stats: Stats,
    timeout: Duration,
}

/// Safety valve: no correct schedule waits anywhere near this long; if
/// a wait does, a [`TxnError::LockTimeout`] surfaces instead of a hang.
const WAIT_TIMEOUT: Duration = Duration::from_secs(30);

impl LockManager {
    pub fn new(stats: Stats) -> LockManager {
        LockManager {
            state: Mutex::new(LmState::default()),
            cv: Condvar::new(),
            stats,
            timeout: WAIT_TIMEOUT,
        }
    }

    /// Same, with a custom wait timeout (tests).
    pub fn with_timeout(stats: Stats, timeout: Duration) -> LockManager {
        LockManager {
            timeout,
            ..LockManager::new(stats)
        }
    }

    /// Acquire `mode` on `key` for `txn`, blocking until granted.
    ///
    /// Re-acquiring a covered mode is a no-op; requesting a stronger
    /// mode upgrades in place. On deadlock the request is withdrawn and
    /// [`TxnError::Deadlock`] returned — the transaction keeps all locks
    /// it already holds and must be rolled back by the caller.
    pub fn acquire(&self, txn: TxnId, key: &LockKey, mode: LockMode) -> Result<()> {
        let mut st = self.state.lock().expect("lock manager poisoned");
        let q = st.queues.entry(key.clone()).or_default();

        let upgrade_target = match q.granted_mode(txn) {
            Some(cur) if cur.covers(mode) => return Ok(()),
            Some(cur) => Some(cur.lub(mode)),
            None => None,
        };

        match upgrade_target {
            Some(target) => {
                if st.upgrade_grantable(key, txn, target) {
                    st.apply_upgrade(key, txn, target);
                    self.cv.notify_all();
                    return Ok(());
                }
                st.queues
                    .get_mut(key)
                    .expect("queue exists")
                    .upgrading
                    .push(Request { txn, mode: target });
            }
            None => {
                if st.fresh_grantable(key, txn, mode) {
                    st.apply_fresh(key, txn, mode);
                    return Ok(());
                }
                st.queues
                    .get_mut(key)
                    .expect("queue exists")
                    .waiting
                    .push_back(Request { txn, mode });
            }
        }

        // The request will park: this is the only moment a new outgoing
        // edge can appear in the wait-for graph, so checking here
        // catches every cycle, and the requester is always in it.
        if let Some(cycle) = st.find_cycle(txn) {
            st.remove_wait(key, txn);
            self.stats.inc_deadlock_aborted();
            // Withdrawing a queued request can unblock waiters behind it.
            self.cv.notify_all();
            return Err(TxnError::Deadlock { victim: txn, cycle });
        }

        self.stats.inc_lock_wait();
        // Both guards cover every exit below (grant, timeout, poison):
        // the timer records wait latency, the gauge tracks queue depth.
        let _wait_timer = self.stats.time_lock_wait();
        let _queued = self.stats.lock_queue().scope();
        let deadline = std::time::Instant::now() + self.timeout;
        loop {
            let granted = match upgrade_target {
                Some(target) => {
                    let ok = st.upgrade_grantable(key, txn, target);
                    if ok {
                        st.apply_upgrade(key, txn, target);
                    }
                    ok
                }
                None => {
                    let ok = st.fresh_grantable(key, txn, mode);
                    if ok {
                        st.apply_fresh(key, txn, mode);
                    }
                    ok
                }
            };
            if granted {
                self.cv.notify_all();
                return Ok(());
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                st.remove_wait(key, txn);
                self.cv.notify_all();
                return Err(TxnError::LockTimeout { txn });
            }
            let (guard, _) = self
                .cv
                .wait_timeout(st, deadline - now)
                .expect("lock manager poisoned");
            st = guard;
        }
    }

    /// Release every lock `txn` holds (strict 2PL: called once, at
    /// commit or abort) and wake all waiters.
    pub fn release_all(&self, txn: TxnId) {
        let mut st = self.state.lock().expect("lock manager poisoned");
        if let Some(keys) = st.held.remove(&txn) {
            for key in keys {
                if let Some(q) = st.queues.get_mut(&key) {
                    q.granted.retain(|g| g.txn != txn);
                    if q.is_empty() {
                        st.queues.remove(&key);
                    }
                }
            }
        }
        self.cv.notify_all();
    }

    /// Number of granted locks `txn` currently holds (tests, debugging).
    pub fn held_count(&self, txn: TxnId) -> usize {
        let st = self.state.lock().expect("lock manager poisoned");
        st.held.get(&txn).map_or(0, |k| k.len())
    }

    /// Number of requests currently parked (tests: deterministic
    /// rendezvous by polling for an expected number of waiters).
    pub fn waiter_count(&self) -> usize {
        let st = self.state.lock().expect("lock manager poisoned");
        st.queues
            .values()
            .map(|q| q.waiting.len() + q.upgrading.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compatibility_matrix() {
        // Rows/cols: IS IX S X — the matrix from the multi-granularity
        // locking literature.
        let modes = [IntentShared, IntentExclusive, Shared, Exclusive];
        let expect = [
            [true, true, true, false],
            [true, true, false, false],
            [true, false, true, false],
            [false, false, false, false],
        ];
        for (i, &a) in modes.iter().enumerate() {
            for (j, &b) in modes.iter().enumerate() {
                assert_eq!(a.compatible(b), expect[i][j], "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn lub_lattice() {
        assert_eq!(IntentShared.lub(IntentExclusive), IntentExclusive);
        assert_eq!(IntentShared.lub(Shared), Shared);
        assert_eq!(IntentExclusive.lub(Shared), Exclusive);
        assert_eq!(Shared.lub(Exclusive), Exclusive);
        assert_eq!(Shared.lub(Shared), Shared);
    }

    #[test]
    fn reacquire_covered_is_noop() {
        let lm = LockManager::new(Stats::new());
        let k = LockKey::table("T");
        lm.acquire(1, &k, Exclusive).unwrap();
        lm.acquire(1, &k, Shared).unwrap();
        lm.acquire(1, &k, IntentShared).unwrap();
        assert_eq!(lm.held_count(1), 1);
        lm.release_all(1);
        assert_eq!(lm.held_count(1), 0);
    }

    #[test]
    fn object_locks_are_independent() {
        use aim2_storage::tid::{PageId, SlotNo, Tid};
        let lm = LockManager::new(Stats::new());
        let t = LockKey::table("T");
        let o1 = LockKey::object(
            "T",
            ObjectHandle(Tid {
                page: PageId(0),
                slot: SlotNo(1),
            }),
        );
        let o2 = LockKey::object(
            "T",
            ObjectHandle(Tid {
                page: PageId(0),
                slot: SlotNo(2),
            }),
        );
        // Two writers on different objects of the same table coexist.
        lm.acquire(1, &t, IntentExclusive).unwrap();
        lm.acquire(1, &o1, Exclusive).unwrap();
        lm.acquire(2, &t, IntentExclusive).unwrap();
        lm.acquire(2, &o2, Exclusive).unwrap();
        lm.release_all(1);
        lm.release_all(2);
    }

    #[test]
    fn immediate_self_deadlock_on_cross_upgrade() {
        // Single-threaded 2-cycle: T1 and T2 both hold S; T2 parks for
        // X (upgrade); T1's own upgrade attempt then closes the cycle
        // and T1 — the requester — is the victim.
        let lm = LockManager::with_timeout(Stats::new(), Duration::from_millis(200));
        let k = LockKey::table("T");
        lm.acquire(1, &k, Shared).unwrap();
        lm.acquire(2, &k, Shared).unwrap();
        let lm = std::sync::Arc::new(lm);
        let lm2 = lm.clone();
        let h = std::thread::spawn(move || {
            let k = LockKey::table("T");
            lm2.acquire(2, &k, Exclusive)
        });
        while lm.waiter_count() == 0 {
            std::thread::yield_now();
        }
        let err = lm.acquire(1, &k, Exclusive).unwrap_err();
        assert!(matches!(err, TxnError::Deadlock { victim: 1, .. }), "{err}");
        lm.release_all(1);
        h.join().unwrap().unwrap();
        lm.release_all(2);
    }
}
