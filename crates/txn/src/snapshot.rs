//! Snapshot manager: the epoch clock, pin refcounts and GC policy over
//! [`aim2_time::EpochStore`].
//!
//! Committing writers publish immutable per-table versions here (one
//! publishing event per commit; rollbacks and checkpoints publish
//! content-identical *refresh* versions when physical keys move), and
//! read-only sessions **pin** the current commit epoch at begin: every
//! read of the transaction then resolves against the exact versions
//! published at or before that epoch, with zero lock-manager traffic.
//! Pins are refcounted per epoch; when the oldest pin releases, a GC
//! pass reclaims every version no reachable epoch resolves
//! ([`aim2_storage::stats::Stats`] records the reclaim count and the
//! retained-version gauge).
//!
//! Lock discipline: the pin table and the version store are locked one
//! at a time, never nested, so publishers (store write lock) and
//! unpinning readers (pin mutex) cannot deadlock. Publishing bumps the
//! epoch *after* the new versions are in place, so a reader that pins
//! epoch `e` always finds `e`'s versions fully published.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use aim2::Database;
use aim2_storage::stats::Stats;
use aim2_time::{EpochStore, TableVersion};

/// One published table state: `None` is a drop tombstone.
pub type Published = Option<Arc<TableVersion>>;

/// Epoch clock + version store + pin refcounts (see module docs).
pub struct SnapshotManager {
    store: RwLock<EpochStore>,
    /// The newest fully published commit epoch.
    commit_epoch: AtomicU64,
    /// Pinned epoch → number of read-only transactions holding it.
    pins: Mutex<BTreeMap<u64, usize>>,
    stats: Stats,
}

impl SnapshotManager {
    /// An empty manager at epoch 0 (seed it with [`Self::resync`]).
    pub fn new(stats: Stats) -> SnapshotManager {
        SnapshotManager {
            store: RwLock::new(EpochStore::new()),
            commit_epoch: AtomicU64::new(0),
            pins: Mutex::new(BTreeMap::new()),
            stats,
        }
    }

    /// The newest committed epoch.
    pub fn current_epoch(&self) -> u64 {
        self.commit_epoch.load(Ordering::Acquire)
    }

    /// Pin the current commit epoch for a read-only transaction. The
    /// pinned versions survive concurrent commits and checkpoints until
    /// [`Self::unpin`].
    pub fn pin(&self) -> u64 {
        let mut pins = self.pins.lock().expect("pin table poisoned");
        let e = self.commit_epoch.load(Ordering::Acquire);
        *pins.entry(e).or_insert(0) += 1;
        e
    }

    /// Release one pin of `epoch`; when it was the oldest, a GC pass
    /// reclaims the versions only it could reach.
    pub fn unpin(&self, epoch: u64) {
        {
            let mut pins = self.pins.lock().expect("pin table poisoned");
            if let Some(n) = pins.get_mut(&epoch) {
                *n -= 1;
                if *n == 0 {
                    pins.remove(&epoch);
                }
            }
        }
        self.gc_pass();
    }

    /// The state of `table` at `epoch` (`None`: not visible then).
    pub fn resolve(&self, table: &str, epoch: u64) -> Published {
        self.store
            .read()
            .expect("snapshot store poisoned")
            .resolve(table, epoch)
    }

    /// The most recently published state of `table`.
    pub fn latest(&self, table: &str) -> Published {
        self.store
            .read()
            .expect("snapshot store poisoned")
            .latest(table)
    }

    /// Tables visible at `epoch`, in catalog order.
    pub fn tables_at(&self, epoch: u64) -> Vec<String> {
        self.store
            .read()
            .expect("snapshot store poisoned")
            .tables_at(epoch)
    }

    /// Publish one batch of table states as the next commit epoch and
    /// return it. The epoch counter advances only after every version
    /// is in place; a GC pass then trims what no pin can reach.
    pub fn publish(&self, updates: Vec<(String, Published)>) -> u64 {
        let _t = self.stats.time_mvcc_publish();
        let e = {
            let mut store = self.store.write().expect("snapshot store poisoned");
            let e = self.commit_epoch.load(Ordering::Relaxed) + 1;
            for (table, version) in updates {
                store.publish(&table, e, version);
                self.stats.inc_mvcc_version_published();
            }
            self.commit_epoch.store(e, Ordering::Release);
            e
        };
        self.gc_pass();
        e
    }

    /// Re-snapshot every table of `db` and publish the result — the
    /// seed at open time, and the refresh after administrative
    /// [`Database`] access (checkpoints re-key nothing, but DDL or bulk
    /// loads through the raw handle must become visible to snapshot
    /// readers). Tables the store knows but the catalog no longer has
    /// get drop tombstones. Unreadable tables (quarantine in progress)
    /// keep their previous version.
    pub fn resync(&self, db: &mut Database) {
        let mut updates: Vec<(String, Published)> = Vec::new();
        let names = db.table_names();
        for name in &names {
            let Ok(schema) = db.schema(name) else {
                continue;
            };
            // An unreadable table keeps its previous version.
            if let Ok(rows) = db.snapshot_table_keyed(name) {
                updates.push((
                    name.clone(),
                    Some(Arc::new(TableVersion::new(schema, rows))),
                ));
            }
        }
        let known = self.tables_at(self.current_epoch());
        for gone in known {
            if !names.contains(&gone) {
                updates.push((gone, None));
            }
        }
        if !updates.is_empty() {
            self.publish(updates);
        }
    }

    /// Reclaim versions below the oldest pin (or below the tip when
    /// nothing is pinned) and refresh the retained-version gauge.
    fn gc_pass(&self) {
        let min_pinned = {
            let pins = self.pins.lock().expect("pin table poisoned");
            pins.keys()
                .next()
                .copied()
                .unwrap_or_else(|| self.commit_epoch.load(Ordering::Acquire))
        };
        let mut store = self.store.write().expect("snapshot store poisoned");
        let reclaimed = store.gc(min_pinned);
        if reclaimed > 0 {
            self.stats.add_mvcc_gc_reclaimed(reclaimed);
        }
        self.stats
            .versions_retained()
            .set(store.versions_retained() as i64);
    }
}
