//! # aim2-txn — concurrent sessions for the AIM-II reproduction
//!
//! The prototype's run-time system multiplexed several application
//! programs over one database process: flat SQL requests and complex
//! objects checked out into application workspaces (§4.1). This crate
//! reproduces that for threads:
//!
//! * [`SharedDatabase`] — one [`aim2::Database`] behind a mutex, handing
//!   out cheap per-thread [`Session`]s;
//! * [`LockManager`] — multi-granularity (table / object) strict-2PL
//!   reader–writer locks keyed on root TIDs, FIFO-fair, with wait-for
//!   graph deadlock detection and a deterministic victim (the
//!   requester: [`TxnError::Deadlock`]);
//! * transactions — logical before-image undo (table snapshots for
//!   statement writes, in-place atom images for object writes) and
//!   group-committed WAL syncs ([`aim2_storage::wal::GroupCommit`]) so
//!   concurrent commits share one `fsync`.
//!
//! ```
//! use aim2_txn::SharedDatabase;
//! let shared = SharedDatabase::new(aim2::Database::in_memory());
//! shared.with_db(|db| {
//!     db.execute("CREATE TABLE T ( A INTEGER, B { C INTEGER } )").unwrap();
//! });
//! let mut s = shared.session();
//! s.execute("INSERT INTO T VALUES (1, {(2)})").unwrap();
//! s.commit().unwrap();
//! let mut r = shared.session();
//! let (_, rows) = r.query("SELECT x.A FROM x IN T").unwrap();
//! assert_eq!(rows.len(), 1);
//! r.commit().unwrap();
//! ```

pub mod error;
pub mod lock;
pub mod session;
pub mod snapshot;

pub use error::{Result, TxnError};
pub use lock::{LockKey, LockManager, LockMode, TxnId};
pub use session::{Session, SharedDatabase};
pub use snapshot::SnapshotManager;
