//! Concurrent sessions over one shared database.
//!
//! AIM-II's run-time system served several application programs at once:
//! set-oriented SQL requests and checked-out complex objects both went
//! through one database process. [`SharedDatabase`] reproduces that
//! integration point for threads: it owns the single [`Database`]
//! behind a mutex (physical access is serialized — the prototype was a
//! single database machine too) and hands out [`Session`]s, whose
//! *logical* isolation comes from the [`LockManager`]:
//!
//! * a statement (`SELECT` / DML / DDL) locks whole **tables** — S for
//!   reads, X for writes;
//! * the check-out API ([`Session::checkout`],
//!   [`Session::update_atoms`], ...) locks one **object** (root TID): IX
//!   on the table plus X on the object, so writers on different objects
//!   of one table run concurrently while a table reader still excludes
//!   them.
//!
//! Transactions are strict 2PL with rollback from logical before-images
//! (a table snapshot for statement writes, per-subtuple atom images for
//! object writes) and a **group-committed** WAL sync at commit: every
//! commit flushes its touched tables' pages — appending page
//! before-images to the WAL — and then joins
//! [`GroupCommit::sync_through`], where one leader's `fsync` covers all
//! concurrently committing sessions.
//!
//! Two documented caveats keep the undo machinery honest and simple:
//! a transaction may write a given table *either* through statements
//! *or* through the object API, not both (mixing returns
//! [`TxnError::State`]); and DDL is not undone by rollback.
//!
//! **MVCC snapshot reads.** Read-only transactions opened with
//! [`Session::begin_read_only`] do not participate in 2PL at all: they
//! pin the current commit epoch in the [`SnapshotManager`] and every
//! read — statement queries through the cursor pipeline as well as
//! `handles`/`read_object` — resolves against the immutable epoch
//! versions committing writers published, with **zero S/IS lock
//! acquisitions** and no database-mutex traffic on the per-row path.
//! Writers stay strict-2PL among themselves and publish their touched
//! tables' new versions at commit (object-granularity commits patch
//! the previous version; statement/DDL commits re-snapshot under their
//! X table locks), so a pinned snapshot keeps reading the exact state
//! it began with while later commits, checkpoints and GC proceed
//! around it.

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use aim2::{Database, ExecResult};
use aim2_exec::{Evaluator, ObjectCursor, ScanRequest, TableProvider};
use aim2_lang::ast::{self, NamedValue, SelectItem, Source, Stmt};
use aim2_model::{Atom, Date, TableSchema, TableValue, Tuple};
use aim2_storage::object::{ElemLoc, ObjectHandle};
use aim2_storage::stats::Stats;
use aim2_storage::tid::Tid;
use aim2_storage::wal::{GroupCommit, SharedWal};
use aim2_time::TableVersion;

use crate::error::{Result, TxnError};
use crate::lock::{LockKey, LockManager, LockMode, TxnId};
use crate::snapshot::{Published, SnapshotManager};

// ====================================================================
// Shared database
// ====================================================================

struct Shared {
    db: Mutex<Database>,
    locks: LockManager,
    gc: GroupCommit,
    stats: Stats,
    next_txn: AtomicU64,
    snapshots: SnapshotManager,
}

/// A database opened for concurrent use: wrap a [`Database`] once, then
/// clone handles and open a [`Session`] per thread.
#[derive(Clone)]
pub struct SharedDatabase {
    inner: Arc<Shared>,
}

impl SharedDatabase {
    /// Take ownership of `db` and make it shareable. Seeds the MVCC
    /// snapshot store with every table's current state as epoch 1.
    pub fn new(mut db: Database) -> SharedDatabase {
        let stats = db.stats().clone();
        let snapshots = SnapshotManager::new(stats.clone());
        snapshots.resync(&mut db);
        SharedDatabase {
            inner: Arc::new(Shared {
                locks: LockManager::new(stats.clone()),
                gc: GroupCommit::new(stats.clone()),
                stats,
                next_txn: AtomicU64::new(1),
                snapshots,
                db: Mutex::new(db),
            }),
        }
    }

    /// Open a new session. Sessions are cheap; one per thread.
    pub fn session(&self) -> Session {
        Session {
            shared: self.inner.clone(),
            txn: None,
            lock_acquisitions: 0,
        }
    }

    /// Run `f` with exclusive access to the raw database — for
    /// administrative work (initial DDL, checkpoints) outside any
    /// transaction. Skips the lock manager entirely: do not interleave
    /// with writing sessions. The snapshot store is resynced afterwards
    /// so DDL or bulk loads through the raw handle become visible to
    /// read-only snapshot sessions.
    pub fn with_db<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        let mut db = self.inner.db.lock().expect("database mutex poisoned");
        let r = f(&mut db);
        self.inner.snapshots.resync(&mut db);
        r
    }

    /// The newest committed MVCC epoch (diagnostics, tests).
    pub fn current_epoch(&self) -> u64 {
        self.inner.snapshots.current_epoch()
    }

    /// Number of transactions currently parked in lock-manager wait
    /// queues. A rendezvous point for deterministic interleaving tests:
    /// after issuing a request that must block, poll this until the
    /// requester is provably parked before taking the next step.
    pub fn lock_waiters(&self) -> usize {
        self.inner.locks.waiter_count()
    }

    /// Checkpoint the database (quiesces through the database mutex).
    pub fn checkpoint(&self) -> Result<()> {
        self.with_db(|db| db.checkpoint()).map_err(TxnError::Db)
    }

    /// Run the full integrity walker (quiesces through the database
    /// mutex) and quarantine every object it attributes damage to.
    /// Sessions touching a quarantined object afterwards get
    /// [`aim2::DbError::ObjectQuarantined`]; the rest of each table
    /// keeps serving.
    pub fn integrity_check(&self) -> Result<aim2::IntegrityReport> {
        self.with_db(|db| db.integrity_check())
            .map_err(TxnError::Db)
    }

    /// Freeze a flat table's hot rows into immutable columnar cold
    /// blocks (quiesces through the database mutex, like
    /// [`SharedDatabase::checkpoint`]). The snapshot store is resynced
    /// afterwards, so read-only sessions opened later see the tiered
    /// table under its new cold-row keys. Returns `(blocks, rows)`.
    pub fn compact_table(&self, table: &str) -> Result<(usize, u64)> {
        self.with_db(|db| db.compact_table(table))
            .map_err(TxnError::Db)
    }

    /// Per-table tiering report: `(table, hot rows, cold blocks, cold
    /// rows)` — NF² tables report their object count as "hot".
    pub fn tiers(&self) -> Result<Vec<(String, usize, usize, u64)>> {
        self.with_db(|db| db.table_tiers()).map_err(TxnError::Db)
    }

    /// The shared statistics block (lock waits, deadlock aborts, group
    /// commit batches, and all storage counters).
    pub fn stats(&self) -> Stats {
        self.inner.stats.clone()
    }

    /// Point-in-time metrics exposition — every counter, gauge and
    /// latency histogram — straight off the shared stats block. Unlike
    /// [`SharedDatabase::with_db`] admin paths this takes no mutex, so
    /// a server's metrics endpoint can poll it under load.
    pub fn metrics(&self) -> aim2_storage::stats::MetricsSnapshot {
        self.inner.stats.metrics_snapshot()
    }

    /// Immutable copy of the engine counters, for grouped display and
    /// delta computations (the server's `Stats` admin verb). Lock-free.
    pub fn stats_snapshot(&self) -> aim2_storage::stats::StatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// Unwrap back into the owned [`Database`]. Fails (returns `self`)
    /// while sessions are still alive.
    pub fn try_into_inner(self) -> std::result::Result<Database, SharedDatabase> {
        match Arc::try_unwrap(self.inner) {
            Ok(shared) => Ok(shared.db.into_inner().expect("database mutex poisoned")),
            Err(inner) => Err(SharedDatabase { inner }),
        }
    }
}

// ====================================================================
// Undo log
// ====================================================================

/// Logical before-images, undone in reverse order on rollback.
enum Undo {
    /// Statement-level write: whole-table snapshot taken before the
    /// transaction's first statement write to `table`.
    TableSnapshot { table: String, tuples: Vec<Tuple> },
    /// Object-level atom update: the atoms at `loc` before this
    /// transaction first overwrote them. Undo is another in-place
    /// update, so the object handle stays stable — a waiter blocked on
    /// this object's lock still holds a valid handle after the abort.
    Atoms {
        table: String,
        handle: ObjectHandle,
        loc: ElemLoc,
        atoms: Vec<Atom>,
    },
    /// Object-level delete: reinsert the saved tuple. The object comes
    /// back under a *new* handle (root TIDs are not recycled); the old
    /// handle is kept so the rollback can re-key the table's published
    /// MVCC version to the reinserted object.
    Reinsert {
        table: String,
        handle: ObjectHandle,
        tuple: Tuple,
    },
}

/// How a transaction has written a table so far — statement writes use
/// table-snapshot undo, object writes use per-subtuple undo; the two
/// cannot be mixed on one table inside one transaction.
#[derive(PartialEq, Clone, Copy)]
enum WriteMode {
    Statement,
    Object,
}

/// (table, handle, loc-steps) identifying one atom-image undo site.
type AtomImageKey = (String, ObjectHandle, Vec<(usize, usize)>);

/// A pinned MVCC snapshot: the commit epoch a read-only transaction
/// resolves every read against, plus when it was pinned (the
/// `txn.snapshot_age` histogram records the span at release).
struct SnapshotPin {
    epoch: u64,
    pinned_at: Instant,
}

struct Txn {
    id: TxnId,
    undo: Vec<Undo>,
    write_mode: BTreeMap<String, WriteMode>,
    /// Sites whose atom before-image is already recorded — only the
    /// first touch matters.
    atom_images: HashSet<AtomImageKey>,
    /// Tables whose pages must be flushed (with WAL logging) at commit.
    touched: BTreeSet<String>,
    /// True for snapshot transactions: no locks, no writes, all reads
    /// resolve at the pinned epoch.
    read_only: bool,
    /// The pinned epoch of a read-only transaction.
    snapshot: Option<SnapshotPin>,
    /// Object-mode write set per table (packed root TIDs): the keys a
    /// committing transaction patches into the table's next MVCC
    /// version instead of re-snapshotting the whole table (which would
    /// leak other transactions' uncommitted in-place writes).
    obj_updates: BTreeMap<String, BTreeSet<u64>>,
    /// Object-mode delete set per table (packed root TIDs).
    obj_deletes: BTreeMap<String, BTreeSet<u64>>,
}

impl Txn {
    fn new(id: TxnId, read_only: bool, snapshot: Option<SnapshotPin>) -> Txn {
        Txn {
            id,
            undo: Vec::new(),
            write_mode: BTreeMap::new(),
            atom_images: HashSet::new(),
            touched: BTreeSet::new(),
            read_only,
            snapshot,
            obj_updates: BTreeMap::new(),
            obj_deletes: BTreeMap::new(),
        }
    }
}

// ====================================================================
// Session
// ====================================================================

/// One client of a [`SharedDatabase`]: runs statements and checks out
/// objects inside strict-2PL transactions.
///
/// A transaction starts implicitly at the first operation (or explicit
/// [`Session::begin`]) and ends with [`Session::commit`] or
/// [`Session::rollback`]. Dropping a session with an open transaction
/// rolls it back.
pub struct Session {
    shared: Arc<Shared>,
    txn: Option<Txn>,
    /// Lock-manager acquisitions issued by the current (or most
    /// recently begun) transaction — every mode, including reentrant
    /// re-grants. The observable a read-only session asserts stays at
    /// zero; reset at each `begin`.
    lock_acquisitions: u64,
}

impl Session {
    // ---------------- transaction boundaries ----------------

    /// Explicitly start a transaction. Errors if one is already open.
    pub fn begin(&mut self) -> Result<()> {
        if self.txn.is_some() {
            return Err(TxnError::State("transaction already open".into()));
        }
        self.ensure_txn();
        Ok(())
    }

    /// Start a **read-only snapshot transaction**: pins the current
    /// commit epoch and serves every read of the transaction from the
    /// immutable versions published at or before it — repeatable reads
    /// with zero lock acquisitions. Writes return
    /// [`TxnError::ReadOnly`]. Ends through the usual
    /// [`Session::commit`] / [`Session::rollback`] (equivalent for a
    /// reader: both release the pin).
    pub fn begin_read_only(&mut self) -> Result<()> {
        if self.txn.is_some() {
            return Err(TxnError::State("transaction already open".into()));
        }
        let id = self.shared.next_txn.fetch_add(1, Ordering::Relaxed);
        let pin = SnapshotPin {
            epoch: self.shared.snapshots.pin(),
            pinned_at: Instant::now(),
        };
        self.txn = Some(Txn::new(id, true, Some(pin)));
        self.lock_acquisitions = 0;
        Ok(())
    }

    /// The open transaction's id, if any (tests, diagnostics).
    pub fn txn_id(&self) -> Option<TxnId> {
        self.txn.as_ref().map(|t| t.id)
    }

    /// The pinned commit epoch, when a read-only snapshot transaction
    /// is open.
    pub fn snapshot_epoch(&self) -> Option<u64> {
        self.ro_epoch()
    }

    /// True while a read-only snapshot transaction is open.
    pub fn is_read_only(&self) -> bool {
        self.txn.as_ref().is_some_and(|t| t.read_only)
    }

    /// Lock-manager acquisitions issued by the current (or most
    /// recently begun) transaction — a read-only snapshot transaction
    /// keeps this at zero.
    pub fn lock_acquisitions(&self) -> u64 {
        self.lock_acquisitions
    }

    fn ensure_txn(&mut self) -> TxnId {
        if self.txn.is_none() {
            let id = self.shared.next_txn.fetch_add(1, Ordering::Relaxed);
            self.txn = Some(Txn::new(id, false, None));
            self.lock_acquisitions = 0;
        }
        self.txn.as_ref().expect("just ensured").id
    }

    /// The pinned epoch when the open transaction is read-only.
    fn ro_epoch(&self) -> Option<u64> {
        self.txn
            .as_ref()
            .filter(|t| t.read_only)
            .and_then(|t| t.snapshot.as_ref())
            .map(|p| p.epoch)
    }

    /// Counted lock acquisition — every lock the session ever takes
    /// goes through here.
    fn acquire(&mut self, id: TxnId, key: &LockKey, mode: LockMode) -> Result<()> {
        self.lock_acquisitions += 1;
        self.shared.locks.acquire(id, key, mode)
    }

    /// End a read-only transaction: release the epoch pin (running GC
    /// if it was the oldest) and record how long the snapshot lived.
    fn finish_read_only(&mut self, txn: Txn) -> Result<()> {
        if let Some(pin) = txn.snapshot {
            self.shared.snapshots.unpin(pin.epoch);
            self.shared
                .stats
                .record_snapshot_age(pin.pinned_at.elapsed().as_nanos() as u64);
        }
        debug_assert_eq!(
            self.shared.locks.held_count(txn.id),
            0,
            "read-only transaction held locks"
        );
        Ok(())
    }

    /// Commit: append WAL before-images for every touched table's dirty
    /// pages, group-commit the log sync, release all locks. (Pages
    /// reach disk later through the WAL-safe eviction and checkpoint
    /// paths — the log always hits stable storage first.)
    pub fn commit(&mut self) -> Result<()> {
        let txn = self
            .txn
            .take()
            .ok_or_else(|| TxnError::State("commit without open transaction".into()))?;
        if txn.read_only {
            return self.finish_read_only(txn);
        }
        let _t = self.shared.stats.time_commit();
        let mut max_seq = None;
        let mut wal: Option<SharedWal> = None;
        let flush_res: aim2::Result<()> = (|| {
            let mut db = self.shared.db.lock().expect("database mutex poisoned");
            for table in &txn.touched {
                if let Some(seq) = db.log_table_dirty(table)? {
                    max_seq = Some(max_seq.map_or(seq, |m: u64| seq.max(m)));
                }
            }
            wal = db.shared_wal();
            Ok(())
        })();
        // The WAL fsync happens *outside* the database mutex: commits
        // serialize their page writes but share the disk sync.
        let sync_res = match (&wal, max_seq) {
            (Some(wal), Some(seq)) => self
                .shared
                .gc
                .sync_through(wal, seq)
                .map_err(|e| TxnError::Db(aim2::DbError::Storage(e))),
            _ => Ok(()),
        };
        // Publish this commit's epoch versions before the locks release
        // and behind a fresh database-mutex hold, so the [build, publish]
        // pair stays atomic against every other committer (an object-mode
        // patch must see the base its rivals just published). This step
        // runs *after* the WAL batch on purpose: building the versions
        // re-reads the table, and in a tiny buffer pool those reads evict
        // the commit's own dirty pages — whose WAL-safe eviction would
        // otherwise fsync the log early and steal the group commit.
        // Snapshot visibility tracks the in-place heap (which 2PL readers
        // see the instant the locks drop), so a failed sync must not skip
        // the publish.
        let publish_res: aim2::Result<()> = if flush_res.is_ok() {
            (|| {
                let mut db = self.shared.db.lock().expect("database mutex poisoned");
                let updates = build_commit_updates(&mut db, &txn, &self.shared.snapshots)?;
                if !updates.is_empty() {
                    self.shared.snapshots.publish(updates);
                }
                Ok(())
            })()
        } else {
            Ok(())
        };
        self.shared.locks.release_all(txn.id);
        flush_res.map_err(TxnError::Db)?;
        publish_res.map_err(TxnError::Db)?;
        sync_res
    }

    /// Roll back: apply the undo log in reverse, release all locks.
    /// DDL executed inside the transaction is *not* undone.
    ///
    /// Rollback leaves the *logical* state exactly as committed, but
    /// undo can move physical keys (restoring a table or reinserting a
    /// deleted object assigns fresh TIDs). The snapshot store keys
    /// future object-granularity patches by those TIDs, so affected
    /// tables republish a content-identical *refresh* version here —
    /// safe because this transaction still holds its X locks (a
    /// statement-undo table is X-locked whole; a reinserted object's
    /// table could host other writers, so only its keys are renamed).
    pub fn rollback(&mut self) -> Result<()> {
        let txn = self
            .txn
            .take()
            .ok_or_else(|| TxnError::State("rollback without open transaction".into()))?;
        if txn.read_only {
            return self.finish_read_only(txn);
        }
        let res: aim2::Result<()> = (|| {
            let mut db = self.shared.db.lock().expect("database mutex poisoned");
            let mut renames: BTreeMap<String, BTreeMap<u64, u64>> = BTreeMap::new();
            for undo in txn.undo.iter().rev() {
                match undo {
                    Undo::TableSnapshot { table, tuples } => {
                        db.restore_table(table, tuples.clone())?;
                    }
                    Undo::Atoms {
                        table,
                        handle,
                        loc,
                        atoms,
                    } => {
                        db.update_object_atoms(table, *handle, loc, atoms)?;
                    }
                    Undo::Reinsert {
                        table,
                        handle,
                        tuple,
                    } => {
                        let key = db.insert_tuple(table, tuple.clone())?;
                        if let Some(new) = key.handle() {
                            renames
                                .entry(table.clone())
                                .or_default()
                                .insert(handle.0.to_u64(), new.0.to_u64());
                        }
                    }
                }
            }
            let mut updates: Vec<(String, Published)> = Vec::new();
            for table in &txn.touched {
                if db.schema(table).is_err() {
                    // DDL is not undone: a table dropped in this
                    // transaction stays dropped.
                    updates.push((table.clone(), None));
                    continue;
                }
                match txn.write_mode.get(table) {
                    Some(WriteMode::Object) => {
                        if let Some(map) = renames.get(table) {
                            if let Some(base) = self.shared.snapshots.latest(table) {
                                updates.push((table.clone(), Some(Arc::new(base.rekeyed(map)))));
                            }
                        }
                        // In-place atom undos kept every key stable:
                        // the published version is already correct.
                    }
                    // Statement undo reinserted the whole table under
                    // fresh keys (and DDL effects persist): republish
                    // under the X lock this transaction still holds.
                    _ => updates.push((
                        table.clone(),
                        Some(Arc::new(TableVersion::new(
                            db.schema(table)?,
                            db.snapshot_table_keyed(table)?,
                        ))),
                    )),
                }
            }
            if !updates.is_empty() {
                self.shared.snapshots.publish(updates);
            }
            Ok(())
        })();
        self.shared.locks.release_all(txn.id);
        res.map_err(TxnError::Db)
    }

    // ---------------- statement interface (table granularity) --------

    /// Execute one statement inside the transaction. Read tables are
    /// locked S, written tables X (in sorted order, so identical
    /// statement mixes cannot deadlock against each other); the first
    /// statement write to a table snapshots it for undo. Tables read
    /// *only* through a historical `ASOF` binding are not locked at
    /// all — past version states are immutable, so those reads route
    /// around 2PL like snapshot reads do. In a read-only snapshot
    /// transaction the whole statement evaluates against the pinned
    /// epoch instead (writes error).
    pub fn execute(&mut self, sql: &str) -> Result<ExecResult> {
        let stmt = aim2_lang::parse_stmt(sql).map_err(|e| TxnError::Db(aim2::DbError::Parse(e)))?;
        if self.is_read_only() {
            return self.execute_read_only(&stmt);
        }
        let (mut reads, writes, asof_reads) = stmt_tables(&stmt);
        if !asof_reads.is_empty() {
            // An ASOF date strictly before the logical clock names an
            // immutable state: no lock. Same-or-future dates (and
            // unparseable ones, left for the evaluator to reject) read
            // live data and keep the S lock.
            let today = self.with_db(|db| Ok(db.today()))?;
            for (table, date) in &asof_reads {
                let historical = Date::parse_iso(date).map(|d| d < today).unwrap_or(false);
                if !historical {
                    reads.insert(table.clone());
                }
            }
        }
        let id = self.ensure_txn();

        for table in reads.union(&writes).cloned().collect::<Vec<_>>() {
            let mode = if writes.contains(&table) {
                LockMode::Exclusive
            } else {
                LockMode::Shared
            };
            self.acquire(id, &LockKey::table(&table), mode)?;
        }

        let is_ddl = matches!(
            stmt,
            Stmt::CreateTable(_) | Stmt::CreateIndex(_) | Stmt::DropTable(_)
        );
        let mut db = self.shared.db.lock().expect("database mutex poisoned");
        let txn = self.txn.as_mut().expect("txn ensured above");
        for table in &writes {
            if is_ddl {
                // DDL is executed in place and not undone by rollback.
                txn.touched.insert(table.clone());
                continue;
            }
            match txn.write_mode.get(table) {
                Some(WriteMode::Object) => {
                    return Err(TxnError::State(format!(
                        "table {table} already written through the object API \
                         in this transaction; statement writes cannot be mixed in"
                    )));
                }
                Some(WriteMode::Statement) => {}
                None => {
                    let tuples = db.snapshot_table(table).map_err(TxnError::Db)?;
                    txn.undo.push(Undo::TableSnapshot {
                        table: table.clone(),
                        tuples,
                    });
                    txn.write_mode.insert(table.clone(), WriteMode::Statement);
                }
            }
            txn.touched.insert(table.clone());
        }
        db.execute_stmt(&stmt).map_err(TxnError::Db)
    }

    /// Run a query (S table locks; zero locks in a read-only snapshot
    /// transaction) and materialize the result.
    pub fn query(&mut self, sql: &str) -> Result<(TableSchema, TableValue)> {
        match self.execute(sql)?.into_table() {
            Ok(t) => Ok(t),
            Err(e) => Err(TxnError::Db(e)),
        }
    }

    /// Evaluate `sql`, streaming query rows into `sink` as they are
    /// produced instead of materializing a result table — the network
    /// server's row path. Returns `Ok(None)` when the statement was a
    /// query (the result went to the sink); any other statement runs
    /// exactly like [`Session::execute`] and returns `Ok(Some(result))`.
    ///
    /// Locking matches [`Session::execute`]: in a read-only snapshot
    /// transaction every scan resolves lock-free against the pinned
    /// epoch; otherwise the statement's whole S lock set is acquired up
    /// front in sorted order (so streaming cannot introduce lock orders
    /// plain execution wouldn't), and per-row pulls re-take the database
    /// mutex briefly rather than holding it across the stream — a
    /// suspended consumer parks the session holding table locks, never
    /// the engine mutex.
    pub fn query_streamed(
        &mut self,
        sql: &str,
        sink: &mut dyn aim2_exec::RowSink,
    ) -> Result<Option<ExecResult>> {
        self.query_streamed_deadline(sql, sink, None)
    }

    /// [`Session::query_streamed`] with a per-statement wall-clock
    /// budget. The deadline is checked at the evaluator's cursor-pull
    /// choke point, so it also covers time a streamed result spends
    /// suspended waiting for the consumer; expiry surfaces as a
    /// retryable `DeadlineExceeded` and the statement unwinds through
    /// the normal rollback path.
    pub fn query_streamed_deadline(
        &mut self,
        sql: &str,
        sink: &mut dyn aim2_exec::RowSink,
        deadline: Option<aim2_exec::Deadline>,
    ) -> Result<Option<ExecResult>> {
        let stmt = aim2_lang::parse_stmt(sql).map_err(|e| TxnError::Db(aim2::DbError::Parse(e)))?;
        if !matches!(stmt, Stmt::Query(_)) {
            return self.execute(sql).map(Some);
        }
        if !self.is_read_only() {
            let (mut reads, _writes, asof_reads) = stmt_tables(&stmt);
            if !asof_reads.is_empty() {
                // Same ASOF routing as `execute`: strictly-historical
                // dates read immutable states and skip the S lock.
                let today = self.with_db(|db| Ok(db.today()))?;
                for (table, date) in &asof_reads {
                    let historical = Date::parse_iso(date).map(|d| d < today).unwrap_or(false);
                    if !historical {
                        reads.insert(table.clone());
                    }
                }
            }
            let id = self.ensure_txn();
            for table in reads {
                self.acquire(id, &LockKey::table(&table), LockMode::Shared)?;
            }
        }
        let Stmt::Query(q) = &stmt else {
            unreachable!()
        };
        let _t = self.shared.stats.time_query();
        let mut ev = Evaluator::new(self);
        ev.set_deadline(deadline);
        ev.eval_query_streamed(q, sink)
            .map_err(|e| TxnError::Db(aim2::DbError::from(e)))?;
        Ok(None)
    }

    /// Evaluate a statement against the pinned snapshot: queries run
    /// the full cursor pipeline with this session as the provider (so
    /// every scan resolves at the pinned epoch, lock-free); anything
    /// that writes is rejected.
    fn execute_read_only(&mut self, stmt: &Stmt) -> Result<ExecResult> {
        match stmt {
            Stmt::Query(q) => {
                let _t = self.shared.stats.time_query();
                let (schema, value) = Evaluator::new(self)
                    .eval_query(q)
                    .map_err(|e| TxnError::Db(aim2::DbError::from(e)))?;
                Ok(ExecResult::Table(schema, value))
            }
            Stmt::Explain(q) => {
                let plan = Evaluator::new(self)
                    .plan_query(q)
                    .map_err(|e| TxnError::Db(aim2::DbError::from(e)))?;
                Ok(ExecResult::Ok(plan.to_string().trim_end().to_string()))
            }
            _ => Err(TxnError::ReadOnly(
                "statement writes are not allowed in a read-only snapshot transaction".into(),
            )),
        }
    }

    // ---------------- check-out interface (object granularity) -------

    /// All object handles of an NF² table (IS lock: intent to read
    /// individual objects below; lock-free against the pinned epoch in
    /// a read-only snapshot transaction).
    pub fn handles(&mut self, table: &str) -> Result<Vec<ObjectHandle>> {
        if let Some(epoch) = self.ro_epoch() {
            let v = self.resolve_snapshot(table, epoch)?;
            if v.schema.is_flat() {
                return Err(TxnError::Db(aim2::DbError::Catalog(format!(
                    "table {table} is flat (no object handles)"
                ))));
            }
            self.shared.stats.inc_snapshot_read();
            return Ok(v
                .rows
                .iter()
                .map(|(k, _)| ObjectHandle(Tid::from_u64(*k)))
                .collect());
        }
        let id = self.ensure_txn();
        self.acquire(id, &LockKey::table(table), LockMode::IntentShared)?;
        self.with_db(|db| db.handles(table))
    }

    /// Check an object out for reading: IS on the table, S on the
    /// object, and the materialized tuple comes back. In a read-only
    /// snapshot transaction the object is served from the pinned epoch
    /// version — no locks, no heap access.
    pub fn read_object(&mut self, table: &str, handle: ObjectHandle) -> Result<Tuple> {
        if let Some(epoch) = self.ro_epoch() {
            let v = self.resolve_snapshot(table, epoch)?;
            let key = handle.0.to_u64();
            let tuple = v
                .rows
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, t)| Tuple::clone(t))
                .ok_or_else(|| {
                    TxnError::Db(aim2::DbError::Catalog(format!(
                        "no such object in snapshot of {table}"
                    )))
                })?;
            self.shared.stats.inc_snapshot_read();
            return Ok(tuple);
        }
        let id = self.ensure_txn();
        self.acquire(id, &LockKey::table(table), LockMode::IntentShared)?;
        self.acquire(id, &LockKey::object(table, handle), LockMode::Shared)?;
        self.with_db(|db| db.read_object(table, handle))
    }

    /// Check an object out for writing: IX on the table, X on the
    /// object. Returns the current tuple — the caller's local copy, as
    /// in the paper's application-process workspaces.
    pub fn checkout(&mut self, table: &str, handle: ObjectHandle) -> Result<Tuple> {
        self.reject_read_only("checkout")?;
        let id = self.ensure_txn();
        self.lock_object_x(id, table, handle)?;
        self.with_db(|db| db.read_object(table, handle))
    }

    /// Overwrite the atoms at `loc` of a checked-out object (takes the
    /// IX+X locks itself if [`Session::checkout`] was skipped). The
    /// first write to each subtuple records its before-image; an abort
    /// restores it in place, so the handle survives rollback.
    pub fn update_atoms(
        &mut self,
        table: &str,
        handle: ObjectHandle,
        loc: &ElemLoc,
        atoms: &[Atom],
    ) -> Result<()> {
        self.reject_read_only("update_atoms")?;
        let id = self.ensure_txn();
        self.lock_object_x(id, table, handle)?;
        self.note_object_write(table)?;
        let mut db = self.shared.db.lock().expect("database mutex poisoned");
        let txn = self.txn.as_mut().expect("txn ensured above");
        txn.obj_updates
            .entry(table.to_string())
            .or_default()
            .insert(handle.0.to_u64());
        let image_key = (table.to_string(), handle, loc.steps.clone());
        if !txn.atom_images.contains(&image_key) {
            let before = db
                .read_object_atoms(table, handle, loc)
                .map_err(TxnError::Db)?;
            txn.undo.push(Undo::Atoms {
                table: table.to_string(),
                handle,
                loc: loc.clone(),
                atoms: before,
            });
            txn.atom_images.insert(image_key);
        }
        db.update_object_atoms(table, handle, loc, atoms)
            .map_err(TxnError::Db)?;
        txn.touched.insert(table.to_string());
        Ok(())
    }

    /// Delete a checked-out object. Rollback reinserts it under a new
    /// handle (root TIDs are never recycled).
    pub fn delete_object(&mut self, table: &str, handle: ObjectHandle) -> Result<()> {
        self.reject_read_only("delete_object")?;
        let id = self.ensure_txn();
        self.lock_object_x(id, table, handle)?;
        self.note_object_write(table)?;
        let mut db = self.shared.db.lock().expect("database mutex poisoned");
        let txn = self.txn.as_mut().expect("txn ensured above");
        let tuple = db.read_object(table, handle).map_err(TxnError::Db)?;
        db.delete_object(table, handle).map_err(TxnError::Db)?;
        txn.undo.push(Undo::Reinsert {
            table: table.to_string(),
            handle,
            tuple,
        });
        let key = handle.0.to_u64();
        txn.obj_deletes
            .entry(table.to_string())
            .or_default()
            .insert(key);
        if let Some(ups) = txn.obj_updates.get_mut(table) {
            ups.remove(&key);
        }
        txn.touched.insert(table.to_string());
        Ok(())
    }

    // ---------------- internals ----------------

    fn lock_object_x(&mut self, id: TxnId, table: &str, handle: ObjectHandle) -> Result<()> {
        self.acquire(id, &LockKey::table(table), LockMode::IntentExclusive)?;
        self.acquire(id, &LockKey::object(table, handle), LockMode::Exclusive)
    }

    fn reject_read_only(&self, op: &str) -> Result<()> {
        if self.is_read_only() {
            return Err(TxnError::ReadOnly(format!(
                "{op} is not allowed in a read-only snapshot transaction"
            )));
        }
        Ok(())
    }

    /// The pinned-epoch version of `table` for a read-only read.
    fn resolve_snapshot(&self, table: &str, epoch: u64) -> Result<Arc<TableVersion>> {
        self.shared
            .snapshots
            .resolve(table, epoch)
            .ok_or_else(|| TxnError::Db(aim2::DbError::Catalog(format!("no such table: {table}"))))
    }

    fn note_object_write(&mut self, table: &str) -> Result<()> {
        let txn = self.txn.as_mut().expect("caller ensured txn");
        match txn.write_mode.get(table) {
            Some(WriteMode::Statement) => Err(TxnError::State(format!(
                "table {table} already written through statements in this \
                 transaction; object writes cannot be mixed in"
            ))),
            Some(WriteMode::Object) => Ok(()),
            None => {
                txn.write_mode.insert(table.to_string(), WriteMode::Object);
                Ok(())
            }
        }
    }

    fn with_db<R>(&self, f: impl FnOnce(&mut Database) -> aim2::Result<R>) -> Result<R> {
        let mut db = self.shared.db.lock().expect("database mutex poisoned");
        f(&mut db).map_err(TxnError::Db)
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        if self.txn.is_some() && !std::thread::panicking() {
            let _ = self.rollback();
        }
    }
}

/// Queries evaluate against a session like against a raw database: the
/// provider takes S table locks on the way through, so
/// [`aim2_exec::Evaluator`] plans run with full transactional
/// isolation. Three read classes route *around* the lock manager:
/// read-only snapshot transactions resolve every call against their
/// pinned epoch version (zero locks, and per-row pulls never touch the
/// database mutex either), and historical `ASOF` scans — in any
/// transaction — read immutable version-chain states.
impl TableProvider for Session {
    fn table_schema(&mut self, name: &str) -> aim2_exec::Result<TableSchema> {
        if let Some(epoch) = self.ro_epoch() {
            return match self.shared.snapshots.resolve(name, epoch) {
                Some(v) => Ok(v.schema.clone()),
                None => Err(aim2_exec::ExecError::NoSuchTable(name.to_string())),
            };
        }
        let id = self.ensure_txn();
        self.acquire(id, &LockKey::table(name), LockMode::Shared)
            .map_err(exec_err)?;
        let mut db = self.shared.db.lock().expect("database mutex poisoned");
        TableProvider::table_schema(&mut *db, name)
    }

    fn open_scan(&mut self, req: &ScanRequest) -> aim2_exec::Result<ObjectCursor> {
        if let Some(epoch) = self.ro_epoch() {
            if req.asof.is_some() {
                // Historical reconstruction comes from the immutable
                // version chains; still zero lock acquisitions.
                let mut db = self.shared.db.lock().expect("database mutex poisoned");
                return TableProvider::open_scan(&mut *db, req);
            }
            let Some(v) = self.shared.snapshots.resolve(&req.table, epoch) else {
                return Err(aim2_exec::ExecError::NoSuchTable(req.table.clone()));
            };
            self.shared.stats.inc_snapshot_read();
            let path = format!("snapshot scan @ epoch {epoch}");
            return Ok(ObjectCursor::shared(req, &path, epoch, v.rows.clone()));
        }
        if let Some(d) = req.asof {
            // ASOF inside a 2PL transaction: a strictly-past date names
            // an immutable state — route through the version machinery
            // without the S lock current-epoch reads take.
            let mut db = self.shared.db.lock().expect("database mutex poisoned");
            if d < db.today() {
                return TableProvider::open_scan(&mut *db, req);
            }
        }
        let id = self.ensure_txn();
        self.acquire(id, &LockKey::table(&req.table), LockMode::Shared)
            .map_err(exec_err)?;
        let mut db = self.shared.db.lock().expect("database mutex poisoned");
        TableProvider::open_scan(&mut *db, req)
    }

    fn next_row(&mut self, cur: &mut ObjectCursor) -> aim2_exec::Result<Option<Tuple>> {
        // Snapshot and ASOF cursors carry their rows: pulls are
        // session-local — no lock, no database mutex, which is what
        // lets snapshot readers scale past the single writer pipeline.
        if cur.is_local() {
            if cur.snapshot_epoch.is_some() {
                return Ok(cur.next_shared());
            }
            return Ok(cur.next_buffered());
        }
        // Each pull re-takes the S lock (reentrant within the txn) and
        // the db mutex — rows stream without holding the mutex across
        // the evaluator's per-row work.
        let id = self.ensure_txn();
        self.acquire(id, &LockKey::table(&cur.table), LockMode::Shared)
            .map_err(exec_err)?;
        let mut db = self.shared.db.lock().expect("database mutex poisoned");
        TableProvider::next_row(&mut *db, cur)
    }

    fn next_batch(
        &mut self,
        cur: &mut ObjectCursor,
        max_rows: usize,
    ) -> aim2_exec::Result<Option<aim2_exec::ColumnBatch>> {
        // Snapshot and ASOF cursors already hold their rows: batch them
        // session-locally, same as `next_row` but amortized.
        if cur.is_local() {
            return aim2_exec::row_batch(self, cur, max_rows);
        }
        // Keyed cursors delegate to the database's columnar batch path
        // (cold blocks decode once per batch); the lock and mutex
        // discipline matches `next_row` — reentrant S lock, mutex held
        // only for the pull itself.
        let id = self.ensure_txn();
        self.acquire(id, &LockKey::table(&cur.table), LockMode::Shared)
            .map_err(exec_err)?;
        let mut db = self.shared.db.lock().expect("database mutex poisoned");
        TableProvider::next_batch(&mut *db, cur, max_rows)
    }

    fn close_scan(&mut self, cur: ObjectCursor) {
        // Close-time accounting only needs the shared stats block, so
        // no cursor class pays for the database mutex here.
        if cur.pulled() > 0 && !cur.exhausted() {
            self.shared.stats.inc_cursor_early_exit();
        }
        self.shared.stats.record_cursor_lifetime(cur.age_ns());
    }

    fn decode_counters(&mut self) -> (u64, u64) {
        (
            self.shared.stats.objects_decoded(),
            self.shared.stats.atoms_decoded(),
        )
    }

    fn colstore_counters(&mut self) -> (u64, u64, u64) {
        (
            self.shared.stats.colstore_blocks_pruned(),
            self.shared.stats.colstore_blocks_decoded(),
            self.shared.stats.colstore_values_scanned(),
        )
    }

    fn note_values_scanned(&mut self, n: u64) {
        self.shared.stats.add_colstore_values_scanned(n);
    }
}

fn exec_err(e: TxnError) -> aim2_exec::ExecError {
    aim2_exec::ExecError::Semantic(e.to_string())
}

// ====================================================================
// Commit-time MVCC publishing
// ====================================================================

/// The epoch versions one committing transaction publishes, built under
/// the database mutex (serialized against every other committer).
///
/// * Tables written through **statements** (or DDL'd, or created this
///   transaction) are re-snapshotted whole: the transaction holds their
///   X table lock, so the heap state is exactly its committed writes.
/// * Tables written through the **object API** only patch this
///   transaction's own written/deleted objects into the previous
///   version — a concurrent object writer may hold uncommitted
///   in-place changes on *other* objects of the same table, which a
///   whole-table snapshot would leak to snapshot readers.
/// * Tables dropped by this transaction publish a tombstone.
fn build_commit_updates(
    db: &mut Database,
    txn: &Txn,
    snaps: &SnapshotManager,
) -> aim2::Result<Vec<(String, Published)>> {
    let mut updates = Vec::new();
    for table in &txn.touched {
        let Ok(schema) = db.schema(table) else {
            updates.push((table.clone(), None));
            continue;
        };
        let published = match (txn.write_mode.get(table), snaps.latest(table)) {
            (Some(WriteMode::Object), Some(base)) => {
                let mut ups: BTreeMap<u64, Tuple> = BTreeMap::new();
                if let Some(keys) = txn.obj_updates.get(table) {
                    for &k in keys {
                        ups.insert(k, db.read_object(table, ObjectHandle(Tid::from_u64(k)))?);
                    }
                }
                let dels = txn.obj_deletes.get(table).cloned().unwrap_or_default();
                Some(Arc::new(base.patched(&ups, &dels)))
            }
            // No published base means the table is brand new in this
            // transaction — its creator holds the X table lock, so the
            // whole-table snapshot below is clean too.
            _ => Some(Arc::new(TableVersion::new(
                schema,
                db.snapshot_table_keyed(table)?,
            ))),
        };
        updates.push((table.clone(), published));
    }
    Ok(updates)
}

// ====================================================================
// Statement lock analysis
// ====================================================================

/// Stored tables a statement reads and writes (table granularity — the
/// conservative statement-level lock set), plus `(table, date)` pairs
/// for tables read *only* through `ASOF` bindings: those name immutable
/// historical states when the date is strictly past, and
/// [`Session::execute`] routes them around 2PL entirely.
fn stmt_tables(
    stmt: &Stmt,
) -> (
    BTreeSet<String>,
    BTreeSet<String>,
    BTreeSet<(String, String)>,
) {
    let mut reads = BTreeSet::new();
    let mut writes = BTreeSet::new();
    let mut asof = BTreeSet::new();
    match stmt {
        Stmt::Query(q) | Stmt::Explain(q) => query_tables(q, &mut reads, &mut asof),
        Stmt::CreateTable(ct) => {
            writes.insert(ct.name.clone());
        }
        Stmt::CreateIndex(ci) => {
            writes.insert(ci.table.clone());
        }
        Stmt::DropTable(name) => {
            writes.insert(name.clone());
        }
        Stmt::Insert(ins) => {
            if let Source::Table(t) = &ins.target {
                writes.insert(t.clone());
            }
            // Partial inserts locate parents through bindings — those
            // parents are modified, so their tables lock X (ASOF is
            // meaningless on a write binding; DML rejects it below).
            write_bindings_tables(&ins.from, &mut writes);
            if let Some(e) = &ins.where_ {
                expr_tables(e, &mut reads, &mut asof);
            }
        }
        Stmt::Update(u) => {
            write_bindings_tables(&u.from, &mut writes);
            if let Some(e) = &u.where_ {
                expr_tables(e, &mut reads, &mut asof);
            }
        }
        Stmt::Delete(d) => {
            write_bindings_tables(&d.from, &mut writes);
            if let Some(e) = &d.where_ {
                expr_tables(e, &mut reads, &mut asof);
            }
        }
    }
    // A table both read and written locks X only.
    for w in &writes {
        reads.remove(w);
    }
    // A table also read or written at the current epoch keeps its lock;
    // only pure-ASOF tables are candidates for lock-free routing.
    asof.retain(|(t, _)| !reads.contains(t) && !writes.contains(t));
    (reads, writes, asof)
}

fn query_tables(q: &ast::Query, out: &mut BTreeSet<String>, asof: &mut BTreeSet<(String, String)>) {
    bindings_tables(&q.from, out, asof);
    if let Some(e) = &q.where_ {
        expr_tables(e, out, asof);
    }
    for item in &q.select {
        if let SelectItem::Named {
            value: NamedValue::Subquery(sq),
            ..
        } = item
        {
            query_tables(sq, out, asof);
        }
    }
}

fn bindings_tables(
    bindings: &[ast::Binding],
    out: &mut BTreeSet<String>,
    asof: &mut BTreeSet<(String, String)>,
) {
    for b in bindings {
        binding_table(b, out, asof);
    }
}

/// Write-position bindings: X-lock the table regardless of any ASOF
/// clause (DML rejects ASOF itself; the conservative lock is free).
fn write_bindings_tables(bindings: &[ast::Binding], out: &mut BTreeSet<String>) {
    for b in bindings {
        if let Source::Table(t) = &b.source {
            out.insert(t.clone());
        }
    }
}

fn binding_table(
    b: &ast::Binding,
    out: &mut BTreeSet<String>,
    asof: &mut BTreeSet<(String, String)>,
) {
    if let Source::Table(t) = &b.source {
        match &b.asof {
            Some(d) => {
                asof.insert((t.clone(), d.clone()));
            }
            None => {
                out.insert(t.clone());
            }
        }
    }
}

fn expr_tables(e: &ast::Expr, out: &mut BTreeSet<String>, asof: &mut BTreeSet<(String, String)>) {
    use ast::Expr::*;
    match e {
        PathRef { .. } | Subscript { .. } | Lit(_) => {}
        Cmp { lhs, rhs, .. } => {
            expr_tables(lhs, out, asof);
            expr_tables(rhs, out, asof);
        }
        And(a, b) | Or(a, b) => {
            expr_tables(a, out, asof);
            expr_tables(b, out, asof);
        }
        Not(a) => expr_tables(a, out, asof),
        Exists { binding, pred } => {
            binding_table(binding, out, asof);
            if let Some(p) = pred {
                expr_tables(p, out, asof);
            }
        }
        Forall { binding, pred } => {
            binding_table(binding, out, asof);
            expr_tables(pred, out, asof);
        }
        Contains { expr, .. } => expr_tables(expr, out, asof),
    }
}
