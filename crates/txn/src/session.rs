//! Concurrent sessions over one shared database.
//!
//! AIM-II's run-time system served several application programs at once:
//! set-oriented SQL requests and checked-out complex objects both went
//! through one database process. [`SharedDatabase`] reproduces that
//! integration point for threads: it owns the single [`Database`]
//! behind a mutex (physical access is serialized — the prototype was a
//! single database machine too) and hands out [`Session`]s, whose
//! *logical* isolation comes from the [`LockManager`]:
//!
//! * a statement (`SELECT` / DML / DDL) locks whole **tables** — S for
//!   reads, X for writes;
//! * the check-out API ([`Session::checkout`],
//!   [`Session::update_atoms`], ...) locks one **object** (root TID): IX
//!   on the table plus X on the object, so writers on different objects
//!   of one table run concurrently while a table reader still excludes
//!   them.
//!
//! Transactions are strict 2PL with rollback from logical before-images
//! (a table snapshot for statement writes, per-subtuple atom images for
//! object writes) and a **group-committed** WAL sync at commit: every
//! commit flushes its touched tables' pages — appending page
//! before-images to the WAL — and then joins
//! [`GroupCommit::sync_through`], where one leader's `fsync` covers all
//! concurrently committing sessions.
//!
//! Two documented caveats keep the undo machinery honest and simple:
//! a transaction may write a given table *either* through statements
//! *or* through the object API, not both (mixing returns
//! [`TxnError::State`]); and DDL is not undone by rollback.

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use aim2::{Database, ExecResult};
use aim2_exec::{ObjectCursor, ScanRequest, TableProvider};
use aim2_lang::ast::{self, NamedValue, SelectItem, Source, Stmt};
use aim2_model::{Atom, TableSchema, TableValue, Tuple};
use aim2_storage::object::{ElemLoc, ObjectHandle};
use aim2_storage::stats::Stats;
use aim2_storage::wal::{GroupCommit, SharedWal};

use crate::error::{Result, TxnError};
use crate::lock::{LockKey, LockManager, LockMode, TxnId};

// ====================================================================
// Shared database
// ====================================================================

struct Shared {
    db: Mutex<Database>,
    locks: LockManager,
    gc: GroupCommit,
    stats: Stats,
    next_txn: AtomicU64,
}

/// A database opened for concurrent use: wrap a [`Database`] once, then
/// clone handles and open a [`Session`] per thread.
#[derive(Clone)]
pub struct SharedDatabase {
    inner: Arc<Shared>,
}

impl SharedDatabase {
    /// Take ownership of `db` and make it shareable.
    pub fn new(db: Database) -> SharedDatabase {
        let stats = db.stats().clone();
        SharedDatabase {
            inner: Arc::new(Shared {
                locks: LockManager::new(stats.clone()),
                gc: GroupCommit::new(stats.clone()),
                stats,
                next_txn: AtomicU64::new(1),
                db: Mutex::new(db),
            }),
        }
    }

    /// Open a new session. Sessions are cheap; one per thread.
    pub fn session(&self) -> Session {
        Session {
            shared: self.inner.clone(),
            txn: None,
        }
    }

    /// Run `f` with exclusive access to the raw database — for
    /// administrative work (initial DDL, checkpoints) outside any
    /// transaction. Skips the lock manager entirely: do not interleave
    /// with writing sessions.
    pub fn with_db<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        let mut db = self.inner.db.lock().expect("database mutex poisoned");
        f(&mut db)
    }

    /// Checkpoint the database (quiesces through the database mutex).
    pub fn checkpoint(&self) -> Result<()> {
        self.with_db(|db| db.checkpoint()).map_err(TxnError::Db)
    }

    /// Run the full integrity walker (quiesces through the database
    /// mutex) and quarantine every object it attributes damage to.
    /// Sessions touching a quarantined object afterwards get
    /// [`aim2::DbError::ObjectQuarantined`]; the rest of each table
    /// keeps serving.
    pub fn integrity_check(&self) -> Result<aim2::IntegrityReport> {
        self.with_db(|db| db.integrity_check())
            .map_err(TxnError::Db)
    }

    /// The shared statistics block (lock waits, deadlock aborts, group
    /// commit batches, and all storage counters).
    pub fn stats(&self) -> Stats {
        self.inner.stats.clone()
    }

    /// Unwrap back into the owned [`Database`]. Fails (returns `self`)
    /// while sessions are still alive.
    pub fn try_into_inner(self) -> std::result::Result<Database, SharedDatabase> {
        match Arc::try_unwrap(self.inner) {
            Ok(shared) => Ok(shared.db.into_inner().expect("database mutex poisoned")),
            Err(inner) => Err(SharedDatabase { inner }),
        }
    }
}

// ====================================================================
// Undo log
// ====================================================================

/// Logical before-images, undone in reverse order on rollback.
enum Undo {
    /// Statement-level write: whole-table snapshot taken before the
    /// transaction's first statement write to `table`.
    TableSnapshot { table: String, tuples: Vec<Tuple> },
    /// Object-level atom update: the atoms at `loc` before this
    /// transaction first overwrote them. Undo is another in-place
    /// update, so the object handle stays stable — a waiter blocked on
    /// this object's lock still holds a valid handle after the abort.
    Atoms {
        table: String,
        handle: ObjectHandle,
        loc: ElemLoc,
        atoms: Vec<Atom>,
    },
    /// Object-level delete: reinsert the saved tuple. The object comes
    /// back under a *new* handle (root TIDs are not recycled).
    Reinsert { table: String, tuple: Tuple },
}

/// How a transaction has written a table so far — statement writes use
/// table-snapshot undo, object writes use per-subtuple undo; the two
/// cannot be mixed on one table inside one transaction.
#[derive(PartialEq, Clone, Copy)]
enum WriteMode {
    Statement,
    Object,
}

/// (table, handle, loc-steps) identifying one atom-image undo site.
type AtomImageKey = (String, ObjectHandle, Vec<(usize, usize)>);

struct Txn {
    id: TxnId,
    undo: Vec<Undo>,
    write_mode: BTreeMap<String, WriteMode>,
    /// Sites whose atom before-image is already recorded — only the
    /// first touch matters.
    atom_images: HashSet<AtomImageKey>,
    /// Tables whose pages must be flushed (with WAL logging) at commit.
    touched: BTreeSet<String>,
}

// ====================================================================
// Session
// ====================================================================

/// One client of a [`SharedDatabase`]: runs statements and checks out
/// objects inside strict-2PL transactions.
///
/// A transaction starts implicitly at the first operation (or explicit
/// [`Session::begin`]) and ends with [`Session::commit`] or
/// [`Session::rollback`]. Dropping a session with an open transaction
/// rolls it back.
pub struct Session {
    shared: Arc<Shared>,
    txn: Option<Txn>,
}

impl Session {
    // ---------------- transaction boundaries ----------------

    /// Explicitly start a transaction. Errors if one is already open.
    pub fn begin(&mut self) -> Result<()> {
        if self.txn.is_some() {
            return Err(TxnError::State("transaction already open".into()));
        }
        self.ensure_txn();
        Ok(())
    }

    /// The open transaction's id, if any (tests, diagnostics).
    pub fn txn_id(&self) -> Option<TxnId> {
        self.txn.as_ref().map(|t| t.id)
    }

    fn ensure_txn(&mut self) -> TxnId {
        if self.txn.is_none() {
            let id = self.shared.next_txn.fetch_add(1, Ordering::Relaxed);
            self.txn = Some(Txn {
                id,
                undo: Vec::new(),
                write_mode: BTreeMap::new(),
                atom_images: HashSet::new(),
                touched: BTreeSet::new(),
            });
        }
        self.txn.as_ref().expect("just ensured").id
    }

    /// Commit: append WAL before-images for every touched table's dirty
    /// pages, group-commit the log sync, release all locks. (Pages
    /// reach disk later through the WAL-safe eviction and checkpoint
    /// paths — the log always hits stable storage first.)
    pub fn commit(&mut self) -> Result<()> {
        let txn = self
            .txn
            .take()
            .ok_or_else(|| TxnError::State("commit without open transaction".into()))?;
        let _t = self.shared.stats.time_commit();
        let mut max_seq = None;
        let mut wal: Option<SharedWal> = None;
        let flush_res: aim2::Result<()> = (|| {
            let mut db = self.shared.db.lock().expect("database mutex poisoned");
            for table in &txn.touched {
                if let Some(seq) = db.log_table_dirty(table)? {
                    max_seq = Some(max_seq.map_or(seq, |m: u64| seq.max(m)));
                }
            }
            wal = db.shared_wal();
            Ok(())
        })();
        // The WAL fsync happens *outside* the database mutex: commits
        // serialize their page writes but share the disk sync.
        let sync_res = match (&wal, max_seq) {
            (Some(wal), Some(seq)) => self
                .shared
                .gc
                .sync_through(wal, seq)
                .map_err(|e| TxnError::Db(aim2::DbError::Storage(e))),
            _ => Ok(()),
        };
        self.shared.locks.release_all(txn.id);
        flush_res.map_err(TxnError::Db)?;
        sync_res
    }

    /// Roll back: apply the undo log in reverse, release all locks.
    /// DDL executed inside the transaction is *not* undone.
    pub fn rollback(&mut self) -> Result<()> {
        let txn = self
            .txn
            .take()
            .ok_or_else(|| TxnError::State("rollback without open transaction".into()))?;
        let res: aim2::Result<()> = (|| {
            let mut db = self.shared.db.lock().expect("database mutex poisoned");
            for undo in txn.undo.iter().rev() {
                match undo {
                    Undo::TableSnapshot { table, tuples } => {
                        db.restore_table(table, tuples.clone())?;
                    }
                    Undo::Atoms {
                        table,
                        handle,
                        loc,
                        atoms,
                    } => {
                        db.update_object_atoms(table, *handle, loc, atoms)?;
                    }
                    Undo::Reinsert { table, tuple } => {
                        db.insert_tuple(table, tuple.clone())?;
                    }
                }
            }
            Ok(())
        })();
        self.shared.locks.release_all(txn.id);
        res.map_err(TxnError::Db)
    }

    // ---------------- statement interface (table granularity) --------

    /// Execute one statement inside the transaction. Read tables are
    /// locked S, written tables X (in sorted order, so identical
    /// statement mixes cannot deadlock against each other); the first
    /// statement write to a table snapshots it for undo.
    pub fn execute(&mut self, sql: &str) -> Result<ExecResult> {
        let stmt = aim2_lang::parse_stmt(sql).map_err(|e| TxnError::Db(aim2::DbError::Parse(e)))?;
        let (reads, writes) = stmt_tables(&stmt);
        let id = self.ensure_txn();

        for table in reads.union(&writes) {
            let mode = if writes.contains(table) {
                LockMode::Exclusive
            } else {
                LockMode::Shared
            };
            self.shared
                .locks
                .acquire(id, &LockKey::table(table), mode)?;
        }

        let is_ddl = matches!(
            stmt,
            Stmt::CreateTable(_) | Stmt::CreateIndex(_) | Stmt::DropTable(_)
        );
        let mut db = self.shared.db.lock().expect("database mutex poisoned");
        let txn = self.txn.as_mut().expect("txn ensured above");
        for table in &writes {
            if is_ddl {
                // DDL is executed in place and not undone by rollback.
                txn.touched.insert(table.clone());
                continue;
            }
            match txn.write_mode.get(table) {
                Some(WriteMode::Object) => {
                    return Err(TxnError::State(format!(
                        "table {table} already written through the object API \
                         in this transaction; statement writes cannot be mixed in"
                    )));
                }
                Some(WriteMode::Statement) => {}
                None => {
                    let tuples = db.snapshot_table(table).map_err(TxnError::Db)?;
                    txn.undo.push(Undo::TableSnapshot {
                        table: table.clone(),
                        tuples,
                    });
                    txn.write_mode.insert(table.clone(), WriteMode::Statement);
                }
            }
            txn.touched.insert(table.clone());
        }
        db.execute_stmt(&stmt).map_err(TxnError::Db)
    }

    /// Run a query (S table locks) and materialize the result.
    pub fn query(&mut self, sql: &str) -> Result<(TableSchema, TableValue)> {
        match self.execute(sql)?.into_table() {
            Ok(t) => Ok(t),
            Err(e) => Err(TxnError::Db(e)),
        }
    }

    // ---------------- check-out interface (object granularity) -------

    /// All object handles of an NF² table (IS lock: intent to read
    /// individual objects below).
    pub fn handles(&mut self, table: &str) -> Result<Vec<ObjectHandle>> {
        let id = self.ensure_txn();
        self.shared
            .locks
            .acquire(id, &LockKey::table(table), LockMode::IntentShared)?;
        self.with_db(|db| db.handles(table))
    }

    /// Check an object out for reading: IS on the table, S on the
    /// object, and the materialized tuple comes back.
    pub fn read_object(&mut self, table: &str, handle: ObjectHandle) -> Result<Tuple> {
        let id = self.ensure_txn();
        self.shared
            .locks
            .acquire(id, &LockKey::table(table), LockMode::IntentShared)?;
        self.shared
            .locks
            .acquire(id, &LockKey::object(table, handle), LockMode::Shared)?;
        self.with_db(|db| db.read_object(table, handle))
    }

    /// Check an object out for writing: IX on the table, X on the
    /// object. Returns the current tuple — the caller's local copy, as
    /// in the paper's application-process workspaces.
    pub fn checkout(&mut self, table: &str, handle: ObjectHandle) -> Result<Tuple> {
        let id = self.ensure_txn();
        self.lock_object_x(id, table, handle)?;
        self.with_db(|db| db.read_object(table, handle))
    }

    /// Overwrite the atoms at `loc` of a checked-out object (takes the
    /// IX+X locks itself if [`Session::checkout`] was skipped). The
    /// first write to each subtuple records its before-image; an abort
    /// restores it in place, so the handle survives rollback.
    pub fn update_atoms(
        &mut self,
        table: &str,
        handle: ObjectHandle,
        loc: &ElemLoc,
        atoms: &[Atom],
    ) -> Result<()> {
        let id = self.ensure_txn();
        self.lock_object_x(id, table, handle)?;
        self.note_object_write(table)?;
        let mut db = self.shared.db.lock().expect("database mutex poisoned");
        let txn = self.txn.as_mut().expect("txn ensured above");
        let image_key = (table.to_string(), handle, loc.steps.clone());
        if !txn.atom_images.contains(&image_key) {
            let before = db
                .read_object_atoms(table, handle, loc)
                .map_err(TxnError::Db)?;
            txn.undo.push(Undo::Atoms {
                table: table.to_string(),
                handle,
                loc: loc.clone(),
                atoms: before,
            });
            txn.atom_images.insert(image_key);
        }
        db.update_object_atoms(table, handle, loc, atoms)
            .map_err(TxnError::Db)?;
        txn.touched.insert(table.to_string());
        Ok(())
    }

    /// Delete a checked-out object. Rollback reinserts it under a new
    /// handle (root TIDs are never recycled).
    pub fn delete_object(&mut self, table: &str, handle: ObjectHandle) -> Result<()> {
        let id = self.ensure_txn();
        self.lock_object_x(id, table, handle)?;
        self.note_object_write(table)?;
        let mut db = self.shared.db.lock().expect("database mutex poisoned");
        let txn = self.txn.as_mut().expect("txn ensured above");
        let tuple = db.read_object(table, handle).map_err(TxnError::Db)?;
        db.delete_object(table, handle).map_err(TxnError::Db)?;
        txn.undo.push(Undo::Reinsert {
            table: table.to_string(),
            tuple,
        });
        txn.touched.insert(table.to_string());
        Ok(())
    }

    // ---------------- internals ----------------

    fn lock_object_x(&mut self, id: TxnId, table: &str, handle: ObjectHandle) -> Result<()> {
        self.shared
            .locks
            .acquire(id, &LockKey::table(table), LockMode::IntentExclusive)?;
        self.shared
            .locks
            .acquire(id, &LockKey::object(table, handle), LockMode::Exclusive)
    }

    fn note_object_write(&mut self, table: &str) -> Result<()> {
        let txn = self.txn.as_mut().expect("caller ensured txn");
        match txn.write_mode.get(table) {
            Some(WriteMode::Statement) => Err(TxnError::State(format!(
                "table {table} already written through statements in this \
                 transaction; object writes cannot be mixed in"
            ))),
            Some(WriteMode::Object) => Ok(()),
            None => {
                txn.write_mode.insert(table.to_string(), WriteMode::Object);
                Ok(())
            }
        }
    }

    fn with_db<R>(&self, f: impl FnOnce(&mut Database) -> aim2::Result<R>) -> Result<R> {
        let mut db = self.shared.db.lock().expect("database mutex poisoned");
        f(&mut db).map_err(TxnError::Db)
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        if self.txn.is_some() && !std::thread::panicking() {
            let _ = self.rollback();
        }
    }
}

/// Queries evaluate against a session like against a raw database: the
/// provider takes S table locks on the way through, so
/// [`aim2_exec::Evaluator`] plans run with full transactional isolation.
impl TableProvider for Session {
    fn table_schema(&mut self, name: &str) -> aim2_exec::Result<TableSchema> {
        let id = self.ensure_txn();
        self.shared
            .locks
            .acquire(id, &LockKey::table(name), LockMode::Shared)
            .map_err(exec_err)?;
        let mut db = self.shared.db.lock().expect("database mutex poisoned");
        TableProvider::table_schema(&mut *db, name)
    }

    fn open_scan(&mut self, req: &ScanRequest) -> aim2_exec::Result<ObjectCursor> {
        let id = self.ensure_txn();
        self.shared
            .locks
            .acquire(id, &LockKey::table(&req.table), LockMode::Shared)
            .map_err(exec_err)?;
        let mut db = self.shared.db.lock().expect("database mutex poisoned");
        TableProvider::open_scan(&mut *db, req)
    }

    fn next_row(&mut self, cur: &mut ObjectCursor) -> aim2_exec::Result<Option<Tuple>> {
        // Each pull re-takes the S lock (reentrant within the txn) and
        // the db mutex — rows stream without holding the mutex across
        // the evaluator's per-row work.
        let id = self.ensure_txn();
        self.shared
            .locks
            .acquire(id, &LockKey::table(&cur.table), LockMode::Shared)
            .map_err(exec_err)?;
        let mut db = self.shared.db.lock().expect("database mutex poisoned");
        TableProvider::next_row(&mut *db, cur)
    }

    fn close_scan(&mut self, cur: ObjectCursor) {
        let mut db = self.shared.db.lock().expect("database mutex poisoned");
        TableProvider::close_scan(&mut *db, cur)
    }

    fn decode_counters(&mut self) -> (u64, u64) {
        (
            self.shared.stats.objects_decoded(),
            self.shared.stats.atoms_decoded(),
        )
    }
}

fn exec_err(e: TxnError) -> aim2_exec::ExecError {
    aim2_exec::ExecError::Semantic(e.to_string())
}

// ====================================================================
// Statement lock analysis
// ====================================================================

/// Stored tables a statement reads and writes (table granularity — the
/// conservative statement-level lock set).
fn stmt_tables(stmt: &Stmt) -> (BTreeSet<String>, BTreeSet<String>) {
    let mut reads = BTreeSet::new();
    let mut writes = BTreeSet::new();
    match stmt {
        Stmt::Query(q) | Stmt::Explain(q) => query_tables(q, &mut reads),
        Stmt::CreateTable(ct) => {
            writes.insert(ct.name.clone());
        }
        Stmt::CreateIndex(ci) => {
            writes.insert(ci.table.clone());
        }
        Stmt::DropTable(name) => {
            writes.insert(name.clone());
        }
        Stmt::Insert(ins) => {
            if let Source::Table(t) = &ins.target {
                writes.insert(t.clone());
            }
            // Partial inserts locate parents through bindings — those
            // parents are modified, so their tables lock X.
            bindings_tables(&ins.from, &mut writes);
            if let Some(e) = &ins.where_ {
                expr_tables(e, &mut reads);
            }
        }
        Stmt::Update(u) => {
            bindings_tables(&u.from, &mut writes);
            if let Some(e) = &u.where_ {
                expr_tables(e, &mut reads);
            }
        }
        Stmt::Delete(d) => {
            bindings_tables(&d.from, &mut writes);
            if let Some(e) = &d.where_ {
                expr_tables(e, &mut reads);
            }
        }
    }
    // A table both read and written locks X only.
    for w in &writes {
        reads.remove(w);
    }
    (reads, writes)
}

fn query_tables(q: &ast::Query, out: &mut BTreeSet<String>) {
    bindings_tables(&q.from, out);
    if let Some(e) = &q.where_ {
        expr_tables(e, out);
    }
    for item in &q.select {
        if let SelectItem::Named {
            value: NamedValue::Subquery(sq),
            ..
        } = item
        {
            query_tables(sq, out);
        }
    }
}

fn bindings_tables(bindings: &[ast::Binding], out: &mut BTreeSet<String>) {
    for b in bindings {
        binding_table(b, out);
    }
}

fn binding_table(b: &ast::Binding, out: &mut BTreeSet<String>) {
    if let Source::Table(t) = &b.source {
        out.insert(t.clone());
    }
}

fn expr_tables(e: &ast::Expr, out: &mut BTreeSet<String>) {
    use ast::Expr::*;
    match e {
        PathRef { .. } | Subscript { .. } | Lit(_) => {}
        Cmp { lhs, rhs, .. } => {
            expr_tables(lhs, out);
            expr_tables(rhs, out);
        }
        And(a, b) | Or(a, b) => {
            expr_tables(a, out);
            expr_tables(b, out);
        }
        Not(a) => expr_tables(a, out),
        Exists { binding, pred } => {
            binding_table(binding, out);
            if let Some(p) = pred {
                expr_tables(p, out);
            }
        }
        Forall { binding, pred } => {
            binding_table(binding, out);
            expr_tables(pred, out);
        }
        Contains { expr, .. } => expr_tables(expr, out),
    }
}
