//! Snapshot-consistency property suite.
//!
//! A seed drives a random mixed workload over one [`SharedDatabase`]:
//! two writer sessions (one per table, so writers never block each
//! other and the schedule stays single-threaded-deterministic), two
//! read-only snapshot sessions, random commits, aborts and
//! administrative whole-table refresh publishes.
//! An in-memory model tracks the committed state at every commit
//! boundary.
//!
//! The property: **every sum a read-only session observes equals the
//! committed sum at exactly one commit boundary — the one its snapshot
//! pinned** — for the entire life of the transaction, no matter how
//! many commits, aborts or refreshes land in between; and the reader
//! acquires zero locks doing it. At the end, a fresh snapshot must
//! agree with the model account by account.
//!
//! Failing seeds land in `proptest-regressions/prop_snapshot.txt` and
//! replay first on every run.

use std::collections::BTreeMap;

use aim2::Database;
use aim2_txn::{Session, SharedDatabase};
use proptest::prelude::*;
use proptest::TestRng;

const TABLES: [&str; 2] = ["ALPHA", "BETA"];
const ACCOUNTS: i64 = 4;

/// Committed balances per table, account → balance.
type Model = BTreeMap<&'static str, BTreeMap<i64, i64>>;

fn setup() -> (SharedDatabase, Model) {
    let shared = SharedDatabase::new(Database::in_memory());
    let mut model: Model = BTreeMap::new();
    shared.with_db(|db| {
        for (ti, table) in TABLES.iter().enumerate() {
            db.execute(&format!(
                "CREATE TABLE {table} ( ANO INTEGER, BAL INTEGER )"
            ))
            .unwrap();
            let accounts = model.entry(table).or_default();
            for a in 0..ACCOUNTS {
                let bal = 100 * (ti as i64 + 1) + a;
                db.execute(&format!("INSERT INTO {table} VALUES ({a}, {bal})"))
                    .unwrap();
                accounts.insert(a, bal);
            }
        }
    });
    (shared, model)
}

fn model_sum(model: &Model) -> i64 {
    model.values().flat_map(|t| t.values()).sum()
}

/// Sum of both tables as `s`'s open snapshot sees them.
fn observed_sum(s: &mut Session) -> i64 {
    TABLES
        .iter()
        .map(|table| {
            let (_, rows) = s.query(&format!("SELECT x.BAL FROM x IN {table}")).unwrap();
            rows.tuples
                .iter()
                .map(|t| t.field(0).unwrap().as_atom().unwrap().as_int().unwrap())
                .sum::<i64>()
        })
        .sum()
}

/// One writer: owns `table`, stages at most one uncommitted balance
/// write at a time.
struct Writer {
    session: Session,
    table: &'static str,
    /// The staged (account, balance) of the open transaction.
    staged: Option<(i64, i64)>,
}

/// One reader: a pinned snapshot and the boundary sum it must keep
/// observing.
struct Reader {
    session: Session,
    expected: Option<i64>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn snapshot_sums_land_on_commit_boundaries(seed in 0u64..1_000_000) {
        let mut rng = TestRng::from_seed(seed);
        let (shared, mut model) = setup();

        let mut writers: Vec<Writer> = TABLES
            .iter()
            .map(|&table| Writer { session: shared.session(), table, staged: None })
            .collect();
        let mut readers: Vec<Reader> = (0..2)
            .map(|_| Reader { session: shared.session(), expected: None })
            .collect();
        // Every boundary sum that ever existed, for the final check
        // that observations never invent a sum.
        let mut boundary_sums = vec![model_sum(&model)];

        for _ in 0..60 {
            match rng.below(10) {
                // -------- writer steps --------
                0..=4 => {
                    let wi = rng.below(writers.len());
                    let w = &mut writers[wi];
                    match w.staged.take() {
                        None => {
                            // begin (implicitly) + stage one update
                            let account = rng.below(ACCOUNTS as usize) as i64;
                            let bal = rng.below(1000) as i64;
                            w.session
                                .execute(&format!(
                                    "UPDATE x IN {} SET x.BAL = {bal} WHERE x.ANO = {account}",
                                    w.table
                                ))
                                .unwrap();
                            w.staged = Some((account, bal));
                        }
                        Some((account, bal)) => {
                            if rng.below(3) == 0 {
                                w.session.rollback().unwrap();
                            } else {
                                w.session.commit().unwrap();
                                model.get_mut(w.table).unwrap().insert(account, bal);
                                boundary_sums.push(model_sum(&model));
                            }
                        }
                    }
                }
                // -------- reader steps --------
                5..=8 => {
                    let ri = rng.below(readers.len());
                    let r = &mut readers[ri];
                    match r.expected {
                        None => {
                            r.session.begin_read_only().unwrap();
                            // Pin lands on the current boundary.
                            r.expected = Some(model_sum(&model));
                            let got = observed_sum(&mut r.session);
                            prop_assert_eq!(got, r.expected.unwrap(),
                                "fresh snapshot off its boundary (seed {})", seed);
                        }
                        Some(expected) => {
                            let got = observed_sum(&mut r.session);
                            prop_assert_eq!(got, expected,
                                "snapshot drifted off its boundary (seed {})", seed);
                            prop_assert_eq!(r.session.lock_acquisitions(), 0,
                                "read-only session took a lock (seed {})", seed);
                            if rng.below(2) == 0 {
                                r.session.commit().unwrap();
                                r.expected = None;
                            }
                        }
                    }
                }
                // -------- administrative refresh (no writer in flight) ----
                // `with_db` republishes every table as a fresh epoch (the
                // same refresh a checkpoint performs); pinned snapshots
                // must ride it out unchanged.
                _ => {
                    if writers.iter().all(|w| w.staged.is_none()) {
                        shared.with_db(|_| {});
                    }
                }
            }
        }

        // Drain: abort in-flight writers, close remaining readers
        // (asserting their pin one last time).
        for w in &mut writers {
            if w.staged.take().is_some() {
                w.session.rollback().unwrap();
            }
        }
        for r in &mut readers {
            if let Some(expected) = r.expected.take() {
                let got = observed_sum(&mut r.session);
                prop_assert_eq!(got, expected, "drain read off boundary (seed {})", seed);
                prop_assert!(boundary_sums.contains(&got),
                    "observed sum {} is no commit boundary (seed {})", got, seed);
                r.session.commit().unwrap();
            }
        }

        // A fresh snapshot agrees with the model account by account.
        let mut s = shared.session();
        s.begin_read_only().unwrap();
        for table in TABLES {
            let (_, rows) = s
                .query(&format!("SELECT x.ANO, x.BAL FROM x IN {table}"))
                .unwrap();
            let got: BTreeMap<i64, i64> = rows
                .tuples
                .iter()
                .map(|t| {
                    (
                        t.field(0).unwrap().as_atom().unwrap().as_int().unwrap(),
                        t.field(1).unwrap().as_atom().unwrap().as_int().unwrap(),
                    )
                })
                .collect();
            prop_assert_eq!(&got, &model[table], "final state diverged on {} (seed {})", table, seed);
        }
        prop_assert_eq!(s.lock_acquisitions(), 0);
        s.commit().unwrap();
    }
}
