//! Lock manager isolation suite: upgrades, 2- and 3-cycle deadlocks,
//! and FIFO fairness under contention.
//!
//! Every test is deterministic: threads rendezvous by polling
//! [`LockManager::waiter_count`] (a parked request is observable state,
//! not a timing guess), and the deadlock victim is always the requester
//! whose acquire closes the cycle, so assertions never race.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use aim2_storage::stats::Stats;
use aim2_storage::tid::{PageId, SlotNo, Tid};
use aim2_txn::{LockKey, LockManager, LockMode, TxnError};

use aim2_storage::object::ObjectHandle;

fn manager() -> (Arc<LockManager>, Stats) {
    let stats = Stats::new();
    // Short timeout: a logic bug fails the test in seconds, not minutes.
    let lm = Arc::new(LockManager::with_timeout(
        stats.clone(),
        Duration::from_secs(10),
    ));
    (lm, stats)
}

fn handle(slot: u16) -> ObjectHandle {
    ObjectHandle(Tid {
        page: PageId(0),
        slot: SlotNo(slot),
    })
}

/// Park-rendezvous: wait until exactly `n` requests are queued.
fn await_waiters(lm: &LockManager, n: usize) {
    let mut spins = 0u64;
    while lm.waiter_count() < n {
        std::thread::yield_now();
        spins += 1;
        assert!(spins < 200_000_000, "waiters never parked");
    }
}

// ====================================================================
// Upgrades
// ====================================================================

#[test]
fn upgrade_waits_for_other_reader_then_succeeds() {
    let (lm, stats) = manager();
    let k = LockKey::table("T");
    lm.acquire(1, &k, LockMode::Shared).unwrap();
    lm.acquire(2, &k, LockMode::Shared).unwrap();

    let lm2 = lm.clone();
    let t = std::thread::spawn(move || {
        // S → X upgrade must wait for txn 2's S, then win.
        lm2.acquire(1, &LockKey::table("T"), LockMode::Exclusive)
    });
    await_waiters(&lm, 1);
    assert!(stats.lock_waits() >= 1);

    lm.release_all(2);
    t.join().unwrap().unwrap();
    // Txn 1 now holds X: a fresh S request must queue.
    let lm3 = lm.clone();
    let r = std::thread::spawn(move || lm3.acquire(3, &LockKey::table("T"), LockMode::Shared));
    await_waiters(&lm, 1);
    lm.release_all(1);
    r.join().unwrap().unwrap();
    lm.release_all(3);
}

#[test]
fn upgrade_jumps_the_fresh_queue() {
    let (lm, _) = manager();
    let k = LockKey::table("T");
    lm.acquire(1, &k, LockMode::Shared).unwrap();

    // A fresh X request parks behind txn 1's S...
    let lm2 = lm.clone();
    let t = std::thread::spawn(move || lm2.acquire(2, &LockKey::table("T"), LockMode::Exclusive));
    await_waiters(&lm, 1);

    // ...but txn 1's own upgrade to X must NOT queue behind it — that
    // would deadlock the upgrade against the fresh waiter forever.
    lm.acquire(1, &k, LockMode::Exclusive).unwrap();

    lm.release_all(1);
    t.join().unwrap().unwrap();
    lm.release_all(2);
}

#[test]
fn intent_upgrade_is_compatible_in_place() {
    let (lm, _) = manager();
    let k = LockKey::table("T");
    // Two object-writers both escalate IS → IX on the table; IX is
    // self-compatible, so neither blocks.
    lm.acquire(1, &k, LockMode::IntentShared).unwrap();
    lm.acquire(2, &k, LockMode::IntentShared).unwrap();
    lm.acquire(1, &k, LockMode::IntentExclusive).unwrap();
    lm.acquire(2, &k, LockMode::IntentExclusive).unwrap();
    lm.release_all(1);
    lm.release_all(2);
}

// ====================================================================
// Deadlocks
// ====================================================================

#[test]
fn two_cycle_deadlock_victims_the_requester() {
    let (lm, stats) = manager();
    let a = LockKey::table("A");
    let b = LockKey::table("B");
    lm.acquire(1, &a, LockMode::Exclusive).unwrap();
    lm.acquire(2, &b, LockMode::Exclusive).unwrap();

    // Txn 2 parks on A (held by 1)...
    let lm2 = lm.clone();
    let t = std::thread::spawn(move || lm2.acquire(2, &LockKey::table("A"), LockMode::Exclusive));
    await_waiters(&lm, 1);

    // ...and txn 1's request for B closes the 2-cycle: 1 → 2 → 1.
    // The requester (1) is the victim, deterministically.
    let err = lm.acquire(1, &b, LockMode::Exclusive).unwrap_err();
    match err {
        TxnError::Deadlock { victim, cycle } => {
            assert_eq!(victim, 1);
            assert_eq!(cycle.first(), Some(&1));
            assert_eq!(cycle.last(), Some(&1));
            assert!(cycle.contains(&2), "cycle {cycle:?} must pass through 2");
        }
        other => panic!("expected deadlock, got {other}"),
    }
    assert_eq!(stats.deadlocks_aborted(), 1);

    // Victim rolls back: releasing its locks lets txn 2 finish.
    lm.release_all(1);
    t.join().unwrap().unwrap();
    lm.release_all(2);
}

#[test]
fn three_cycle_deadlock_detected() {
    let (lm, stats) = manager();
    let a = LockKey::table("A");
    let b = LockKey::table("B");
    let c = LockKey::table("C");
    lm.acquire(1, &a, LockMode::Exclusive).unwrap();
    lm.acquire(2, &b, LockMode::Exclusive).unwrap();
    lm.acquire(3, &c, LockMode::Exclusive).unwrap();

    // 1 parks on B, 2 parks on C — two edges of the triangle.
    let lm1 = lm.clone();
    let t1 = std::thread::spawn(move || lm1.acquire(1, &LockKey::table("B"), LockMode::Exclusive));
    await_waiters(&lm, 1);
    let lm2 = lm.clone();
    let t2 = std::thread::spawn(move || lm2.acquire(2, &LockKey::table("C"), LockMode::Exclusive));
    await_waiters(&lm, 2);

    // 3 → A closes 3 → 1 → 2 → 3. Requester 3 is the victim.
    let err = lm.acquire(3, &a, LockMode::Exclusive).unwrap_err();
    match err {
        TxnError::Deadlock { victim, cycle } => {
            assert_eq!(victim, 3);
            assert!(cycle.contains(&1) && cycle.contains(&2), "cycle {cycle:?}");
        }
        other => panic!("expected deadlock, got {other}"),
    }
    assert_eq!(stats.deadlocks_aborted(), 1);

    // Unwind: victim releases C, txn 2 takes it, then 2's release
    // unblocks 1.
    lm.release_all(3);
    t2.join().unwrap().unwrap();
    lm.release_all(2);
    t1.join().unwrap().unwrap();
    lm.release_all(1);
}

#[test]
fn object_granularity_deadlock() {
    let (lm, _) = manager();
    let t = LockKey::table("T");
    let o1 = LockKey::object("T", handle(1));
    let o2 = LockKey::object("T", handle(2));
    // Classic transfer deadlock: both writers IX the table (compatible),
    // then X opposite objects in opposite orders.
    lm.acquire(1, &t, LockMode::IntentExclusive).unwrap();
    lm.acquire(2, &t, LockMode::IntentExclusive).unwrap();
    lm.acquire(1, &o1, LockMode::Exclusive).unwrap();
    lm.acquire(2, &o2, LockMode::Exclusive).unwrap();

    let lm2 = lm.clone();
    let th = std::thread::spawn(move || {
        lm2.acquire(2, &LockKey::object("T", handle(1)), LockMode::Exclusive)
    });
    await_waiters(&lm, 1);

    let err = lm.acquire(1, &o2, LockMode::Exclusive).unwrap_err();
    assert!(matches!(err, TxnError::Deadlock { victim: 1, .. }), "{err}");

    lm.release_all(1);
    th.join().unwrap().unwrap();
    lm.release_all(2);
}

// ====================================================================
// Fairness
// ====================================================================

#[test]
fn waiting_writer_beats_later_readers() {
    let (lm, _) = manager();
    let k = LockKey::table("T");
    lm.acquire(1, &k, LockMode::Shared).unwrap();

    let (tx, rx) = mpsc::channel::<&'static str>();

    // Writer parks first.
    let lmw = lm.clone();
    let txw = tx.clone();
    let w = std::thread::spawn(move || {
        lmw.acquire(10, &LockKey::table("T"), LockMode::Exclusive)
            .unwrap();
        txw.send("writer").unwrap();
        lmw.release_all(10);
    });
    await_waiters(&lm, 1);

    // Three readers arrive later: FIFO fairness queues them *behind*
    // the writer even though they are compatible with the granted S.
    let mut readers = Vec::new();
    for i in 0..3u64 {
        let lmr = lm.clone();
        let txr = tx.clone();
        readers.push(std::thread::spawn(move || {
            lmr.acquire(20 + i, &LockKey::table("T"), LockMode::Shared)
                .unwrap();
            txr.send("reader").unwrap();
            lmr.release_all(20 + i);
        }));
        await_waiters(&lm, 1 + i as usize + 1);
    }

    // Nobody proceeded yet — the writer blocks on txn 1, the readers on
    // the writer.
    assert!(rx.try_recv().is_err());

    lm.release_all(1);
    assert_eq!(
        rx.recv_timeout(Duration::from_secs(10)).unwrap(),
        "writer",
        "the earlier writer must be granted before later readers"
    );
    for r in readers {
        r.join().unwrap();
    }
    w.join().unwrap();
    assert_eq!(rx.try_iter().count(), 3);
}

#[test]
fn readers_granted_together_after_writer() {
    let (lm, _) = manager();
    let k = LockKey::table("T");
    lm.acquire(1, &k, LockMode::Exclusive).unwrap();

    // Two readers queue behind the X in FIFO order; when it releases
    // they are granted concurrently (both compatible).
    let (granted_tx, granted_rx) = mpsc::channel::<u64>();
    let mut joins = Vec::new();
    let mut gos = Vec::new();
    for i in 0..2u64 {
        let lmr = lm.clone();
        let gtx = granted_tx.clone();
        let (go_tx, go_rx) = mpsc::channel::<()>();
        gos.push(go_tx);
        joins.push(std::thread::spawn(move || {
            lmr.acquire(2 + i, &LockKey::table("T"), LockMode::Shared)
                .unwrap();
            gtx.send(2 + i).unwrap();
            // Hold the S lock until the main thread has seen both
            // grants coexist.
            go_rx.recv().unwrap();
            lmr.release_all(2 + i);
        }));
    }
    await_waiters(&lm, 2);
    lm.release_all(1);
    // Both readers report granted while neither has released: the
    // grants overlap.
    let mut got = [
        granted_rx.recv_timeout(Duration::from_secs(10)).unwrap(),
        granted_rx.recv_timeout(Duration::from_secs(10)).unwrap(),
    ];
    got.sort_unstable();
    assert_eq!(got, [2, 3]);
    for go in gos {
        go.send(()).unwrap();
    }
    for j in joins {
        j.join().unwrap();
    }
}
