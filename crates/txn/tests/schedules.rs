//! Deterministic-interleaving harness for MVCC snapshot reads.
//!
//! Each schedule names 2–4 actors; every actor is a worker thread that
//! owns one [`Session`] and executes steps strictly in the order the
//! scheduler (the test body) hands them over. A step that must block in
//! the lock manager is issued with [`Sched::step_async`] and the
//! scheduler then **waits until the requester is provably parked**
//! (polling [`SharedDatabase::lock_waiters`]) before taking the next
//! step, so every run exercises the exact same interleaving.
//!
//! The schedules pin the snapshot visibility rules: read-only sessions
//! never see uncommitted writes (no dirty reads), re-read the same
//! state for the life of the transaction (repeatable reads), never see
//! a committed transaction's effects split across tables, and acquire
//! **zero** locks while doing so. Writers stay under strict 2PL among
//! themselves — the write-skew-shaped schedule ends in a deadlock
//! victim, not an anomaly — and GC never reclaims a version a live pin
//! can still reach.

use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use aim2::Database;
use aim2_txn::{Session, SharedDatabase, TxnError};

// ====================================================================
// Harness
// ====================================================================

type Step = Box<dyn FnOnce(&mut Session) + Send>;

struct Actor {
    name: &'static str,
    tx: Option<mpsc::Sender<Step>>,
    ack: mpsc::Receiver<()>,
    /// Steps sent whose ack has not been collected yet.
    pending: usize,
    handle: Option<thread::JoinHandle<()>>,
}

/// A scheduler over named single-session worker threads.
struct Sched {
    shared: SharedDatabase,
    actors: Vec<Actor>,
}

const STEP_TIMEOUT: Duration = Duration::from_secs(20);

impl Sched {
    fn new(shared: SharedDatabase, names: &[&'static str]) -> Sched {
        let actors = names
            .iter()
            .map(|&name| {
                let (tx, rx) = mpsc::channel::<Step>();
                let (ack_tx, ack) = mpsc::channel::<()>();
                let mut session = shared.session();
                let handle = thread::Builder::new()
                    .name(format!("actor-{name}"))
                    .spawn(move || {
                        while let Ok(step) = rx.recv() {
                            step(&mut session);
                            let _ = ack_tx.send(());
                        }
                    })
                    .expect("spawn actor");
                Actor {
                    name,
                    tx: Some(tx),
                    ack,
                    pending: 0,
                    handle: Some(handle),
                }
            })
            .collect();
        Sched { shared, actors }
    }

    fn actor(&mut self, name: &str) -> &mut Actor {
        self.actors
            .iter_mut()
            .find(|a| a.name == name)
            .unwrap_or_else(|| panic!("no actor named {name}"))
    }

    /// Run `f` on `name`'s session and wait for it to finish.
    fn step(&mut self, name: &str, f: impl FnOnce(&mut Session) + Send + 'static) {
        self.step_async(name, f);
        self.finish(name);
    }

    /// Hand `f` to `name` without waiting — for steps that are meant to
    /// park in the lock manager. Follow with [`Self::await_blocked`],
    /// and collect the eventual completion with [`Self::finish`].
    fn step_async(&mut self, name: &str, f: impl FnOnce(&mut Session) + Send + 'static) {
        let a = self.actor(name);
        a.pending += 1;
        a.tx.as_ref()
            .expect("actor already shut down")
            .send(Box::new(f))
            .unwrap_or_else(|_| panic!("actor {name} died (step panicked?)"));
    }

    /// Wait until `n` transactions are parked in lock wait queues.
    fn await_blocked(&self, n: usize) {
        let deadline = Instant::now() + STEP_TIMEOUT;
        while self.shared.lock_waiters() < n {
            assert!(
                Instant::now() < deadline,
                "timed out waiting for {n} parked waiter(s)"
            );
            thread::sleep(Duration::from_millis(1));
        }
    }

    /// Collect the acks of every step issued to `name` so far. Panics
    /// (with the actor's own panic surfaced at `shutdown`) on timeout.
    fn finish(&mut self, name: &str) {
        let a = self.actor(name);
        while a.pending > 0 {
            match a.ack.recv_timeout(STEP_TIMEOUT) {
                Ok(()) => a.pending -= 1,
                Err(e) => panic!("actor {name} never finished its step: {e}"),
            }
        }
    }

    /// Stop every actor and propagate any panic raised inside a step.
    fn shutdown(mut self) {
        for a in &mut self.actors {
            a.tx = None; // close the channel; worker loop exits
        }
        for a in &mut self.actors {
            if let Some(h) = a.handle.take() {
                if let Err(payload) = h.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

// ====================================================================
// Fixtures
// ====================================================================

fn bank() -> SharedDatabase {
    let shared = SharedDatabase::new(Database::in_memory());
    shared.with_db(|db| {
        db.execute("CREATE TABLE SAVINGS ( ANO INTEGER, BAL INTEGER )")
            .unwrap();
        db.execute("CREATE TABLE CHECKING ( ANO INTEGER, BAL INTEGER )")
            .unwrap();
        db.execute("INSERT INTO SAVINGS VALUES (1, 100)").unwrap();
        db.execute("INSERT INTO CHECKING VALUES (1, 0)").unwrap();
    });
    shared
}

/// Sum of `BAL` over `table`, read through `s`'s open transaction.
fn bal(s: &mut Session, table: &str) -> i64 {
    let (_, rows) = s.query(&format!("SELECT x.BAL FROM x IN {table}")).unwrap();
    rows.tuples
        .iter()
        .map(|t| t.field(0).unwrap().as_atom().unwrap().as_int().unwrap())
        .sum()
}

// ====================================================================
// Schedules
// ====================================================================

/// R pins its snapshot before W writes: R must not see W's uncommitted
/// in-place heap mutation (no dirty read), must keep seeing its pinned
/// state after W commits (repeatable read), and must do all of it with
/// zero lock acquisitions.
#[test]
fn schedule_no_dirty_read_and_repeatable_read() {
    let shared = bank();
    let mut sched = Sched::new(shared.clone(), &["r", "w"]);

    sched.step("r", |s| {
        s.begin_read_only().unwrap();
        assert_eq!(bal(s, "SAVINGS"), 100);
    });
    sched.step("w", |s| {
        s.begin().unwrap();
        s.execute("UPDATE x IN SAVINGS SET x.BAL = 40 WHERE x.ANO = 1")
            .unwrap();
    });
    // W's X-locked, uncommitted write is invisible and non-blocking.
    sched.step("r", |s| {
        assert_eq!(bal(s, "SAVINGS"), 100, "dirty read");
    });
    sched.step("w", |s| s.commit().unwrap());
    // ... and stays invisible after W commits: the pin holds.
    sched.step("r", |s| {
        assert_eq!(bal(s, "SAVINGS"), 100, "repeatable read broken");
        assert_eq!(s.lock_acquisitions(), 0, "read-only session took a lock");
        s.commit().unwrap();
    });
    // A snapshot pinned after the commit sees the new state.
    sched.step("r", |s| {
        s.begin_read_only().unwrap();
        assert_eq!(bal(s, "SAVINGS"), 40);
        s.commit().unwrap();
    });
    sched.shutdown();
}

/// An aborted writer is never visible: not while running, not after
/// rollback, not to snapshots pinned at any point around it.
#[test]
fn schedule_abort_invisible() {
    let shared = bank();
    let mut sched = Sched::new(shared.clone(), &["r", "w"]);

    sched.step("w", |s| {
        s.begin().unwrap();
        s.execute("UPDATE x IN SAVINGS SET x.BAL = 1 WHERE x.ANO = 1")
            .unwrap();
    });
    // Snapshot pinned *while* W holds its uncommitted write.
    sched.step("r", |s| {
        s.begin_read_only().unwrap();
        assert_eq!(bal(s, "SAVINGS"), 100);
    });
    sched.step("w", |s| s.rollback().unwrap());
    sched.step("r", |s| {
        assert_eq!(bal(s, "SAVINGS"), 100);
        assert_eq!(s.lock_acquisitions(), 0);
        s.commit().unwrap();
    });
    sched.step("r", |s| {
        s.begin_read_only().unwrap();
        assert_eq!(bal(s, "SAVINGS"), 100, "rollback leaked");
        s.commit().unwrap();
    });
    sched.shutdown();
}

/// A transfer across two tables commits atomically: every snapshot sees
/// either both legs or neither, never money in flight.
#[test]
fn schedule_cross_table_atomicity() {
    let shared = bank();
    let mut sched = Sched::new(shared.clone(), &["r1", "r2", "w"]);

    sched.step("r1", |s| {
        s.begin_read_only().unwrap();
        assert_eq!(bal(s, "SAVINGS") + bal(s, "CHECKING"), 100);
    });
    sched.step("w", |s| {
        s.begin().unwrap();
        s.execute("UPDATE x IN SAVINGS SET x.BAL = 90 WHERE x.ANO = 1")
            .unwrap();
    });
    // Between the two legs of the transfer: pinned reader still sees
    // the old world, money conserved.
    sched.step("r1", |s| {
        assert_eq!(bal(s, "SAVINGS"), 100);
        assert_eq!(bal(s, "CHECKING"), 0);
    });
    sched.step("w", |s| {
        s.execute("UPDATE x IN CHECKING SET x.BAL = 10 WHERE x.ANO = 1")
            .unwrap();
        s.commit().unwrap();
    });
    // r1 stays on its pin; r2 pins the post-commit world. Both conserve.
    sched.step("r1", |s| {
        assert_eq!(bal(s, "SAVINGS") + bal(s, "CHECKING"), 100);
        assert_eq!(bal(s, "SAVINGS"), 100, "saw half a commit");
        assert_eq!(s.lock_acquisitions(), 0);
        s.commit().unwrap();
    });
    sched.step("r2", |s| {
        s.begin_read_only().unwrap();
        assert_eq!(bal(s, "SAVINGS"), 90);
        assert_eq!(bal(s, "CHECKING"), 10);
        assert_eq!(s.lock_acquisitions(), 0);
        s.commit().unwrap();
    });
    sched.shutdown();
}

/// Write-skew-shaped schedule: both writers read both tables (S locks),
/// then each tries to write the table the other read. Strict 2PL turns
/// the would-be anomaly into a deadlock with a deterministic victim
/// (the second requester), and the surviving writer's retry-free commit
/// keeps the invariant.
#[test]
fn schedule_write_skew_becomes_deadlock() {
    let shared = bank();
    let mut sched = Sched::new(shared.clone(), &["w1", "w2"]);

    sched.step("w1", |s| {
        s.begin().unwrap();
        assert_eq!(bal(s, "SAVINGS") + bal(s, "CHECKING"), 100);
    });
    sched.step("w2", |s| {
        s.begin().unwrap();
        assert_eq!(bal(s, "SAVINGS") + bal(s, "CHECKING"), 100);
    });
    // w1 wants X on CHECKING, but w2 holds S on it → parks.
    sched.step_async("w1", |s| {
        s.execute("UPDATE x IN CHECKING SET x.BAL = 100 WHERE x.ANO = 1")
            .unwrap();
    });
    sched.await_blocked(1);
    // w2 wants X on SAVINGS, held S by the parked w1 → cycle. The
    // requester is the victim, deterministically.
    sched.step("w2", |s| {
        let err = s
            .execute("UPDATE x IN SAVINGS SET x.BAL = 0 WHERE x.ANO = 1")
            .unwrap_err();
        assert!(
            matches!(err, TxnError::Deadlock { .. }),
            "expected deadlock, got {err}"
        );
        s.rollback().unwrap();
    });
    // w2's rollback released its S locks; w1 unparks and commits.
    sched.finish("w1");
    sched.step("w1", |s| s.commit().unwrap());
    sched.step("w2", |s| {
        s.begin_read_only().unwrap();
        assert_eq!(bal(s, "SAVINGS"), 100);
        assert_eq!(bal(s, "CHECKING"), 100);
        s.commit().unwrap();
    });
    sched.shutdown();
}

/// A pinned snapshot keeps its versions alive across later commits; the
/// unpin triggers the GC pass that reclaims them.
#[test]
fn schedule_gc_keeps_pinned_versions() {
    let shared = bank();
    let mut sched = Sched::new(shared.clone(), &["r", "w"]);
    let stats = shared.stats();

    sched.step("r", |s| {
        s.begin_read_only().unwrap();
        assert_eq!(bal(s, "SAVINGS"), 100);
    });
    // Three commits supersede SAVINGS three times while r's pin holds.
    for v in [70, 80, 90] {
        sched.step("w", move |s| {
            s.begin().unwrap();
            s.execute(&format!(
                "UPDATE x IN SAVINGS SET x.BAL = {v} WHERE x.ANO = 1"
            ))
            .unwrap();
            s.commit().unwrap();
        });
    }
    let reclaimed_while_pinned = stats.mvcc_gc_reclaimed();
    let retained_while_pinned = stats.versions_retained().get();
    // The pinned epoch plus the chain above it must all be retained.
    assert!(
        retained_while_pinned >= 4,
        "pin did not hold its version chain: {retained_while_pinned} retained"
    );
    sched.step("r", |s| {
        assert_eq!(bal(s, "SAVINGS"), 100, "GC stole a pinned version");
        assert_eq!(s.lock_acquisitions(), 0);
        s.commit().unwrap();
    });
    // The unpin ran a GC pass: the superseded versions are gone.
    assert!(
        stats.mvcc_gc_reclaimed() > reclaimed_while_pinned,
        "unpin did not reclaim superseded versions"
    );
    assert!(stats.versions_retained().get() < retained_while_pinned);
    sched.step("r", |s| {
        s.begin_read_only().unwrap();
        assert_eq!(bal(s, "SAVINGS"), 90);
        s.commit().unwrap();
    });
    sched.shutdown();
}

/// A read-only session sails past a writer that is itself parked behind
/// another writer's X lock — the reader touches no lock queue at all.
#[test]
fn schedule_reader_unaffected_by_blocked_writer() {
    let shared = bank();
    let mut sched = Sched::new(shared.clone(), &["r", "w1", "w2"]);

    sched.step("w1", |s| {
        s.begin().unwrap();
        s.execute("UPDATE x IN SAVINGS SET x.BAL = 55 WHERE x.ANO = 1")
            .unwrap();
    });
    sched.step_async("w2", |s| {
        s.begin().unwrap();
        s.execute("UPDATE x IN SAVINGS SET x.BAL = 66 WHERE x.ANO = 1")
            .unwrap();
    });
    sched.await_blocked(1);
    // Both writers are live (one running, one parked) — the reader
    // still completes instantly with the last committed state.
    sched.step("r", |s| {
        s.begin_read_only().unwrap();
        assert_eq!(bal(s, "SAVINGS"), 100);
        assert_eq!(s.lock_acquisitions(), 0, "reader joined a lock queue");
        s.commit().unwrap();
    });
    sched.step("w1", |s| s.commit().unwrap());
    sched.finish("w2");
    sched.step("w2", |s| s.commit().unwrap());
    sched.step("r", |s| {
        s.begin_read_only().unwrap();
        assert_eq!(bal(s, "SAVINGS"), 66, "w2's write lost");
        s.commit().unwrap();
    });
    sched.shutdown();
}

/// A session that commits a write then reopens read-only sees its own
/// commit: the publish advanced the epoch before `commit` returned.
#[test]
fn schedule_read_your_own_commit() {
    let shared = bank();
    let mut sched = Sched::new(shared.clone(), &["a"]);

    sched.step("a", |s| {
        s.begin().unwrap();
        s.execute("UPDATE x IN SAVINGS SET x.BAL = 7 WHERE x.ANO = 1")
            .unwrap();
        s.commit().unwrap();
        s.begin_read_only().unwrap();
        assert_eq!(bal(s, "SAVINGS"), 7, "own commit invisible");
        assert_eq!(s.lock_acquisitions(), 0);
        s.commit().unwrap();
    });
    sched.shutdown();
}

/// Writes inside a read-only transaction are rejected without
/// disturbing the pinned snapshot.
#[test]
fn schedule_read_only_rejects_writes() {
    let shared = bank();
    let mut sched = Sched::new(shared.clone(), &["r"]);

    sched.step("r", |s| {
        s.begin_read_only().unwrap();
        let err = s
            .execute("UPDATE x IN SAVINGS SET x.BAL = 0 WHERE x.ANO = 1")
            .unwrap_err();
        assert!(matches!(err, TxnError::ReadOnly(_)), "got {err}");
        // The snapshot survives the refusal.
        assert_eq!(bal(s, "SAVINGS"), 100);
        assert_eq!(s.lock_acquisitions(), 0);
        s.commit().unwrap();
    });
    sched.shutdown();
}
