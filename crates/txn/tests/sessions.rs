//! Session/transaction semantics: commit visibility, rollback from
//! before-images, object checkout isolation, deadlock-abort-retry, and
//! queries evaluated through a session provider.

use std::sync::mpsc;
use std::time::Duration;

use aim2::Database;
use aim2_exec::Evaluator;
use aim2_model::{Atom, Value};
use aim2_storage::object::ElemLoc;
use aim2_txn::{SharedDatabase, TxnError};

const DDL: &str = "CREATE TABLE ACCOUNTS ( GID INTEGER, \
                   ACCTS { ANO INTEGER, BAL INTEGER } )";

fn setup() -> SharedDatabase {
    let shared = SharedDatabase::new(Database::in_memory());
    shared.with_db(|db| {
        db.execute(DDL).unwrap();
        db.execute("INSERT INTO ACCOUNTS VALUES (1, {(10, 100), (11, 50)})")
            .unwrap();
        db.execute("INSERT INTO ACCOUNTS VALUES (2, {(20, 200)})")
            .unwrap();
    });
    shared
}

fn group_count(shared: &SharedDatabase) -> usize {
    let mut s = shared.session();
    let (_, rows) = s.query("SELECT x.GID FROM x IN ACCOUNTS").unwrap();
    s.commit().unwrap();
    rows.len()
}

#[test]
fn commit_makes_statement_writes_visible() {
    let shared = setup();
    let mut s = shared.session();
    s.execute("INSERT INTO ACCOUNTS VALUES (3, {(30, 7)})")
        .unwrap();
    s.commit().unwrap();
    assert_eq!(group_count(&shared), 3);
}

#[test]
fn rollback_restores_statement_writes() {
    let shared = setup();
    let mut s = shared.session();
    s.execute("INSERT INTO ACCOUNTS VALUES (3, {(30, 7)})")
        .unwrap();
    s.execute("INSERT INTO ACCOUNTS VALUES (4, {(40, 8)})")
        .unwrap();
    s.rollback().unwrap();
    assert_eq!(group_count(&shared), 2);
}

#[test]
fn dropping_session_rolls_back() {
    let shared = setup();
    {
        let mut s = shared.session();
        s.execute("INSERT INTO ACCOUNTS VALUES (9, {(90, 9)})")
            .unwrap();
        // dropped without commit
    }
    assert_eq!(group_count(&shared), 2);
}

#[test]
fn rollback_restores_atom_update_in_place() {
    let shared = setup();
    let mut s = shared.session();
    let handles = s.handles("ACCOUNTS").unwrap();
    let h = handles[0];
    // Overwrite the root atoms (GID) of the first object, twice — only
    // the first before-image counts.
    s.update_atoms("ACCOUNTS", h, &ElemLoc::object(), &[Atom::Int(77)])
        .unwrap();
    s.update_atoms("ACCOUNTS", h, &ElemLoc::object(), &[Atom::Int(88)])
        .unwrap();
    s.rollback().unwrap();

    // Same handle still resolves — the undo was in place — and the GID
    // is back to its original value.
    let mut s2 = shared.session();
    let tuple = s2.read_object("ACCOUNTS", h).unwrap();
    match &tuple.fields[0] {
        Value::Atom(Atom::Int(gid)) => assert_eq!(*gid, 1),
        other => panic!("unexpected GID field {other:?}"),
    }
    s2.commit().unwrap();
}

#[test]
fn rollback_restores_subtuple_atoms() {
    let shared = setup();
    let mut s = shared.session();
    let h = s.handles("ACCOUNTS").unwrap()[0];
    // ACCTS is attribute index 1; element 0 is (10, 100).
    let loc = ElemLoc::object().then(1, 0);
    s.update_atoms("ACCOUNTS", h, &loc, &[Atom::Int(10), Atom::Int(999)])
        .unwrap();
    s.rollback().unwrap();

    let mut s2 = shared.session();
    let (_, rows) = s2
        .query("SELECT y.BAL FROM x IN ACCOUNTS, y IN x.ACCTS WHERE y.ANO = 10")
        .unwrap();
    s2.commit().unwrap();
    assert_eq!(rows.tuples.len(), 1);
    match &rows.tuples[0].fields[0] {
        Value::Atom(Atom::Int(bal)) => assert_eq!(*bal, 100),
        other => panic!("unexpected BAL field {other:?}"),
    }
}

#[test]
fn mixing_statement_and_object_writes_is_rejected() {
    let shared = setup();
    let mut s = shared.session();
    let h = s.handles("ACCOUNTS").unwrap()[0];
    s.update_atoms("ACCOUNTS", h, &ElemLoc::object(), &[Atom::Int(5)])
        .unwrap();
    let err = s
        .execute("INSERT INTO ACCOUNTS VALUES (6, {(60, 6)})")
        .unwrap_err();
    assert!(matches!(err, TxnError::State(_)), "{err}");
    s.rollback().unwrap();

    let mut s2 = shared.session();
    s2.execute("INSERT INTO ACCOUNTS VALUES (6, {(60, 6)})")
        .unwrap();
    let h2 = s2.handles("ACCOUNTS").unwrap()[0];
    let err = s2
        .update_atoms("ACCOUNTS", h2, &ElemLoc::object(), &[Atom::Int(5)])
        .unwrap_err();
    assert!(matches!(err, TxnError::State(_)), "{err}");
    s2.rollback().unwrap();
}

#[test]
fn table_writer_blocks_reader_until_commit() {
    let shared = setup();
    let mut w = shared.session();
    w.execute("INSERT INTO ACCOUNTS VALUES (3, {(30, 3)})")
        .unwrap();

    let (tx, rx) = mpsc::channel::<usize>();
    let shared2 = shared.clone();
    let t = std::thread::spawn(move || {
        let mut r = shared2.session();
        let (_, rows) = r.query("SELECT x.GID FROM x IN ACCOUNTS").unwrap();
        tx.send(rows.len()).unwrap();
        r.commit().unwrap();
    });

    // The reader needs S on ACCOUNTS and must wait for the writer's X.
    assert!(rx.recv_timeout(Duration::from_millis(300)).is_err());
    w.commit().unwrap();
    // After commit it sees the new group — no dirty reads, no lost
    // update: 3 groups.
    assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), 3);
    t.join().unwrap();
}

#[test]
fn object_writers_on_distinct_objects_run_concurrently() {
    let shared = setup();
    let mut s1 = shared.session();
    let handles = s1.handles("ACCOUNTS").unwrap();
    let (h1, h2) = (handles[0], handles[1]);
    s1.update_atoms("ACCOUNTS", h1, &ElemLoc::object(), &[Atom::Int(71)])
        .unwrap();

    // A second session writes the *other* object of the same table
    // without blocking (IX + X on a different root TID).
    let mut s2 = shared.session();
    s2.update_atoms("ACCOUNTS", h2, &ElemLoc::object(), &[Atom::Int(72)])
        .unwrap();
    s2.commit().unwrap();
    s1.commit().unwrap();

    let mut r = shared.session();
    let (_, rows) = r.query("SELECT x.GID FROM x IN ACCOUNTS").unwrap();
    r.commit().unwrap();
    let mut gids: Vec<i64> = rows
        .tuples
        .iter()
        .map(|t| match &t.fields[0] {
            Value::Atom(Atom::Int(g)) => *g,
            other => panic!("unexpected {other:?}"),
        })
        .collect();
    gids.sort_unstable();
    assert_eq!(gids, vec![71, 72]);
}

#[test]
fn deadlock_victim_rolls_back_and_retries() {
    let shared = setup();
    let mut s1 = shared.session();
    let handles = s1.handles("ACCOUNTS").unwrap();
    let (h1, h2) = (handles[0], handles[1]);

    // s1 checks out h1; a second thread checks out h2 then parks on h1.
    s1.checkout("ACCOUNTS", h1).unwrap();
    let shared2 = shared.clone();
    let (parked_tx, parked_rx) = mpsc::channel::<()>();
    let t = std::thread::spawn(move || {
        let mut s2 = shared2.session();
        s2.checkout("ACCOUNTS", h2).unwrap();
        parked_tx.send(()).unwrap();
        // Blocks until s1 aborts, then succeeds.
        s2.checkout("ACCOUNTS", h1).unwrap();
        s2.commit().unwrap();
    });
    parked_rx.recv().unwrap();
    // Wait until the second session is actually parked on h1.
    let stats = shared.stats();
    while stats.lock_waits() == 0 {
        std::thread::yield_now();
    }

    // s1's request for h2 closes the cycle: s1 is the victim.
    let err = s1.checkout("ACCOUNTS", h2).unwrap_err();
    assert!(err.is_retryable(), "{err}");
    assert!(matches!(err, TxnError::Deadlock { .. }));
    s1.rollback().unwrap();
    t.join().unwrap();
    assert_eq!(shared.stats().deadlocks_aborted(), 1);

    // Retry after the other transaction committed: no contention left.
    let mut s1 = shared.session();
    s1.checkout("ACCOUNTS", h1).unwrap();
    s1.checkout("ACCOUNTS", h2).unwrap();
    s1.commit().unwrap();
}

#[test]
fn evaluator_runs_against_a_session_provider() {
    let shared = setup();
    let mut s = shared.session();
    let q = match aim2_lang::parse_stmt("SELECT x.GID FROM x IN ACCOUNTS WHERE x.GID = 2").unwrap()
    {
        aim2_lang::Stmt::Query(q) => q,
        other => panic!("unexpected stmt {other:?}"),
    };
    // The exec evaluator takes the session as its TableProvider: scans
    // acquire S table locks, so plan evaluation is transactional.
    let (_, rows) = Evaluator::new(&mut s).eval_query(&q).unwrap();
    assert_eq!(rows.len(), 1);
    // The provider path left the session inside a transaction holding
    // the S lock; a concurrent statement writer must block until commit.
    assert!(s.txn_id().is_some());
    s.commit().unwrap();
}

#[test]
fn group_commit_counts_batches() {
    // On-disk database: commits append page before-images and sync via
    // the group committer; every sequential commit is its own batch.
    let dir = std::env::temp_dir().join(format!("aim2_txn_gc_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = aim2::DbConfig {
        data_dir: Some(dir.clone()),
        ..Default::default()
    };
    let shared = SharedDatabase::new(Database::with_config(cfg));
    shared.with_db(|db| {
        db.execute(DDL).unwrap();
        db.execute("INSERT INTO ACCOUNTS VALUES (1, {(10, 100)})")
            .unwrap();
        // Checkpoint: the pages now exist on disk, so later writes to
        // them must append before-images (freshly allocated pages never
        // need one — recovery re-reads the checkpointed catalog).
        db.checkpoint().unwrap();
    });
    let stats = shared.stats();
    let before = stats.group_commit_batches();
    for bal in [101, 102, 103] {
        let mut s = shared.session();
        s.execute(&format!(
            "UPDATE x IN ACCOUNTS SET x.GID = {bal} WHERE x.GID >= 1"
        ))
        .unwrap();
        s.commit().unwrap();
    }
    let batches = stats.group_commit_batches() - before;
    assert!(
        (1..=3).contains(&batches),
        "expected 1..=3 group commit batches, got {batches}"
    );
    assert!(stats.wal_appends() >= 1, "commits must log before-images");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn integrity_check_quarantines_but_table_keeps_serving() {
    // Bit-rot one object's data page on disk; after the walker runs,
    // that object is quarantined while its neighbours — and the rest of
    // the table — keep serving through sessions.
    let dir = std::env::temp_dir().join(format!("aim2_txn_quar_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = aim2::DbConfig {
        data_dir: Some(dir.clone()),
        page_size: 512,
        ..Default::default()
    };
    let shared = SharedDatabase::new(Database::with_config(cfg));
    let (h1, h2, victim_page) = shared.with_db(|db| {
        db.execute("CREATE TABLE DOCS ( ID INTEGER, BODY STRING, PARTS { PNO INTEGER } )")
            .unwrap();
        // Large bodies force each object onto its own data page(s).
        db.execute(&format!(
            "INSERT INTO DOCS VALUES (1, '{}', {{(1)}})",
            "A".repeat(300)
        ))
        .unwrap();
        db.execute(&format!(
            "INSERT INTO DOCS VALUES (2, '{}', {{(2)}})",
            "B".repeat(300)
        ))
        .unwrap();
        db.checkpoint().unwrap();
        let handles = db.handles("DOCS").unwrap();
        let os = db.object_store_mut("DOCS").unwrap();
        let mut pages = |h| -> std::collections::BTreeSet<aim2_storage::PageId> {
            os.root_md(h)
                .unwrap()
                .page_list
                .iter()
                .map(|(_, p)| p)
                .collect()
        };
        let p1 = pages(handles[0]);
        let p2 = pages(handles[1]);
        let victim = *p2
            .difference(&p1)
            .next()
            .expect("object 2 has its own page");
        (handles[0], handles[1], victim)
    });
    // Flip one bit in the victim page, in place on disk.
    let seg = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .find(|e| e.file_name().to_string_lossy().ends_with("_DOCS.seg"))
        .expect("table segment file")
        .path();
    use std::io::{Read, Seek, SeekFrom, Write};
    let mut f = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(&seg)
        .unwrap();
    let off = victim_page.0 as u64 * 512 + 100;
    let mut b = [0u8; 1];
    f.seek(SeekFrom::Start(off)).unwrap();
    f.read_exact(&mut b).unwrap();
    b[0] ^= 0x40;
    f.seek(SeekFrom::Start(off)).unwrap();
    f.write_all(&b).unwrap();
    drop(f);

    let report = shared.integrity_check().unwrap();
    assert!(!report.is_clean(), "bit rot must be detected:\n{report}");

    let mut s = shared.session();
    match s.read_object("DOCS", h2) {
        Err(TxnError::Db(aim2::DbError::ObjectQuarantined { table, object })) => {
            assert_eq!(table, "DOCS");
            assert_eq!(object, h2.0);
        }
        other => panic!("expected quarantine error, got {other:?}"),
    }
    // The neighbour object and table scans keep working.
    let t = s.read_object("DOCS", h1).unwrap();
    assert_eq!(t.fields[0], Value::Atom(Atom::Int(1)));
    let (_, rows) = s.query("SELECT x.ID FROM x IN DOCS").unwrap();
    assert_eq!(rows.len(), 1, "scan serves the surviving object only");
    s.commit().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
