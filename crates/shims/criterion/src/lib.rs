//! Offline shim for the `criterion` crate.
//!
//! The build container has no crates.io access, so this crate supplies
//! the API subset the workspace's benches use: `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Bencher::iter`], and [`black_box`].
//!
//! It is a *runner*, not a statistics engine: each benchmark body is
//! executed a fixed, small number of timed iterations and the median
//! wall-clock time is printed. That keeps `cargo bench` useful for
//! relative comparisons and keeps `cargo bench --no-run` (the CI check)
//! compiling the same bench sources, without upstream's plotting and
//! bootstrap machinery.

use std::fmt::Display;
use std::time::Instant;

/// Opaque measurement context handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one("", id, 10, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &self.name,
            &id.into_benchmark_id().0,
            self.sample_size,
            &mut f,
        );
        self
    }

    /// Benchmark a closure that receives an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &self.name,
            &id.into_benchmark_id().0,
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Finish the group (no-op in the shim).
    pub fn finish(self) {}
}

/// A benchmark identifier (function name and/or parameter rendering).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Identifier that is just the parameter rendering.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

/// Conversion into [`BenchmarkId`] (both `&str` and `BenchmarkId` work).
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Timing harness passed to benchmark bodies.
pub struct Bencher {
    samples: Vec<u128>,
    sample_size: usize,
}

impl Bencher {
    /// Time `sample_size` executions of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed().as_nanos());
        }
    }
}

fn run_one(group: &str, id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    b.samples.sort_unstable();
    let median = b.samples.get(b.samples.len() / 2).copied().unwrap_or(0);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    println!(
        "bench {label:<56} median {:>12} ns ({} samples)",
        median,
        b.samples.len()
    );
}

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declare a group of benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_bodies_and_counts_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("a", 7).0, "a/7");
        assert_eq!(BenchmarkId::from_parameter("SS1").0, "SS1");
    }
}
