//! Offline shim for the `proptest` crate.
//!
//! The build container has no crates.io access, so this crate implements
//! the subset of proptest the workspace's property tests use, on top of a
//! deterministic seed-driven runner:
//!
//! * the [`Strategy`] trait with `prop_map`, `boxed`, and
//!   `prop_recursive`;
//! * strategies for integer/float/bool primitives ([`any`]), half-open
//!   ranges, tuples, `&'static str` regex-ish character classes,
//!   [`prop::collection::vec`], [`prop::option::of`], [`Just`], and
//!   [`prop_oneof!`];
//! * the [`proptest!`] macro, [`prop_assert!`] / [`prop_assert_eq!`], and
//!   [`ProptestConfig::with_cases`];
//! * a regression-seed mechanism compatible in spirit with upstream:
//!   `proptest-regressions/<test-file-stem>.txt` files holding `seed N`
//!   lines are replayed *first* on every run, and the `PROPTEST_CASES`
//!   environment variable overrides the per-test case count (CI pins it
//!   for deterministic runtime).
//!
//! There is no shrinking: a failing case reports the seed that produced
//! it, which can be pinned in a regression file to reproduce exactly.

use std::cell::RefCell;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::rc::Rc;

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRunner,
    };
}

// =====================================================================
// Deterministic RNG
// =====================================================================

/// The runner's deterministic generator (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator reproducing exactly the stream of `seed`.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

// =====================================================================
// Strategy
// =====================================================================

/// Recursion budget: strategies built by `prop_recursive` stop expanding
/// once `depth` reaches this many levels.
const MAX_DEPTH: u32 = 8;

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value. `depth` tracks recursive-strategy nesting.
    fn generate(&self, rng: &mut TestRng, depth: u32) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a cheaply clonable strategy handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Recursive strategies: `recurse` receives a handle generating the
    /// *inner* levels and returns the strategy for one outer level; the
    /// result nests to roughly `depth` levels over `self` as the leaves.
    /// (`desired_size` and `expected_branch_size` are accepted for API
    /// compatibility and ignored — the shim bounds recursion by depth.)
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
    {
        Recursive {
            base: self.boxed(),
            levels: depth.min(MAX_DEPTH),
            expand: Rc::new(move |inner| recurse(inner).boxed()),
        }
    }
}

trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng, depth: u32) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng, depth: u32) -> S::Value {
        self.generate(rng, depth)
    }
}

/// Type-erased, clonable strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng, depth: u32) -> T {
        self.0.dyn_generate(rng, depth)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _: &mut TestRng, _: u32) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng, depth: u32) -> O {
        (self.f)(self.inner.generate(rng, depth))
    }
}

/// Uniform choice among alternatives (the [`prop_oneof!`] macro).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Choose uniformly among `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one branch");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng, depth: u32) -> T {
        let i = rng.below(self.options.len());
        self.options[i].generate(rng, depth)
    }
}

/// `prop_recursive` adapter: a tower of `levels` expansions over `base`.
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    levels: u32,
    #[allow(clippy::type_complexity)]
    expand: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng, depth: u32) -> T {
        // Build leaf-up: each level is a 50/50 mix of the base strategy
        // and one more expansion layer, so generated values have varied
        // nesting depth but never exceed `levels`.
        let mut s = self.base.clone();
        let levels = self.levels.saturating_sub(depth);
        for _ in 0..levels {
            if rng.below(2) == 0 {
                s = (self.expand)(s);
            }
        }
        s.generate(rng, depth + 1)
    }
}

// ---------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------

/// Strategy for "any value of `T`" — see [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// Types with a default full-domain strategy.
pub trait Arbitrary: Sized {
    /// One arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng, _: u32) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Mix edge values in generously: property tests live on
                // boundaries.
                match rng.below(8) {
                    0 => 0 as $t,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    3 => 1 as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.below(2) == 0
    }
}

macro_rules! impl_arbitrary_float {
    ($t:ty, $bits:ty) => {
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Upstream's default float domain excludes NaN (tests
                // unwrap `partial_cmp`); mirror that.
                loop {
                    let v = match rng.below(8) {
                        0 => 0.0,
                        1 => -0.0,
                        2 => <$t>::INFINITY,
                        3 => <$t>::NEG_INFINITY,
                        4 => <$t>::MIN_POSITIVE,
                        _ => <$t>::from_bits(rng.next_u64() as $bits),
                    };
                    if !v.is_nan() {
                        return v;
                    }
                }
            }
        }
    };
}

impl_arbitrary_float!(f32, u32);
impl_arbitrary_float!(f64, u64);

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng, _: u32) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng, _: u32) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // 53 high bits give a uniform unit double.
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = (self.start as f64 + unit * (self.end as f64 - self.start as f64)) as $t;
                // Float rounding can land exactly on `end`; keep half-open.
                if v >= self.end { self.start } else { v.max(self.start) }
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng, depth: u32) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng, depth),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------
// String strategies from regex-ish patterns
// ---------------------------------------------------------------------

/// One parsed `[class]{m,n}` element of a string pattern.
#[derive(Debug, Clone)]
struct PatternPart {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// Parse the pattern subset the workspace uses: character classes
/// (`[a-z0-9 /.']`), the printable-class escape `\PC`, literal
/// characters, and the quantifiers `{n}`, `{m,n}`, `*`, `+`, `?`.
fn parse_pattern(pat: &str) -> Vec<PatternPart> {
    let chars: Vec<char> = pat.chars().collect();
    let mut parts = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pat:?}"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        set.extend((lo..=hi).filter(|c| c.is_ascii()));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            }
            '\\' => {
                // Only `\PC` (printable char) is supported — it is the
                // one escape the tests use.
                if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') {
                    i += 3;
                    (' '..='~').collect()
                } else {
                    panic!("unsupported escape in pattern {pat:?}");
                }
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pat:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("pattern quantifier"),
                        n.trim().parse().expect("pattern quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("pattern quantifier");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            _ => (1, 1),
        };
        assert!(!set.is_empty(), "empty character class in pattern {pat:?}");
        parts.push(PatternPart {
            chars: set,
            min,
            max,
        });
    }
    parts
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng, _: u32) -> String {
        let mut out = String::new();
        for part in parse_pattern(self) {
            let n = part.min + rng.below(part.max - part.min + 1);
            for _ in 0..n {
                out.push(part.chars[rng.below(part.chars.len())]);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// prop:: namespace (collection, option)
// ---------------------------------------------------------------------

pub mod prop {
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for vectors with lengths drawn from `len`.
        pub struct VecStrategy<S> {
            elem: S,
            len: Range<usize>,
        }

        /// `vec(elem, m..n)`: vectors of `m..n` elements of `elem`.
        pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng, depth: u32) -> Vec<S::Value> {
                let span = self.len.end.saturating_sub(self.len.start).max(1);
                let n = self.len.start + rng.below(span);
                (0..n).map(|_| self.elem.generate(rng, depth)).collect()
            }
        }
    }

    pub mod option {
        use crate::{Strategy, TestRng};

        /// Strategy for `Option` values.
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// `of(s)`: `None` or `Some` of `s` (3:1 in favour of `Some`,
        /// matching upstream's default weighting).
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng, depth: u32) -> Option<S::Value> {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng, depth))
                }
            }
        }
    }
}

// =====================================================================
// Runner
// =====================================================================

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run (before the `PROPTEST_CASES`
    /// environment override, which wins when set).
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }

    /// Case count after the `PROPTEST_CASES` environment override.
    pub fn resolved_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

/// A test-case failure (what `prop_assert!` raises).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Drives one property test: regression seeds first, then `cases`
/// deterministically derived fresh seeds.
pub struct TestRunner {
    name: String,
    regression_file: PathBuf,
    seeds: Vec<(u64, bool)>, // (seed, is_regression)
}

impl TestRunner {
    /// Build the seed schedule for test `name` defined in `file` of the
    /// crate at `manifest_dir`.
    pub fn new(name: &str, manifest_dir: &str, file: &str, cases: u32) -> TestRunner {
        let stem = Path::new(file)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "unknown".into());
        let regression_file = Path::new(manifest_dir)
            .join("proptest-regressions")
            .join(format!("{stem}.txt"));
        let mut seeds = Vec::new();
        if let Ok(text) = std::fs::read_to_string(&regression_file) {
            for line in text.lines() {
                let line = line.trim();
                if let Some(rest) = line.strip_prefix("seed ") {
                    if let Ok(s) = rest.trim().parse::<u64>() {
                        seeds.push((s, true));
                    }
                }
            }
        }
        // Base seed: stable hash of the test name, so different tests in
        // one file explore different streams but every run is identical.
        let mut base: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            base ^= b as u64;
            base = base.wrapping_mul(0x0000_0100_0000_01B3);
        }
        for i in 0..cases {
            seeds.push((base.wrapping_add(i as u64), false));
        }
        TestRunner {
            name: name.to_string(),
            regression_file,
            seeds,
        }
    }

    /// Run `f` once per scheduled seed; panics with the seed on the first
    /// failing case.
    pub fn run(&self, f: impl Fn(&mut TestRng) -> Result<(), TestCaseError>) {
        for &(seed, is_regression) in &self.seeds {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let mut rng = TestRng::from_seed(seed);
                f(&mut rng)
            }));
            let kind = if is_regression {
                "regression"
            } else {
                "random"
            };
            match outcome {
                Ok(Ok(())) => {}
                Ok(Err(e)) => panic!(
                    "[{}] {kind} case failed (seed {seed}): {e}\n\
                     pin it by adding `seed {seed}` to {}",
                    self.name,
                    self.regression_file.display()
                ),
                Err(payload) => {
                    eprintln!(
                        "[{}] {kind} case panicked (seed {seed}); \
                         pin it by adding `seed {seed}` to {}",
                        self.name,
                        self.regression_file.display()
                    );
                    resume_unwind(payload);
                }
            }
        }
    }
}

thread_local! {
    /// Set while a `proptest!`-generated test body runs (lets nested
    /// helpers know the active seed for diagnostics).
    pub static ACTIVE_SEED: RefCell<Option<u64>> = const { RefCell::new(None) };
}

// =====================================================================
// Macros
// =====================================================================

/// Declare property tests. Supports the upstream surface the workspace
/// uses: an optional `#![proptest_config(...)]` header followed by
/// `#[test] fn name(bindings in strategies) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $(#[test] fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let runner = $crate::TestRunner::new(
                    stringify!($name),
                    env!("CARGO_MANIFEST_DIR"),
                    file!(),
                    cfg.resolved_cases(),
                );
                runner.run(|__rng: &mut $crate::TestRng| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $(let $pat = $crate::Strategy::generate(&($strat), __rng, 0);)*
                    { $body }
                    Ok(())
                });
            }
        )*
    };
}

/// Assert a condition inside a `proptest!` body (fails the case, with the
/// seed reported, instead of panicking outright).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__l, __r) => $crate::prop_assert!(
                *__l == *__r,
                "assertion failed: {:?} == {:?}",
                __l,
                __r
            ),
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        match (&$a, &$b) {
            (__l, __r) => $crate::prop_assert!(
                *__l == *__r,
                "assertion failed: {:?} == {:?} — {}",
                __l,
                __r,
                format!($($fmt)*)
            ),
        }
    };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__l, __r) => {
                $crate::prop_assert!(*__l != *__r, "assertion failed: {:?} != {:?}", __l, __r)
            }
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_vecs_generate_in_bounds() {
        let mut rng = super::TestRng::from_seed(1);
        let s = prop::collection::vec(0u8..10, 2..5);
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut rng, 0);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn pattern_strategies_match_their_class() {
        let mut rng = super::TestRng::from_seed(2);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-c]{2,4}", &mut rng, 0);
            assert!((2..=4).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            let p = Strategy::generate(&"\\PC{0,6}", &mut rng, 0);
            assert!(p.len() <= 6);
            assert!(p.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn oneof_map_and_recursive_terminate() {
        #[derive(Debug, Clone, PartialEq)]
        enum E {
            Leaf(i32),
            Pair(Box<E>, Box<E>),
        }
        fn leaf() -> impl Strategy<Value = E> {
            (0i32..50).prop_map(E::Leaf)
        }
        let strat = leaf().prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| E::Pair(Box::new(a), Box::new(b)))
        });
        let mut rng = super::TestRng::from_seed(3);
        let mut saw_pair = false;
        for _ in 0..100 {
            if let E::Pair(..) = Strategy::generate(&strat, &mut rng, 0) {
                saw_pair = true;
            }
        }
        assert!(saw_pair, "recursion must actually recurse sometimes");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(x in 0i64..100, s in "[a-z]{1,3}") {
            prop_assert!(x >= 0);
            prop_assert!(!s.is_empty() && s.len() <= 3, "bad len: {}", s.len());
            prop_assert_eq!(x, x);
            prop_assert_ne!(s.len(), 0);
        }
    }
}
