//! Offline shim for the `rand` crate.
//!
//! The container this repo builds in has no crates.io access, so the
//! workspace vendors the *tiny* subset of `rand` it actually uses:
//! [`rngs::StdRng`] seeded through [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] / [`Rng::gen_bool`] over half-open integer ranges.
//!
//! The generator is splitmix64 (public domain, Vigna): statistically fine
//! for workload generation and — crucially for the benches and the
//! seeded tests — fully deterministic for a given seed. It does *not*
//! match upstream `StdRng`'s stream (upstream never guaranteed stream
//! stability across versions either), and it is not cryptographic.

use std::ops::Range;

/// Minimal core-RNG trait: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `gen_range` can sample uniformly from a `Range`.
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform sample from `[low, high)`.
    fn sample_range(rng: &mut dyn FnMut() -> u64, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn FnMut() -> u64, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                // Modulo bias is irrelevant for test workloads; spans here
                // are tiny compared to 2^64.
                let span = (high as i128 - low as i128) as u128;
                let off = (rng() as u128) % span;
                (low as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing convenience methods, as in `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        let mut f = || self.next_u64();
        T::sample_range(&mut f, range.start, range.end)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        // 53 high bits give a uniform double in [0, 1).
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Vigna, public domain).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(-5..5i64);
            assert!((-5..5).contains(&v));
            let u = r.gen_range(3..4usize);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let heads = (0..2000).filter(|_| r.gen_bool(0.5)).count();
        assert!((600..1400).contains(&heads), "roughly fair: {heads}");
    }
}
