//! Inspectable physical plans.
//!
//! The evaluator lowers every query into a [`PhysicalPlan`] — an
//! operator tree of Scan / IndexScan / Filter / Project / NestEval /
//! OrderedSubscript nodes — before pulling a single row. The plan
//! records the pushdown contract each scan was opened with (pushed
//! conjuncts, kept and pruned subtable paths) and, once the cursor is
//! open, the access path the provider actually chose ("full scan",
//! "index f on …"). `Database::last_plan()` and the shell's `.explain`
//! render it.

use aim2_lang::ast::{Expr, Lit};
use std::fmt;

/// One physical operator.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysOp {
    /// Cursor scan of a stored table (sequential over the object
    /// directory / heap).
    Scan {
        var: String,
        table: String,
        asof: Option<String>,
        /// Chosen by the provider when the cursor opens.
        access_path: String,
        /// Indexable conjuncts handed down in the `ScanRequest`.
        pushed: Vec<String>,
        /// Subtable paths the projection keeps (decoded).
        kept: Vec<String>,
        /// Subtable paths partial retrieval skips (never decoded).
        pruned: Vec<String>,
    },
    /// Scan pre-restricted by an index (same fields; the access path
    /// names the index and candidate count).
    IndexScan {
        var: String,
        table: String,
        access_path: String,
        pushed: Vec<String>,
        kept: Vec<String>,
        pruned: Vec<String>,
    },
    /// Batch-at-a-time scan over a tiered table: cold columnar blocks
    /// (zone-map pruned before decode, dictionary-filtered per batch)
    /// followed by the hot heap remainder.
    ColumnarScan {
        var: String,
        table: String,
        access_path: String,
        pushed: Vec<String>,
        kept: Vec<String>,
        pruned: Vec<String>,
    },
    /// Residual predicate evaluation on each pulled combination.
    Filter { pred: String },
    /// Result-tuple construction from the SELECT items.
    Project { items: Vec<String> },
    /// Iteration over a table-valued attribute (`y IN x.PROJECTS`).
    NestEval { var: String, source: String },
    /// Positional access into an ordered subtable (`x.AUTHORS[1]`).
    OrderedSubscript { expr: String },
}

/// A node and its children, stored in an arena.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanNode {
    pub op: PhysOp,
    pub children: Vec<usize>,
}

/// The operator tree for one query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhysicalPlan {
    pub nodes: Vec<PlanNode>,
    pub root: usize,
}

impl PhysicalPlan {
    /// Append a node, returning its index.
    pub fn push(&mut self, op: PhysOp, children: Vec<usize>) -> usize {
        self.nodes.push(PlanNode { op, children });
        self.nodes.len() - 1
    }

    /// Record the access path the provider chose for `var`'s scan; an
    /// index access path upgrades the node to an `IndexScan`.
    pub fn set_access_path(&mut self, scan_var: &str, path: &str) {
        for node in &mut self.nodes {
            match &mut node.op {
                PhysOp::Scan {
                    var,
                    table,
                    access_path,
                    pushed,
                    kept,
                    pruned,
                    asof,
                } if var == scan_var => {
                    if path.starts_with("index") || path.starts_with("text index") {
                        node.op = PhysOp::IndexScan {
                            var: var.clone(),
                            table: table.clone(),
                            access_path: path.to_string(),
                            pushed: std::mem::take(pushed),
                            kept: std::mem::take(kept),
                            pruned: std::mem::take(pruned),
                        };
                    } else if path.starts_with("columnar") {
                        node.op = PhysOp::ColumnarScan {
                            var: var.clone(),
                            table: table.clone(),
                            access_path: path.to_string(),
                            pushed: std::mem::take(pushed),
                            kept: std::mem::take(kept),
                            pruned: std::mem::take(pruned),
                        };
                    } else {
                        let _ = asof;
                        *access_path = path.to_string();
                    }
                    return;
                }
                PhysOp::IndexScan {
                    var, access_path, ..
                }
                | PhysOp::ColumnarScan {
                    var, access_path, ..
                } if var == scan_var => {
                    *access_path = path.to_string();
                    return;
                }
                _ => {}
            }
        }
    }

    /// One node's display line, without indentation — shared by the
    /// plain `Display` tree and the EXPLAIN ANALYZE annotated tree.
    pub fn node_label(&self, idx: usize) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        fn scan_details(s: &mut String, pushed: &[String], kept: &[String], pruned: &[String]) {
            if !pushed.is_empty() {
                let _ = write!(s, "; pushed [{}]", pushed.join(", "));
            }
            if !kept.is_empty() {
                let _ = write!(s, "; reads [{}]", kept.join(", "));
            }
            if !pruned.is_empty() {
                let _ = write!(s, "; partial retrieval skips [{}]", pruned.join(", "));
            }
        }
        match &self.nodes[idx].op {
            PhysOp::Scan {
                var,
                table,
                asof,
                access_path,
                pushed,
                kept,
                pruned,
            } => {
                let _ = write!(s, "Scan {table} as {var}");
                if let Some(d) = asof {
                    let _ = write!(s, " ASOF {d}");
                }
                let _ = write!(s, " — access path: {access_path}");
                scan_details(&mut s, pushed, kept, pruned);
            }
            PhysOp::IndexScan {
                var,
                table,
                access_path,
                pushed,
                kept,
                pruned,
            } => {
                let _ = write!(s, "IndexScan {table} as {var} — {access_path}");
                scan_details(&mut s, pushed, kept, pruned);
            }
            PhysOp::ColumnarScan {
                var,
                table,
                access_path,
                pushed,
                kept,
                pruned,
            } => {
                let _ = write!(s, "ColumnarScan {table} as {var} — {access_path}");
                scan_details(&mut s, pushed, kept, pruned);
            }
            PhysOp::Filter { pred } => {
                let _ = write!(s, "Filter [{pred}]");
            }
            PhysOp::Project { items } => {
                let _ = write!(s, "Project [{}]", items.join(", "));
            }
            PhysOp::NestEval { var, source } => {
                let _ = write!(s, "NestEval {var} IN {source}");
            }
            PhysOp::OrderedSubscript { expr } => {
                let _ = write!(s, "OrderedSubscript {expr}");
            }
        }
        s
    }

    /// The access path of the first (root) scan, if any.
    pub fn root_access_path(&self) -> Option<&str> {
        self.nodes.iter().find_map(|n| match &n.op {
            PhysOp::Scan { access_path, .. }
            | PhysOp::IndexScan { access_path, .. }
            | PhysOp::ColumnarScan { access_path, .. } => Some(access_path.as_str()),
            _ => None,
        })
    }
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.nodes.is_empty() {
            return write!(f, "(empty plan)");
        }
        fn rec(
            plan: &PhysicalPlan,
            idx: usize,
            depth: usize,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            writeln!(f, "{}{}", "  ".repeat(depth), plan.node_label(idx))?;
            for &c in &plan.nodes[idx].children {
                rec(plan, c, depth + 1, f)?;
            }
            Ok(())
        }
        rec(self, self.root, 0, f)
    }
}

/// Render an expression back to query-like text (for plan display).
pub fn render_expr(e: &Expr) -> String {
    match e {
        Expr::Lit(l) => render_lit(l),
        Expr::PathRef { var, path } => {
            if path.is_root() {
                var.clone()
            } else {
                format!("{var}.{path}")
            }
        }
        Expr::Subscript {
            var,
            path,
            index,
            rest,
        } => {
            let mut s = format!("{var}.{path}[{index}]");
            if !rest.is_root() {
                s.push('.');
                s.push_str(&rest.to_string());
            }
            s
        }
        Expr::Cmp { op, lhs, rhs } => {
            format!("{} {} {}", render_expr(lhs), op.symbol(), render_expr(rhs))
        }
        Expr::And(a, b) => format!("{} AND {}", render_expr(a), render_expr(b)),
        Expr::Or(a, b) => format!("({} OR {})", render_expr(a), render_expr(b)),
        Expr::Not(x) => format!("NOT ({})", render_expr(x)),
        Expr::Exists { binding, pred } => {
            let src = render_source(binding);
            match pred {
                Some(p) => format!("EXISTS {} IN {src} : {}", binding.var, render_expr(p)),
                None => format!("EXISTS {} IN {src}", binding.var),
            }
        }
        Expr::Forall { binding, pred } => {
            format!(
                "ALL {} IN {} : {}",
                binding.var,
                render_source(binding),
                render_expr(pred)
            )
        }
        Expr::Contains { expr, pattern } => {
            format!("{} CONTAINS '{pattern}'", render_expr(expr))
        }
    }
}

fn render_source(b: &aim2_lang::ast::Binding) -> String {
    match &b.source {
        aim2_lang::ast::Source::Table(t) => t.clone(),
        aim2_lang::ast::Source::PathOf { var, path } => format!("{var}.{path}"),
    }
}

fn render_lit(l: &Lit) -> String {
    match l {
        Lit::Int(i) => i.to_string(),
        Lit::Float(x) => x.to_string(),
        Lit::Str(s) => format!("'{s}'"),
        Lit::Bool(b) => b.to_string(),
        Lit::Relation(_) => "{…}".to_string(),
        Lit::List(_) => "<…>".to_string(),
    }
}

/// Collect the subscript expressions of `e` (for OrderedSubscript
/// plan nodes).
pub fn collect_subscripts(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::Subscript { .. } => out.push(render_expr(e)),
        Expr::And(a, b) | Expr::Or(a, b) => {
            collect_subscripts(a, out);
            collect_subscripts(b, out);
        }
        Expr::Not(x) => collect_subscripts(x, out),
        Expr::Cmp { lhs, rhs, .. } => {
            collect_subscripts(lhs, out);
            collect_subscripts(rhs, out);
        }
        Expr::Exists { pred, .. } => {
            if let Some(p) = pred {
                collect_subscripts(p, out);
            }
        }
        Expr::Forall { pred, .. } => collect_subscripts(pred, out),
        Expr::Contains { expr, .. } => collect_subscripts(expr, out),
        Expr::Lit(_) | Expr::PathRef { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aim2_lang::parser::parse_query;

    #[test]
    fn renders_where_clause_back_to_text() {
        let q = parse_query(
            "SELECT x.DNO FROM x IN DEPARTMENTS \
             WHERE EXISTS y IN x.EQUIP : y.TYPE = 'PC/AT' AND x.BUDGET >= 100",
        )
        .unwrap();
        let s = render_expr(q.where_.as_ref().unwrap());
        assert!(s.contains("EXISTS y IN x.EQUIP"));
        assert!(s.contains("y.TYPE = 'PC/AT'"));
        assert!(s.contains("x.BUDGET >= 100"));
    }

    #[test]
    fn index_access_path_upgrades_scan() {
        let mut plan = PhysicalPlan::default();
        let scan = plan.push(
            PhysOp::Scan {
                var: "x".into(),
                table: "T".into(),
                asof: None,
                access_path: "full scan".into(),
                pushed: vec!["A = 1".into()],
                kept: vec![],
                pruned: vec![],
            },
            vec![],
        );
        plan.root = plan.push(
            PhysOp::Project {
                items: vec!["x.A".into()],
            },
            vec![scan],
        );
        plan.set_access_path("x", "index i on T(A) = 1: 1 candidate object(s) of 9");
        assert!(matches!(plan.nodes[scan].op, PhysOp::IndexScan { .. }));
        let shown = plan.to_string();
        assert!(shown.contains("IndexScan T as x"));
        assert!(shown.contains("1 candidate object(s) of 9"));
    }

    #[test]
    fn columnar_access_path_upgrades_scan() {
        let mut plan = PhysicalPlan::default();
        let scan = plan.push(
            PhysOp::Scan {
                var: "x".into(),
                table: "T".into(),
                asof: None,
                access_path: "full scan".into(),
                pushed: vec!["K = 7".into()],
                kept: vec![],
                pruned: vec![],
            },
            vec![],
        );
        plan.root = plan.push(
            PhysOp::Project {
                items: vec!["x.V".into()],
            },
            vec![scan],
        );
        plan.set_access_path(
            "x",
            "columnar scan: 8 cold blocks (7 pruned by zone maps) + 3 hot rows",
        );
        assert!(matches!(plan.nodes[scan].op, PhysOp::ColumnarScan { .. }));
        let shown = plan.to_string();
        assert!(shown.contains("ColumnarScan T as x"), "{shown}");
        assert!(shown.contains("7 pruned by zone maps"), "{shown}");
        assert!(shown.contains("pushed [K = 7]"), "{shown}");
        assert_eq!(
            plan.root_access_path().unwrap(),
            "columnar scan: 8 cold blocks (7 pruned by zone maps) + 3 hot rows"
        );
    }

    #[test]
    fn subscripts_collected() {
        let q = parse_query("SELECT x.REPNO FROM x IN REPORTS WHERE x.AUTHORS[1] = 'J'").unwrap();
        let mut subs = Vec::new();
        collect_subscripts(q.where_.as_ref().unwrap(), &mut subs);
        assert_eq!(subs, vec!["x.AUTHORS[1]".to_string()]);
    }
}
