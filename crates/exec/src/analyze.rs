//! EXPLAIN ANALYZE: runtime metrics attributed to plan operators.
//!
//! The paper's §4 evaluation counts accesses per operation; an analyzed
//! plan carries that argument per *operator*. While executing with
//! analysis enabled, the evaluator attributes to each [`PhysicalPlan`]
//! node the rows it produced, the `objects_decoded`/`atoms_decoded`
//! deltas its storage pulls caused, and the wall time those pulls (or
//! predicate/projection evaluations) took. The annotated tree renders
//! next to the plain plan text, one bracketed metrics suffix per node.
//!
//! Column semantics:
//!
//! * `loops` — times the operator was (re)started: cursor opens for
//!   scans, outer-row iterations for NestEval. Omitted when 1.
//! * `in` / `out` — rows entering / surviving the operator. For scans,
//!   `in` is the candidate count the cursor was opened over and `out`
//!   the rows actually pulled (early exits leave `out < in`); for
//!   Filter, combinations checked / passed; for Project, result tuples.
//! * `objects` / `atoms` — decode-counter deltas attributed to the
//!   operator's pulls. Summing `objects` over all operators equals the
//!   query's total `objects_decoded` Stats delta (the acceptance
//!   invariant `tests/observability.rs` pins).
//! * `time` — wall clock attributed to the operator, shown only when
//!   the renderer is asked for timing (goldens pin the timing-free
//!   form).

use crate::plan::PhysicalPlan;
use std::fmt;

/// Per-operator runtime metrics, indexed parallel to
/// [`PhysicalPlan::nodes`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpMetrics {
    /// Times the operator was started (cursor opens / re-iterations).
    pub loops: u64,
    /// Rows entering the operator.
    pub rows_in: u64,
    /// Rows leaving the operator.
    pub rows_out: u64,
    /// `objects_decoded` delta attributed to this operator.
    pub objects_decoded: u64,
    /// `atoms_decoded` delta attributed to this operator.
    pub atoms_decoded: u64,
    /// Cold blocks zone-map pruning skipped before any decode
    /// (ColumnarScan attribution; zero elsewhere).
    pub blocks_pruned: u64,
    /// Cold blocks actually decoded by this operator's pulls.
    pub blocks_decoded: u64,
    /// Column values tested by vectorized filters on this operator's
    /// batches.
    pub values_scanned: u64,
    /// Wall time attributed to this operator, nanoseconds.
    pub wall_ns: u64,
}

/// A physical plan annotated with per-operator runtime metrics.
#[derive(Debug, Clone, Default)]
pub struct AnalyzedPlan {
    pub plan: PhysicalPlan,
    /// `ops[i]` belongs to `plan.nodes[i]`.
    pub ops: Vec<OpMetrics>,
    /// End-to-end wall time of the analyzed execution, nanoseconds.
    pub total_wall_ns: u64,
}

impl AnalyzedPlan {
    /// Sum of per-operator `objects_decoded` deltas.
    pub fn total_objects_decoded(&self) -> u64 {
        self.ops.iter().map(|m| m.objects_decoded).sum()
    }

    /// Sum of per-operator `atoms_decoded` deltas.
    pub fn total_atoms_decoded(&self) -> u64 {
        self.ops.iter().map(|m| m.atoms_decoded).sum()
    }

    /// Metrics of the node `var`'s scan feeds, if any (test helper).
    pub fn scan_metrics(&self, var: &str) -> Option<&OpMetrics> {
        use crate::plan::PhysOp;
        self.plan
            .nodes
            .iter()
            .enumerate()
            .find_map(|(i, n)| match &n.op {
                PhysOp::Scan { var: v, .. }
                | PhysOp::IndexScan { var: v, .. }
                | PhysOp::ColumnarScan { var: v, .. }
                    if v == var =>
                {
                    self.ops.get(i)
                }
                _ => None,
            })
    }

    /// The annotated plan tree. With `timing` false the output is fully
    /// deterministic (rows and decode deltas only) — what golden files
    /// pin; with `timing` true each line gains `time=` and the header
    /// reports the total wall clock.
    pub fn render(&self, timing: bool) -> String {
        if self.plan.nodes.is_empty() {
            return "(empty plan)\n".to_string();
        }
        let mut out = String::new();
        if timing {
            out.push_str(&format!(
                "Analyzed plan (total time={:.1}µs, objects={}, atoms={}):\n",
                self.total_wall_ns as f64 / 1e3,
                self.total_objects_decoded(),
                self.total_atoms_decoded()
            ));
        }
        self.render_node(self.plan.root, 0, timing, &mut out);
        out
    }

    fn render_node(&self, idx: usize, depth: usize, timing: bool, out: &mut String) {
        let m = self.ops.get(idx).copied().unwrap_or_default();
        let mut ann = String::new();
        if m.loops > 1 {
            ann.push_str(&format!("loops={} ", m.loops));
        }
        ann.push_str(&format!(
            "in={} out={} objects={} atoms={}",
            m.rows_in, m.rows_out, m.objects_decoded, m.atoms_decoded
        ));
        // Cold-store columns appear only when the operator touched the
        // cold tier, so goldens for row-only plans are unchanged.
        if m.blocks_pruned > 0 || m.blocks_decoded > 0 {
            ann.push_str(&format!(
                " blocks_pruned={} blocks_decoded={}",
                m.blocks_pruned, m.blocks_decoded
            ));
        }
        if m.values_scanned > 0 {
            ann.push_str(&format!(" values={}", m.values_scanned));
        }
        if timing {
            ann.push_str(&format!(" time={:.1}µs", m.wall_ns as f64 / 1e3));
        }
        out.push_str(&format!(
            "{}{} [{}]\n",
            "  ".repeat(depth),
            self.plan.node_label(idx),
            ann
        ));
        for &c in &self.plan.nodes[idx].children {
            self.render_node(c, depth + 1, timing, out);
        }
    }
}

impl fmt::Display for AnalyzedPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PhysOp;

    fn sample() -> AnalyzedPlan {
        let mut plan = PhysicalPlan::default();
        let scan = plan.push(
            PhysOp::Scan {
                var: "x".into(),
                table: "T".into(),
                asof: None,
                access_path: "full scan".into(),
                pushed: vec![],
                kept: vec![],
                pruned: vec![],
            },
            vec![],
        );
        plan.root = plan.push(
            PhysOp::Project {
                items: vec!["x.A".into()],
            },
            vec![scan],
        );
        let mut ops = vec![OpMetrics::default(); plan.nodes.len()];
        ops[scan] = OpMetrics {
            loops: 1,
            rows_in: 3,
            rows_out: 3,
            objects_decoded: 3,
            atoms_decoded: 12,
            wall_ns: 4200,
            ..OpMetrics::default()
        };
        ops[plan.root] = OpMetrics {
            loops: 1,
            rows_in: 3,
            rows_out: 3,
            objects_decoded: 0,
            atoms_decoded: 0,
            wall_ns: 900,
            ..OpMetrics::default()
        };
        AnalyzedPlan {
            plan,
            ops,
            total_wall_ns: 6000,
        }
    }

    #[test]
    fn deterministic_render_has_no_timing() {
        let a = sample();
        let s = a.render(false);
        assert_eq!(
            s,
            concat!(
                "Project [x.A] [in=3 out=3 objects=0 atoms=0]\n",
                "  Scan T as x — access path: full scan [in=3 out=3 objects=3 atoms=12]\n",
            )
        );
        assert!(!s.contains("time="));
    }

    #[test]
    fn timed_render_has_header_and_times() {
        let a = sample();
        let s = a.render(true);
        assert!(s.starts_with("Analyzed plan (total time=6.0µs, objects=3, atoms=12):"));
        assert!(s.contains("time=4.2µs"));
        assert_eq!(s, a.to_string());
    }

    #[test]
    fn totals_sum_over_operators() {
        let a = sample();
        assert_eq!(a.total_objects_decoded(), 3);
        assert_eq!(a.total_atoms_decoded(), 12);
        assert_eq!(a.scan_metrics("x").unwrap().rows_out, 3);
        assert!(a.scan_metrics("nope").is_none());
    }
}
