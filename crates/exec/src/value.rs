//! Runtime values and path navigation.

use crate::error::ExecError;
use crate::Result;
use aim2_lang::ast::{CmpOp, Lit};
use aim2_model::{Atom, AttrKind, Path, TableKind, TableSchema, TableValue, Tuple, Value};
use std::cmp::Ordering;

/// Resolve `path` against a tuple of `schema`: returns the value and the
/// attribute's kind. Intermediate segments may not cross table-valued
/// attributes (bind a variable instead — exactly the language's rule).
pub fn resolve<'a>(
    schema: &'a TableSchema,
    tuple: &'a Tuple,
    path: &Path,
    var: &str,
) -> Result<(&'a Value, &'a AttrKind)> {
    // In NF², every valid path from a tuple variable is exactly one
    // segment long: deeper structure is reached by *binding* a variable
    // to the subtable (`y IN x.PROJECTS`), never by dotted navigation
    // through it. Longer paths therefore produce the guided error.
    let segs = path.segments();
    let [seg] = segs else {
        if segs.is_empty() {
            return Err(ExecError::BadPath {
                var: var.to_string(),
                path: String::new(),
            });
        }
        let first = &segs[0];
        return match schema.attr(first) {
            Some(a) if !a.kind.is_atomic() => Err(ExecError::ThroughTable {
                var: var.to_string(),
                attr: first.to_string(),
            }),
            _ => Err(ExecError::BadPath {
                var: var.to_string(),
                path: path.to_string(),
            }),
        };
    };
    let idx = schema.attr_index(seg).ok_or_else(|| ExecError::BadPath {
        var: var.to_string(),
        path: path.to_string(),
    })?;
    Ok((&tuple.fields[idx], &schema.attrs[idx].kind))
}

/// A value produced during evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalValue {
    Atom(Atom),
    Table(TableValue),
    /// A whole row (e.g. `x.AUTHORS[1]`), with its schema level for
    /// further navigation.
    Row(Tuple, TableSchema),
    /// An out-of-range list subscript: comparisons with it are false
    /// (the row simply does not qualify — report 0179 has no second
    /// author); projecting it is an error.
    Missing,
}

impl EvalValue {
    /// Unwrap single-attribute rows to their atom — the coercion that
    /// makes `x.AUTHORS[1] = 'Jones A.'` (Example 8) typecheck: AUTHORS
    /// has the single attribute NAME.
    pub fn simplified(self) -> EvalValue {
        match self {
            EvalValue::Row(t, s) if t.arity() == 1 && s.attrs[0].kind.is_atomic() => {
                match &t.fields[0] {
                    Value::Atom(a) => EvalValue::Atom(a.clone()),
                    Value::Table(_) => EvalValue::Row(t, s),
                }
            }
            v => v,
        }
    }

    /// Convert to a model `Value` for result construction.
    pub fn into_value(self) -> Result<Value> {
        match self {
            EvalValue::Atom(a) => Ok(Value::Atom(a)),
            EvalValue::Table(t) => Ok(Value::Table(t)),
            EvalValue::Row(..) => Err(ExecError::Type(
                "a whole tuple cannot be a result attribute; project its fields".into(),
            )),
            EvalValue::Missing => Err(ExecError::Semantic(
                "subscript out of range in SELECT position".into(),
            )),
        }
    }
}

/// Convert a literal to an atom (scalar literals only).
pub fn lit_atom(l: &Lit) -> Result<Atom> {
    match l {
        Lit::Int(v) => Ok(Atom::Int(*v)),
        Lit::Float(v) => Ok(Atom::Double(*v)),
        Lit::Str(s) => Ok(Atom::Str(s.clone())),
        Lit::Bool(b) => Ok(Atom::Bool(*b)),
        Lit::Relation(_) | Lit::List(_) => Err(ExecError::Type(
            "table literal used where a scalar is required".into(),
        )),
    }
}

/// Convert a literal tuple to a model [`Tuple`] conforming to `schema`
/// (recursively; atoms are coerced, `DATE` attributes accept ISO
/// strings).
pub fn lit_tuple(schema: &TableSchema, lits: &[Lit]) -> Result<Tuple> {
    if lits.len() != schema.attrs.len() {
        return Err(ExecError::Type(format!(
            "table {} expects {} attributes, got {}",
            schema.name,
            schema.attrs.len(),
            lits.len()
        )));
    }
    let mut fields = Vec::with_capacity(lits.len());
    for (lit, attr) in lits.iter().zip(&schema.attrs) {
        match (&attr.kind, lit) {
            (AttrKind::Atomic(ty), l) => {
                let atom = match (l, ty) {
                    (Lit::Str(s), aim2_model::AtomType::Date) => {
                        Atom::Date(aim2_model::Date::parse_iso(s)?)
                    }
                    (Lit::Str(s), aim2_model::AtomType::Text) => Atom::Text(s.clone()),
                    _ => lit_atom(l)?,
                };
                if !atom.conforms_to(*ty) {
                    return Err(ExecError::Type(format!(
                        "attribute {} expects {}, got {}",
                        attr.name,
                        ty,
                        atom.atom_type()
                    )));
                }
                fields.push(Value::Atom(atom.coerce(*ty)?));
            }
            (AttrKind::Table(sub), Lit::Relation(tuples)) => {
                if sub.kind != TableKind::Relation {
                    return Err(ExecError::Type(format!(
                        "attribute {} is a list; use < > brackets",
                        attr.name
                    )));
                }
                fields.push(Value::Table(lit_table(sub, tuples)?));
            }
            (AttrKind::Table(sub), Lit::List(tuples)) => {
                if sub.kind != TableKind::List {
                    return Err(ExecError::Type(format!(
                        "attribute {} is a relation; use {{ }} brackets",
                        attr.name
                    )));
                }
                fields.push(Value::Table(lit_table(sub, tuples)?));
            }
            (AttrKind::Table(_), _) => {
                return Err(ExecError::Type(format!(
                    "attribute {} expects a table literal",
                    attr.name
                )))
            }
        }
    }
    Ok(Tuple::new(fields))
}

fn lit_table(schema: &TableSchema, tuples: &[Vec<Lit>]) -> Result<TableValue> {
    let mut out = Vec::with_capacity(tuples.len());
    for t in tuples {
        out.push(lit_tuple(schema, t)?);
    }
    Ok(TableValue {
        kind: schema.kind,
        tuples: out,
    })
}

/// Compare two runtime values under `op`.
pub fn compare(op: CmpOp, lhs: EvalValue, rhs: EvalValue) -> Result<bool> {
    let l = lhs.simplified();
    let r = rhs.simplified();
    match (&l, &r) {
        (EvalValue::Atom(a), EvalValue::Atom(b)) => {
            let ord = a.partial_cmp_same(b).ok_or_else(|| {
                ExecError::Type(format!(
                    "cannot compare {} with {}",
                    a.atom_type(),
                    b.atom_type()
                ))
            })?;
            Ok(match op {
                CmpOp::Eq => ord == Ordering::Equal,
                CmpOp::Ne => ord != Ordering::Equal,
                CmpOp::Lt => ord == Ordering::Less,
                CmpOp::Le => ord != Ordering::Greater,
                CmpOp::Gt => ord == Ordering::Greater,
                CmpOp::Ge => ord != Ordering::Less,
            })
        }
        (EvalValue::Table(a), EvalValue::Table(b)) => match op {
            CmpOp::Eq => Ok(a.semantically_eq(b)),
            CmpOp::Ne => Ok(!a.semantically_eq(b)),
            _ => Err(ExecError::Type(
                "tables support only = and <> comparisons".into(),
            )),
        },
        (EvalValue::Row(a, _), EvalValue::Row(b, _)) => match op {
            CmpOp::Eq => Ok(a == b),
            CmpOp::Ne => Ok(a != b),
            _ => Err(ExecError::Type(
                "tuples support only = and <> comparisons".into(),
            )),
        },
        (EvalValue::Missing, _) | (_, EvalValue::Missing) => Ok(false),
        _ => Err(ExecError::Type(format!(
            "incomparable operands: {l:?} vs {r:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aim2_model::fixtures;
    use aim2_model::value::build::a;

    #[test]
    fn resolve_first_level() {
        let schema = fixtures::departments_schema();
        let t = fixtures::department_314();
        let (v, k) = resolve(&schema, &t, &Path::parse("DNO"), "x").unwrap();
        assert!(k.is_atomic());
        assert_eq!(v.as_atom().unwrap().as_int(), Some(314));
        let (v, k) = resolve(&schema, &t, &Path::parse("PROJECTS"), "x").unwrap();
        assert!(!k.is_atomic());
        assert_eq!(v.as_table().unwrap().len(), 2);
    }

    #[test]
    fn resolve_through_table_is_a_guided_error() {
        let schema = fixtures::departments_schema();
        let t = fixtures::department_314();
        let e = resolve(&schema, &t, &Path::parse("PROJECTS.PNO"), "x").unwrap_err();
        assert!(matches!(e, ExecError::ThroughTable { .. }));
        let e = resolve(&schema, &t, &Path::parse("NOPE"), "x").unwrap_err();
        assert!(matches!(e, ExecError::BadPath { .. }));
    }

    #[test]
    fn single_attr_row_simplifies_to_atom() {
        let s = TableSchema::relation("AUTHORS").with_atom("NAME", aim2_model::AtomType::Str);
        let row = EvalValue::Row(Tuple::new(vec![a("Jones A.")]), s);
        assert_eq!(
            row.simplified(),
            EvalValue::Atom(Atom::Str("Jones A.".into()))
        );
    }

    #[test]
    fn compare_coerces_int_double_and_str_text() {
        assert!(compare(
            CmpOp::Lt,
            EvalValue::Atom(Atom::Int(3)),
            EvalValue::Atom(Atom::Double(3.5))
        )
        .unwrap());
        assert!(compare(
            CmpOp::Eq,
            EvalValue::Atom(Atom::Text("x".into())),
            EvalValue::Atom(Atom::Str("x".into()))
        )
        .unwrap());
        assert!(compare(
            CmpOp::Eq,
            EvalValue::Atom(Atom::Int(1)),
            EvalValue::Atom(Atom::Bool(true))
        )
        .is_err());
    }

    #[test]
    fn lit_tuple_validates_against_schema() {
        let schema = fixtures::equip_1nf_schema();
        let t = lit_tuple(
            &schema,
            &[Lit::Int(314), Lit::Int(2), Lit::Str("3278".into())],
        )
        .unwrap();
        assert_eq!(t.arity(), 3);
        assert!(lit_tuple(&schema, &[Lit::Int(1)]).is_err(), "arity");
        assert!(
            lit_tuple(
                &schema,
                &[Lit::Str("x".into()), Lit::Int(2), Lit::Str("y".into())]
            )
            .is_err(),
            "type"
        );
    }

    #[test]
    fn lit_tuple_nested() {
        let schema = fixtures::departments_schema();
        let t = lit_tuple(
            &schema,
            &[
                Lit::Int(999),
                Lit::Int(1),
                Lit::Relation(vec![vec![
                    Lit::Int(5),
                    Lit::Str("P".into()),
                    Lit::Relation(vec![]),
                ]]),
                Lit::Int(0),
                Lit::Relation(vec![]),
            ],
        )
        .unwrap();
        t.atomic_fields(&schema);
        let projects = t.fields[2].as_table().unwrap();
        assert_eq!(projects.len(), 1);
        // Wrong bracket kind rejected.
        assert!(lit_tuple(
            &schema,
            &[
                Lit::Int(999),
                Lit::Int(1),
                Lit::List(vec![]),
                Lit::Int(0),
                Lit::Relation(vec![]),
            ],
        )
        .is_err());
    }

    #[test]
    fn date_literals_from_strings() {
        let schema = TableSchema::relation("T").with_atom("D", aim2_model::AtomType::Date);
        let t = lit_tuple(&schema, &[Lit::Str("1984-01-15".into())]).unwrap();
        assert!(matches!(t.fields[0].as_atom().unwrap(), Atom::Date(_)));
        assert!(lit_tuple(&schema, &[Lit::Str("not-a-date".into())]).is_err());
    }
}
