//! Referenced-path analysis for projection pushdown (partial retrieval).
//!
//! §4.1 demands "fast processing of arbitrary parts of complex objects —
//! it should not be necessary to scan a complex object more or less
//! entirely if only one piece of data is needed". The executor realizes
//! this by telling the provider which subtable paths a query can touch;
//! the object store then never descends into the others' MD subtrees.
//!
//! For each *stored-table* binding variable we collect:
//! * **deep** paths — value references (`x.DNO`, `SELECT x.PROJECTS`,
//!   `x.EQUIP = y.EQUIP`): everything below them may be needed;
//! * **shallow** paths — subtable paths only *ranged over* (`y IN
//!   x.PROJECTS`): their element tuples are needed, but their own
//!   subtables only if referenced deeper.

use aim2_lang::ast::{Binding, Expr, NamedValue, Query, SelectItem, Source};
use aim2_model::Path;
use std::collections::HashMap;

/// The paths one table binding's variable can reach.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Referenced {
    pub shallow: Vec<Path>,
    pub deep: Vec<Path>,
}

impl Referenced {
    fn add_shallow(&mut self, p: Path) {
        if !self.shallow.contains(&p) {
            self.shallow.push(p);
        }
    }

    fn add_deep(&mut self, p: Path) {
        if !self.deep.contains(&p) {
            self.deep.push(p);
        }
    }

    /// Should the subtable at `p` be materialized?
    pub fn keep(&self, p: &Path) -> bool {
        self.shallow.iter().any(|s| p.is_prefix_of(s))
            || self
                .deep
                .iter()
                .any(|d| p.is_prefix_of(d) || d.is_prefix_of(p))
    }
}

/// Variable scope entry: which root variable and prefix a var reaches.
#[derive(Clone)]
struct ScopeEntry {
    var: String,
    root: Option<(String, Path)>,
}

struct Walker {
    scope: Vec<ScopeEntry>,
    out: HashMap<String, Referenced>,
}

impl Walker {
    fn resolve(&self, var: &str) -> Option<(String, Path)> {
        self.scope
            .iter()
            .rev()
            .find(|e| e.var == var)
            .and_then(|e| e.root.clone())
    }

    fn note_deep(&mut self, var: &str, path: &Path) {
        if let Some((root, prefix)) = self.resolve(var) {
            self.out
                .entry(root)
                .or_default()
                .add_deep(prefix.join(path));
        }
    }

    fn push_binding(&mut self, b: &Binding) {
        let root = match &b.source {
            Source::Table(_) => {
                self.out.entry(b.var.clone()).or_default();
                Some((b.var.clone(), Path::root()))
            }
            Source::PathOf { var, path } => match self.resolve(var) {
                Some((root, prefix)) => {
                    let full = prefix.join(path);
                    self.out
                        .entry(root.clone())
                        .or_default()
                        .add_shallow(full.clone());
                    Some((root, full))
                }
                None => None,
            },
        };
        self.scope.push(ScopeEntry {
            var: b.var.clone(),
            root,
        });
    }

    fn walk_query(&mut self, q: &Query) {
        let depth = self.scope.len();
        for b in &q.from {
            self.push_binding(b);
        }
        for item in &q.select {
            match item {
                SelectItem::Star => {
                    if let Some(b) = q.from.first() {
                        self.note_deep(&b.var, &Path::root());
                    }
                }
                SelectItem::Expr(e) => self.walk_expr(e),
                SelectItem::Named { value, .. } => match value {
                    NamedValue::Expr(e) => self.walk_expr(e),
                    NamedValue::Subquery(sub) => self.walk_query(sub),
                },
            }
        }
        if let Some(w) = &q.where_ {
            self.walk_expr(w);
        }
        self.scope.truncate(depth);
    }

    fn walk_expr(&mut self, e: &Expr) {
        match e {
            Expr::PathRef { var, path } => self.note_deep(var, path),
            Expr::Subscript {
                var, path, rest, ..
            } => self.note_deep(var, &path.join(rest)),
            Expr::Lit(_) => {}
            Expr::Cmp { lhs, rhs, .. } => {
                self.walk_expr(lhs);
                self.walk_expr(rhs);
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                self.walk_expr(a);
                self.walk_expr(b);
            }
            Expr::Not(x) => self.walk_expr(x),
            Expr::Exists { binding, pred } => {
                let depth = self.scope.len();
                self.push_binding(binding);
                if let Some(p) = pred {
                    self.walk_expr(p);
                }
                self.scope.truncate(depth);
            }
            Expr::Forall { binding, pred } => {
                let depth = self.scope.len();
                self.push_binding(binding);
                self.walk_expr(pred);
                self.scope.truncate(depth);
            }
            Expr::Contains { expr, .. } => self.walk_expr(expr),
        }
    }
}

/// Compute, per stored-table binding variable, the paths the query may
/// touch.
pub fn referenced_paths(q: &Query) -> HashMap<String, Referenced> {
    let mut w = Walker {
        scope: Vec::new(),
        out: HashMap::new(),
    };
    w.walk_query(q);
    w.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aim2_lang::parser::parse_query;

    fn refs(src: &str) -> HashMap<String, Referenced> {
        referenced_paths(&parse_query(src).unwrap())
    }

    #[test]
    fn example_5_prunes_projects() {
        let r = refs(
            "SELECT x.DNO, x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS \
             WHERE EXISTS y IN x.EQUIP : y.TYPE = 'PC/AT'",
        );
        let x = &r["x"];
        assert!(x.keep(&Path::parse("EQUIP")));
        assert!(!x.keep(&Path::parse("PROJECTS")), "PROJECTS never touched");
        assert!(!x.keep(&Path::parse("PROJECTS.MEMBERS")));
    }

    #[test]
    fn binding_is_shallow_inner_subtables_pruned() {
        let r = refs(
            "SELECT x.DNO FROM x IN DEPARTMENTS \
             WHERE EXISTS y IN x.PROJECTS : y.PNO = 17",
        );
        let x = &r["x"];
        assert!(x.keep(&Path::parse("PROJECTS")), "elements are scanned");
        assert!(
            !x.keep(&Path::parse("PROJECTS.MEMBERS")),
            "members never referenced"
        );
    }

    #[test]
    fn deep_reference_keeps_whole_subtree() {
        let r = refs("SELECT x.DNO, x.PROJECTS FROM x IN DEPARTMENTS");
        let x = &r["x"];
        assert!(x.keep(&Path::parse("PROJECTS")));
        assert!(
            x.keep(&Path::parse("PROJECTS.MEMBERS")),
            "whole PROJECTS value is returned"
        );
        assert!(!x.keep(&Path::parse("EQUIP")));
    }

    #[test]
    fn star_keeps_everything() {
        let r = refs("SELECT * FROM DEPARTMENTS");
        let x = &r["DEPARTMENTS"];
        assert!(x.keep(&Path::parse("PROJECTS")));
        assert!(x.keep(&Path::parse("PROJECTS.MEMBERS")));
        assert!(x.keep(&Path::parse("EQUIP")));
    }

    #[test]
    fn transitive_bindings_reach_the_root_var() {
        let r = refs("SELECT z.EMPNO FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS");
        let x = &r["x"];
        assert!(x.keep(&Path::parse("PROJECTS")));
        assert!(x.keep(&Path::parse("PROJECTS.MEMBERS")));
        assert!(!x.keep(&Path::parse("EQUIP")));
    }

    #[test]
    fn named_subqueries_count() {
        let r = refs("SELECT x.DNO, E = (SELECT v.QU FROM v IN x.EQUIP) FROM x IN DEPARTMENTS");
        let x = &r["x"];
        assert!(x.keep(&Path::parse("EQUIP")));
        assert!(!x.keep(&Path::parse("PROJECTS")));
    }

    #[test]
    fn multiple_roots_tracked_separately() {
        let r = refs(
            "SELECT x.DNO, m.LNAME FROM x IN DEPARTMENTS, m IN EMPLOYEES-1NF \
             WHERE x.MGRNO = m.EMPNO",
        );
        assert!(r.contains_key("x"));
        assert!(r.contains_key("m"));
        assert!(!r["x"].keep(&Path::parse("PROJECTS")));
    }
}
