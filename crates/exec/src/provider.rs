//! Table access abstraction: the cursor pipeline's storage boundary.
//!
//! The evaluator pulls rows through a [`TableProvider`]; the database
//! facade implements it over object stores (with projection and
//! predicate pushdown), while [`MemProvider`] serves the executor's own
//! tests and the algebra benches.
//!
//! The contract is open/next/close:
//!
//! * [`TableProvider::open_scan`] receives a [`ScanRequest`] carrying
//!   the *pushdown contract* — the needed-paths set (projection) and
//!   the indexable/CONTAINS conjuncts the provider may use to
//!   pre-restrict candidates — and returns an [`ObjectCursor`];
//! * [`TableProvider::next_row`] decodes and returns one row per call,
//!   so quantifiers can stop pulling the moment they are decided;
//! * [`TableProvider::close_scan`] lets the provider account for early
//!   exits (a cursor closed before exhaustion never decoded the rest).

use crate::analysis::Referenced;
use crate::error::ExecError;
use crate::Result;
use aim2_model::{Date, TableSchema, TableValue, Tuple};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// One immutable, shareable row set: `(row key, row)` pairs in scan
/// order. MVCC snapshot providers hand the same `Arc` to every cursor
/// opened over one epoch version, so a scan borrows the committed state
/// without copying it and without holding any storage-side latch.
pub type SharedRows = Arc<Vec<(u64, Arc<Tuple>)>>;

/// What the evaluator asks of a scan: the table, the version date, and
/// the pushdown contract.
#[derive(Debug, Clone, Default)]
pub struct ScanRequest {
    pub table: String,
    pub asof: Option<Date>,
    /// Needed-paths set (projection pushdown): when present, subtable
    /// attributes whose path the set rejects may come back empty — the
    /// evaluator only omits paths it will never touch, realizing the
    /// paper's partial retrieval.
    pub projection: Option<Referenced>,
    /// Indexable equality conjuncts (`path = atom`) of the query's
    /// WHERE, rooted at this binding. A provider with a matching index
    /// may restrict the cursor to candidate objects (a superset of the
    /// qualifying ones — the evaluator re-checks the full predicate).
    pub conjuncts: Vec<(aim2_model::Path, aim2_model::Atom)>,
    /// Top-level `attr CONTAINS 'mask'` conjuncts, for text indexes.
    pub contains: Vec<(aim2_model::Path, String)>,
    /// Top-level range conjuncts (`path < atom`, `path >= atom`, …) of
    /// the query's WHERE, rooted at this binding. Providers with zone
    /// maps may skip blocks whose min/max cannot intersect the range
    /// (a superset restriction — the evaluator re-checks).
    pub ranges: Vec<(aim2_model::Path, RangePred)>,
}

/// One conjunctive range over a single attribute: optional lower and
/// upper bounds, each with an inclusivity flag.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RangePred {
    pub lo: Option<(aim2_model::Atom, bool)>,
    pub hi: Option<(aim2_model::Atom, bool)>,
}

impl ScanRequest {
    /// A full scan with nothing pushed down.
    pub fn full(table: &str, asof: Option<Date>) -> ScanRequest {
        ScanRequest {
            table: table.to_string(),
            asof,
            ..ScanRequest::default()
        }
    }
}

/// One batch of rows in column-major form: `columns[c][r]` is column
/// `c` of the batch's row `r`. The unit of the batch-at-a-time cursor
/// protocol — vectorized filters test one column vector at a time
/// instead of re-walking every tuple.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColumnBatch {
    pub columns: Vec<Vec<aim2_model::Value>>,
    pub len: usize,
}

impl ColumnBatch {
    /// Transpose row-major tuples into a batch.
    pub fn from_rows(rows: Vec<Tuple>) -> ColumnBatch {
        let len = rows.len();
        let ncols = rows.first().map(|t| t.fields.len()).unwrap_or(0);
        let mut columns: Vec<Vec<aim2_model::Value>> =
            (0..ncols).map(|_| Vec::with_capacity(len)).collect();
        for t in rows {
            for (c, v) in t.fields.into_iter().enumerate() {
                columns[c].push(v);
            }
        }
        ColumnBatch { columns, len }
    }

    /// Transpose back into row-major tuples.
    pub fn into_rows(self) -> Vec<Tuple> {
        let mut rows: Vec<Vec<aim2_model::Value>> = (0..self.len)
            .map(|_| Vec::with_capacity(self.columns.len()))
            .collect();
        for col in self.columns {
            for (r, v) in col.into_iter().enumerate() {
                rows[r].push(v);
            }
        }
        rows.into_iter().map(Tuple::new).collect()
    }

    /// Keep only the rows whose index the mask marks `true`.
    pub fn retain(&mut self, mask: &[bool]) {
        for col in &mut self.columns {
            let mut i = 0;
            col.retain(|_| {
                let keep = mask[i];
                i += 1;
                keep
            });
        }
        self.len = mask.iter().filter(|&&k| k).count();
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Where a cursor's remaining rows come from.
#[derive(Debug)]
enum Rows {
    /// Pre-materialized rows (ASOF snapshots, in-memory tables).
    Buffered(Vec<Tuple>),
    /// Opaque row keys the provider decodes one per pull (object
    /// handles / TIDs packed into `u64`s, or plain indices).
    Keys(Vec<u64>),
    /// An epoch version's rows shared by reference (MVCC snapshot
    /// scans): pulls clone one tuple at a time and never re-enter the
    /// provider's storage, so concurrent snapshot readers share the
    /// version without synchronizing.
    Shared(SharedRows),
}

/// A scan in progress: passive state handed back to the provider on
/// every [`TableProvider::next_row`] call. Holding the cursor does not
/// borrow the provider, so the evaluator can interleave pulls from
/// several cursors and run predicates between them.
#[derive(Debug)]
pub struct ObjectCursor {
    pub table: String,
    pub asof: Option<Date>,
    /// The projection the scan was opened with (providers that decode
    /// per pull re-apply it on every row).
    pub projection: Option<Referenced>,
    /// Human-readable access path ("full scan", "index f on …").
    pub access_path: String,
    /// The plan node this cursor feeds (EXPLAIN ANALYZE attribution);
    /// set by the evaluator after opening.
    pub plan_node: Option<usize>,
    /// The commit epoch this cursor reads at, when it was opened from a
    /// pinned MVCC snapshot.
    pub snapshot_epoch: Option<u64>,
    /// The equality conjuncts the scan was opened with (columnar
    /// providers re-check a block's dictionary against them per batch:
    /// a literal missing from the dictionary rules out every row).
    pub conjuncts: Vec<(aim2_model::Path, aim2_model::Atom)>,
    rows: Rows,
    pos: usize,
    opened: Instant,
}

impl ObjectCursor {
    /// A cursor over pre-materialized rows.
    pub fn buffered(req: &ScanRequest, access_path: &str, rows: Vec<Tuple>) -> ObjectCursor {
        ObjectCursor {
            table: req.table.clone(),
            asof: req.asof,
            projection: req.projection.clone(),
            access_path: access_path.to_string(),
            plan_node: None,
            snapshot_epoch: None,
            conjuncts: req.conjuncts.clone(),
            rows: Rows::Buffered(rows),
            pos: 0,
            opened: Instant::now(),
        }
    }

    /// A cursor over opaque row keys, decoded one per pull.
    pub fn keyed(req: &ScanRequest, access_path: &str, keys: Vec<u64>) -> ObjectCursor {
        ObjectCursor {
            table: req.table.clone(),
            asof: req.asof,
            projection: req.projection.clone(),
            access_path: access_path.to_string(),
            plan_node: None,
            snapshot_epoch: None,
            conjuncts: req.conjuncts.clone(),
            rows: Rows::Keys(keys),
            pos: 0,
            opened: Instant::now(),
        }
    }

    /// A cursor over an epoch version's shared rows (MVCC snapshot
    /// scans): the version is borrowed by `Arc`, pulls never re-enter
    /// storage, and the epoch is threaded through for EXPLAIN and
    /// assertion sites.
    pub fn shared(
        req: &ScanRequest,
        access_path: &str,
        epoch: u64,
        rows: SharedRows,
    ) -> ObjectCursor {
        ObjectCursor {
            table: req.table.clone(),
            asof: req.asof,
            projection: req.projection.clone(),
            access_path: access_path.to_string(),
            plan_node: None,
            snapshot_epoch: Some(epoch),
            conjuncts: req.conjuncts.clone(),
            rows: Rows::Shared(rows),
            pos: 0,
            opened: Instant::now(),
        }
    }

    /// Total rows/keys the cursor was opened over.
    pub fn len(&self) -> usize {
        match &self.rows {
            Rows::Buffered(v) => v.len(),
            Rows::Keys(v) => v.len(),
            Rows::Shared(v) => v.len(),
        }
    }

    /// True when the cursor was opened over nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rows pulled so far.
    pub fn pulled(&self) -> usize {
        self.pos
    }

    /// True once every row has been pulled.
    pub fn exhausted(&self) -> bool {
        self.pos >= self.len()
    }

    /// Next pre-materialized row (providers using `buffered`).
    pub fn next_buffered(&mut self) -> Option<Tuple> {
        let Rows::Buffered(v) = &mut self.rows else {
            return None;
        };
        let t = v.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Next opaque key (providers using `keyed`).
    pub fn next_key(&mut self) -> Option<u64> {
        let Rows::Keys(v) = &self.rows else {
            return None;
        };
        let k = v.get(self.pos).copied();
        if k.is_some() {
            self.pos += 1;
        }
        k
    }

    /// The next opaque key without consuming it (batch dispatch peeks
    /// to decide whether the cursor sits on a cold block or a hot row).
    pub fn peek_key(&self) -> Option<u64> {
        let Rows::Keys(v) = &self.rows else {
            return None;
        };
        v.get(self.pos).copied()
    }

    /// Consume up to `max` consecutive keys for which `take` holds
    /// (batch pulls drain a run of same-tier keys in one call).
    pub fn take_keys(&mut self, max: usize, take: impl Fn(u64) -> bool) -> Vec<u64> {
        let Rows::Keys(v) = &self.rows else {
            return Vec::new();
        };
        let mut out = Vec::new();
        while out.len() < max {
            match v.get(self.pos) {
                Some(&k) if take(k) => {
                    out.push(k);
                    self.pos += 1;
                }
                _ => break,
            }
        }
        out
    }

    /// Next row from a shared epoch version (providers using `shared`).
    pub fn next_shared(&mut self) -> Option<Tuple> {
        let Rows::Shared(v) = &self.rows else {
            return None;
        };
        let t = v.get(self.pos).map(|(_, t)| Tuple::clone(t));
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// True when pulls are served from cursor-local state (buffered or
    /// shared rows) and never need to re-enter the provider's storage.
    pub fn is_local(&self) -> bool {
        !matches!(self.rows, Rows::Keys(_))
    }

    /// Nanoseconds since the cursor was opened (cursor lifetime at
    /// close time).
    pub fn age_ns(&self) -> u64 {
        self.opened.elapsed().as_nanos() as u64
    }

    /// Projection predicate for one subtable path (true = decode it).
    pub fn keep(&self, p: &aim2_model::Path) -> bool {
        match &self.projection {
            Some(r) => r.keep(p),
            None => true,
        }
    }
}

/// What the evaluator needs from the storage layer.
pub trait TableProvider {
    /// Schema of a stored table.
    fn table_schema(&mut self, name: &str) -> Result<TableSchema>;

    /// Open a cursor over a stored table, honoring as much of the
    /// request's pushdown contract as the backing storage supports.
    fn open_scan(&mut self, req: &ScanRequest) -> Result<ObjectCursor>;

    /// Pull the next row; `None` when exhausted.
    fn next_row(&mut self, cur: &mut ObjectCursor) -> Result<Option<Tuple>>;

    /// Close a cursor. Providers with stats count an early exit when
    /// rows were pulled but the cursor is not exhausted.
    fn close_scan(&mut self, cur: ObjectCursor) {
        let _ = cur;
    }

    /// Pull the next batch of up to `max_rows` rows in column-major
    /// form; `None` when exhausted. `max_rows` is a hint: a columnar
    /// provider returns whatever remains of the current cold block,
    /// which may be fewer. The default adapter transposes
    /// [`TableProvider::next_row`] pulls, so every provider is
    /// batch-capable from day one.
    fn next_batch(
        &mut self,
        cur: &mut ObjectCursor,
        max_rows: usize,
    ) -> Result<Option<ColumnBatch>> {
        row_batch(self, cur, max_rows)
    }

    /// Current `(objects_decoded, atoms_decoded)` totals, for EXPLAIN
    /// ANALYZE per-operator deltas. Providers without decode accounting
    /// report zeros (the analyzed plan then shows no decode columns
    /// moving, which is accurate: nothing was decoded from storage).
    fn decode_counters(&mut self) -> (u64, u64) {
        (0, 0)
    }

    /// Current `(blocks_pruned, blocks_decoded, values_scanned)`
    /// cold-store totals, for ColumnarScan attribution. Providers
    /// without a cold tier report zeros.
    fn colstore_counters(&mut self) -> (u64, u64, u64) {
        (0, 0, 0)
    }

    /// Credit `n` values tested by a vectorized filter to the
    /// provider's stats (no-op for stats-less providers).
    fn note_values_scanned(&mut self, n: u64) {
        let _ = n;
    }

    /// Drain a full scan into a `TableValue` — the materializing
    /// convenience used by DML helpers and tests.
    fn scan_all(&mut self, name: &str, asof: Option<Date>) -> Result<TableValue> {
        let kind = self.table_schema(name)?.kind;
        let mut cur = self.open_scan(&ScanRequest::full(name, asof))?;
        let mut tuples = Vec::with_capacity(cur.len());
        while let Some(t) = self.next_row(&mut cur)? {
            tuples.push(t);
        }
        self.close_scan(cur);
        Ok(TableValue { kind, tuples })
    }
}

/// The row-at-a-time batch adapter: transpose up to `max_rows`
/// [`TableProvider::next_row`] pulls into one [`ColumnBatch`]. Free
/// and generic so providers overriding
/// [`TableProvider::next_batch`] can still fall back to it for cursor
/// shapes they don't accelerate.
pub fn row_batch<P: TableProvider + ?Sized>(
    p: &mut P,
    cur: &mut ObjectCursor,
    max_rows: usize,
) -> Result<Option<ColumnBatch>> {
    let mut rows = Vec::new();
    while rows.len() < max_rows.max(1) {
        match p.next_row(cur)? {
            Some(t) => rows.push(t),
            None => break,
        }
    }
    if rows.is_empty() {
        return Ok(None);
    }
    Ok(Some(ColumnBatch::from_rows(rows)))
}

/// In-memory provider backed by `TableValue`s. Rows are served borrowed
/// per pull (one tuple clone per `next_row`), never by cloning whole
/// tables.
#[derive(Default)]
pub struct MemProvider {
    tables: HashMap<String, (TableSchema, TableValue)>,
    /// Historical snapshots per table, date-ascending.
    history: HashMap<String, Vec<(Date, TableValue)>>,
}

impl MemProvider {
    /// An empty provider (register tables with [`MemProvider::add`]).
    pub fn new() -> MemProvider {
        MemProvider::default()
    }

    /// Register a table.
    pub fn add(&mut self, schema: TableSchema, value: TableValue) -> &mut Self {
        self.tables.insert(schema.name.clone(), (schema, value));
        self
    }

    /// Register a historical snapshot (for ASOF tests).
    pub fn add_snapshot(&mut self, table: &str, at: Date, value: TableValue) -> &mut Self {
        let v = self.history.entry(table.to_string()).or_default();
        v.push((at, value));
        v.sort_by_key(|(d, _)| *d);
        self
    }

    /// Load all paper fixtures (Tables 1–8).
    pub fn with_paper_fixtures() -> MemProvider {
        use aim2_model::fixtures as fx;
        let mut p = MemProvider::new();
        p.add(fx::departments_schema(), fx::departments_value());
        p.add(fx::departments_1nf_schema(), fx::departments_1nf_value());
        p.add(fx::projects_1nf_schema(), fx::projects_1nf_value());
        p.add(fx::members_1nf_schema(), fx::members_1nf_value());
        p.add(fx::equip_1nf_schema(), fx::equip_1nf_value());
        p.add(fx::employees_1nf_schema(), fx::employees_1nf_value());
        p.add(fx::reports_schema(), fx::reports_value());
        p
    }

    /// The live rows (or the ASOF snapshot's rows) of `name`.
    fn rows(&self, name: &str, asof: Option<Date>) -> Result<&[Tuple]> {
        if let Some(t) = asof {
            let snaps = self
                .history
                .get(name)
                .ok_or_else(|| ExecError::Semantic(format!("table {name} is not versioned")))?;
            let idx = snaps.partition_point(|(d, _)| *d <= t);
            if idx == 0 {
                return Ok(&[]);
            }
            return Ok(&snaps[idx - 1].1.tuples);
        }
        self.tables
            .get(name)
            .map(|(_, v)| v.tuples.as_slice())
            .ok_or_else(|| ExecError::NoSuchTable(name.to_string()))
    }
}

impl TableProvider for MemProvider {
    fn table_schema(&mut self, name: &str) -> Result<TableSchema> {
        self.tables
            .get(name)
            .map(|(s, _)| s.clone())
            .ok_or_else(|| ExecError::NoSuchTable(name.to_string()))
    }

    fn open_scan(&mut self, req: &ScanRequest) -> Result<ObjectCursor> {
        let n = self.rows(&req.table, req.asof)?.len();
        Ok(ObjectCursor::keyed(
            req,
            "full scan",
            (0..n as u64).collect(),
        ))
    }

    fn next_row(&mut self, cur: &mut ObjectCursor) -> Result<Option<Tuple>> {
        let Some(i) = cur.next_key() else {
            return Ok(None);
        };
        let rows = self.rows(&cur.table, cur.asof)?;
        Ok(rows.get(i as usize).cloned())
    }

    fn next_batch(
        &mut self,
        cur: &mut ObjectCursor,
        max_rows: usize,
    ) -> Result<Option<ColumnBatch>> {
        let keys = cur.take_keys(max_rows.max(1), |_| true);
        if keys.is_empty() {
            return Ok(None);
        }
        let rows = self.rows(&cur.table, cur.asof)?;
        let batch: Vec<Tuple> = keys
            .iter()
            .filter_map(|&i| rows.get(i as usize).cloned())
            .collect();
        Ok(Some(ColumnBatch::from_rows(batch)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_load() {
        let mut p = MemProvider::with_paper_fixtures();
        assert_eq!(p.table_schema("DEPARTMENTS").unwrap().depth(), 3);
        assert_eq!(p.scan_all("REPORTS", None).unwrap().len(), 3);
        assert!(p.table_schema("NOPE").is_err());
    }

    #[test]
    fn asof_snapshots() {
        let mut p = MemProvider::with_paper_fixtures();
        let old = aim2_model::fixtures::departments_value();
        p.add_snapshot(
            "DEPARTMENTS",
            Date::parse_iso("1984-01-01").unwrap(),
            old.clone(),
        );
        let got = p
            .scan_all("DEPARTMENTS", Some(Date::parse_iso("1984-01-15").unwrap()))
            .unwrap();
        assert_eq!(got, old);
        let before = p
            .scan_all("DEPARTMENTS", Some(Date::parse_iso("1983-01-01").unwrap()))
            .unwrap();
        assert!(before.is_empty());
    }

    #[test]
    fn batch_pulls_match_row_pulls() {
        let mut p = MemProvider::with_paper_fixtures();
        let rows = p.scan_all("MEMBERS-1NF", None).unwrap().tuples;
        // Explicit override path.
        let mut cur = p
            .open_scan(&ScanRequest::full("MEMBERS-1NF", None))
            .unwrap();
        let mut batched = Vec::new();
        while let Some(b) = p.next_batch(&mut cur, 4).unwrap() {
            assert!(b.len <= 4);
            assert_eq!(b.columns.iter().map(Vec::len).max(), Some(b.len));
            batched.extend(b.into_rows());
        }
        assert!(cur.exhausted());
        p.close_scan(cur);
        assert_eq!(batched, rows);
        // Generic row-at-a-time adapter gives the same transposition.
        let mut cur = p
            .open_scan(&ScanRequest::full("MEMBERS-1NF", None))
            .unwrap();
        let mut adapted = Vec::new();
        while let Some(b) = row_batch(&mut p, &mut cur, 4).unwrap() {
            adapted.extend(b.into_rows());
        }
        assert_eq!(adapted, rows);
    }

    #[test]
    fn column_batch_retain_filters_all_columns() {
        let rows = vec![
            Tuple::new(vec![
                aim2_model::value::build::a(1),
                aim2_model::value::build::a("x"),
            ]),
            Tuple::new(vec![
                aim2_model::value::build::a(2),
                aim2_model::value::build::a("y"),
            ]),
            Tuple::new(vec![
                aim2_model::value::build::a(3),
                aim2_model::value::build::a("z"),
            ]),
        ];
        let mut b = ColumnBatch::from_rows(rows.clone());
        b.retain(&[true, false, true]);
        assert_eq!(b.len, 2);
        let kept = b.into_rows();
        assert_eq!(kept, vec![rows[0].clone(), rows[2].clone()]);
        // Empty batch round-trips too.
        let empty = ColumnBatch::from_rows(Vec::new());
        assert!(empty.is_empty());
        assert!(empty.into_rows().is_empty());
    }

    #[test]
    fn cursor_pulls_one_row_at_a_time() {
        let mut p = MemProvider::with_paper_fixtures();
        let mut cur = p.open_scan(&ScanRequest::full("REPORTS", None)).unwrap();
        assert_eq!(cur.len(), 3);
        assert!(p.next_row(&mut cur).unwrap().is_some());
        assert_eq!(cur.pulled(), 1);
        assert!(!cur.exhausted());
        while p.next_row(&mut cur).unwrap().is_some() {}
        assert!(cur.exhausted());
        p.close_scan(cur);
    }
}
