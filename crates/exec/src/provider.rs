//! Table access abstraction.
//!
//! The evaluator fetches tables through a [`TableProvider`]; the database
//! facade implements it over object stores (with projection pushdown),
//! while [`MemProvider`] serves the executor's own tests and the algebra
//! benches.

use crate::error::ExecError;
use crate::Result;
use aim2_model::{Date, Path, TableSchema, TableValue};
use std::collections::HashMap;

/// What the evaluator needs from the storage layer.
pub trait TableProvider {
    /// Schema of a stored table.
    fn table_schema(&mut self, name: &str) -> Result<TableSchema>;

    /// Materialize a stored table, optionally as of a past date (§5) and
    /// optionally *projected*: when `keep` is given, subtable attributes
    /// whose path fails the predicate may be returned empty — the
    /// evaluator only asks for paths it will never touch, realizing the
    /// paper's partial retrieval.
    fn scan_table(
        &mut self,
        name: &str,
        asof: Option<Date>,
        keep: Option<&dyn Fn(&Path) -> bool>,
    ) -> Result<TableValue>;
}

/// In-memory provider backed by `TableValue`s.
#[derive(Default)]
pub struct MemProvider {
    tables: HashMap<String, (TableSchema, TableValue)>,
    /// Historical snapshots per table, date-ascending.
    history: HashMap<String, Vec<(Date, TableValue)>>,
}

impl MemProvider {
    /// An empty provider (register tables with [`MemProvider::add`]).
    pub fn new() -> MemProvider {
        MemProvider::default()
    }

    /// Register a table.
    pub fn add(&mut self, schema: TableSchema, value: TableValue) -> &mut Self {
        self.tables.insert(schema.name.clone(), (schema, value));
        self
    }

    /// Register a historical snapshot (for ASOF tests).
    pub fn add_snapshot(&mut self, table: &str, at: Date, value: TableValue) -> &mut Self {
        let v = self.history.entry(table.to_string()).or_default();
        v.push((at, value));
        v.sort_by_key(|(d, _)| *d);
        self
    }

    /// Load all paper fixtures (Tables 1–8).
    pub fn with_paper_fixtures() -> MemProvider {
        use aim2_model::fixtures as fx;
        let mut p = MemProvider::new();
        p.add(fx::departments_schema(), fx::departments_value());
        p.add(fx::departments_1nf_schema(), fx::departments_1nf_value());
        p.add(fx::projects_1nf_schema(), fx::projects_1nf_value());
        p.add(fx::members_1nf_schema(), fx::members_1nf_value());
        p.add(fx::equip_1nf_schema(), fx::equip_1nf_value());
        p.add(fx::employees_1nf_schema(), fx::employees_1nf_value());
        p.add(fx::reports_schema(), fx::reports_value());
        p
    }
}

impl TableProvider for MemProvider {
    fn table_schema(&mut self, name: &str) -> Result<TableSchema> {
        self.tables
            .get(name)
            .map(|(s, _)| s.clone())
            .ok_or_else(|| ExecError::NoSuchTable(name.to_string()))
    }

    fn scan_table(
        &mut self,
        name: &str,
        asof: Option<Date>,
        _keep: Option<&dyn Fn(&Path) -> bool>,
    ) -> Result<TableValue> {
        if let Some(t) = asof {
            let snaps = self
                .history
                .get(name)
                .ok_or_else(|| ExecError::Semantic(format!("table {name} is not versioned")))?;
            let idx = snaps.partition_point(|(d, _)| *d <= t);
            if idx == 0 {
                return Ok(TableValue {
                    kind: self.tables[name].1.kind,
                    tuples: Vec::new(),
                });
            }
            return Ok(snaps[idx - 1].1.clone());
        }
        self.tables
            .get(name)
            .map(|(_, v)| v.clone())
            .ok_or_else(|| ExecError::NoSuchTable(name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_load() {
        let mut p = MemProvider::with_paper_fixtures();
        assert_eq!(p.table_schema("DEPARTMENTS").unwrap().depth(), 3);
        assert_eq!(p.scan_table("REPORTS", None, None).unwrap().len(), 3);
        assert!(p.table_schema("NOPE").is_err());
    }

    #[test]
    fn asof_snapshots() {
        let mut p = MemProvider::with_paper_fixtures();
        let old = aim2_model::fixtures::departments_value();
        p.add_snapshot(
            "DEPARTMENTS",
            Date::parse_iso("1984-01-01").unwrap(),
            old.clone(),
        );
        let got = p
            .scan_table(
                "DEPARTMENTS",
                Some(Date::parse_iso("1984-01-15").unwrap()),
                None,
            )
            .unwrap();
        assert_eq!(got, old);
        let before = p
            .scan_table(
                "DEPARTMENTS",
                Some(Date::parse_iso("1983-01-01").unwrap()),
                None,
            )
            .unwrap();
        assert!(before.is_empty());
    }
}
