//! Result-structure inference.
//!
//! The NF² SELECT clause *describes the structure of the result table*
//! (§3): nested named subqueries build subtables, path items copy atomic
//! or table-valued attributes. This module computes the result
//! [`TableSchema`] of a query before execution — used for validation,
//! DDL-less result display, and the facade's column headers.

use crate::error::ExecError;
use crate::provider::TableProvider;
use crate::Result;
use aim2_lang::ast::{Binding, Expr, Lit, NamedValue, Query, SelectItem, Source};
use aim2_model::{AtomType, AttrDef, AttrKind, TableKind, TableSchema};

/// Schema bindings visible at some query level.
#[derive(Debug, Clone, Default)]
pub struct SchemaEnv {
    frames: Vec<(String, TableSchema)>,
}

impl SchemaEnv {
    pub fn new() -> SchemaEnv {
        SchemaEnv::default()
    }

    /// Bind `var` to a table level (innermost wins on lookup).
    pub fn push(&mut self, var: String, schema: TableSchema) {
        self.frames.push((var, schema));
    }

    /// Remove the innermost binding.
    pub fn pop(&mut self) {
        self.frames.pop();
    }

    /// Innermost binding of `var`.
    pub fn lookup(&self, var: &str) -> Option<&TableSchema> {
        self.frames
            .iter()
            .rev()
            .find(|(v, _)| v == var)
            .map(|(_, s)| s)
    }
}

/// Schema a binding's variable ranges over.
pub fn binding_schema(
    env: &SchemaEnv,
    binding: &Binding,
    provider: &mut dyn TableProvider,
) -> Result<TableSchema> {
    match &binding.source {
        Source::Table(name) => provider.table_schema(name),
        Source::PathOf { var, path } => {
            let outer = env
                .lookup(var)
                .ok_or_else(|| ExecError::UnknownVar(var.clone()))?;
            outer
                .resolve_subtable(path)
                .cloned()
                .map_err(|_| ExecError::BadPath {
                    var: var.clone(),
                    path: path.to_string(),
                })
        }
    }
}

/// Kind of a path/subscript expression, as a result attribute.
fn expr_attr_kind(env: &SchemaEnv, e: &Expr) -> Result<AttrKind> {
    match e {
        Expr::PathRef { var, path } => {
            let schema = env
                .lookup(var)
                .ok_or_else(|| ExecError::UnknownVar(var.clone()))?;
            if path.is_root() {
                return Err(ExecError::Semantic(format!(
                    "`{var}` alone is not a result attribute; project its fields"
                )));
            }
            let def = schema.resolve_path(path).map_err(|_| ExecError::BadPath {
                var: var.clone(),
                path: path.to_string(),
            })?;
            if path.len() > 1 {
                return Err(ExecError::ThroughTable {
                    var: var.clone(),
                    attr: path.segments()[0].clone(),
                });
            }
            Ok(def.kind.clone())
        }
        Expr::Subscript {
            var, path, rest, ..
        } => {
            let schema = env
                .lookup(var)
                .ok_or_else(|| ExecError::UnknownVar(var.clone()))?;
            let list = schema
                .resolve_subtable(path)
                .map_err(|_| ExecError::BadPath {
                    var: var.clone(),
                    path: path.to_string(),
                })?;
            if rest.is_root() {
                // Single-attribute list rows simplify to their atom.
                if list.attrs.len() == 1 {
                    Ok(list.attrs[0].kind.clone())
                } else {
                    Err(ExecError::Semantic(format!(
                        "subscript on multi-attribute list {}: name the attribute (e.g. [1].{})",
                        list.name, list.attrs[0].name
                    )))
                }
            } else {
                let def = list.resolve_path(rest).map_err(|_| ExecError::BadPath {
                    var: var.clone(),
                    path: rest.to_string(),
                })?;
                Ok(def.kind.clone())
            }
        }
        Expr::Lit(l) => Ok(AttrKind::Atomic(match l {
            Lit::Int(_) => AtomType::Int,
            Lit::Float(_) => AtomType::Double,
            Lit::Str(_) => AtomType::Str,
            Lit::Bool(_) => AtomType::Bool,
            _ => return Err(ExecError::Type("table literal in SELECT".into())),
        })),
        other => Err(ExecError::Semantic(format!(
            "expression {other:?} is not a projectable SELECT item"
        ))),
    }
}

fn derived_name(e: &Expr, pos: usize) -> String {
    match e {
        Expr::PathRef { path, .. } if !path.is_root() => path.segments().last().unwrap().clone(),
        Expr::Subscript { rest, .. } if !rest.is_root() => rest.segments().last().unwrap().clone(),
        Expr::Subscript { path, .. } if !path.is_root() => path.segments().last().unwrap().clone(),
        _ => format!("COL{}", pos + 1),
    }
}

/// Infer the result schema of `q` in environment `env`.
pub fn infer_query_schema(
    q: &Query,
    provider: &mut dyn TableProvider,
    env: &mut SchemaEnv,
    result_name: &str,
) -> Result<TableSchema> {
    let mut pushed = 0;
    let out = (|| {
        for b in &q.from {
            let s = binding_schema(env, b, provider)?;
            env.push(b.var.clone(), s);
            pushed += 1;
        }
        // `SELECT *`: copy the (single) source structure (Example 1).
        if q.select.iter().any(|i| matches!(i, SelectItem::Star)) {
            if q.select.len() != 1 {
                return Err(ExecError::Semantic(
                    "`*` cannot be mixed with other SELECT items".into(),
                ));
            }
            if q.from.len() != 1 {
                return Err(ExecError::Semantic(
                    "`SELECT *` requires exactly one FROM binding".into(),
                ));
            }
            let src = env.lookup(&q.from[0].var).unwrap().clone();
            return Ok(TableSchema {
                name: result_name.to_string(),
                ..src
            });
        }
        let mut attrs = Vec::with_capacity(q.select.len());
        for (i, item) in q.select.iter().enumerate() {
            let (name, kind) = match item {
                SelectItem::Star => unreachable!("handled above"),
                SelectItem::Expr(e) => (derived_name(e, i), expr_attr_kind(env, e)?),
                SelectItem::Named { name, value } => match value {
                    NamedValue::Expr(e) => (name.clone(), expr_attr_kind(env, e)?),
                    NamedValue::Subquery(sub) => {
                        let sub_schema = infer_query_schema(sub, provider, env, name)?;
                        (name.clone(), AttrKind::Table(sub_schema))
                    }
                },
            };
            attrs.push(AttrDef { name, kind });
        }
        TableSchema::new(result_name, TableKind::Relation, attrs).map_err(|e| {
            ExecError::Semantic(format!(
                "bad result structure: {e}; rename items with `NAME = expr`"
            ))
        })
    })();
    for _ in 0..pushed {
        env.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::MemProvider;
    use aim2_lang::parser::parse_query;

    fn infer(src: &str) -> Result<TableSchema> {
        let q = parse_query(src).unwrap();
        let mut p = MemProvider::with_paper_fixtures();
        infer_query_schema(&q, &mut p, &mut SchemaEnv::new(), "RESULT")
    }

    #[test]
    fn star_copies_source_structure() {
        let s = infer("SELECT * FROM DEPARTMENTS").unwrap();
        assert_eq!(s.depth(), 3);
        assert_eq!(s.name, "RESULT");
        assert_eq!(s.attrs.len(), 5);
    }

    #[test]
    fn example_2_rebuilds_table5_structure() {
        let s = infer(
            "SELECT x.DNO, x.MGRNO, \
               PROJECTS = (SELECT y.PNO, y.PNAME, \
                 MEMBERS = (SELECT z.EMPNO, z.FUNCTION FROM z IN y.MEMBERS) \
                 FROM y IN x.PROJECTS), \
               x.BUDGET, \
               EQUIP = (SELECT v.QU, v.TYPE FROM v IN x.EQUIP) \
             FROM x IN DEPARTMENTS",
        )
        .unwrap();
        // Same structure as the stored DEPARTMENTS (names and nesting).
        let names: Vec<&str> = s.attrs.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, vec!["DNO", "MGRNO", "PROJECTS", "BUDGET", "EQUIP"]);
        assert_eq!(s.depth(), 3);
        let members = s
            .resolve_subtable(&aim2_model::Path::parse("PROJECTS.MEMBERS"))
            .unwrap();
        assert_eq!(members.attrs.len(), 2);
    }

    #[test]
    fn unnest_produces_flat_schema() {
        let s = infer(
            "SELECT x.DNO, x.MGRNO, y.PNO, y.PNAME, z.EMPNO, z.FUNCTION \
             FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS",
        )
        .unwrap();
        assert!(s.is_flat());
        assert_eq!(s.attrs.len(), 6);
    }

    #[test]
    fn table_valued_item_keeps_subtable_schema() {
        // Example 8's SELECT keeps AUTHORS nested — "the resulting table
        // is not flat because AUTHORS is a non-atomic attribute".
        let s = infer("SELECT x.AUTHORS, x.TITLE FROM x IN REPORTS").unwrap();
        assert!(!s.is_flat());
        let authors = s.attr("AUTHORS").unwrap().kind.as_table().unwrap();
        assert_eq!(authors.kind, TableKind::List);
    }

    #[test]
    fn errors_are_specific() {
        assert!(matches!(
            infer("SELECT x.NOPE FROM x IN DEPARTMENTS"),
            Err(ExecError::BadPath { .. })
        ));
        assert!(matches!(
            infer("SELECT x.PROJECTS.PNO FROM x IN DEPARTMENTS"),
            Err(ExecError::ThroughTable { .. })
        ));
        assert!(matches!(
            infer("SELECT y.PNO FROM x IN DEPARTMENTS, y IN x.NOPE"),
            Err(ExecError::BadPath { .. })
        ));
        assert!(matches!(
            infer("SELECT *, x.DNO FROM x IN DEPARTMENTS"),
            Err(ExecError::Semantic(_))
        ));
        assert!(matches!(
            infer("SELECT x.DNO, y.DNO FROM x IN DEPARTMENTS, y IN DEPARTMENTS"),
            Err(ExecError::Semantic(_)),
        ));
    }

    #[test]
    fn duplicate_names_fixable_by_renaming() {
        let s =
            infer("SELECT x.DNO, THEIRS = y.DNO FROM x IN DEPARTMENTS, y IN DEPARTMENTS").unwrap();
        assert_eq!(s.attrs[1].name, "THEIRS");
    }

    #[test]
    fn subscript_kinds() {
        let s = infer("SELECT x.AUTHORS[1], x.TITLE FROM x IN REPORTS").unwrap();
        // AUTHORS[1] simplifies to NAME's type.
        assert!(matches!(s.attrs[0].kind, AttrKind::Atomic(AtomType::Str)));
        assert_eq!(s.attrs[0].name, "AUTHORS");
    }
}
