//! Per-statement execution deadlines.
//!
//! A [`Deadline`] is a wall-clock point after which a statement must
//! stop consuming engine resources. The evaluator checks it at its
//! single cursor-pull choke point (`Evaluator::pull_row`), so an
//! expired statement unwinds through the normal cursor-closing path —
//! locks release, the implicit transaction rolls back, and the caller
//! sees a typed [`crate::ExecError::DeadlineExceeded`] it can map to a
//! retryable wire error. The clock keeps running while a streamed
//! result is suspended: a deadline bounds total statement wall time,
//! not just compute time, which is what an end-user timeout means.

use std::time::{Duration, Instant};

/// A point in time after which a statement gives up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `d` from now.
    pub fn after(d: Duration) -> Deadline {
        Deadline {
            at: Instant::now() + d,
        }
    }

    /// A deadline at an absolute instant (for callers that stamp the
    /// statement's admission time themselves).
    pub fn at(at: Instant) -> Deadline {
        Deadline { at }
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Time left before expiry (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }

    /// The underlying instant.
    pub fn instant(&self) -> Instant {
        self.at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expiry_and_remaining() {
        let d = Deadline::after(Duration::from_secs(60));
        assert!(!d.expired());
        assert!(d.remaining() > Duration::from_secs(30));

        let past = Deadline::at(Instant::now() - Duration::from_millis(1));
        assert!(past.expired());
        assert_eq!(past.remaining(), Duration::ZERO);
    }
}
