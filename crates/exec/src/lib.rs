//! # aim2-exec — the NF² query processor
//!
//! Evaluates the language of Section 3 against stored tables:
//!
//! * [`eval`] — the reference evaluator: nested-loop evaluation of
//!   SELECT-FROM-WHERE with correlated subqueries in the SELECT clause
//!   (nest, Fig 3), multi-binding FROM chains over inner tables (unnest,
//!   Example 4), EXISTS / ALL over subtables, cross-level joins (Figs
//!   4–5), list subscripts, `CONTAINS` masked text search, and `ASOF`;
//! * [`infer`] — result-structure inference: the SELECT clause describes
//!   the (possibly nested) result schema, computed before execution;
//! * [`analysis`] — referenced-path analysis driving *partial retrieval*:
//!   the facade reads only the subtables a query mentions (§4.1's third
//!   storage demand);
//! * [`provider`] — the [`provider::TableProvider`] abstraction the
//!   evaluator runs against (the facade implements it over the object
//!   store; [`provider::MemProvider`] serves tests);
//! * [`algebra`] — standalone nest/unnest operators (/Jae85a, Jae85b/);
//! * [`planner`] — §4.2 access-path selection: answering the paper's
//!   three index queries under each address scheme, with the access
//!   counters that reproduce its argument.

pub mod algebra;
pub mod analysis;
pub mod analyze;
pub mod deadline;
pub mod error;
pub mod eval;
pub mod infer;
pub mod plan;
pub mod planner;
pub mod provider;
pub mod value;

pub use analyze::{AnalyzedPlan, OpMetrics};
pub use deadline::Deadline;
pub use error::ExecError;
pub use eval::{Evaluator, RowSink};
pub use plan::{PhysOp, PhysicalPlan};
pub use provider::{
    row_batch, ColumnBatch, MemProvider, ObjectCursor, ScanRequest, SharedRows, TableProvider,
};

/// Result alias for execution.
pub type Result<T> = std::result::Result<T, ExecError>;
