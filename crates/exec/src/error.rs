//! Execution errors.

use std::fmt;

/// Errors raised while binding or evaluating a statement.
#[derive(Debug)]
pub enum ExecError {
    /// No such stored table.
    NoSuchTable(String),
    /// Unknown tuple variable.
    UnknownVar(String),
    /// A path did not resolve against a variable's schema.
    BadPath { var: String, path: String },
    /// Navigating *through* a table-valued attribute without binding it.
    ThroughTable { var: String, attr: String },
    /// Type error in a predicate or SELECT item.
    Type(String),
    /// `SELECT *` with other items / multiple bindings, bad subscript,
    /// malformed ASOF date, ... — semantic errors.
    Semantic(String),
    /// Model-level failure.
    Model(aim2_model::ModelError),
    /// Storage-level failure surfaced through a provider.
    Storage(aim2_storage::StorageError),
    /// Index-level failure surfaced through the planner.
    Index(aim2_index::IndexError),
    /// Evaluation aborted because the result consumer went away (e.g. a
    /// network client cancelled a half-streamed query). Raised by
    /// [`crate::eval::RowSink`] implementations, never by the evaluator
    /// itself.
    Cancelled,
    /// The statement's [`crate::Deadline`] passed. Raised at the
    /// evaluator's cursor-pull choke point; retryable from the caller's
    /// point of view (the statement may succeed with a longer budget or
    /// on a less loaded server).
    DeadlineExceeded,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            ExecError::UnknownVar(v) => write!(f, "unknown tuple variable `{v}`"),
            ExecError::BadPath { var, path } => {
                write!(f, "`{var}.{path}` does not resolve")
            }
            ExecError::ThroughTable { var, attr } => write!(
                f,
                "cannot navigate through table-valued attribute `{var}.{attr}`; bind it with a tuple variable (e.g. `y IN {var}.{attr}`)"
            ),
            ExecError::Type(m) => write!(f, "type error: {m}"),
            ExecError::Semantic(m) => write!(f, "semantic error: {m}"),
            ExecError::Model(e) => write!(f, "model error: {e}"),
            ExecError::Storage(e) => write!(f, "storage error: {e}"),
            ExecError::Index(e) => write!(f, "index error: {e}"),
            ExecError::Cancelled => write!(f, "query cancelled by consumer"),
            ExecError::DeadlineExceeded => write!(f, "statement deadline exceeded"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Model(e) => Some(e),
            ExecError::Storage(e) => Some(e),
            ExecError::Index(e) => Some(e),
            _ => None,
        }
    }
}

impl From<aim2_model::ModelError> for ExecError {
    fn from(e: aim2_model::ModelError) -> Self {
        ExecError::Model(e)
    }
}

impl From<aim2_storage::StorageError> for ExecError {
    fn from(e: aim2_storage::StorageError) -> Self {
        ExecError::Storage(e)
    }
}

impl From<aim2_index::IndexError> for ExecError {
    fn from(e: aim2_index::IndexError) -> Self {
        ExecError::Index(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(ExecError::NoSuchTable("T".into()).to_string().contains('T'));
        let e = ExecError::ThroughTable {
            var: "x".into(),
            attr: "PROJECTS".into(),
        };
        assert!(e.to_string().contains("bind it"));
    }
}
