//! Access-path selection for NF² indexes — the §4.2 demonstration.
//!
//! The paper develops index addressing through three queries over
//! DEPARTMENTS (all reproduced generically here):
//!
//! 1. *departments with at least one Consultant* —
//!    [`Sec42Planner::objects_with`]: the data-TID scheme cannot reach
//!    DNO at all (falls back to a scan); root-TID and hierarchical
//!    schemes answer it, and because duplicate addresses are visible in
//!    the index, "multiple access to the same complex object can be
//!    avoided";
//! 2. *projects with at least one Consultant* —
//!    [`Sec42Planner::subobjects_with`]: root-TID addresses lose the
//!    inner position ("all projects of this department have to be
//!    scanned to find the right one"); hierarchical addresses carry the
//!    project component directly;
//! 3. *the conjunctive query* (`PNO = 17 AND FUNCTION = 'Consultant'`) —
//!    [`Sec42Planner::conjunctive`]: only final-form hierarchical
//!    addresses decide `P2 = F2` from the index alone; the naive MD-path
//!    form and the root-TID form "can only be used to determine a
//!    superset of the final result set, and this superset must be
//!    scanned".

use crate::error::ExecError;
use crate::Result;
use aim2_index::address::{IndexAddress, Scheme};
use aim2_index::index::NfIndex;
use aim2_model::{Atom, Path, TableSchema};
use aim2_storage::object::{ObjectHandle, ObjectStore};
use aim2_storage::tid::Tid;
use std::collections::BTreeMap;

/// How a query was answered, with the §4.2-relevant counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// The requested atoms (e.g. DNOs / PNOs), sorted and deduplicated.
    pub result: Vec<Atom>,
    /// Whole or partial complex-object materializations performed.
    pub objects_fetched: usize,
    /// Redundant object visits the index's visible duplicates avoided.
    pub duplicate_refs_avoided: usize,
    /// True when the qualifying (sub)objects were identified purely from
    /// index information (no subtable scanned).
    pub index_only: bool,
    /// True when the scheme could not answer and a full table scan ran.
    pub fallback_scan: bool,
}

/// Planner over one NF² table and its indexes.
pub struct Sec42Planner<'a> {
    pub os: &'a mut ObjectStore,
    pub schema: &'a TableSchema,
}

fn sort_dedup(mut atoms: Vec<Atom>) -> Vec<Atom> {
    atoms.sort_by(|a, b| a.partial_cmp_same(b).unwrap_or(std::cmp::Ordering::Equal));
    atoms.dedup();
    atoms
}

impl<'a> Sec42Planner<'a> {
    pub fn new(os: &'a mut ObjectStore, schema: &'a TableSchema) -> Sec42Planner<'a> {
        Sec42Planner { os, schema }
    }

    fn first_level_atom(&mut self, root: Tid) -> Result<Atom> {
        let atoms = self.os.read_first_level_atoms(ObjectHandle(root))?;
        atoms
            .into_iter()
            .next()
            .ok_or_else(|| ExecError::Semantic("object has no atomic attributes".into()))
    }

    /// Group addresses by root, counting duplicates.
    fn roots_of(addrs: &[IndexAddress]) -> (BTreeMap<Tid, usize>, bool) {
        let mut map = BTreeMap::new();
        let mut all_known = true;
        for a in addrs {
            match a.root() {
                Some(r) => *map.entry(r).or_insert(0) += 1,
                None => all_known = false,
            }
        }
        (map, all_known)
    }

    /// Full-table fallback: evaluate `attr_path = key` by materializing
    /// every object (what a scheme that cannot reach the objects forces).
    fn fallback_scan(&mut self, attr_path: &Path, key: &Atom) -> Result<Outcome> {
        let handles = self.os.handles()?;
        let mut result = Vec::new();
        let mut fetched = 0;
        for h in handles {
            let walk = self.os.walk_data(self.schema, h)?;
            fetched += 1;
            let (parent, attr) = attr_path
                .split_last()
                .ok_or_else(|| ExecError::Semantic("empty attr path".into()))?;
            let pos = atom_pos(self.schema, &parent, attr)?;
            if walk
                .iter()
                .any(|e| e.attr_path == parent && e.atoms.get(pos) == Some(key))
            {
                result.push(self.first_level_atom(h.0)?);
            }
        }
        Ok(Outcome {
            result: sort_dedup(result),
            objects_fetched: fetched,
            duplicate_refs_avoided: 0,
            index_only: false,
            fallback_scan: true,
        })
    }

    /// §4.2 query 1: first-level atoms (DNOs) of the objects containing
    /// `key` under the indexed attribute.
    pub fn objects_with(&mut self, idx: &mut NfIndex, key: &Atom) -> Result<Outcome> {
        let addrs = idx.lookup(key)?;
        let (roots, all_known) = Self::roots_of(&addrs);
        if !all_known {
            // Data-TID scheme: the member data subtuples are reachable,
            // "access to the respective department numbers cannot be
            // done" — full scan.
            return self.fallback_scan(&idx.attr_path(), key);
        }
        let mut result = Vec::new();
        let mut dup_avoided = 0;
        for (root, count) in &roots {
            dup_avoided += count - 1;
            result.push(self.first_level_atom(*root)?);
        }
        Ok(Outcome {
            objects_fetched: roots.len(),
            result: sort_dedup(result),
            duplicate_refs_avoided: dup_avoided,
            index_only: true,
            fallback_scan: false,
        })
    }

    /// §4.2 query 2: first atoms (PNOs) of the depth-1 complex
    /// *subobjects* containing `key` under the indexed attribute.
    pub fn subobjects_with(&mut self, idx: &mut NfIndex, key: &Atom) -> Result<Outcome> {
        let addrs = idx.lookup(key)?;
        match idx.scheme() {
            Scheme::Hierarchical => {
                // The ancestor component identifies the project directly.
                let mut result = Vec::new();
                let mut fetched = 0;
                for a in &addrs {
                    let IndexAddress::Hier(h) = a else {
                        return Err(ExecError::Semantic("scheme mismatch".into()));
                    };
                    let Some(&anc) = h.ancestors().first() else {
                        continue;
                    };
                    let atoms = self.os.read_data_subtuple(ObjectHandle(h.root), anc)?;
                    fetched += 1;
                    if let Some(a0) = atoms.into_iter().next() {
                        result.push(a0);
                    }
                }
                Ok(Outcome {
                    result: sort_dedup(result),
                    objects_fetched: fetched,
                    duplicate_refs_avoided: 0,
                    index_only: true,
                    fallback_scan: false,
                })
            }
            Scheme::RootTid | Scheme::MdPath => {
                // "From a pointer to the root MD subtuple ... it cannot
                // be seen whether a consultant is working in project 17
                // or in project 23. Therefore, all projects of this
                // department have to be scanned."
                let (roots, _) = Self::roots_of(&addrs);
                let (parent, attr) = idx
                    .attr_path()
                    .split_last()
                    .map(|(p, a)| (p, a.to_string()))
                    .ok_or_else(|| ExecError::Semantic("empty attr path".into()))?;
                let pos = atom_pos(self.schema, &parent, &attr)?;
                let mut result = Vec::new();
                for root in roots.keys() {
                    let walk = self.os.walk_data(self.schema, ObjectHandle(*root))?;
                    // Identify depth-1 subobjects owning a matching entry.
                    for e in walk.iter() {
                        if e.attr_path == parent && e.atoms.get(pos) == Some(key) {
                            if let Some(&anc) = e.ancestors.first() {
                                let atoms = self.os.read_data_subtuple(ObjectHandle(*root), anc)?;
                                if let Some(a0) = atoms.into_iter().next() {
                                    result.push(a0);
                                }
                            }
                        }
                    }
                }
                Ok(Outcome {
                    result: sort_dedup(result),
                    objects_fetched: roots.len(),
                    duplicate_refs_avoided: 0,
                    index_only: false,
                    fallback_scan: false,
                })
            }
            Scheme::DataTid => self.subobjects_fallback(idx, key),
        }
    }

    fn subobjects_fallback(&mut self, idx: &mut NfIndex, key: &Atom) -> Result<Outcome> {
        let (parent, attr) = idx
            .attr_path()
            .split_last()
            .map(|(p, a)| (p, a.to_string()))
            .ok_or_else(|| ExecError::Semantic("empty attr path".into()))?;
        let pos = atom_pos(self.schema, &parent, &attr)?;
        let handles = self.os.handles()?;
        let mut result = Vec::new();
        let mut fetched = 0;
        for h in handles {
            fetched += 1;
            for e in self.os.walk_data(self.schema, h)? {
                if e.attr_path == parent && e.atoms.get(pos) == Some(key) {
                    if let Some(&anc) = e.ancestors.first() {
                        let atoms = self.os.read_data_subtuple(h, anc)?;
                        if let Some(a0) = atoms.into_iter().next() {
                            result.push(a0);
                        }
                    }
                }
            }
        }
        Ok(Outcome {
            result: sort_dedup(result),
            objects_fetched: fetched,
            duplicate_refs_avoided: 0,
            index_only: false,
            fallback_scan: true,
        })
    }

    /// §4.2 query 3 (conjunctive): first-level atoms of objects having a
    /// depth-1 subobject that both carries `a_key` (via `a_idx`, e.g.
    /// PNO=17) and contains `b_key` below it (via `b_idx`, e.g.
    /// FUNCTION='Consultant').
    pub fn conjunctive(
        &mut self,
        a_idx: &mut NfIndex,
        a_key: &Atom,
        b_idx: &mut NfIndex,
        b_key: &Atom,
    ) -> Result<Outcome> {
        let a_addrs = a_idx.lookup(a_key)?;
        let b_addrs = b_idx.lookup(b_key)?;
        match (a_idx.scheme(), b_idx.scheme()) {
            (Scheme::Hierarchical, Scheme::Hierarchical) => {
                // Fig 7b: P and F refer to the same project iff the
                // project data-subtuple components match — decided from
                // the index alone ("without having to scan the data").
                let mut roots = Vec::new();
                for a in &a_addrs {
                    let IndexAddress::Hier(p) = a else { continue };
                    for b in &b_addrs {
                        let IndexAddress::Hier(f) = b else { continue };
                        if p.root == f.root && f.ancestors().first() == p.target().as_ref() {
                            roots.push(p.root);
                        }
                    }
                }
                roots.sort();
                roots.dedup();
                let mut result = Vec::new();
                for r in &roots {
                    result.push(self.first_level_atom(*r)?);
                }
                Ok(Outcome {
                    result: sort_dedup(result),
                    objects_fetched: roots.len(),
                    duplicate_refs_avoided: 0,
                    index_only: true,
                    fallback_scan: false,
                })
            }
            _ => {
                // Root-TID and MD-path forms: "the index information can
                // only be used to determine a superset of the final
                // result set, and this superset must be scanned".
                let (a_roots, a_known) = Self::roots_of(&a_addrs);
                let (b_roots, b_known) = Self::roots_of(&b_addrs);
                let candidates: Vec<Tid> = if a_known && b_known {
                    a_roots
                        .keys()
                        .filter(|r| b_roots.contains_key(r))
                        .copied()
                        .collect()
                } else {
                    // Data-TID: not even candidate objects are known.
                    self.os.handles()?.into_iter().map(|h| h.0).collect()
                };
                let verified = self.verify_conjunctive(&candidates, a_idx, a_key, b_idx, b_key)?;
                Ok(Outcome {
                    result: sort_dedup(verified),
                    objects_fetched: candidates.len(),
                    duplicate_refs_avoided: 0,
                    index_only: false,
                    fallback_scan: !(a_known && b_known),
                })
            }
        }
    }

    fn verify_conjunctive(
        &mut self,
        candidates: &[Tid],
        a_idx: &mut NfIndex,
        a_key: &Atom,
        b_idx: &mut NfIndex,
        b_key: &Atom,
    ) -> Result<Vec<Atom>> {
        let (a_parent, a_attr) = a_idx
            .attr_path()
            .split_last()
            .map(|(p, a)| (p, a.to_string()))
            .ok_or_else(|| ExecError::Semantic("empty attr path".into()))?;
        let (b_parent, b_attr) = b_idx
            .attr_path()
            .split_last()
            .map(|(p, a)| (p, a.to_string()))
            .ok_or_else(|| ExecError::Semantic("empty attr path".into()))?;
        let a_pos = atom_pos(self.schema, &a_parent, &a_attr)?;
        let b_pos = atom_pos(self.schema, &b_parent, &b_attr)?;
        let mut result = Vec::new();
        for root in candidates {
            let h = ObjectHandle(*root);
            let walk = self.os.walk_data(self.schema, h)?;
            // Depth-1 subobjects matching the A condition...
            let a_matches: Vec<_> = walk
                .iter()
                .filter(|e| e.attr_path == a_parent && e.atoms.get(a_pos) == Some(a_key))
                .map(|e| e.data)
                .collect();
            // ...that contain a B match below them.
            let hit = walk.iter().any(|e| {
                e.attr_path == b_parent
                    && e.atoms.get(b_pos) == Some(b_key)
                    && e.ancestors
                        .first()
                        .is_some_and(|anc| a_matches.contains(anc))
            });
            if hit {
                result.push(self.first_level_atom(*root)?);
            }
        }
        Ok(result)
    }
}

/// Position of atomic attribute `attr` within the data subtuples of the
/// level at `parent`.
fn atom_pos(schema: &TableSchema, parent: &Path, attr: &str) -> Result<usize> {
    let level = if parent.is_root() {
        schema
    } else {
        schema
            .resolve_subtable(parent)
            .map_err(|e| ExecError::Semantic(e.to_string()))?
    };
    let idx = level
        .attr_index(attr)
        .ok_or_else(|| ExecError::Semantic(format!("no attribute {attr}")))?;
    level
        .atomic_indices()
        .iter()
        .position(|&i| i == idx)
        .ok_or_else(|| ExecError::Semantic(format!("{attr} is not atomic")))
}

/// Extract a conjunctive-EXISTS equality condition usable by the
/// planner from a parsed WHERE clause (the shape of all three §4.2
/// queries): returns `(attr_path, key)` pairs found along a nested
/// EXISTS chain.
pub fn indexable_conditions(expr: &aim2_lang::ast::Expr) -> Vec<(Path, Atom)> {
    use aim2_lang::ast::{CmpOp, Expr, Source};
    let mut out = Vec::new();
    fn lit_atom(l: &aim2_lang::ast::Lit) -> Option<Atom> {
        crate::value::lit_atom(l).ok()
    }
    fn rec(e: &Expr, var_paths: &mut Vec<(String, Path)>, out: &mut Vec<(Path, Atom)>) {
        match e {
            Expr::And(a, b) => {
                rec(a, var_paths, out);
                rec(b, var_paths, out);
            }
            Expr::Exists { binding, pred } => {
                if let Source::PathOf { var, path } = &binding.source {
                    if let Some((_, prefix)) =
                        var_paths.iter().rev().find(|(v, _)| v == var).cloned()
                    {
                        var_paths.push((binding.var.clone(), prefix.join(path)));
                        if let Some(p) = pred {
                            rec(p, var_paths, out);
                        }
                        var_paths.pop();
                    }
                }
            }
            Expr::Cmp {
                op: CmpOp::Eq,
                lhs,
                rhs,
            } => {
                if let (Expr::PathRef { var, path }, Expr::Lit(l)) = (lhs.as_ref(), rhs.as_ref()) {
                    if let Some((_, prefix)) =
                        var_paths.iter().rev().find(|(v, _)| v == var).cloned()
                    {
                        if let Some(atom) = lit_atom(l) {
                            out.push((prefix.join(path), atom));
                        }
                    }
                }
            }
            _ => {}
        }
    }
    // The root variable is whichever PathRef chains bottom out at; the
    // caller binds it — we assume a single root var named by the first
    // EXISTS chain encountered. Seed with every variable at the root
    // path (the caller's FROM variable).
    let mut vars: Vec<(String, Path)> = Vec::new();
    // Collect candidate root vars from the expression itself.
    let mut free = Vec::new();
    expr.free_vars(&mut free);
    for v in free {
        vars.push((v, Path::root()));
    }
    rec(expr, &mut vars, &mut out);
    out
}

/// Extract top-level `root_var.attr CONTAINS 'mask'` conjuncts from a
/// WHERE clause — the conditions a text index on that attribute can
/// pre-restrict (§5). Only single-component paths qualify (text indexes
/// cover first-level text attributes).
pub fn contains_conditions(expr: &aim2_lang::ast::Expr, root_var: &str) -> Vec<(Path, String)> {
    use aim2_lang::ast::Expr;
    let mut out = Vec::new();
    fn rec(e: &Expr, root_var: &str, out: &mut Vec<(Path, String)>) {
        match e {
            Expr::And(a, b) => {
                rec(a, root_var, out);
                rec(b, root_var, out);
            }
            Expr::Contains { expr, pattern } => {
                if let Expr::PathRef { var, path } = expr.as_ref() {
                    if var == root_var && path.len() == 1 {
                        out.push((path.clone(), pattern.clone()));
                    }
                }
            }
            _ => {}
        }
    }
    rec(expr, root_var, &mut out);
    out
}

/// Extract top-level `root_var.attr = literal` conjuncts with
/// single-component paths from a WHERE clause. Unlike
/// [`indexable_conditions`] (which walks EXISTS chains for index
/// candidate selection), these are *exact* conjunctive requirements on
/// the root row itself — safe for a vectorized filter to drop
/// non-matching rows outright.
pub fn eq_conditions(expr: &aim2_lang::ast::Expr, root_var: &str) -> Vec<(Path, Atom)> {
    use aim2_lang::ast::{CmpOp, Expr};
    let mut out = Vec::new();
    fn rec(e: &Expr, root_var: &str, out: &mut Vec<(Path, Atom)>) {
        match e {
            Expr::And(a, b) => {
                rec(a, root_var, out);
                rec(b, root_var, out);
            }
            Expr::Cmp {
                op: CmpOp::Eq,
                lhs,
                rhs,
            } => {
                if let (Expr::PathRef { var, path }, Expr::Lit(l)) = (lhs.as_ref(), rhs.as_ref()) {
                    if var == root_var && path.len() == 1 {
                        if let Ok(atom) = crate::value::lit_atom(l) {
                            out.push((path.clone(), atom));
                        }
                    }
                }
            }
            _ => {}
        }
    }
    rec(expr, root_var, &mut out);
    out
}

/// Extract top-level range conjuncts (`root_var.attr < lit`, `>= lit`,
/// …) with single-component paths from a WHERE clause, merged per
/// attribute into one [`RangePred`]. Same exactness guarantee as
/// [`eq_conditions`]; zone maps use these to skip whole blocks.
pub fn range_conditions(
    expr: &aim2_lang::ast::Expr,
    root_var: &str,
) -> Vec<(Path, crate::provider::RangePred)> {
    use crate::provider::RangePred;
    use aim2_lang::ast::{CmpOp, Expr};
    let mut out: Vec<(Path, RangePred)> = Vec::new();
    fn tighten(out: &mut Vec<(Path, RangePred)>, path: &Path, atom: Atom, op: CmpOp) {
        let pred = match out.iter_mut().find(|(p, _)| p == path) {
            Some((_, pred)) => pred,
            None => {
                out.push((path.clone(), RangePred::default()));
                &mut out.last_mut().unwrap().1
            }
        };
        // Conjunctive semantics: a later bound on the same side only
        // narrows (comparisons against an incompatible type simply add
        // an unsatisfiable bound — the evaluator still re-checks).
        let narrower = |cur: &Option<(Atom, bool)>, cand: &Atom, inc: bool, upper: bool| match cur {
            None => true,
            Some((have, have_inc)) => match cand.partial_cmp_same(have) {
                Some(std::cmp::Ordering::Less) => upper,
                Some(std::cmp::Ordering::Greater) => !upper,
                Some(std::cmp::Ordering::Equal) => !inc && *have_inc,
                None => false,
            },
        };
        match op {
            CmpOp::Gt | CmpOp::Ge => {
                let inc = op == CmpOp::Ge;
                if narrower(&pred.lo, &atom, inc, false) {
                    pred.lo = Some((atom, inc));
                }
            }
            CmpOp::Lt | CmpOp::Le => {
                let inc = op == CmpOp::Le;
                if narrower(&pred.hi, &atom, inc, true) {
                    pred.hi = Some((atom, inc));
                }
            }
            _ => {}
        }
    }
    fn rec(e: &Expr, root_var: &str, out: &mut Vec<(Path, RangePred)>) {
        match e {
            Expr::And(a, b) => {
                rec(a, root_var, out);
                rec(b, root_var, out);
            }
            Expr::Cmp { op, lhs, rhs }
                if matches!(op, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge) =>
            {
                if let (Expr::PathRef { var, path }, Expr::Lit(l)) = (lhs.as_ref(), rhs.as_ref()) {
                    if var == root_var && path.len() == 1 {
                        if let Ok(atom) = crate::value::lit_atom(l) {
                            tighten(out, path, atom, *op);
                        }
                    }
                }
            }
            _ => {}
        }
    }
    rec(expr, root_var, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aim2_index::address::Scheme;
    use aim2_model::fixtures;
    use aim2_storage::buffer::BufferPool;
    use aim2_storage::disk::MemDisk;
    use aim2_storage::minidir::LayoutKind;
    use aim2_storage::segment::Segment;
    use aim2_storage::stats::Stats;

    fn seg() -> Segment {
        Segment::new(BufferPool::new(
            Box::new(MemDisk::new(1024)),
            128,
            Stats::new(),
        ))
    }

    fn setup() -> (TableSchema, ObjectStore) {
        let schema = fixtures::departments_schema();
        let mut os = ObjectStore::new(seg(), LayoutKind::Ss3);
        for t in &fixtures::departments_value().tuples {
            os.insert_object(&schema, t).unwrap();
        }
        (schema, os)
    }

    fn idx(os: &mut ObjectStore, schema: &TableSchema, path: &str, scheme: Scheme) -> NfIndex {
        let mut i = NfIndex::create(seg(), schema, &Path::parse(path), scheme).unwrap();
        i.build(os, schema).unwrap();
        i
    }

    #[test]
    fn query1_all_schemes_agree_on_result() {
        let (schema, mut os) = setup();
        let key = Atom::Str("Consultant".into());
        let mut outcomes = Vec::new();
        for scheme in Scheme::ALL {
            let mut i = idx(&mut os, &schema, "PROJECTS.MEMBERS.FUNCTION", scheme);
            let mut planner = Sec42Planner::new(&mut os, &schema);
            outcomes.push((scheme, planner.objects_with(&mut i, &key).unwrap()));
        }
        for (scheme, o) in &outcomes {
            assert_eq!(
                o.result,
                vec![Atom::Int(218), Atom::Int(314)],
                "scheme {scheme}"
            );
        }
        // Data-TID cannot answer from the index.
        let data = &outcomes[0].1;
        assert!(data.fallback_scan);
        assert_eq!(data.objects_fetched, 3, "scanned every department");
        // Root-TID avoids the duplicate visit to dept 218.
        let root = &outcomes[1].1;
        assert!(!root.fallback_scan);
        assert_eq!(root.objects_fetched, 2);
        assert_eq!(root.duplicate_refs_avoided, 1, "dept 218 listed twice");
    }

    #[test]
    fn query2_hierarchical_answers_from_index() {
        let (schema, mut os) = setup();
        let key = Atom::Str("Consultant".into());
        let mut hier = idx(
            &mut os,
            &schema,
            "PROJECTS.MEMBERS.FUNCTION",
            Scheme::Hierarchical,
        );
        let stats = os.stats();
        let mut planner = Sec42Planner::new(&mut os, &schema);
        let before = stats.snapshot();
        let h = planner.subobjects_with(&mut hier, &key).unwrap();
        let hier_reads = before.delta(&stats.snapshot()).subtuple_reads;
        assert_eq!(
            h.result,
            vec![Atom::Int(17), Atom::Int(25)],
            "§4.2: PNOs 17 and 25"
        );
        assert!(h.index_only);

        let mut root = idx(
            &mut os,
            &schema,
            "PROJECTS.MEMBERS.FUNCTION",
            Scheme::RootTid,
        );
        let mut planner = Sec42Planner::new(&mut os, &schema);
        let before = stats.snapshot();
        let r = planner.subobjects_with(&mut root, &key).unwrap();
        let root_reads = before.delta(&stats.snapshot()).subtuple_reads;
        assert_eq!(r.result, h.result);
        assert!(!r.index_only, "root scheme must scan the projects");
        assert!(
            root_reads > hier_reads,
            "root-TID scanned more ({root_reads}) than hierarchical ({hier_reads})"
        );
    }

    #[test]
    fn query3_only_fig7b_is_index_only() {
        let (schema, mut os) = setup();
        let pno = Atom::Int(17);
        let func = Atom::Str("Consultant".into());
        let expected = vec![Atom::Int(314)];
        for scheme in Scheme::ALL {
            let mut a = idx(&mut os, &schema, "PROJECTS.PNO", scheme);
            let mut b = idx(&mut os, &schema, "PROJECTS.MEMBERS.FUNCTION", scheme);
            let mut planner = Sec42Planner::new(&mut os, &schema);
            let o = planner.conjunctive(&mut a, &pno, &mut b, &func).unwrap();
            assert_eq!(o.result, expected, "scheme {scheme}");
            assert_eq!(
                o.index_only,
                scheme == Scheme::Hierarchical,
                "only the final Fig 7b form decides P2 = F2 from the index (scheme {scheme})"
            );
        }
    }

    #[test]
    fn conjunctive_with_nonunique_project_numbers() {
        // §2: "project numbers need not be unique". Give dept 417 a
        // project also numbered 17 — without a consultant. The
        // hierarchical join must NOT return 417.
        let schema = fixtures::departments_schema();
        let mut os = ObjectStore::new(seg(), LayoutKind::Ss3);
        for t in &fixtures::departments_value().tuples {
            os.insert_object(&schema, t).unwrap();
        }
        use aim2_model::value::build::{a, rel, tup};
        let h417 = os.handles().unwrap()[2];
        os.insert_element(
            &schema,
            h417,
            &aim2_storage::object::ElemLoc::object(),
            2,
            &tup(vec![
                a(17),
                a("CLONE"),
                rel(vec![tup(vec![a(77777), a("Staff")])]),
            ]),
        )
        .unwrap();
        let mut a_idx = idx(&mut os, &schema, "PROJECTS.PNO", Scheme::Hierarchical);
        let mut b_idx = idx(
            &mut os,
            &schema,
            "PROJECTS.MEMBERS.FUNCTION",
            Scheme::Hierarchical,
        );
        let mut planner = Sec42Planner::new(&mut os, &schema);
        let o = planner
            .conjunctive(
                &mut a_idx,
                &Atom::Int(17),
                &mut b_idx,
                &Atom::Str("Consultant".into()),
            )
            .unwrap();
        assert_eq!(
            o.result,
            vec![Atom::Int(314)],
            "417's clone has no consultant"
        );
        assert!(o.index_only);
    }

    #[test]
    fn indexable_conditions_extracted() {
        use aim2_lang::parser::parse_query;
        let q = parse_query(
            "SELECT x.DNO FROM x IN DEPARTMENTS \
             WHERE EXISTS y IN x.PROJECTS : y.PNO = 17 AND \
                   EXISTS z IN y.MEMBERS : z.FUNCTION = 'Consultant'",
        )
        .unwrap();
        let conds = indexable_conditions(q.where_.as_ref().unwrap());
        assert!(conds.contains(&(Path::parse("PROJECTS.PNO"), Atom::Int(17))));
        assert!(conds.contains(&(
            Path::parse("PROJECTS.MEMBERS.FUNCTION"),
            Atom::Str("Consultant".into())
        )));
    }
}
