//! NF² algebra operators: nest and unnest.
//!
//! /Jae85a, Jae85b, JS82/ define the algebra for relations with
//! relation-valued attributes; the paper's Examples 3 and 4 express
//! `nest` and `unnest` in the query language. These standalone operators
//! give the benches a direct, language-independent implementation to
//! measure (and tests a second implementation to cross-check the
//! evaluator against).

use crate::error::ExecError;
use crate::Result;
use aim2_model::{Atom, AttrDef, AttrKind, TableKind, TableSchema, TableValue, Tuple, Value};

/// `unnest(v, attr)`: flatten the table-valued attribute `attr` — one
/// output tuple per element, the attribute's columns spliced in place of
/// the attribute. Parent tuples with empty subtables produce no output
/// (the operator's classical semantics).
pub fn unnest(
    schema: &TableSchema,
    value: &TableValue,
    attr: &str,
) -> Result<(TableSchema, TableValue)> {
    let idx = schema
        .attr_index(attr)
        .ok_or_else(|| ExecError::Semantic(format!("no attribute {attr}")))?;
    let sub = schema.attrs[idx]
        .kind
        .as_table()
        .ok_or_else(|| ExecError::Type(format!("{attr} is not table-valued")))?;
    let mut attrs: Vec<AttrDef> = Vec::new();
    for (i, a) in schema.attrs.iter().enumerate() {
        if i == idx {
            attrs.extend(sub.attrs.iter().cloned());
        } else {
            attrs.push(a.clone());
        }
    }
    let out_schema = TableSchema::new(
        format!("unnest_{}_{}", schema.name, attr),
        TableKind::Relation,
        attrs,
    )
    .map_err(|e| ExecError::Semantic(e.to_string()))?;
    let mut tuples = Vec::new();
    for t in &value.tuples {
        let Some(inner) = t.fields[idx].as_table() else {
            return Err(ExecError::Type("value/schema mismatch".into()));
        };
        for elem in &inner.tuples {
            let mut fields = Vec::with_capacity(out_schema.attrs.len());
            for (i, f) in t.fields.iter().enumerate() {
                if i == idx {
                    fields.extend(elem.fields.iter().cloned());
                } else {
                    fields.push(f.clone());
                }
            }
            tuples.push(Tuple::new(fields));
        }
    }
    Ok((
        out_schema,
        TableValue {
            kind: TableKind::Relation,
            tuples,
        },
    ))
}

/// `nest(v, group_attrs -> name)`: group by all attributes *not* in
/// `nested_attrs`; the `nested_attrs` columns of each group become a
/// relation-valued attribute `name`.
pub fn nest(
    schema: &TableSchema,
    value: &TableValue,
    nested_attrs: &[&str],
    name: &str,
) -> Result<(TableSchema, TableValue)> {
    let mut nested_idx = Vec::with_capacity(nested_attrs.len());
    for a in nested_attrs {
        nested_idx.push(
            schema
                .attr_index(a)
                .ok_or_else(|| ExecError::Semantic(format!("no attribute {a}")))?,
        );
    }
    let group_idx: Vec<usize> = (0..schema.attrs.len())
        .filter(|i| !nested_idx.contains(i))
        .collect();
    // Result schema: group attrs in order, then the nested table.
    let sub_schema = TableSchema::new(
        name,
        TableKind::Relation,
        nested_idx
            .iter()
            .map(|&i| schema.attrs[i].clone())
            .collect(),
    )
    .map_err(|e| ExecError::Semantic(e.to_string()))?;
    let mut attrs: Vec<AttrDef> = group_idx.iter().map(|&i| schema.attrs[i].clone()).collect();
    attrs.push(AttrDef {
        name: name.to_string(),
        kind: AttrKind::Table(sub_schema),
    });
    let out_schema = TableSchema::new(format!("nest_{}", schema.name), TableKind::Relation, attrs)
        .map_err(|e| ExecError::Semantic(e.to_string()))?;
    // Group (order-preserving on first occurrence). When every group
    // attribute is atomic — the common case — grouping hashes; table-
    // valued group keys fall back to pairwise semantic comparison.
    let all_atomic = group_idx.iter().all(|&i| schema.attrs[i].kind.is_atomic());
    let mut groups: Vec<(Vec<Value>, Vec<Tuple>)> = Vec::new();
    if all_atomic {
        use std::collections::HashMap;
        let mut by_key: HashMap<Vec<Atom>, usize> = HashMap::new();
        for t in &value.tuples {
            let hkey: Vec<Atom> = group_idx
                .iter()
                .map(|&i| {
                    t.fields[i]
                        .as_atom()
                        .cloned()
                        .ok_or_else(|| ExecError::Type("value/schema mismatch".into()))
                })
                .collect::<Result<_>>()?;
            let elem = Tuple::new(nested_idx.iter().map(|&i| t.fields[i].clone()).collect());
            match by_key.get(&hkey) {
                Some(&g) => groups[g].1.push(elem),
                None => {
                    by_key.insert(hkey, groups.len());
                    let key: Vec<Value> = group_idx.iter().map(|&i| t.fields[i].clone()).collect();
                    groups.push((key, vec![elem]));
                }
            }
        }
    } else {
        for t in &value.tuples {
            let key: Vec<Value> = group_idx.iter().map(|&i| t.fields[i].clone()).collect();
            let elem = Tuple::new(nested_idx.iter().map(|&i| t.fields[i].clone()).collect());
            match groups.iter_mut().find(|(k, _)| values_eq(k, &key)) {
                Some((_, elems)) => elems.push(elem),
                None => groups.push((key, vec![elem])),
            }
        }
    }
    let tuples = groups
        .into_iter()
        .map(|(mut key, elems)| {
            key.push(Value::Table(TableValue {
                kind: TableKind::Relation,
                tuples: elems,
            }));
            Tuple::new(key)
        })
        .collect();
    Ok((
        out_schema,
        TableValue {
            kind: TableKind::Relation,
            tuples,
        },
    ))
}

/// Fused multi-level unnest with projection: flattens along `path`
/// (e.g. `["PROJECTS", "MEMBERS"]`) and keeps only `keep` columns (named
/// against any level), without materializing intermediate relations or
/// copying untouched subtables — what a real executor runs for
/// Example 4.
pub fn unnest_path(
    schema: &TableSchema,
    value: &TableValue,
    path: &[&str],
    keep: &[&str],
) -> Result<(TableSchema, TableValue)> {
    // Resolve the chain of subtable attribute indices.
    let mut levels: Vec<&TableSchema> = vec![schema];
    let mut attr_idx = Vec::with_capacity(path.len());
    for seg in path {
        let level = *levels.last().unwrap();
        let idx = level
            .attr_index(seg)
            .ok_or_else(|| ExecError::Semantic(format!("no attribute {seg}")))?;
        let sub = level.attrs[idx]
            .kind
            .as_table()
            .ok_or_else(|| ExecError::Type(format!("{seg} is not table-valued")))?;
        attr_idx.push(idx);
        levels.push(sub);
    }
    // Locate each kept column: (level, field index).
    let mut cols = Vec::with_capacity(keep.len());
    let mut attrs = Vec::with_capacity(keep.len());
    for k in keep {
        let (lvl, idx) = levels
            .iter()
            .enumerate()
            .find_map(|(l, s)| s.attr_index(k).map(|i| (l, i)))
            .ok_or_else(|| ExecError::Semantic(format!("no attribute {k} on the path")))?;
        cols.push((lvl, idx));
        attrs.push(levels[lvl].attrs[idx].clone());
    }
    let out_schema = TableSchema::new(
        format!("unnest_path_{}", schema.name),
        TableKind::Relation,
        attrs,
    )
    .map_err(|e| ExecError::Semantic(e.to_string()))?;
    // Walk the hierarchy once, emitting projected rows at the deepest
    // level. `stack` holds the current tuple per level.
    let mut tuples = Vec::new();
    fn rec<'a>(
        depth: usize,
        attr_idx: &[usize],
        stack: &mut Vec<&'a Tuple>,
        cols: &[(usize, usize)],
        tv: &'a TableValue,
        out: &mut Vec<Tuple>,
    ) -> Result<()> {
        for t in &tv.tuples {
            stack.push(t);
            if depth == attr_idx.len() {
                let fields = cols
                    .iter()
                    .map(|&(lvl, idx)| stack[lvl].fields[idx].clone())
                    .collect();
                out.push(Tuple::new(fields));
            } else {
                let Some(next) = t.fields[attr_idx[depth]].as_table() else {
                    return Err(ExecError::Type("value/schema mismatch".into()));
                };
                rec(depth + 1, attr_idx, stack, cols, next, out)?;
            }
            stack.pop();
        }
        Ok(())
    }
    let mut stack = Vec::with_capacity(path.len() + 1);
    rec(0, &attr_idx, &mut stack, &cols, value, &mut tuples)?;
    Ok((
        out_schema,
        TableValue {
            kind: TableKind::Relation,
            tuples,
        },
    ))
}

fn values_eq(a: &[Value], b: &[Value]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| match (x, y) {
            (Value::Atom(p), Value::Atom(q)) => p == q,
            (Value::Table(p), Value::Table(q)) => p.semantically_eq(q),
            _ => false,
        })
}

/// Natural equijoin on one attribute pair (helper for the MAT bench's
/// flat-join baseline).
pub fn equijoin(
    left_schema: &TableSchema,
    left: &TableValue,
    left_attr: &str,
    right_schema: &TableSchema,
    right: &TableValue,
    right_attr: &str,
) -> Result<(TableSchema, TableValue)> {
    let li = left_schema
        .attr_index(left_attr)
        .ok_or_else(|| ExecError::Semantic(format!("no attribute {left_attr}")))?;
    let ri = right_schema
        .attr_index(right_attr)
        .ok_or_else(|| ExecError::Semantic(format!("no attribute {right_attr}")))?;
    let mut attrs = left_schema.attrs.clone();
    for a in &right_schema.attrs {
        if left_schema.attr_index(&a.name).is_none() {
            attrs.push(a.clone());
        } else if a.name != right_schema.attrs[ri].name || left_attr != right_attr {
            let mut renamed = a.clone();
            renamed.name = format!("{}_{}", right_schema.name, a.name);
            attrs.push(renamed);
        }
    }
    let out_schema = TableSchema::new(
        format!("join_{}_{}", left_schema.name, right_schema.name),
        TableKind::Relation,
        attrs,
    )
    .map_err(|e| ExecError::Semantic(e.to_string()))?;
    // Hash join on atom keys.
    use std::collections::HashMap;
    let mut table: HashMap<Atom, Vec<&Tuple>> = HashMap::new();
    for rt in &right.tuples {
        if let Value::Atom(a) = &rt.fields[ri] {
            table.entry(a.clone()).or_default().push(rt);
        }
    }
    let mut tuples = Vec::new();
    for lt in &left.tuples {
        let Value::Atom(key) = &lt.fields[li] else {
            continue;
        };
        if let Some(matches) = table.get(key) {
            for rt in matches {
                let mut fields = lt.fields.clone();
                for (j, f) in rt.fields.iter().enumerate() {
                    let name = &right_schema.attrs[j].name;
                    let keep = left_schema.attr_index(name).is_none()
                        || name != &right_schema.attrs[ri].name
                        || left_attr != right_attr;
                    if keep {
                        fields.push(f.clone());
                    }
                }
                tuples.push(Tuple::new(fields));
            }
        }
    }
    Ok((
        out_schema,
        TableValue {
            kind: TableKind::Relation,
            tuples,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aim2_model::fixtures;
    use aim2_model::Path;

    #[test]
    fn unnest_table5_twice_projects_to_table7() {
        let schema = fixtures::departments_schema();
        let value = fixtures::departments_value();
        let (s1, v1) = unnest(&schema, &value, "PROJECTS").unwrap();
        let (s2, v2) = unnest(&s1, &v1, "MEMBERS").unwrap();
        // Project away BUDGET and EQUIP → exactly Table 7's columns.
        let keep = ["DNO", "MGRNO", "PNO", "PNAME", "EMPNO", "FUNCTION"];
        let idx: Vec<usize> = keep.iter().map(|a| s2.attr_index(a).unwrap()).collect();
        let projected = TableValue {
            kind: TableKind::Relation,
            tuples: v2
                .tuples
                .iter()
                .map(|t| Tuple::new(idx.iter().map(|&i| t.fields[i].clone()).collect()))
                .collect(),
        };
        assert!(projected.semantically_eq(&fixtures::table7_value()));
    }

    #[test]
    fn nest_then_unnest_is_identity_here() {
        // MEMBERS-1NF: nest (EMPNO, FUNCTION) by (PNO, DNO), then unnest.
        let schema = fixtures::members_1nf_schema();
        let value = fixtures::members_1nf_value();
        let (ns, nv) = nest(&schema, &value, &["EMPNO", "FUNCTION"], "MS").unwrap();
        assert_eq!(nv.len(), 4, "one group per (PNO, DNO) project");
        let (us, uv) = unnest(&ns, &nv, "MS").unwrap();
        // Column order differs (group attrs first); compare as sets of
        // (EMPNO, PNO, DNO, FUNCTION).
        let reorder = |s: &TableSchema, v: &TableValue| {
            let idx: Vec<usize> = ["EMPNO", "PNO", "DNO", "FUNCTION"]
                .iter()
                .map(|a| s.attr_index(a).unwrap())
                .collect();
            TableValue {
                kind: TableKind::Relation,
                tuples: v
                    .tuples
                    .iter()
                    .map(|t| Tuple::new(idx.iter().map(|&i| t.fields[i].clone()).collect()))
                    .collect(),
            }
        };
        assert!(reorder(&us, &uv).semantically_eq(&reorder(&schema, &value)));
    }

    #[test]
    fn nest_builds_projects_with_members_like_fig3() {
        // nest MEMBERS-1NF by project, join-free shape check.
        let schema = fixtures::members_1nf_schema();
        let value = fixtures::members_1nf_value();
        let (ns, nv) = nest(&schema, &value, &["EMPNO", "FUNCTION"], "MEMBERS").unwrap();
        assert!(ns.resolve_subtable(&Path::parse("MEMBERS")).is_ok());
        let p17 = nv
            .tuples
            .iter()
            .find(|t| t.fields[0].as_atom().unwrap().as_int() == Some(17))
            .unwrap();
        assert_eq!(p17.fields[2].as_table().unwrap().len(), 3);
    }

    #[test]
    fn unnest_drops_parents_with_empty_subtables() {
        use aim2_model::value::build::{a, rel, tup};
        let schema = TableSchema::relation("T")
            .with_atom("K", aim2_model::AtomType::Int)
            .with_table(TableSchema::relation("S").with_atom("V", aim2_model::AtomType::Int));
        let v = TableValue {
            kind: TableKind::Relation,
            tuples: vec![
                tup(vec![a(1), rel(vec![tup(vec![a(10)])])]),
                tup(vec![a(2), rel(vec![])]),
            ],
        };
        let (_, out) = unnest(&schema, &v, "S").unwrap();
        assert_eq!(out.len(), 1, "K=2 vanished — classical unnest semantics");
    }

    #[test]
    fn equijoin_members_with_employees() {
        let (ms, mv) = (
            fixtures::members_1nf_schema(),
            fixtures::members_1nf_value(),
        );
        let (es, ev) = (
            fixtures::employees_1nf_schema(),
            fixtures::employees_1nf_value(),
        );
        let (js, jv) = equijoin(&ms, &mv, "EMPNO", &es, &ev, "EMPNO").unwrap();
        assert_eq!(jv.len(), 17, "every member has an employee row");
        assert!(js.attr_index("LNAME").is_some());
    }

    #[test]
    fn unnest_path_fused_equals_two_step() {
        let schema = fixtures::departments_schema();
        let value = fixtures::departments_value();
        let keep = ["DNO", "MGRNO", "PNO", "PNAME", "EMPNO", "FUNCTION"];
        let (_, fused) = unnest_path(&schema, &value, &["PROJECTS", "MEMBERS"], &keep).unwrap();
        assert!(
            fused.semantically_eq(&fixtures::table7_value()),
            "Table 7 again"
        );
    }

    #[test]
    fn unnest_path_projects_any_level() {
        let schema = fixtures::departments_schema();
        let value = fixtures::departments_value();
        // Only leaf columns.
        let (s, v) = unnest_path(&schema, &value, &["PROJECTS", "MEMBERS"], &["EMPNO"]).unwrap();
        assert_eq!(s.attrs.len(), 1);
        assert_eq!(v.len(), 17);
        // Only root columns (one row per member still).
        let (_, v) = unnest_path(&schema, &value, &["PROJECTS", "MEMBERS"], &["DNO"]).unwrap();
        assert_eq!(v.len(), 17);
        // Errors.
        assert!(unnest_path(&schema, &value, &["NOPE"], &["DNO"]).is_err());
        assert!(unnest_path(&schema, &value, &["PROJECTS"], &["NOPE"]).is_err());
    }

    #[test]
    fn operators_reject_bad_attributes() {
        let schema = fixtures::departments_schema();
        let value = fixtures::departments_value();
        assert!(unnest(&schema, &value, "DNO").is_err());
        assert!(unnest(&schema, &value, "NOPE").is_err());
        assert!(nest(&schema, &value, &["NOPE"], "X").is_err());
    }
}
