//! The streaming evaluator.
//!
//! Nested-loop evaluation of SELECT-FROM-WHERE: FROM bindings are
//! enumerated left to right (later bindings may range over attributes of
//! earlier variables — "a good mental model ... is to associate them
//! with a loop which runs over all tuples of the relation they are bound
//! to", §3); WHERE filters each combination; SELECT items (including
//! correlated subqueries) build each result tuple.
//!
//! Execution is a pull-based cursor pipeline: the outermost stored-table
//! binding and stored-table quantifiers stream one row per
//! [`TableProvider::next_row`] pull, with the pushdown contract
//! (projection + indexable conjuncts) carried down in the
//! [`ScanRequest`], so `EXISTS` and quantifier short-circuits stop
//! pulling pages the moment they are decided. Inner join bindings
//! materialize once into a per-query scan cache (a join partner is
//! enumerated many times; re-decoding it per outer row would be worse
//! than the paper's own design). Setting [`Evaluator::materialize`]
//! restores the reference materialize-then-evaluate behavior — the
//! oracle the equivalence suite compares against.

use crate::analysis::{referenced_paths, Referenced};
use crate::analyze::{AnalyzedPlan, OpMetrics};
use crate::error::ExecError;
use crate::infer::{infer_query_schema, SchemaEnv};
use crate::plan::{collect_subscripts, render_expr, PhysOp, PhysicalPlan};
use crate::provider::{ColumnBatch, ObjectCursor, RangePred, ScanRequest, TableProvider};
use crate::value::{compare, resolve, EvalValue};
use crate::Result;
use aim2_lang::ast::{Binding, Expr, NamedValue, Query, SelectItem, Source};
use aim2_model::{Atom, AttrKind, Date, Path, TableKind, TableSchema, TableValue, Tuple, Value};
use aim2_text::Pattern;
use std::collections::HashMap;
use std::time::Instant;

/// Row-at-a-time consumer for [`Evaluator::eval_query_streamed`].
///
/// `on_start` is called exactly once with the inferred result schema
/// and kind before any row; `on_row` is called per result row in
/// production order. Returning an error from either aborts evaluation
/// immediately — cursors close through the normal unwind path — which
/// is how a slow or departed consumer (e.g. a network client that
/// cancelled) stops a query without draining it.
pub trait RowSink {
    fn on_start(&mut self, schema: &TableSchema, kind: TableKind) -> Result<()>;
    fn on_row(&mut self, row: Tuple) -> Result<()>;
}

/// Rows per batch the head-scan pipeline pulls (matches the cold
/// store's block size, so a cold block becomes exactly one batch).
const BATCH_ROWS: usize = 1024;

/// Vectorized filter for the head scan: *exact* top-level conjuncts of
/// the WHERE (single-attribute equality / range / CONTAINS on the head
/// variable), applied column-at-a-time to each batch before rows fan
/// out into the nested-loop pipeline. Exactness matters: a dropped row
/// never reaches the re-checking Filter, so only conjuncts that are
/// unconditionally required may appear here. Anything the filter is
/// unsure about (non-atom value, type mismatch) is kept and left to
/// the row-wise predicate, which also owns error reporting.
struct VecFilter {
    var: String,
    eqs: Vec<(String, Atom)>,
    ranges: Vec<(String, RangePred)>,
    contains: Vec<(String, Pattern)>,
}

impl VecFilter {
    /// Test one column value against an equality key: `Some(false)`
    /// only when the row provably fails the conjunct.
    fn eq_keeps(v: &Value, key: &Atom) -> bool {
        match v {
            Value::Atom(a) => !matches!(
                a.partial_cmp_same(key),
                Some(std::cmp::Ordering::Less) | Some(std::cmp::Ordering::Greater)
            ),
            Value::Table(_) => true,
        }
    }

    fn range_keeps(v: &Value, pred: &RangePred) -> bool {
        use std::cmp::Ordering::{Equal, Greater, Less};
        let Value::Atom(a) = v else { return true };
        if let Some((lo, inclusive)) = &pred.lo {
            match a.partial_cmp_same(lo) {
                Some(Less) => return false,
                Some(Equal) if !inclusive => return false,
                _ => {}
            }
        }
        if let Some((hi, inclusive)) = &pred.hi {
            match a.partial_cmp_same(hi) {
                Some(Greater) => return false,
                Some(Equal) if !inclusive => return false,
                _ => {}
            }
        }
        true
    }

    fn contains_keeps(v: &Value, p: &Pattern) -> bool {
        match v {
            Value::Atom(a) => match a.as_str() {
                Some(text) => aim2_text::tokenize(text).iter().any(|w| p.matches(w)),
                None => true,
            },
            Value::Table(_) => true,
        }
    }
}

/// One bound tuple variable.
#[derive(Debug, Clone)]
struct Frame {
    var: String,
    schema: TableSchema,
    tuple: Tuple,
}

/// The evaluation environment: a stack of frames.
#[derive(Debug, Clone, Default)]
struct Env {
    frames: Vec<Frame>,
}

impl Env {
    fn lookup(&self, var: &str) -> Option<&Frame> {
        self.frames.iter().rev().find(|f| f.var == var)
    }
}

/// Key of one cached stored-table scan: table name, ASOF date, and —
/// for pruned scans — the binding variable whose referenced paths
/// shaped the projection.
type ScanKey = (String, Option<Date>, Option<String>);

/// Query evaluator over a [`TableProvider`].
pub struct Evaluator<'p, P: TableProvider> {
    provider: &'p mut P,
    /// Per-query cache of materialized stored-table scans, so a join
    /// binding does not rescan per outer combination. Pruned
    /// (projected) scans are keyed by the binding variable as well, so
    /// a partial materialization is never served to a binding (e.g. in
    /// a subquery) that needs more of the table.
    scan_cache: HashMap<ScanKey, (TableSchema, TableValue)>,
    /// Whether to push projection down into the provider (partial
    /// retrieval). On by default; benches toggle it to measure the gain.
    pub projection_pushdown: bool,
    /// Reference materializing mode: drain every scan fully before
    /// evaluating, with no pushdown and no early exits — the
    /// pre-cursor behavior the equivalence suite compares against.
    pub materialize: bool,
    /// Referenced-path analysis of the current query (projection
    /// pushdown contract), keyed by binding variable.
    refs: HashMap<String, Referenced>,
    /// Predicate pushdown for the current query's root binding:
    /// the single stored-table binding the indexable/CONTAINS conjuncts
    /// unambiguously constrain, if any.
    pushed_var: Option<String>,
    pushed_conjuncts: Vec<(Path, Atom)>,
    pushed_contains: Vec<(Path, String)>,
    pushed_ranges: Vec<(Path, RangePred)>,
    /// Vectorized filter for the current query's head scan, when its
    /// WHERE has exact single-attribute conjuncts on the head variable.
    vec_filter: Option<VecFilter>,
    /// The operator tree of the current query; scans record their
    /// provider-chosen access path as their cursors open.
    plan: Option<PhysicalPlan>,
    /// EXPLAIN ANALYZE mode: attribute rows, decode-counter deltas and
    /// wall time to plan operators while executing.
    analyze: bool,
    /// Per-operator metrics, parallel to `plan.nodes` (empty when not
    /// analyzing).
    ops: Vec<OpMetrics>,
    /// AST binding address → plan node, recorded during lowering. The
    /// query is borrowed unmoved for the whole evaluation, so node
    /// addresses are stable keys — and unlike variable names they stay
    /// unambiguous when subqueries reuse a variable.
    binding_nodes: HashMap<usize, usize>,
    /// AST query address → (Filter node, Project node).
    query_nodes: HashMap<usize, (Option<usize>, usize)>,
    /// Wall-clock budget for the current statement, checked at the
    /// cursor-pull choke point. `None` means no deadline.
    deadline: Option<crate::deadline::Deadline>,
}

impl<'p, P: TableProvider> Evaluator<'p, P> {
    pub fn new(provider: &'p mut P) -> Evaluator<'p, P> {
        Evaluator {
            provider,
            scan_cache: HashMap::new(),
            projection_pushdown: true,
            materialize: false,
            refs: HashMap::new(),
            pushed_var: None,
            pushed_conjuncts: Vec::new(),
            pushed_contains: Vec::new(),
            pushed_ranges: Vec::new(),
            vec_filter: None,
            plan: None,
            analyze: false,
            ops: Vec::new(),
            binding_nodes: HashMap::new(),
            query_nodes: HashMap::new(),
            deadline: None,
        }
    }

    /// Bound the statement's total wall time: once the deadline passes,
    /// the next cursor pull raises [`ExecError::DeadlineExceeded`] and
    /// evaluation unwinds through the normal cursor-closing path.
    pub fn set_deadline(&mut self, deadline: Option<crate::deadline::Deadline>) {
        self.deadline = deadline;
    }

    /// Attribute runtime metrics (rows, decode deltas, wall time) to
    /// plan operators while executing — EXPLAIN ANALYZE. Collect the
    /// result with [`Evaluator::take_analysis`] after `eval_query`.
    pub fn enable_analyze(&mut self) {
        self.analyze = true;
    }

    /// The annotated plan of the last query evaluated with analysis
    /// enabled (`total_wall_ns` is left for the caller, which owns the
    /// end-to-end clock).
    pub fn take_analysis(&mut self) -> Option<AnalyzedPlan> {
        if !self.analyze {
            return None;
        }
        let plan = self.plan.take()?;
        let mut ops = std::mem::take(&mut self.ops);
        ops.resize(plan.nodes.len(), OpMetrics::default());
        Some(AnalyzedPlan {
            plan,
            ops,
            total_wall_ns: 0,
        })
    }

    /// Stable attribution key for a FROM/quantifier binding (the
    /// monomorphic parameter forces `&Box<Binding>` callers through
    /// deref coercion, so every site keys the same heap address).
    fn baddr(b: &Binding) -> usize {
        b as *const Binding as usize
    }

    /// Stable attribution key for a (sub)query.
    fn qaddr(q: &Query) -> usize {
        q as *const Query as usize
    }

    /// Evaluate a predicate against explicit variable bindings — the
    /// entry point DML uses to qualify objects and elements (the frames
    /// are the UPDATE/DELETE binding chain).
    pub fn eval_predicate(
        &mut self,
        frames: &[(String, TableSchema, Tuple)],
        e: &Expr,
    ) -> Result<bool> {
        self.refs.clear();
        self.pushed_var = None;
        self.pushed_conjuncts.clear();
        self.pushed_contains.clear();
        self.pushed_ranges.clear();
        self.vec_filter = None;
        let mut env = Env {
            frames: frames
                .iter()
                .map(|(var, schema, tuple)| Frame {
                    var: var.clone(),
                    schema: schema.clone(),
                    tuple: tuple.clone(),
                })
                .collect(),
        };
        self.eval_pred(e, &mut env)
    }

    /// The physical plan of the last evaluated query.
    pub fn physical_plan(&self) -> Option<&PhysicalPlan> {
        self.plan.as_ref()
    }

    /// Take ownership of the last query's physical plan.
    pub fn take_plan(&mut self) -> Option<PhysicalPlan> {
        self.plan.take()
    }

    /// Compute pushdown state and the operator tree for `q` without
    /// executing it.
    fn prepare(&mut self, q: &Query) {
        self.scan_cache.clear();
        self.refs = if self.projection_pushdown && !self.materialize {
            referenced_paths(q)
        } else {
            HashMap::new()
        };
        self.pushed_var = None;
        self.pushed_conjuncts.clear();
        self.pushed_contains.clear();
        self.pushed_ranges.clear();
        self.vec_filter = None;
        if !self.materialize {
            if let Some((var, conj, cont, ranges)) = compute_pushdown(q) {
                self.pushed_var = Some(var);
                self.pushed_conjuncts = conj;
                self.pushed_contains = cont;
                self.pushed_ranges = ranges;
            }
            if let (Some(b), Some(w)) = (q.from.first(), q.where_.as_ref()) {
                if matches!(b.source, Source::Table(_)) {
                    let eqs = crate::planner::eq_conditions(w, &b.var);
                    let ranges = crate::planner::range_conditions(w, &b.var);
                    let contains = crate::planner::contains_conditions(w, &b.var);
                    if !(eqs.is_empty() && ranges.is_empty() && contains.is_empty()) {
                        self.vec_filter = Some(VecFilter {
                            var: b.var.clone(),
                            eqs: eqs.into_iter().map(|(p, a)| (p.to_string(), a)).collect(),
                            ranges: ranges
                                .into_iter()
                                .map(|(p, r)| (p.to_string(), r))
                                .collect(),
                            contains: contains
                                .into_iter()
                                .map(|(p, m)| (p.to_string(), Pattern::parse(&m)))
                                .collect(),
                        });
                    }
                }
            }
        }
        self.binding_nodes.clear();
        self.query_nodes.clear();
        let plan = self.lower_plan(q);
        self.ops.clear();
        if self.analyze {
            self.ops = vec![OpMetrics::default(); plan.nodes.len()];
        }
        self.plan = Some(plan);
    }

    /// Pull one row, attributing the pull's decode-counter deltas and
    /// wall time to the cursor's plan node when analyzing. Every
    /// evaluator pull goes through here, so summing the per-operator
    /// `objects` deltas always reproduces the query's total Stats
    /// delta. (Deltas use saturating subtraction: the counters are
    /// process-shared, so a concurrent session can only over-attribute,
    /// never underflow.)
    fn pull_row(&mut self, cur: &mut ObjectCursor) -> Result<Option<Tuple>> {
        if let Some(d) = self.deadline {
            if d.expired() {
                aim2_obs::note_event("deadline.exceeded");
                return Err(ExecError::DeadlineExceeded);
            }
        }
        if !self.analyze {
            return self.provider.next_row(cur);
        }
        let t0 = Instant::now();
        let (obj0, atom0) = self.provider.decode_counters();
        let row = self.provider.next_row(cur);
        let (obj1, atom1) = self.provider.decode_counters();
        let node = cur
            .plan_node
            .unwrap_or_else(|| self.plan.as_ref().map_or(0, |p| p.root));
        if let Some(m) = self.ops.get_mut(node) {
            m.objects_decoded += obj1.saturating_sub(obj0);
            m.atoms_decoded += atom1.saturating_sub(atom0);
            m.wall_ns += t0.elapsed().as_nanos() as u64;
            if matches!(row, Ok(Some(_))) {
                m.rows_out += 1;
            }
        }
        row
    }

    /// Pull one batch, attributing decode and cold-store counter deltas
    /// to the cursor's plan node when analyzing. Counters are sampled
    /// **once per batch**, not per row — the per-operator sum invariant
    /// over decode counters holds exactly, at batch granularity.
    fn pull_batch(
        &mut self,
        cur: &mut ObjectCursor,
        max_rows: usize,
    ) -> Result<Option<ColumnBatch>> {
        if let Some(d) = self.deadline {
            if d.expired() {
                aim2_obs::note_event("deadline.exceeded");
                return Err(ExecError::DeadlineExceeded);
            }
        }
        if !self.analyze {
            return self.provider.next_batch(cur, max_rows);
        }
        let t0 = Instant::now();
        let (obj0, atom0) = self.provider.decode_counters();
        let (_, dec0, val0) = self.provider.colstore_counters();
        let batch = self.provider.next_batch(cur, max_rows);
        let (obj1, atom1) = self.provider.decode_counters();
        let (_, dec1, val1) = self.provider.colstore_counters();
        let node = cur
            .plan_node
            .unwrap_or_else(|| self.plan.as_ref().map_or(0, |p| p.root));
        if let Some(m) = self.ops.get_mut(node) {
            m.objects_decoded += obj1.saturating_sub(obj0);
            m.atoms_decoded += atom1.saturating_sub(atom0);
            m.blocks_decoded += dec1.saturating_sub(dec0);
            m.values_scanned += val1.saturating_sub(val0);
            m.wall_ns += t0.elapsed().as_nanos() as u64;
            if let Ok(Some(b)) = &batch {
                m.rows_out += b.len as u64;
            }
        }
        batch
    }

    /// Note a cursor open against its plan node: one more loop, and the
    /// candidate set it was opened over flows in.
    fn note_open(&mut self, node: Option<usize>, candidates: usize) {
        if !self.analyze {
            return;
        }
        if let Some(m) = node.and_then(|i| self.ops.get_mut(i)) {
            m.loops += 1;
            m.rows_in += candidates as u64;
        }
    }

    /// Note one result tuple flowing through a Project node.
    fn note_project(&mut self, node: Option<usize>, t0: Option<Instant>) {
        if let Some(m) = node.and_then(|i| self.ops.get_mut(i)) {
            m.rows_in += 1;
            m.rows_out += 1;
            if let Some(t0) = t0 {
                m.wall_ns += t0.elapsed().as_nanos() as u64;
            }
        }
    }

    /// Note an ordered-list subscript evaluation against its
    /// OrderedSubscript plan node (matched by rendered expression).
    fn note_subscript(&mut self, e: &Expr) {
        let rendered = render_expr(e);
        let idx = self.plan.as_ref().and_then(|p| {
            p.nodes.iter().position(
                |n| matches!(&n.op, PhysOp::OrderedSubscript { expr } if *expr == rendered),
            )
        });
        if let Some(m) = idx.and_then(|i| self.ops.get_mut(i)) {
            m.rows_in += 1;
            m.rows_out += 1;
        }
    }

    /// Build the physical plan for `q`, opening (and immediately
    /// closing) the root cursor so the plan records the access path the
    /// provider would choose — EXPLAIN without execution.
    pub fn plan_query(&mut self, q: &Query) -> Result<PhysicalPlan> {
        self.prepare(q);
        if let Some(b) = q.from.first() {
            if matches!(b.source, Source::Table(_)) {
                let (_, cur) = self.open_table_cursor(b, true, true)?;
                self.provider.close_scan(cur);
            }
        }
        Ok(self.plan.take().unwrap_or_default())
    }

    /// Evaluate a whole query; returns the inferred result schema and
    /// the result table.
    pub fn eval_query(&mut self, q: &Query) -> Result<(TableSchema, TableValue)> {
        let schema = infer_query_schema(q, self.provider, &mut SchemaEnv::new(), "RESULT")?;
        self.prepare(q);
        let mut env = Env::default();
        let value = self.eval_query_env(q, &mut env, true)?;
        Ok((schema, value))
    }

    /// Evaluate a whole query, delivering rows to `sink` as they are
    /// produced instead of materializing a result table. The sink sees
    /// `on_start` (inferred schema + result kind) exactly once, then
    /// `on_row` per result row in production order; a sink error aborts
    /// evaluation and propagates (this is how a network peer cancels a
    /// half-streamed query).
    pub fn eval_query_streamed(&mut self, q: &Query, sink: &mut dyn RowSink) -> Result<()> {
        let schema = infer_query_schema(q, self.provider, &mut SchemaEnv::new(), "RESULT")?;
        {
            let _plan = aim2_obs::capture_span("exec.plan");
            self.prepare(q);
        }
        let mut env = Env::default();
        let kind = self.query_kind(q, &env)?;
        sink.on_start(&schema, kind)?;
        self.eval_query_rows(q, &mut env, true, &mut |row| sink.on_row(row))
    }

    /// The kind of a query's result: `SELECT *` keeps the source's kind
    /// (a list stays a list), everything else builds a relation. Also
    /// enforces the `SELECT *` shape rule. Only consults bindings bound
    /// *outside* `q` (its own first binding cannot be in scope for
    /// itself), so this is stable whether asked before or after the
    /// enumeration loop.
    fn query_kind(&mut self, q: &Query, env: &Env) -> Result<TableKind> {
        let star = q.select.iter().any(|i| matches!(i, SelectItem::Star));
        if star && (q.select.len() != 1 || q.from.len() != 1) {
            return Err(ExecError::Semantic(
                "`SELECT *` requires exactly one item and one binding".into(),
            ));
        }
        if star {
            self.binding_kind(&q.from[0], env)
        } else {
            Ok(TableKind::Relation)
        }
    }

    fn eval_query_env(&mut self, q: &Query, env: &mut Env, top: bool) -> Result<TableValue> {
        let kind = self.query_kind(q, env)?;
        let mut tuples = Vec::new();
        self.eval_query_rows(q, env, top, &mut |row| {
            tuples.push(row);
            Ok(())
        })?;
        Ok(TableValue { kind, tuples })
    }

    /// Core enumeration: run `q`'s binding loops and hand each result
    /// row to `out`. Shared by the materializing path ([`Self::eval_query`],
    /// subqueries) and the streaming path ([`Self::eval_query_streamed`]).
    fn eval_query_rows(
        &mut self,
        q: &Query,
        env: &mut Env,
        top: bool,
        out: &mut dyn FnMut(Tuple) -> Result<()>,
    ) -> Result<()> {
        // Projection pushdown and head streaming apply to the top-level
        // query's bindings only; subquery scans materialize in full (a
        // correlated subquery re-runs per outer row — its scan must be
        // cacheable and unpruned).
        let use_refs = top && self.projection_pushdown && !self.materialize;
        let stream_head = top && !self.materialize;
        // EXPLAIN ANALYZE attribution for this (sub)query's Filter and
        // Project nodes. Wall times are inclusive: a Filter's clock
        // covers the quantifier pulls its predicate triggers, which the
        // child Scan nodes also account — standard ANALYZE semantics.
        let qn = self.query_nodes.get(&Self::qaddr(q)).copied();
        let filter_node = qn.and_then(|(f, _)| f);
        let project_node = qn.map(|(_, p)| p);
        self.for_each_combination(
            q.from.as_slice(),
            env,
            use_refs,
            stream_head,
            &mut |me, env| {
                if let Some(w) = &q.where_ {
                    let t0 = me.analyze.then(Instant::now);
                    let pass = me.eval_pred(w, env)?;
                    if let Some(m) = filter_node.and_then(|i| me.ops.get_mut(i)) {
                        m.rows_in += 1;
                        if pass {
                            m.rows_out += 1;
                        }
                        if let Some(t0) = t0 {
                            m.wall_ns += t0.elapsed().as_nanos() as u64;
                        }
                    }
                    if !pass {
                        return Ok(());
                    }
                }
                let t0 = me.analyze.then(Instant::now);
                let mut fields = Vec::with_capacity(q.select.len());
                for item in &q.select {
                    match item {
                        SelectItem::Star => {
                            let f = env.lookup(&q.from[0].var).expect("bound");
                            let row = f.tuple.clone();
                            out(row)?;
                            me.note_project(project_node, t0);
                            return Ok(());
                        }
                        SelectItem::Expr(e) => {
                            fields.push(me.eval_value(e, env)?.simplified().into_value()?);
                        }
                        SelectItem::Named { value, .. } => match value {
                            NamedValue::Expr(e) => {
                                fields.push(me.eval_value(e, env)?.simplified().into_value()?)
                            }
                            NamedValue::Subquery(sub) => {
                                let tv = me.eval_query_env(sub, env, false)?;
                                fields.push(Value::Table(tv));
                            }
                        },
                    }
                }
                out(Tuple::new(fields))?;
                me.note_project(project_node, t0);
                Ok(())
            },
        )
    }

    /// The kind (relation/list) of the table a binding ranges over.
    fn binding_kind(&mut self, b: &Binding, env: &Env) -> Result<TableKind> {
        match &b.source {
            Source::Table(name) => Ok(self.provider.table_schema(name)?.kind),
            Source::PathOf { var, path } => {
                let frame = env
                    .lookup(var)
                    .ok_or_else(|| ExecError::UnknownVar(var.clone()))?;
                match resolve(&frame.schema, &frame.tuple, path, var)? {
                    (_, AttrKind::Table(sub)) => Ok(sub.kind),
                    _ => Err(ExecError::Type(format!(
                        "`{var}.{path}` is not table-valued"
                    ))),
                }
            }
        }
    }

    fn parse_asof(b: &Binding) -> Result<Option<Date>> {
        match &b.asof {
            Some(s) => Date::parse_iso(s)
                .map(Some)
                .map_err(|e| ExecError::Semantic(format!("bad ASOF date '{s}': {e}"))),
            None => Ok(None),
        }
    }

    /// Open a cursor over a stored-table binding, carrying the pushdown
    /// contract: the projection (when `use_refs`) and — for the root
    /// binding the conjuncts constrain — the indexable/CONTAINS
    /// conditions.
    fn open_table_cursor(
        &mut self,
        b: &Binding,
        use_refs: bool,
        root: bool,
    ) -> Result<(TableSchema, ObjectCursor)> {
        let Source::Table(name) = &b.source else {
            return Err(ExecError::Semantic("cursor over non-stored source".into()));
        };
        let asof = Self::parse_asof(b)?;
        let schema = self.provider.table_schema(name)?;
        let projection = if use_refs {
            self.refs.get(&b.var).cloned()
        } else {
            None
        };
        let (conjuncts, contains, ranges) =
            if root && asof.is_none() && self.pushed_var.as_deref() == Some(b.var.as_str()) {
                (
                    self.pushed_conjuncts.clone(),
                    self.pushed_contains.clone(),
                    self.pushed_ranges.clone(),
                )
            } else {
                (Vec::new(), Vec::new(), Vec::new())
            };
        let req = ScanRequest {
            table: name.clone(),
            asof,
            projection,
            conjuncts,
            contains,
            ranges,
        };
        // Zone-map pruning happens while the scan opens (block skips
        // are decided before any decode), so sample the pruning counter
        // around the open and attribute the delta to the scan node.
        let pruned0 = self.analyze.then(|| self.provider.colstore_counters().0);
        let mut cur = self.provider.open_scan(&req)?;
        if let Some(plan) = &mut self.plan {
            plan.set_access_path(&b.var, &cur.access_path);
        }
        cur.plan_node = self.binding_nodes.get(&Self::baddr(b)).copied();
        if let Some(p0) = pruned0 {
            let p1 = self.provider.colstore_counters().0;
            let node = cur
                .plan_node
                .unwrap_or_else(|| self.plan.as_ref().map_or(0, |p| p.root));
            if let Some(m) = self.ops.get_mut(node) {
                m.blocks_pruned += p1.saturating_sub(p0);
            }
        }
        self.note_open(cur.plan_node, cur.len());
        Ok((schema, cur))
    }

    /// The table a binding ranges over, fully materialized (and cached,
    /// for stored tables) in the current environment.
    fn binding_table(
        &mut self,
        b: &Binding,
        env: &Env,
        use_refs: bool,
    ) -> Result<(TableSchema, TableValue)> {
        match &b.source {
            Source::Table(name) => {
                let asof = Self::parse_asof(b)?;
                let refs = if use_refs {
                    self.refs.get(&b.var).cloned()
                } else {
                    None
                };
                let key = (name.clone(), asof, refs.as_ref().map(|_| b.var.clone()));
                if let Some(hit) = self.scan_cache.get(&key) {
                    return Ok(hit.clone());
                }
                let req = ScanRequest {
                    table: name.clone(),
                    asof,
                    projection: refs,
                    conjuncts: Vec::new(),
                    contains: Vec::new(),
                    ranges: Vec::new(),
                };
                let schema = self.provider.table_schema(name)?;
                let mut cur = self.provider.open_scan(&req)?;
                if let Some(plan) = &mut self.plan {
                    plan.set_access_path(&b.var, &cur.access_path);
                }
                cur.plan_node = self.binding_nodes.get(&Self::baddr(b)).copied();
                self.note_open(cur.plan_node, cur.len());
                let mut tuples = Vec::with_capacity(cur.len());
                while let Some(t) = self.pull_row(&mut cur)? {
                    tuples.push(t);
                }
                self.provider.close_scan(cur);
                let value = TableValue {
                    kind: schema.kind,
                    tuples,
                };
                self.scan_cache.insert(key, (schema.clone(), value.clone()));
                Ok((schema, value))
            }
            Source::PathOf { var, path } => {
                if b.asof.is_some() {
                    return Err(ExecError::Semantic(
                        "ASOF applies to stored tables, not inner tables".into(),
                    ));
                }
                let frame = env
                    .lookup(var)
                    .ok_or_else(|| ExecError::UnknownVar(var.clone()))?;
                let (value, kind) = resolve(&frame.schema, &frame.tuple, path, var)?;
                match (value, kind) {
                    (Value::Table(tv), AttrKind::Table(sub)) => Ok((sub.clone(), tv.clone())),
                    _ => Err(ExecError::Type(format!(
                        "`{var}.{path}` is not table-valued"
                    ))),
                }
            }
        }
    }

    /// Enumerate all combinations of the bindings, invoking `f` per
    /// combination. When `stream_head` is set, the first stored-table
    /// binding is pulled through a cursor one row at a time instead of
    /// materializing the table.
    fn for_each_combination(
        &mut self,
        bindings: &[Binding],
        env: &mut Env,
        use_refs: bool,
        stream_head: bool,
        f: &mut dyn FnMut(&mut Self, &mut Env) -> Result<()>,
    ) -> Result<()> {
        match bindings.split_first() {
            None => f(self, env),
            Some((b, rest)) => {
                if stream_head && matches!(b.source, Source::Table(_)) {
                    let (schema, mut cur) = self.open_table_cursor(b, use_refs, true)?;
                    // Batch-at-a-time: pull column batches, run the
                    // vectorized filter (when the WHERE gave us exact
                    // head conjuncts), then fan the survivors into the
                    // nested-loop pipeline row-wise. Quantifier early
                    // exits still abort between batches, so a decided
                    // query prefetches at most one batch too many.
                    let vf = self.vec_filter.take().filter(|v| v.var == b.var);
                    let mut res = Ok(());
                    'scan: loop {
                        let batch = match self.pull_batch(&mut cur, BATCH_ROWS) {
                            Ok(Some(batch)) => batch,
                            Ok(None) => break,
                            Err(e) => {
                                res = Err(e);
                                break;
                            }
                        };
                        let rows = match self.apply_vec_filter(vf.as_ref(), &schema, batch, &cur) {
                            Ok(rows) => rows,
                            Err(e) => {
                                res = Err(e);
                                break;
                            }
                        };
                        for t in rows {
                            env.frames.push(Frame {
                                var: b.var.clone(),
                                schema: schema.clone(),
                                tuple: t,
                            });
                            let r = self.for_each_combination(rest, env, use_refs, false, f);
                            env.frames.pop();
                            if let Err(e) = r {
                                res = Err(e);
                                break 'scan;
                            }
                        }
                    }
                    self.provider.close_scan(cur);
                    return res;
                }
                let (schema, value) = self.binding_table(b, env, use_refs)?;
                // A PathOf binding is a NestEval operator: it restarts
                // per outer row, passing the inner table's rows through.
                if self.analyze && matches!(b.source, Source::PathOf { .. }) {
                    if let Some(m) = self
                        .binding_nodes
                        .get(&Self::baddr(b))
                        .and_then(|&i| self.ops.get_mut(i))
                    {
                        m.loops += 1;
                        m.rows_in += value.tuples.len() as u64;
                        m.rows_out += value.tuples.len() as u64;
                    }
                }
                for t in value.tuples {
                    env.frames.push(Frame {
                        var: b.var.clone(),
                        schema: schema.clone(),
                        tuple: t,
                    });
                    let r = self.for_each_combination(rest, env, use_refs, false, f);
                    env.frames.pop();
                    r?;
                }
                Ok(())
            }
        }
    }

    /// Run the vectorized filter over one head batch and hand back the
    /// surviving rows. Values actually tested are credited to the
    /// provider's `colstore.values_scanned` counter and, when
    /// analyzing, to the scan operator. With no filter (or a batch
    /// whose shape doesn't match the schema — e.g. a provider that
    /// projects columns away) the batch passes through untouched.
    fn apply_vec_filter(
        &mut self,
        vf: Option<&VecFilter>,
        schema: &TableSchema,
        batch: ColumnBatch,
        cur: &ObjectCursor,
    ) -> Result<Vec<Tuple>> {
        let Some(vf) = vf else {
            return Ok(batch.into_rows());
        };
        if batch.columns.len() != schema.attrs.len() || batch.is_empty() {
            return Ok(batch.into_rows());
        }
        let mut mask = vec![true; batch.len];
        let mut tested: u64 = 0;
        for (attr, key) in &vf.eqs {
            let Some(c) = schema.attr_index(attr) else {
                continue;
            };
            let col = &batch.columns[c];
            for (r, keep) in mask.iter_mut().enumerate() {
                if *keep {
                    tested += 1;
                    *keep = VecFilter::eq_keeps(&col[r], key);
                }
            }
        }
        for (attr, pred) in &vf.ranges {
            let Some(c) = schema.attr_index(attr) else {
                continue;
            };
            let col = &batch.columns[c];
            for (r, keep) in mask.iter_mut().enumerate() {
                if *keep {
                    tested += 1;
                    *keep = VecFilter::range_keeps(&col[r], pred);
                }
            }
        }
        for (attr, pattern) in &vf.contains {
            let Some(c) = schema.attr_index(attr) else {
                continue;
            };
            let col = &batch.columns[c];
            for (r, keep) in mask.iter_mut().enumerate() {
                if *keep {
                    tested += 1;
                    *keep = VecFilter::contains_keeps(&col[r], pattern);
                }
            }
        }
        self.provider.note_values_scanned(tested);
        if self.analyze {
            let node = cur
                .plan_node
                .unwrap_or_else(|| self.plan.as_ref().map_or(0, |p| p.root));
            if let Some(m) = self.ops.get_mut(node) {
                m.values_scanned += tested;
            }
        }
        let mut batch = batch;
        batch.retain(&mask);
        Ok(batch.into_rows())
    }

    /// Evaluate a quantifier over a stored table by streaming its
    /// cursor: pulls stop at the first witness (EXISTS) or violation
    /// (FORALL), and the provider counts the early exit.
    fn stream_quantifier(
        &mut self,
        binding: &Binding,
        env: &mut Env,
        pred: Option<&Expr>,
        exists: bool,
    ) -> Result<bool> {
        let use_refs = self.projection_pushdown;
        let (schema, mut cur) = self.open_table_cursor(binding, use_refs, false)?;
        // EXISTS starts false and flips on a witness; FORALL starts
        // true and flips on a violation.
        let mut res = Ok(!exists);
        loop {
            let t = match self.pull_row(&mut cur) {
                Ok(Some(t)) => t,
                Ok(None) => break,
                Err(e) => {
                    res = Err(e);
                    break;
                }
            };
            env.frames.push(Frame {
                var: binding.var.clone(),
                schema: schema.clone(),
                tuple: t,
            });
            let hit = match pred {
                Some(p) => self.eval_pred(p, env),
                None => Ok(true),
            };
            env.frames.pop();
            match hit {
                Ok(h) if h == exists => {
                    res = Ok(exists);
                    break; // decided: stop pulling
                }
                Ok(_) => {}
                Err(e) => {
                    res = Err(e);
                    break;
                }
            }
        }
        self.provider.close_scan(cur);
        res
    }

    /// Evaluate a predicate to a boolean.
    fn eval_pred(&mut self, e: &Expr, env: &mut Env) -> Result<bool> {
        match e {
            Expr::And(a, b) => Ok(self.eval_pred(a, env)? && self.eval_pred(b, env)?),
            Expr::Or(a, b) => Ok(self.eval_pred(a, env)? || self.eval_pred(b, env)?),
            Expr::Not(x) => Ok(!self.eval_pred(x, env)?),
            Expr::Cmp { op, lhs, rhs } => {
                let l = self.eval_value(lhs, env)?;
                let r = self.eval_value(rhs, env)?;
                compare(*op, l, r)
            }
            Expr::Exists { binding, pred } => {
                if !self.materialize && matches!(binding.source, Source::Table(_)) {
                    return self.stream_quantifier(binding, env, pred.as_deref(), true);
                }
                let (schema, value) = self.binding_table(binding, env, false)?;
                for t in value.tuples {
                    env.frames.push(Frame {
                        var: binding.var.clone(),
                        schema: schema.clone(),
                        tuple: t,
                    });
                    let hit = match pred {
                        Some(p) => self.eval_pred(p, env)?,
                        None => true,
                    };
                    env.frames.pop();
                    if hit {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Expr::Forall { binding, pred } => {
                if !self.materialize && matches!(binding.source, Source::Table(_)) {
                    return self.stream_quantifier(binding, env, Some(pred), false);
                }
                let (schema, value) = self.binding_table(binding, env, false)?;
                for t in value.tuples {
                    env.frames.push(Frame {
                        var: binding.var.clone(),
                        schema: schema.clone(),
                        tuple: t,
                    });
                    let ok = self.eval_pred(pred, env)?;
                    env.frames.pop();
                    if !ok {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Expr::Contains { expr, pattern } => {
                let v = self.eval_value(expr, env)?.simplified();
                let EvalValue::Atom(a) = v else {
                    return Err(ExecError::Type("CONTAINS requires a text value".into()));
                };
                let Some(text) = a.as_str() else {
                    return Err(ExecError::Type(format!(
                        "CONTAINS requires a text value, got {}",
                        a.atom_type()
                    )));
                };
                let p = Pattern::parse(pattern);
                Ok(aim2_text::tokenize(text).iter().any(|w| p.matches(w)))
            }
            Expr::Lit(l) => match crate::value::lit_atom(l)? {
                Atom::Bool(b) => Ok(b),
                other => Err(ExecError::Type(format!(
                    "predicate must be boolean, got {}",
                    other.atom_type()
                ))),
            },
            Expr::PathRef { .. } | Expr::Subscript { .. } => {
                match self.eval_value(e, env)?.simplified() {
                    EvalValue::Atom(Atom::Bool(b)) => Ok(b),
                    other => Err(ExecError::Type(format!(
                        "predicate must be boolean, got {other:?}"
                    ))),
                }
            }
        }
    }

    /// Evaluate a value expression.
    fn eval_value(&mut self, e: &Expr, env: &mut Env) -> Result<EvalValue> {
        match e {
            Expr::Lit(l) => Ok(EvalValue::Atom(crate::value::lit_atom(l)?)),
            Expr::PathRef { var, path } => {
                let frame = env
                    .lookup(var)
                    .ok_or_else(|| ExecError::UnknownVar(var.clone()))?;
                if path.is_root() {
                    return Ok(EvalValue::Row(frame.tuple.clone(), frame.schema.clone()));
                }
                let (value, _) = resolve(&frame.schema, &frame.tuple, path, var)?;
                Ok(match value {
                    Value::Atom(a) => EvalValue::Atom(a.clone()),
                    Value::Table(t) => EvalValue::Table(t.clone()),
                })
            }
            Expr::Subscript {
                var,
                path,
                index,
                rest,
            } => {
                if self.analyze {
                    self.note_subscript(e);
                }
                let frame = env
                    .lookup(var)
                    .ok_or_else(|| ExecError::UnknownVar(var.clone()))?;
                let (value, kind) = resolve(&frame.schema, &frame.tuple, path, var)?;
                let (Value::Table(tv), AttrKind::Table(sub)) = (value, kind) else {
                    return Err(ExecError::Type(format!("`{var}.{path}` is not a list")));
                };
                let row = match tv.subscript(*index) {
                    Ok(r) => r,
                    // Out of range on a list: the row has no such
                    // element — comparisons treat this as non-matching.
                    Err(aim2_model::ModelError::BadSubscript { .. })
                        if tv.kind == aim2_model::TableKind::List && *index >= 1 =>
                    {
                        return Ok(EvalValue::Missing)
                    }
                    // Subscripting a relation (or [0]) is a misuse.
                    Err(e) => return Err(ExecError::Semantic(e.to_string())),
                };
                if rest.is_root() {
                    Ok(EvalValue::Row(row.clone(), sub.clone()))
                } else {
                    let (v, _) = resolve(sub, row, rest, var)?;
                    Ok(match v {
                        Value::Atom(a) => EvalValue::Atom(a.clone()),
                        Value::Table(t) => EvalValue::Table(t.clone()),
                    })
                }
            }
            // Predicates used in value position evaluate to booleans.
            other => Ok(EvalValue::Atom(Atom::Bool(self.eval_pred(other, env)?))),
        }
    }

    // =================================================================
    // Plan lowering
    // =================================================================

    /// Lower `q` into its operator tree.
    fn lower_plan(&mut self, q: &Query) -> PhysicalPlan {
        let mut plan = PhysicalPlan::default();
        let root = self.lower_into(&mut plan, q);
        plan.root = root;
        plan
    }

    fn lower_into(&mut self, plan: &mut PhysicalPlan, q: &Query) -> usize {
        // Bindings chain with the outermost scan as the deepest leaf:
        // later bindings (and then Filter, then Project) wrap it.
        let mut chain: Option<usize> = None;
        for b in &q.from {
            let op = match &b.source {
                Source::Table(name) => self.scan_op(b, name),
                Source::PathOf { var, path } => PhysOp::NestEval {
                    var: b.var.clone(),
                    source: format!("{var}.{path}"),
                },
            };
            let children: Vec<usize> = chain.take().into_iter().collect();
            let idx = plan.push(op, children);
            self.binding_nodes.insert(Self::baddr(b), idx);
            chain = Some(idx);
        }
        let mut top = chain;
        let mut filter_node = None;
        if let Some(w) = &q.where_ {
            let mut children: Vec<usize> = top.take().into_iter().collect();
            self.lower_quantifier_scans(plan, w, &mut children);
            let mut subs = Vec::new();
            collect_subscripts(w, &mut subs);
            for s in subs {
                children.push(plan.push(PhysOp::OrderedSubscript { expr: s }, vec![]));
            }
            let idx = plan.push(
                PhysOp::Filter {
                    pred: render_expr(w),
                },
                children,
            );
            filter_node = Some(idx);
            top = Some(idx);
        }
        let mut items = Vec::new();
        let mut children: Vec<usize> = top.take().into_iter().collect();
        for item in &q.select {
            match item {
                SelectItem::Star => items.push("*".to_string()),
                SelectItem::Expr(e) => {
                    items.push(render_expr(e));
                    let mut subs = Vec::new();
                    collect_subscripts(e, &mut subs);
                    for s in subs {
                        children.push(plan.push(PhysOp::OrderedSubscript { expr: s }, vec![]));
                    }
                }
                SelectItem::Named { name, value } => match value {
                    NamedValue::Expr(e) => items.push(format!("{name} = {}", render_expr(e))),
                    NamedValue::Subquery(sub) => {
                        items.push(format!("{name} = (subquery)"));
                        children.push(self.lower_into(plan, sub));
                    }
                },
            }
        }
        let project = plan.push(PhysOp::Project { items }, children);
        self.query_nodes
            .insert(Self::qaddr(q), (filter_node, project));
        project
    }

    /// A Scan operator with the pushdown contract it will be opened
    /// with: pushed conjuncts (root binding only) and the kept/pruned
    /// subtable split of the projection.
    fn scan_op(&mut self, b: &Binding, name: &str) -> PhysOp {
        let mut pushed = Vec::new();
        if b.asof.is_none() && self.pushed_var.as_deref() == Some(b.var.as_str()) {
            for (p, a) in &self.pushed_conjuncts {
                pushed.push(format!("{p} = {a}"));
            }
            for (p, m) in &self.pushed_contains {
                pushed.push(format!("{p} CONTAINS '{m}'"));
            }
            for (p, r) in &self.pushed_ranges {
                if let Some((a, inc)) = &r.lo {
                    pushed.push(format!("{p} >{} {a}", if *inc { "=" } else { "" }));
                }
                if let Some((a, inc)) = &r.hi {
                    pushed.push(format!("{p} <{} {a}", if *inc { "=" } else { "" }));
                }
            }
        }
        let mut kept = Vec::new();
        let mut pruned = Vec::new();
        if let Some(r) = self.refs.get(&b.var) {
            if let Ok(schema) = self.provider.table_schema(name) {
                for (path, _) in schema.walk_subtables() {
                    if path.is_root() {
                        continue;
                    }
                    if r.keep(&path) {
                        kept.push(path.to_string());
                    } else {
                        pruned.push(path.to_string());
                    }
                }
            }
        }
        PhysOp::Scan {
            var: b.var.clone(),
            table: name.to_string(),
            asof: b.asof.clone(),
            access_path: "full scan".to_string(),
            pushed,
            kept,
            pruned,
        }
    }

    /// Stored-table quantifier bindings inside a WHERE clause show up
    /// as Scan children of the Filter (they open their own cursors).
    fn lower_quantifier_scans(&mut self, plan: &mut PhysicalPlan, e: &Expr, out: &mut Vec<usize>) {
        match e {
            Expr::Exists { binding, pred } => {
                if let Source::Table(name) = &binding.source {
                    let op = self.scan_op(binding, &name.clone());
                    let idx = plan.push(op, vec![]);
                    self.binding_nodes.insert(Self::baddr(binding), idx);
                    out.push(idx);
                }
                if let Some(p) = pred {
                    self.lower_quantifier_scans(plan, p, out);
                }
            }
            Expr::Forall { binding, pred } => {
                if let Source::Table(name) = &binding.source {
                    let op = self.scan_op(binding, &name.clone());
                    let idx = plan.push(op, vec![]);
                    self.binding_nodes.insert(Self::baddr(binding), idx);
                    out.push(idx);
                }
                self.lower_quantifier_scans(plan, pred, out);
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                self.lower_quantifier_scans(plan, a, out);
                self.lower_quantifier_scans(plan, b, out);
            }
            Expr::Not(x) => self.lower_quantifier_scans(plan, x, out),
            Expr::Cmp { lhs, rhs, .. } => {
                self.lower_quantifier_scans(plan, lhs, out);
                self.lower_quantifier_scans(plan, rhs, out);
            }
            Expr::Contains { expr, .. } => self.lower_quantifier_scans(plan, expr, out),
            Expr::Lit(_) | Expr::PathRef { .. } | Expr::Subscript { .. } => {}
        }
    }
}

/// Pushdown payload: target binding variable, indexable equality
/// conjuncts, CONTAINS conjuncts, range conjuncts.
type Pushdown = (
    String,
    Vec<(Path, Atom)>,
    Vec<(Path, String)>,
    Vec<(Path, RangePred)>,
);

/// If the query has a single stored-table binding (no ASOF) and a WHERE
/// clause, its indexable equality conjuncts, top-level CONTAINS
/// conjuncts and top-level range conjuncts unambiguously constrain that
/// binding's objects — the predicate pushdown the `ScanRequest` carries
/// to the provider.
fn compute_pushdown(q: &Query) -> Option<Pushdown> {
    let mut table_bindings = q
        .from
        .iter()
        .filter(|b| matches!(b.source, Source::Table(_)));
    let (Some(first), None) = (table_bindings.next(), table_bindings.next()) else {
        return None;
    };
    if first.asof.is_some() {
        return None;
    }
    let where_ = q.where_.as_ref()?;
    let conjuncts = crate::planner::indexable_conditions(where_);
    let contains = crate::planner::contains_conditions(where_, &first.var);
    let ranges = crate::planner::range_conditions(where_, &first.var);
    if conjuncts.is_empty() && contains.is_empty() && ranges.is_empty() {
        return None;
    }
    Some((first.var.clone(), conjuncts, contains, ranges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::MemProvider;
    use aim2_lang::parser::parse_query;
    use aim2_model::fixtures;

    fn run(src: &str) -> (TableSchema, TableValue) {
        let q = parse_query(src).unwrap_or_else(|e| panic!("{}", e.render(src)));
        let mut p = MemProvider::with_paper_fixtures();
        Evaluator::new(&mut p)
            .eval_query(&q)
            .unwrap_or_else(|e| panic!("{src}\n→ {e}"))
    }

    #[test]
    fn example_1_star_returns_table5() {
        let (_, v) = run("SELECT * FROM DEPARTMENTS");
        assert!(v.semantically_eq(&fixtures::departments_value()));
    }

    #[test]
    fn example_1_long_form_equals_star() {
        let (_, v) =
            run("SELECT x.DNO, x.MGRNO, x.PROJECTS, x.BUDGET, x.EQUIP FROM x IN DEPARTMENTS");
        assert!(v.semantically_eq(&fixtures::departments_value()));
    }

    #[test]
    fn example_2_explicit_structure_returns_table5() {
        let (schema, v) = run("SELECT x.DNO, x.MGRNO, \
               PROJECTS = (SELECT y.PNO, y.PNAME, \
                 MEMBERS = (SELECT z.EMPNO, z.FUNCTION FROM z IN y.MEMBERS) \
                 FROM y IN x.PROJECTS), \
               x.BUDGET, \
               EQUIP = (SELECT v.QU, v.TYPE FROM v IN x.EQUIP) \
             FROM x IN DEPARTMENTS");
        assert_eq!(schema.depth(), 3);
        assert!(v.semantically_eq(&fixtures::departments_value()));
    }

    #[test]
    fn example_3_nest_from_flat_tables_builds_table5() {
        let (_, v) = run("SELECT x.DNO, x.MGRNO, \
               PROJECTS = (SELECT y.PNO, y.PNAME, \
                 MEMBERS = (SELECT z.EMPNO, z.FUNCTION FROM z IN MEMBERS-1NF \
                            WHERE z.PNO = y.PNO AND z.DNO = y.DNO) \
                 FROM y IN PROJECTS-1NF WHERE y.DNO = x.DNO), \
               x.BUDGET, \
               EQUIP = (SELECT v.QU, v.TYPE FROM v IN EQUIP-1NF WHERE v.DNO = x.DNO) \
             FROM x IN DEPARTMENTS-1NF");
        assert!(
            v.semantically_eq(&fixtures::departments_value()),
            "nest(Tables 1-4) = Table 5"
        );
    }

    #[test]
    fn example_4_unnest_returns_table7() {
        let (schema, v) = run(
            "SELECT x.DNO, x.MGRNO, y.PNO, y.PNAME, z.EMPNO, z.FUNCTION \
             FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS",
        );
        assert!(schema.is_flat());
        assert!(v.semantically_eq(&fixtures::table7_value()), "Table 7");
    }

    #[test]
    fn example_4_flat_join_form_agrees() {
        let (_, v) = run(
            "SELECT x.DNO, x.MGRNO, y.PNO, y.PNAME, z.EMPNO, z.FUNCTION \
             FROM x IN DEPARTMENTS-1NF, y IN PROJECTS-1NF, z IN MEMBERS-1NF \
             WHERE x.DNO = y.DNO AND y.PNO = z.PNO AND y.DNO = z.DNO",
        );
        assert!(v.semantically_eq(&fixtures::table7_value()));
    }

    #[test]
    fn example_5_exists_pc_at() {
        let (_, v) = run("SELECT x.DNO, x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS \
             WHERE EXISTS y IN x.EQUIP : y.TYPE = 'PC/AT'");
        let mut dnos: Vec<i64> = v
            .tuples
            .iter()
            .map(|t| t.fields[0].as_atom().unwrap().as_int().unwrap())
            .collect();
        dnos.sort_unstable();
        assert_eq!(dnos, vec![218, 314]);
    }

    #[test]
    fn example_6_all_consultants_is_empty() {
        let (_, v) = run("SELECT x.DNO, x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS \
             WHERE ALL y IN x.PROJECTS : ALL z IN y.MEMBERS : z.FUNCTION = 'Consultant'");
        assert!(v.is_empty(), "the paper: the result set is empty");
    }

    #[test]
    fn all_is_vacuously_true_on_empty_subtables() {
        // A department with no projects satisfies the ALL condition.
        let mut p = MemProvider::with_paper_fixtures();
        use aim2_model::value::build::{a, rel, tup};
        let mut depts = fixtures::departments_value();
        depts
            .tuples
            .push(tup(vec![a(999), a(1), rel(vec![]), a(0), rel(vec![])]));
        p.add(fixtures::departments_schema(), depts);
        let q = parse_query(
            "SELECT x.DNO, x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS \
             WHERE ALL y IN x.PROJECTS : ALL z IN y.MEMBERS : z.FUNCTION = 'Consultant'",
        )
        .unwrap();
        let (_, v) = Evaluator::new(&mut p).eval_query(&q).unwrap();
        assert_eq!(v.len(), 1);
        assert_eq!(v.tuples[0].fields[0].as_atom().unwrap().as_int(), Some(999));
    }

    #[test]
    fn sec42_query_1_departments_with_consultant() {
        let (_, v) = run("SELECT x.DNO FROM x IN DEPARTMENTS \
             WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS : z.FUNCTION = 'Consultant'");
        let mut dnos: Vec<i64> = v
            .tuples
            .iter()
            .map(|t| t.fields[0].as_atom().unwrap().as_int().unwrap())
            .collect();
        dnos.sort_unstable();
        assert_eq!(dnos, vec![218, 314], "§4.2: DNOs 314 and 218");
    }

    #[test]
    fn sec42_query_2_projects_with_consultant() {
        let (_, v) = run("SELECT y.PNO FROM x IN DEPARTMENTS, y IN x.PROJECTS \
             WHERE EXISTS z IN y.MEMBERS : z.FUNCTION = 'Consultant'");
        let mut pnos: Vec<i64> = v
            .tuples
            .iter()
            .map(|t| t.fields[0].as_atom().unwrap().as_int().unwrap())
            .collect();
        pnos.sort_unstable();
        assert_eq!(pnos, vec![17, 25], "§4.2: PNOs 17 and 25");
    }

    #[test]
    fn sec42_query_3_conjunctive() {
        let (_, v) = run("SELECT x.DNO FROM x IN DEPARTMENTS \
             WHERE EXISTS y IN x.PROJECTS : y.PNO = 17 AND \
                   EXISTS z IN y.MEMBERS : z.FUNCTION = 'Consultant'");
        let dnos: Vec<i64> = v
            .tuples
            .iter()
            .map(|t| t.fields[0].as_atom().unwrap().as_int().unwrap())
            .collect();
        assert_eq!(dnos, vec![314]);
    }

    #[test]
    fn example_7_fig4_join_groups_by_department() {
        let (_, v) = run("SELECT x.DNO, x.MGRNO, \
               EMPLOYEES = (SELECT z.EMPNO, u.LNAME, u.FNAME, u.SEX, z.FUNCTION \
                            FROM y IN x.PROJECTS, z IN y.MEMBERS, u IN EMPLOYEES-1NF \
                            WHERE z.EMPNO = u.EMPNO) \
             FROM x IN DEPARTMENTS");
        assert_eq!(v.len(), 3, "one row per department");
        // Dept 314 has 7 members, all resolved with names.
        let d314 = v
            .tuples
            .iter()
            .find(|t| t.fields[0].as_atom().unwrap().as_int() == Some(314))
            .unwrap();
        let emps = d314.fields[2].as_table().unwrap();
        assert_eq!(emps.len(), 7);
        let krause = emps
            .tuples
            .iter()
            .find(|t| t.fields[0].as_atom().unwrap().as_int() == Some(39582))
            .unwrap();
        assert_eq!(krause.fields[1].as_atom().unwrap().as_str(), Some("Krause"));
        assert_eq!(krause.fields[4].as_atom().unwrap().as_str(), Some("Leader"));
    }

    #[test]
    fn fig5_manager_join_instead_of_mgrno() {
        let (_, v) = run("SELECT x.DNO, m.LNAME, m.SEX, \
               EMPLOYEES = (SELECT z.EMPNO, u.LNAME, u.FNAME, u.SEX, z.FUNCTION \
                            FROM y IN x.PROJECTS, z IN y.MEMBERS, u IN EMPLOYEES-1NF \
                            WHERE z.EMPNO = u.EMPNO) \
             FROM x IN DEPARTMENTS, m IN EMPLOYEES-1NF \
             WHERE x.MGRNO = m.EMPNO");
        assert_eq!(v.len(), 3);
        let d314 = v
            .tuples
            .iter()
            .find(|t| t.fields[0].as_atom().unwrap().as_int() == Some(314))
            .unwrap();
        assert_eq!(d314.fields[1].as_atom().unwrap().as_str(), Some("Schmidt"));
        assert_eq!(d314.fields[2].as_atom().unwrap().as_str(), Some("male"));
    }

    #[test]
    fn example_8_first_author_subscript() {
        let (schema, v) =
            run("SELECT x.AUTHORS, x.TITLE FROM x IN REPORTS WHERE x.AUTHORS[1] = 'Jones A.'");
        assert_eq!(v.len(), 1, "only report 0179 has Jones as FIRST author");
        assert_eq!(
            v.tuples[0].fields[1].as_atom().unwrap().as_str(),
            Some("Concurrency and Concurrency Control")
        );
        // "the resulting table is not flat because AUTHORS is non-atomic"
        assert!(!schema.is_flat());
        let authors = v.tuples[0].fields[0].as_table().unwrap();
        assert_eq!(authors.kind, TableKind::List);
    }

    #[test]
    fn sec5_text_query() {
        let (_, v) = run("SELECT x.REPNO, x.AUTHORS, x.TITLE FROM x IN REPORTS \
             WHERE x.TITLE CONTAINS '*comput*' AND EXISTS y IN x.AUTHORS : y.NAME = 'Jones A.'");
        assert_eq!(v.len(), 1);
        assert_eq!(
            v.tuples[0].fields[0].as_atom().unwrap().as_str(),
            Some("0291")
        );
    }

    #[test]
    fn sec5_asof_query() {
        let mut p = MemProvider::with_paper_fixtures();
        // History: on 1984-01-01 dept 314 had projects {17 CGA, 11 DOC}.
        use aim2_model::value::build::{a, rel, tup};
        let old = TableValue {
            kind: TableKind::Relation,
            tuples: vec![tup(vec![
                a(314),
                a(56194),
                aim2_model::Value::Table(fixtures::departments_314_projects_asof_1984()),
                a(280_000),
                rel(vec![tup(vec![a(2), a("3278")])]),
            ])],
        };
        p.add_snapshot("DEPARTMENTS", Date::parse_iso("1984-01-01").unwrap(), old);
        let q = parse_query(
            "SELECT y.PNO, y.PNAME FROM x IN DEPARTMENTS ASOF '1984-01-15', y IN x.PROJECTS \
             WHERE x.DNO = 314",
        )
        .unwrap();
        let (_, v) = Evaluator::new(&mut p).eval_query(&q).unwrap();
        let pnos: Vec<i64> = v
            .tuples
            .iter()
            .map(|t| t.fields[0].as_atom().unwrap().as_int().unwrap())
            .collect();
        assert_eq!(pnos, vec![17, 11], "projects of dept 314 on 1984-01-15");
    }

    #[test]
    fn exists_without_predicate_means_nonempty() {
        let (_, v) = run("SELECT x.DNO FROM x IN DEPARTMENTS WHERE EXISTS y IN x.PROJECTS");
        assert_eq!(v.len(), 3, "every department has projects");
    }

    #[test]
    fn comparison_operators() {
        let (_, v) = run("SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.BUDGET >= 360000");
        assert_eq!(v.len(), 2);
        let (_, v) = run("SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.BUDGET < 360000");
        assert_eq!(v.len(), 1);
        let (_, v) = run("SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.DNO <> 314");
        assert_eq!(v.len(), 2);
        let (_, v) =
            run("SELECT x.DNO FROM x IN DEPARTMENTS WHERE NOT (x.DNO = 314 OR x.DNO = 218)");
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn table_equality_in_predicates() {
        // Departments whose EQUIP equals dept 314's EQUIP: only 314.
        let (_, v) = run("SELECT x.DNO FROM x IN DEPARTMENTS, y IN DEPARTMENTS \
             WHERE y.DNO = 314 AND x.EQUIP = y.EQUIP");
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn type_errors_reported() {
        let q = parse_query("SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.DNO = 'abc'").unwrap();
        let mut p = MemProvider::with_paper_fixtures();
        assert!(matches!(
            Evaluator::new(&mut p).eval_query(&q),
            Err(ExecError::Type(_))
        ));
        let q =
            parse_query("SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.EQUIP CONTAINS '*x*'").unwrap();
        assert!(Evaluator::new(&mut p).eval_query(&q).is_err());
    }

    #[test]
    fn subscript_in_select_position() {
        // AUTHORS[1] simplifies to its NAME atom (infer and eval agree).
        let (schema, v) = run("SELECT x.AUTHORS[1], x.REPNO FROM x IN REPORTS");
        assert!(schema.is_flat());
        assert_eq!(v.len(), 3);
        let first_authors: Vec<&str> = v
            .tuples
            .iter()
            .map(|t| t.fields[0].as_atom().unwrap().as_str().unwrap())
            .collect();
        assert!(first_authors.contains(&"Jones A."));
        // Rest-path form evaluates too.
        let (_, v) = run("SELECT x.REPNO FROM x IN REPORTS WHERE x.AUTHORS[2].NAME = 'Meyer P.'");
        assert_eq!(v.len(), 1);
        assert_eq!(
            v.tuples[0].fields[0].as_atom().unwrap().as_str(),
            Some("0291")
        );
    }

    #[test]
    fn subscript_on_relation_is_an_error() {
        let q = parse_query("SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.PROJECTS[1] = 17").unwrap();
        let mut p = MemProvider::with_paper_fixtures();
        assert!(matches!(
            Evaluator::new(&mut p).eval_query(&q),
            Err(ExecError::Semantic(_))
        ));
    }

    #[test]
    fn subscript_out_of_range_semantics() {
        // In a predicate: rows without a 9th author simply don't match.
        let (_, v) = run("SELECT x.TITLE FROM x IN REPORTS WHERE x.AUTHORS[9] = 'X'");
        assert!(v.is_empty());
        // Mixed arities: only 0291 has a 3rd author.
        let (_, v) = run("SELECT x.REPNO FROM x IN REPORTS WHERE x.AUTHORS[3] = 'Jones A.'");
        assert_eq!(v.len(), 1);
        // In SELECT position an out-of-range subscript is an error.
        let q = parse_query("SELECT x.AUTHORS[9] FROM x IN REPORTS").unwrap();
        let mut p = MemProvider::with_paper_fixtures();
        assert!(matches!(
            Evaluator::new(&mut p).eval_query(&q),
            Err(ExecError::Semantic(_))
        ));
    }

    #[test]
    fn materialize_mode_agrees_with_streaming() {
        for src in [
            "SELECT * FROM DEPARTMENTS",
            "SELECT x.DNO FROM x IN DEPARTMENTS \
             WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS : z.FUNCTION = 'Consultant'",
            "SELECT x.DNO, x.MGRNO, y.PNO FROM x IN DEPARTMENTS, y IN x.PROJECTS",
        ] {
            let q = parse_query(src).unwrap();
            let mut p = MemProvider::with_paper_fixtures();
            let streamed = Evaluator::new(&mut p).eval_query(&q).unwrap();
            let mut ev = Evaluator::new(&mut p);
            ev.materialize = true;
            let reference = ev.eval_query(&q).unwrap();
            assert_eq!(streamed.1, reference.1, "{src}");
        }
    }

    #[test]
    fn physical_plan_shows_operators() {
        let q = parse_query(
            "SELECT x.DNO FROM x IN DEPARTMENTS, y IN x.PROJECTS \
             WHERE EXISTS z IN y.MEMBERS : z.FUNCTION = 'Consultant'",
        )
        .unwrap();
        let mut p = MemProvider::with_paper_fixtures();
        let mut ev = Evaluator::new(&mut p);
        ev.eval_query(&q).unwrap();
        let plan = ev.take_plan().expect("plan built");
        let shown = plan.to_string();
        assert!(shown.contains("Project [x.DNO]"), "{shown}");
        assert!(shown.contains("Filter"), "{shown}");
        assert!(shown.contains("NestEval y IN x.PROJECTS"), "{shown}");
        assert!(shown.contains("Scan DEPARTMENTS as x"), "{shown}");
        assert!(shown.contains("full scan"), "{shown}");
        assert!(shown.contains("partial retrieval skips [EQUIP]"), "{shown}");
    }
}
