//! # aim2-text — word-fragment text indexing with masked search
//!
//! Section 5 of Dadam et al. (SIGMOD 1986) describes AIM-II's integrated
//! text support: `TEXT` attributes can carry a *text index* that supports
//! "masked search operations in a quite powerful way", e.g.
//!
//! ```text
//! WHERE x.TITLE CONTAINS '*comput*'
//! ```
//!
//! matching "computational", "minicomputer", "computer", ... The
//! technique references /Sch78/ (reference-string indexing) and /KW81/
//! (a word-fragment index): words are decomposed into short fragments;
//! a masked pattern is answered by intersecting the posting lists of the
//! fragments derivable from its literal parts, then verifying the
//! surviving candidates.
//!
//! This crate implements that contract with boundary-anchored trigram
//! fragments: each word `w` is indexed as the trigrams of `⟨w⟩` (with
//! start/end sentinels), so prefix- and suffix-anchored masks also prune
//! via fragments.

pub mod fragment;
pub mod pattern;
pub mod tokenizer;

pub use fragment::{DocId, TextIndex};
pub use pattern::Pattern;
pub use tokenizer::tokenize;
