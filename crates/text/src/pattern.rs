//! Masked search patterns.
//!
//! The paper's example is `'*comput*'`; we support the classical mask
//! alphabet: `*` (any sequence, including empty) and `?` (exactly one
//! character). A pattern with no wildcards is an exact word match.

use std::fmt;

/// One element of a parsed mask.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Part {
    /// A literal character sequence (lowercased).
    Literal(String),
    /// `*` — any (possibly empty) sequence.
    Any,
    /// `?` — exactly one character.
    One,
}

/// A parsed masked-search pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    parts: Vec<Part>,
}

impl Pattern {
    /// Parse a mask. Adjacent `*`s collapse; literals are lowercased
    /// (matching is case-insensitive, like the tokenizer).
    pub fn parse(mask: &str) -> Pattern {
        let mut parts = Vec::new();
        let mut lit = String::new();
        for ch in mask.chars() {
            match ch {
                '*' => {
                    if !lit.is_empty() {
                        parts.push(Part::Literal(std::mem::take(&mut lit)));
                    }
                    if parts.last() != Some(&Part::Any) {
                        parts.push(Part::Any);
                    }
                }
                '?' => {
                    if !lit.is_empty() {
                        parts.push(Part::Literal(std::mem::take(&mut lit)));
                    }
                    parts.push(Part::One);
                }
                c => lit.extend(c.to_lowercase()),
            }
        }
        if !lit.is_empty() {
            parts.push(Part::Literal(lit));
        }
        Pattern { parts }
    }

    /// The parsed parts.
    pub fn parts(&self) -> &[Part] {
        &self.parts
    }

    /// True if the pattern has no wildcards (exact word match).
    pub fn is_exact(&self) -> bool {
        self.parts.len() == 1 && matches!(self.parts[0], Part::Literal(_))
    }

    /// True if the pattern starts with a literal (prefix-anchored).
    pub fn anchored_start(&self) -> bool {
        matches!(self.parts.first(), Some(Part::Literal(_)))
    }

    /// True if the pattern ends with a literal (suffix-anchored).
    pub fn anchored_end(&self) -> bool {
        matches!(self.parts.last(), Some(Part::Literal(_)))
    }

    /// The literal runs, with flags (is_first_and_anchored,
    /// is_last_and_anchored) — the fragment index derives trigrams from
    /// these.
    pub fn literal_runs(&self) -> Vec<(String, bool, bool)> {
        let n = self.parts.len();
        self.parts
            .iter()
            .enumerate()
            .filter_map(|(i, p)| match p {
                Part::Literal(s) => Some((s.clone(), i == 0, i == n - 1)),
                _ => None,
            })
            .collect()
    }

    /// Match a (lowercased) word against the mask.
    pub fn matches(&self, word: &str) -> bool {
        fn rec(parts: &[Part], word: &str) -> bool {
            match parts.split_first() {
                None => word.is_empty(),
                Some((Part::Literal(lit), rest)) => word
                    .strip_prefix(lit.as_str())
                    .is_some_and(|w| rec(rest, w)),
                Some((Part::One, rest)) => {
                    let mut chars = word.chars();
                    chars.next().is_some() && rec(rest, chars.as_str())
                }
                Some((Part::Any, rest)) => {
                    if rec(rest, word) {
                        return true;
                    }
                    let mut w = word;
                    while let Some((i, _)) = w.char_indices().nth(1).or(None) {
                        w = &w[i..];
                        if rec(rest, w) {
                            return true;
                        }
                    }
                    // Also the empty remainder.
                    rec(rest, "")
                }
            }
        }
        rec(&self.parts, &word.to_lowercase())
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in &self.parts {
            match p {
                Part::Literal(s) => f.write_str(s)?,
                Part::Any => f.write_str("*")?,
                Part::One => f.write_str("?")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_collapses_stars() {
        let p = Pattern::parse("**comput**");
        assert_eq!(p.parts().len(), 3);
        assert_eq!(p.to_string(), "*comput*");
    }

    #[test]
    fn paper_mask_matches_paper_words() {
        let p = Pattern::parse("*comput*");
        for w in ["computational", "minicomputer", "computer", "comput"] {
            assert!(p.matches(w), "{w}");
        }
        assert!(!p.matches("compete"));
        assert!(!p.matches(""));
    }

    #[test]
    fn anchored_masks() {
        let p = Pattern::parse("comput*");
        assert!(p.anchored_start() && !p.anchored_end());
        assert!(p.matches("computer"));
        assert!(!p.matches("minicomputer"));
        let s = Pattern::parse("*ing");
        assert!(!s.anchored_start() && s.anchored_end());
        assert!(s.matches("editing"));
        assert!(!s.matches("ingest"));
    }

    #[test]
    fn exact_pattern() {
        let p = Pattern::parse("jones");
        assert!(p.is_exact());
        assert!(p.matches("Jones"));
        assert!(!p.matches("jonese"));
    }

    #[test]
    fn question_mark() {
        let p = Pattern::parse("b?und");
        assert!(p.matches("bound"));
        assert!(!p.matches("bund"));
        assert!(!p.matches("boound"));
        let q = Pattern::parse("?*");
        assert!(q.matches("a"));
        assert!(q.matches("abc"));
        assert!(!q.matches(""));
    }

    #[test]
    fn multi_run_masks() {
        let p = Pattern::parse("*data*base*");
        assert!(p.matches("databases"));
        assert!(p.matches("metadatabase"));
        assert!(!p.matches("database".replace("base", "bank").as_str()));
        assert_eq!(p.literal_runs().len(), 2);
    }

    #[test]
    fn star_only_matches_everything() {
        let p = Pattern::parse("*");
        assert!(p.matches(""));
        assert!(p.matches("anything"));
        assert!(p.literal_runs().is_empty());
    }

    #[test]
    fn unicode_safe_matching() {
        let p = Pattern::parse("*öß*");
        assert!(p.matches("größe"));
        assert!(!p.matches("grosse"));
    }
}
