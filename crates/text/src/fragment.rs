//! The word-fragment index.
//!
//! Every word is bracketed with sentinels (`^word$`) and decomposed into
//! trigrams; each trigram's posting list records the documents whose
//! text contains a word with that fragment. A masked pattern is
//! evaluated by:
//!
//! 1. deriving trigrams from the mask's literal runs (anchored runs also
//!    produce sentinel trigrams, so `comput*` prunes by `^co` too);
//! 2. intersecting posting lists → a candidate superset;
//! 3. verifying each candidate's words against the full mask.
//!
//! Patterns whose literal runs are too short to form any trigram
//! degenerate to verification over all documents — exactly the behaviour
//! fragment indexes of the era had for very unselective masks.

use crate::pattern::Pattern;
use crate::tokenizer::tokenize;
use std::collections::{BTreeMap, BTreeSet};

/// Identifies an indexed document (e.g. a tuple's ordinal or TID hash).
pub type DocId = u64;

const START: char = '\u{2}';
const END: char = '\u{3}';

/// In-memory word-fragment text index with a forward index for
/// verification. (The 1986 prototype's text index lived on disk; this
/// reproduction keeps it memory-resident and rebuilds it at load time —
/// the *query* behaviour, fragment pruning + verification, is what the
/// paper exercises.)
#[derive(Debug, Default)]
pub struct TextIndex {
    postings: BTreeMap<String, BTreeSet<DocId>>,
    docs: BTreeMap<DocId, Vec<String>>,
}

fn bracket(word: &str) -> String {
    let mut s = String::with_capacity(word.len() + 2);
    s.push(START);
    s.push_str(word);
    s.push(END);
    s
}

fn trigrams(s: &str) -> Vec<String> {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < 3 {
        return vec![chars.iter().collect()];
    }
    chars.windows(3).map(|w| w.iter().collect()).collect()
}

impl TextIndex {
    /// An empty index.
    pub fn new() -> TextIndex {
        TextIndex::default()
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True if no documents are indexed.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Number of distinct fragments (index size metric).
    pub fn fragment_count(&self) -> usize {
        self.postings.len()
    }

    /// Index (or re-index) a document's text.
    pub fn add_document(&mut self, id: DocId, text: &str) {
        self.remove_document(id);
        let words = tokenize(text);
        for w in &words {
            for frag in trigrams(&bracket(w)) {
                self.postings.entry(frag).or_default().insert(id);
            }
        }
        self.docs.insert(id, words);
    }

    /// Remove a document from the index.
    pub fn remove_document(&mut self, id: DocId) {
        if let Some(words) = self.docs.remove(&id) {
            for w in &words {
                for frag in trigrams(&bracket(w)) {
                    if let Some(set) = self.postings.get_mut(&frag) {
                        set.remove(&id);
                        if set.is_empty() {
                            self.postings.remove(&frag);
                        }
                    }
                }
            }
        }
    }

    /// Fragment-derived candidate superset for `pattern` (before
    /// verification). `None` means the pattern was too unselective to
    /// prune — all documents are candidates.
    pub fn candidates(&self, pattern: &Pattern) -> Option<BTreeSet<DocId>> {
        let mut result: Option<BTreeSet<DocId>> = None;
        for (run, first, last) in pattern.literal_runs() {
            let mut padded = String::new();
            if first && pattern.anchored_start() {
                padded.push(START);
            }
            padded.push_str(&run);
            if last && pattern.anchored_end() {
                padded.push(END);
            }
            if padded.chars().count() < 3 {
                continue; // too short to form a trigram
            }
            for frag in trigrams(&padded) {
                let posting = self.postings.get(&frag).cloned().unwrap_or_default();
                result = Some(match result {
                    None => posting,
                    Some(r) => r.intersection(&posting).copied().collect(),
                });
                if result.as_ref().is_some_and(BTreeSet::is_empty) {
                    return result; // early out — empty intersection
                }
            }
        }
        result
    }

    /// Masked search: returns the documents containing a word matching
    /// `pattern`, plus how many candidates were verified (bench metric).
    pub fn search(&self, pattern: &Pattern) -> (Vec<DocId>, usize) {
        let candidates: Vec<DocId> = match self.candidates(pattern) {
            Some(set) => set.into_iter().collect(),
            None => self.docs.keys().copied().collect(),
        };
        let verified = candidates.len();
        let hits = candidates
            .into_iter()
            .filter(|id| {
                self.docs
                    .get(id)
                    .is_some_and(|words| words.iter().any(|w| pattern.matches(w)))
            })
            .collect();
        (hits, verified)
    }

    /// Brute-force search over the forward index (the "no text index"
    /// baseline for the TXT bench).
    pub fn scan_search(&self, pattern: &Pattern) -> Vec<DocId> {
        self.docs
            .iter()
            .filter(|(_, words)| words.iter().any(|w| pattern.matches(w)))
            .map(|(id, _)| *id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_index() -> TextIndex {
        let mut idx = TextIndex::new();
        idx.add_document(179, "Concurrency and Concurrency Control");
        idx.add_document(189, "Text Editing and String Search");
        idx.add_document(291, "Branch and Bound Optimization on Minicomputers");
        idx
    }

    #[test]
    fn paper_query_comput() {
        let idx = paper_index();
        let (hits, _) = idx.search(&Pattern::parse("*comput*"));
        assert_eq!(hits, vec![291]);
    }

    #[test]
    fn candidates_prune_before_verification() {
        let idx = paper_index();
        let cands = idx.candidates(&Pattern::parse("*comput*")).unwrap();
        assert_eq!(cands.len(), 1, "only the minicomputers title survives");
        // An unselective mask cannot prune.
        assert!(idx.candidates(&Pattern::parse("*a*")).is_none());
    }

    #[test]
    fn anchored_masks_use_sentinel_fragments() {
        let idx = paper_index();
        // 'concurrency' starts with 'con'; 'control' too — but only as
        // word starts. "*con*" also matches inside words; "con*" only at
        // starts.
        let (prefix_hits, _) = idx.search(&Pattern::parse("con*"));
        assert_eq!(prefix_hits, vec![179]);
        let (suffix_hits, _) = idx.search(&Pattern::parse("*ing"));
        assert_eq!(suffix_hits, vec![189]); // editing
    }

    #[test]
    fn exact_word_search() {
        let idx = paper_index();
        let (hits, _) = idx.search(&Pattern::parse("bound"));
        assert_eq!(hits, vec![291]);
        let (miss, _) = idx.search(&Pattern::parse("boundary"));
        assert!(miss.is_empty());
    }

    #[test]
    fn short_words_still_findable() {
        let mut idx = TextIndex::new();
        idx.add_document(1, "an ox");
        let (hits, _) = idx.search(&Pattern::parse("ox"));
        assert_eq!(hits, vec![1]);
        let (hits2, _) = idx.search(&Pattern::parse("o?"));
        assert_eq!(hits2, vec![1]);
    }

    #[test]
    fn index_matches_scan_on_many_patterns() {
        let idx = paper_index();
        for mask in [
            "*comput*",
            "con*",
            "*ing",
            "*o*",
            "b?und",
            "text",
            "*and*",
            "??",
            "*",
            "*string*search*",
            "xyz*",
        ] {
            let p = Pattern::parse(mask);
            let (mut a, _) = idx.search(&p);
            let mut b = idx.scan_search(&p);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "mask {mask}");
        }
    }

    #[test]
    fn remove_document() {
        let mut idx = paper_index();
        idx.remove_document(291);
        let (hits, _) = idx.search(&Pattern::parse("*comput*"));
        assert!(hits.is_empty());
        assert_eq!(idx.len(), 2);
        // Re-adding works.
        idx.add_document(291, "Minicomputers Strike Back");
        let (hits, _) = idx.search(&Pattern::parse("*comput*"));
        assert_eq!(hits, vec![291]);
    }

    #[test]
    fn reindex_replaces_old_words() {
        let mut idx = TextIndex::new();
        idx.add_document(5, "old words here");
        idx.add_document(5, "completely new content");
        let (hits, _) = idx.search(&Pattern::parse("old"));
        assert!(hits.is_empty());
        let (hits, _) = idx.search(&Pattern::parse("new"));
        assert_eq!(hits, vec![5]);
    }

    #[test]
    fn verification_counter_reports_candidates() {
        let idx = paper_index();
        let (_, verified_indexed) = idx.search(&Pattern::parse("*comput*"));
        assert_eq!(verified_indexed, 1, "fragment pruning left 1 candidate");
        let (_, verified_all) = idx.search(&Pattern::parse("*a*"));
        assert_eq!(verified_all, 3, "unselective mask verifies everything");
    }
}
