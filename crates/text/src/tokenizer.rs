//! Word tokenization for text attributes.
//!
//! The masked-search semantics of the paper's `CONTAINS` are
//! word-granular: a `TEXT` value matches `'*comput*'` when some *word*
//! in it matches the mask. Words are maximal alphanumeric runs,
//! lowercased (matching is case-insensitive, as befits a search index).

/// Split `text` into lowercased words (maximal alphanumeric runs).
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            cur.extend(ch.to_lowercase());
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_splitting() {
        assert_eq!(
            tokenize("Concurrency and Concurrency Control"),
            vec!["concurrency", "and", "concurrency", "control"]
        );
    }

    #[test]
    fn punctuation_and_digits() {
        assert_eq!(
            tokenize("Branch-and-Bound: 2nd edition (1986)!"),
            vec!["branch", "and", "bound", "2nd", "edition", "1986"]
        );
    }

    #[test]
    fn empty_and_whitespace() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n ").is_empty());
    }

    #[test]
    fn unicode_lowercasing() {
        assert_eq!(tokenize("Größe"), vec!["größe"]);
    }
}
