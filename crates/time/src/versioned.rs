//! Versioned tables: ASOF support for NF² tables.
//!
//! A [`VersionedTable`] shadows one (NF² or flat) table with per-object
//! version chains. The database layer records every mutation here when
//! the table is declared versioned; the ASOF clause of §5 then
//! reconstructs the table (or any subtable of it — the reconstruction
//! returns whole historical tuples, from which the query processor
//! projects) at any past date:
//!
//! ```text
//! SELECT y.PNO, y.PNAME
//! FROM   x IN DEPARTMENTS ASOF '1984-01-15', y IN x.PROJECTS
//! WHERE  x.DNO = 314
//! ```

use crate::chain::VersionChain;
use aim2_model::{Date, TableKind, TableValue, Tuple};
use aim2_storage::object::ObjectHandle;
use std::collections::BTreeMap;

/// Version store for one table, keyed by object handle.
#[derive(Debug, Clone, Default)]
pub struct VersionedTable {
    chains: BTreeMap<ObjectHandle, VersionChain<Tuple>>,
    kind: TableKind,
}

impl VersionedTable {
    /// A fresh store for a table of the given kind.
    pub fn new(kind: TableKind) -> VersionedTable {
        VersionedTable {
            chains: BTreeMap::new(),
            kind,
        }
    }

    /// Record an object's state at `t` (insert or full-object update).
    pub fn record_state(&mut self, handle: ObjectHandle, t: Date, state: Tuple) {
        self.chains
            .entry(handle)
            .or_default()
            .record(t, Some(state));
    }

    /// Record an object's deletion at `t`.
    pub fn record_delete(&mut self, handle: ObjectHandle, t: Date) {
        self.chains.entry(handle).or_default().record(t, None);
    }

    /// The historical state of one object.
    pub fn object_asof(&self, handle: ObjectHandle, t: Date) -> Option<&Tuple> {
        self.chains.get(&handle)?.asof(t)
    }

    /// The whole table as of `t`.
    pub fn table_asof(&self, t: Date) -> TableValue {
        TableValue {
            kind: self.kind,
            tuples: self
                .chains
                .values()
                .filter_map(|c| c.asof(t).cloned())
                .collect(),
        }
    }

    /// Walk-through-time over one object (subtuple-manager-level API;
    /// deliberately not surfaced in the query language, as in the
    /// paper).
    pub fn object_history(
        &self,
        handle: ObjectHandle,
        from: Date,
        to: Date,
    ) -> Vec<(Date, Date, &Tuple)> {
        self.chains
            .get(&handle)
            .map(|c| c.history(from, to))
            .unwrap_or_default()
    }

    /// Number of objects ever recorded.
    pub fn object_count(&self) -> usize {
        self.chains.len()
    }

    /// Total stored versions (space metric for benches).
    pub fn version_count(&self) -> usize {
        self.chains.values().map(VersionChain::version_count).sum()
    }

    /// Iterate all chains (catalog checkpoints).
    pub fn chains(&self) -> impl Iterator<Item = (&ObjectHandle, &VersionChain<Tuple>)> {
        self.chains.iter()
    }

    /// Install a persisted chain (catalog reload).
    pub fn set_chain(&mut self, handle: ObjectHandle, chain: VersionChain<Tuple>) {
        self.chains.insert(handle, chain);
    }

    /// The table kind versions reconstruct to.
    pub fn kind(&self) -> TableKind {
        self.kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aim2_model::value::build::{a, rel, tup};
    use aim2_model::{fixtures, Value};
    use aim2_storage::tid::{PageId, SlotNo, Tid};

    fn d(s: &str) -> Date {
        Date::parse_iso(s).unwrap()
    }

    fn h(n: u32) -> ObjectHandle {
        ObjectHandle(Tid::new(PageId(n), SlotNo(0)))
    }

    /// Build the paper's ASOF scenario: department 314 on 1984-01-15 had
    /// projects {17 CGA (2 members), 11 DOC}; later DOC was cancelled,
    /// HEAP added, and a member joined CGA — yielding today's Table 5.
    fn dept_314_history() -> VersionedTable {
        let mut vt = VersionedTable::new(TableKind::Relation);
        let old_projects = fixtures::departments_314_projects_asof_1984();
        let old_state = tup(vec![
            a(314),
            a(56194),
            Value::Table(old_projects),
            a(280_000),
            rel(vec![tup(vec![a(2), a("3278")])]),
        ]);
        vt.record_state(h(0), d("1984-01-01"), old_state);
        vt.record_state(h(0), d("1984-06-01"), fixtures::department_314());
        vt
    }

    #[test]
    fn paper_asof_example_projects_of_dept_314() {
        let vt = dept_314_history();
        // "deliver all projects which department 314 has had on January
        // 15th, 1984"
        let state = vt.object_asof(h(0), d("1984-01-15")).unwrap();
        let projects = state.fields[2].as_table().unwrap();
        let pnos: Vec<i64> = projects
            .tuples
            .iter()
            .map(|p| p.fields[0].as_atom().unwrap().as_int().unwrap())
            .collect();
        assert_eq!(pnos, vec![17, 11], "CGA and the since-cancelled DOC");
        // Today the answer differs.
        let now = vt.object_asof(h(0), Date::MAX).unwrap();
        let pnos_now: Vec<i64> = now.fields[2]
            .as_table()
            .unwrap()
            .tuples
            .iter()
            .map(|p| p.fields[0].as_atom().unwrap().as_int().unwrap())
            .collect();
        assert_eq!(pnos_now, vec![17, 23]);
    }

    #[test]
    fn table_asof_includes_only_then_existing_objects() {
        let mut vt = dept_314_history();
        // Department 999 created later and deleted again.
        vt.record_state(h(1), d("1985-01-01"), tup(vec![a(999)]));
        vt.record_delete(h(1), d("1985-06-01"));
        assert_eq!(vt.table_asof(d("1984-01-15")).len(), 1);
        assert_eq!(vt.table_asof(d("1985-03-01")).len(), 2);
        assert_eq!(vt.table_asof(d("1985-07-01")).len(), 1, "999 deleted");
        assert_eq!(vt.object_count(), 2);
        assert_eq!(vt.version_count(), 4);
    }

    #[test]
    fn walk_through_time_is_available_below_the_language() {
        let vt = dept_314_history();
        let hist = vt.object_history(h(0), d("1984-01-01"), Date::MAX);
        assert_eq!(hist.len(), 2);
        assert!(hist[0].0 < hist[1].0);
        assert_eq!(hist[1].1, Date::MAX, "current version open-ended");
        assert!(vt.object_history(h(42), Date::MIN, Date::MAX).is_empty());
    }
}
