//! Subtuple-granular version chains — the "lower system level" of §5.
//!
//! The paper keeps time versions at the *subtuple* level (/DLW84/) and
//! states that walk-through-time queries "are supported at lower system
//! levels (subtuple manager) but have not been brought up to the
//! language interface". This module is that lower level: per-data-
//! subtuple chains keyed by the subtuple's stable Mini-TID (stable by
//! the §4.1 page-list rules, including across object moves), recording
//! the atom vector each time it changes.
//!
//! The language-level ASOF clause runs off the object-granular
//! [`crate::VersionedTable`] (see DESIGN.md for the substitution note);
//! this API serves programmatic history inspection, exactly the split
//! the paper describes.

use crate::chain::VersionChain;
use aim2_model::{Atom, Date};
use aim2_storage::object::ObjectHandle;
use aim2_storage::tid::MiniTid;
use std::collections::BTreeMap;

/// Version chains for the data subtuples of one table.
#[derive(Debug, Clone, Default)]
pub struct SubtupleVersions {
    chains: BTreeMap<(ObjectHandle, MiniTid), VersionChain<Vec<Atom>>>,
}

impl SubtupleVersions {
    /// An empty store.
    pub fn new() -> SubtupleVersions {
        SubtupleVersions::default()
    }

    /// Record that the data subtuple `(handle, mt)` holds `atoms` from
    /// date `t` on.
    pub fn record(&mut self, handle: ObjectHandle, mt: MiniTid, t: Date, atoms: Vec<Atom>) {
        self.chains
            .entry((handle, mt))
            .or_default()
            .record(t, Some(atoms));
    }

    /// Record the subtuple's deletion at `t`.
    pub fn record_delete(&mut self, handle: ObjectHandle, mt: MiniTid, t: Date) {
        self.chains.entry((handle, mt)).or_default().record(t, None);
    }

    /// The subtuple's atoms as of `t`.
    pub fn asof(&self, handle: ObjectHandle, mt: MiniTid, t: Date) -> Option<&Vec<Atom>> {
        self.chains.get(&(handle, mt))?.asof(t)
    }

    /// Walk-through-time over one subtuple: validity intervals
    /// overlapping `[from, to]`.
    pub fn history(
        &self,
        handle: ObjectHandle,
        mt: MiniTid,
        from: Date,
        to: Date,
    ) -> Vec<(Date, Date, &Vec<Atom>)> {
        self.chains
            .get(&(handle, mt))
            .map(|c| c.history(from, to))
            .unwrap_or_default()
    }

    /// All versioned subtuples of one object.
    pub fn subtuples_of(&self, handle: ObjectHandle) -> Vec<MiniTid> {
        self.chains
            .keys()
            .filter(|(h, _)| *h == handle)
            .map(|(_, mt)| *mt)
            .collect()
    }

    /// Total version entries (space metric).
    pub fn version_count(&self) -> usize {
        self.chains.values().map(VersionChain::version_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aim2_model::fixtures;
    use aim2_storage::buffer::BufferPool;
    use aim2_storage::disk::MemDisk;
    use aim2_storage::minidir::LayoutKind;
    use aim2_storage::object::{ElemLoc, ObjectStore};
    use aim2_storage::segment::Segment;
    use aim2_storage::stats::Stats;

    fn d(s: &str) -> Date {
        Date::parse_iso(s).unwrap()
    }

    /// End-to-end with real storage: version the '17 CGA' project data
    /// subtuple through updates and an object move.
    #[test]
    fn subtuple_chains_track_updates_and_survive_moves() {
        let schema = fixtures::departments_schema();
        let pool = BufferPool::new(Box::new(MemDisk::new(1024)), 64, Stats::new());
        let mut os = ObjectStore::new(Segment::new(pool), LayoutKind::Ss3);
        let h = os
            .insert_object(&schema, &fixtures::department_314())
            .unwrap();
        let mut sv = SubtupleVersions::new();

        // Seed chains for every data subtuple at load time.
        for e in os.walk_data(&schema, h).unwrap() {
            sv.record(h, e.data, d("1984-01-01"), e.atoms);
        }
        let loc = ElemLoc::object().then(2, 0); // project 17
        let (mt, _) = os.resolve_elem_addr(&schema, h, &loc).unwrap();

        // Rename the project mid-year.
        let new_atoms = vec![Atom::Int(17), Atom::Str("CGA-II".into())];
        os.update_atoms(&schema, h, &loc, &new_atoms).unwrap();
        sv.record(h, mt, d("1984-06-01"), new_atoms.clone());

        // ASOF at the subtuple level.
        assert_eq!(
            sv.asof(h, mt, d("1984-03-01")).unwrap()[1],
            Atom::Str("CGA".into())
        );
        assert_eq!(
            sv.asof(h, mt, d("1984-07-01")).unwrap()[1],
            Atom::Str("CGA-II".into())
        );

        // Walk-through-time: two validity intervals.
        let hist = sv.history(h, mt, Date::MIN, Date::MAX);
        assert_eq!(hist.len(), 2);
        assert_eq!(
            hist[0].1,
            d("1984-06-01"),
            "first interval closed by the rename"
        );

        // The chain key survives a page-level object move (Mini-TID
        // stability, §4.1): the same key still addresses the subtuple.
        os.move_object(h).unwrap();
        let (mt_after, _) = os.resolve_elem_addr(&schema, h, &loc).unwrap();
        assert_eq!(mt, mt_after, "Mini-TID unchanged by the move");
        assert_eq!(
            os.read_data_subtuple(h, mt).unwrap()[1],
            Atom::Str("CGA-II".into())
        );
        assert!(sv.asof(h, mt, d("1985-01-01")).is_some());
    }

    #[test]
    fn deletion_tombstones_at_subtuple_level() {
        let mut sv = SubtupleVersions::new();
        let h = ObjectHandle(aim2_storage::tid::Tid::new(
            aim2_storage::tid::PageId(1),
            aim2_storage::tid::SlotNo(0),
        ));
        let mt = MiniTid::new(0, aim2_storage::tid::SlotNo(3));
        sv.record(h, mt, d("1984-01-01"), vec![Atom::Int(1)]);
        sv.record_delete(h, mt, d("1984-05-01"));
        assert!(sv.asof(h, mt, d("1984-02-01")).is_some());
        assert!(sv.asof(h, mt, d("1984-06-01")).is_none());
        assert_eq!(sv.subtuples_of(h), vec![mt]);
        assert_eq!(sv.version_count(), 2);
    }
}
