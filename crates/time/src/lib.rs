//! # aim2-time — time versions and ASOF queries
//!
//! Section 5 of Dadam et al. (SIGMOD 1986): AIM-II has "integrated
//! temporal support, also called time version support" (/DLW84, Lu84/).
//! The 1986 prototype exposes **ASOF** queries at the language level
//! ("see a table or subtable as it looked like at a fixed point in time
//! in the past") while *walk-through-time* interval queries "are
//! supported at lower system levels (subtuple manager) but have not been
//! brought up to the language interface". This crate mirrors that split:
//!
//! * [`chain::VersionChain`] — timestamped version chains with point
//!   ([`chain::VersionChain::asof`]) and interval
//!   ([`chain::VersionChain::history`]) access: the lower-system-level
//!   machinery, walk-through-time included;
//! * [`versioned::VersionedTable`] — per-object version recording for a
//!   "versioned table", driving the language-level ASOF clause.
//!
//! Substitution note (documented in DESIGN.md): the paper versions at
//! the subtuple level for space efficiency; this reproduction records
//! one version entry per *object mutation*. ASOF query semantics —
//! what the paper actually exposes — are identical.

pub mod chain;
pub mod epoch;
pub mod subtuple;
pub mod versioned;

pub use chain::VersionChain;
pub use epoch::{EpochStore, TableVersion};
pub use subtuple::SubtupleVersions;
pub use versioned::VersionedTable;
