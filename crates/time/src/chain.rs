//! Version chains: the subtuple-manager-level temporal machinery.
//!
//! A [`VersionChain`] records the timestamped history of one item. Each
//! entry `(t, Some(v))` means "from `t` on, the value is `v`"; `(t,
//! None)` is a deletion tombstone. [`VersionChain::asof`] answers the
//! paper's ASOF point queries; [`VersionChain::history`] answers
//! walk-through-time interval queries (which the paper supports at this
//! level but deliberately not in the query language — we do the same).

use aim2_model::Date;

/// Timestamped history of one item.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VersionChain<T> {
    /// Sorted by date ascending; at most one entry per date (a later
    /// write on the same date replaces the earlier).
    entries: Vec<(Date, Option<T>)>,
}

impl<T: Clone> VersionChain<T> {
    /// An empty chain (item never existed).
    pub fn new() -> VersionChain<T> {
        VersionChain {
            entries: Vec::new(),
        }
    }

    /// Record that the value became `v` at date `t` (None = deleted).
    /// Histories may be built out of order; entries stay date-sorted.
    pub fn record(&mut self, t: Date, v: Option<T>) {
        match self.entries.binary_search_by_key(&t, |(d, _)| *d) {
            Ok(i) => self.entries[i].1 = v,
            Err(i) => self.entries.insert(i, (t, v)),
        }
    }

    /// The value as of date `t` (the paper's ASOF): the latest version
    /// with timestamp `<= t`, unless that version is a tombstone.
    pub fn asof(&self, t: Date) -> Option<&T> {
        let idx = self.entries.partition_point(|(d, _)| *d <= t);
        if idx == 0 {
            return None;
        }
        self.entries[idx - 1].1.as_ref()
    }

    /// The current value (as of the end of time).
    pub fn current(&self) -> Option<&T> {
        self.asof(Date::MAX)
    }

    /// Walk-through-time: the validity intervals overlapping `[from,
    /// to]`, as `(valid_from, valid_to_exclusive, value)` triples.
    /// `valid_to_exclusive` is `Date::MAX` for the open current version.
    pub fn history(&self, from: Date, to: Date) -> Vec<(Date, Date, &T)> {
        let mut out = Vec::new();
        for (i, (start, v)) in self.entries.iter().enumerate() {
            let Some(v) = v else { continue };
            let end = self
                .entries
                .get(i + 1)
                .map(|(d, _)| *d)
                .unwrap_or(Date::MAX);
            // Interval [start, end) overlaps [from, to]?
            if *start <= to && end > from {
                out.push((*start, end, v));
            }
        }
        out
    }

    /// Number of recorded versions (tombstones included).
    pub fn version_count(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The raw entries, date-ascending (catalog checkpoints).
    pub fn entries(&self) -> &[(Date, Option<T>)] {
        &self.entries
    }

    /// Rebuild from persisted entries (must be date-ascending).
    pub fn from_entries(entries: Vec<(Date, Option<T>)>) -> VersionChain<T> {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        VersionChain { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Date {
        Date::parse_iso(s).unwrap()
    }

    #[test]
    fn asof_between_versions() {
        let mut c = VersionChain::new();
        c.record(d("1984-01-01"), Some("v1"));
        c.record(d("1984-06-01"), Some("v2"));
        assert_eq!(c.asof(d("1983-12-31")), None, "before creation");
        assert_eq!(c.asof(d("1984-01-01")), Some(&"v1"), "inclusive start");
        assert_eq!(c.asof(d("1984-01-15")), Some(&"v1"));
        assert_eq!(c.asof(d("1984-06-01")), Some(&"v2"));
        assert_eq!(c.current(), Some(&"v2"));
    }

    #[test]
    fn tombstones_delete() {
        let mut c = VersionChain::new();
        c.record(d("1984-01-01"), Some(1));
        c.record(d("1984-03-01"), None);
        c.record(d("1984-09-01"), Some(2));
        assert_eq!(c.asof(d("1984-02-01")), Some(&1));
        assert_eq!(c.asof(d("1984-04-01")), None, "deleted");
        assert_eq!(c.asof(d("1985-01-01")), Some(&2), "re-created");
    }

    #[test]
    fn out_of_order_recording() {
        let mut c = VersionChain::new();
        c.record(d("1984-06-01"), Some("late"));
        c.record(d("1984-01-01"), Some("early"));
        assert_eq!(c.asof(d("1984-02-01")), Some(&"early"));
        // Same-date overwrite.
        c.record(d("1984-01-01"), Some("early2"));
        assert_eq!(c.asof(d("1984-02-01")), Some(&"early2"));
        assert_eq!(c.version_count(), 2);
    }

    #[test]
    fn walk_through_time_intervals() {
        let mut c = VersionChain::new();
        c.record(d("1984-01-01"), Some("a"));
        c.record(d("1984-03-01"), Some("b"));
        c.record(d("1984-05-01"), None);
        c.record(d("1984-07-01"), Some("c"));
        let h = c.history(d("1984-02-01"), d("1984-08-01"));
        assert_eq!(h.len(), 3);
        assert_eq!(h[0], (d("1984-01-01"), d("1984-03-01"), &"a"));
        assert_eq!(h[1], (d("1984-03-01"), d("1984-05-01"), &"b"));
        assert_eq!(h[2], (d("1984-07-01"), Date::MAX, &"c"));
        // A window entirely inside one version.
        let inside = c.history(d("1984-03-10"), d("1984-03-20"));
        assert_eq!(inside.len(), 1);
        assert_eq!(inside[0].2, &"b");
        // A window before everything.
        assert!(c.history(d("1983-01-01"), d("1983-12-31")).is_empty());
    }

    #[test]
    fn empty_chain() {
        let c: VersionChain<u8> = VersionChain::new();
        assert!(c.is_empty());
        assert_eq!(c.asof(Date::MAX), None);
        assert!(c.history(Date::MIN, Date::MAX).is_empty());
    }
}
