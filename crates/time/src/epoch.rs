//! Commit-epoch version store: the MVCC generalization of §5's ASOF
//! versioning.
//!
//! Where [`crate::VersionedTable`] keys history by *date* for the ASOF
//! clause, the [`EpochStore`] keys whole-table states by *commit
//! epoch* — a process-local logical clock that ticks once per
//! publishing event (a commit, a rollback refresh, a checkpoint
//! resync). Each published version is an immutable
//! [`TableVersion`] shared by `Arc`: committing writers build the next
//! version by patching the previous one (object-mode commits) or by
//! re-snapshotting the table (statement/DDL commits), and readers that
//! pinned an older epoch keep resolving against the exact versions
//! that were current when they began — completely lock-free, per the
//! "read operations completely lock-free" doctrine.
//!
//! The store itself is a passive data structure; `aim2-txn`'s
//! `SnapshotManager` wraps it with the epoch clock, pin refcounts and
//! GC policy.

use aim2_model::{TableSchema, Tuple};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One immutable whole-table state at one commit epoch: the schema and
/// the rows in scan order, each row keyed by its storage key (packed
/// TID / object handle) so successor versions can be built by patching.
#[derive(Debug)]
pub struct TableVersion {
    pub schema: TableSchema,
    /// `(storage key, row)` pairs in the table's scan order. Shared as
    /// one `Arc` so every cursor opened over this version borrows the
    /// same vector.
    pub rows: Arc<Vec<(u64, Arc<Tuple>)>>,
}

impl TableVersion {
    /// A version from freshly snapshotted `(key, row)` pairs.
    pub fn new(schema: TableSchema, rows: Vec<(u64, Tuple)>) -> TableVersion {
        TableVersion {
            schema,
            rows: Arc::new(rows.into_iter().map(|(k, t)| (k, Arc::new(t))).collect()),
        }
    }

    /// Successor version: this version's rows with `updates` replacing
    /// rows by key and `deletes` removing them. Keys in `updates` that
    /// the base does not contain are appended (scan order puts new rows
    /// last, matching the heap's enumeration of fresh handles).
    pub fn patched(
        &self,
        updates: &BTreeMap<u64, Tuple>,
        deletes: &std::collections::BTreeSet<u64>,
    ) -> TableVersion {
        let mut rows: Vec<(u64, Arc<Tuple>)> = Vec::with_capacity(self.rows.len());
        let mut pending: BTreeMap<u64, &Tuple> = updates.iter().map(|(k, t)| (*k, t)).collect();
        for (k, t) in self.rows.iter() {
            if deletes.contains(k) {
                continue;
            }
            match pending.remove(k) {
                Some(newer) => rows.push((*k, Arc::new(newer.clone()))),
                None => rows.push((*k, Arc::clone(t))),
            }
        }
        for (k, t) in pending {
            rows.push((k, Arc::new(t.clone())));
        }
        TableVersion {
            schema: self.schema.clone(),
            rows: Arc::new(rows),
        }
    }

    /// Rename storage keys in place of a successor version (rollback of
    /// a delete reinserts the before-image under a fresh handle; the
    /// row's content is unchanged but future patches key on the new
    /// handle).
    pub fn rekeyed(&self, renames: &BTreeMap<u64, u64>) -> TableVersion {
        let rows = self
            .rows
            .iter()
            .map(|(k, t)| (*renames.get(k).unwrap_or(k), Arc::clone(t)))
            .collect();
        TableVersion {
            schema: self.schema.clone(),
            rows: Arc::new(rows),
        }
    }
}

/// The versions of one table, epoch-ascending. `None` marks the table
/// as dropped at that epoch (readers pinned before the drop keep
/// resolving the earlier state).
type VersionList = Vec<(u64, Option<Arc<TableVersion>>)>;

/// Epoch-keyed version lists for every table in the database.
#[derive(Debug, Default)]
pub struct EpochStore {
    tables: BTreeMap<String, VersionList>,
}

impl EpochStore {
    /// An empty store.
    pub fn new() -> EpochStore {
        EpochStore::default()
    }

    /// Publish `version` (or a drop tombstone) for `table` at `epoch`.
    /// Epochs must be published non-decreasing per table; an equal
    /// epoch replaces the prior publication (last write wins within one
    /// publishing event).
    pub fn publish(&mut self, table: &str, epoch: u64, version: Option<Arc<TableVersion>>) {
        let list = self.tables.entry(table.to_string()).or_default();
        if let Some(last) = list.last_mut() {
            debug_assert!(last.0 <= epoch, "epochs must be published in order");
            if last.0 == epoch {
                last.1 = version;
                return;
            }
        }
        list.push((epoch, version));
    }

    /// The state of `table` visible at `epoch`: the latest version
    /// published at or before it. `None` when the table did not exist
    /// (or was dropped) at that epoch.
    pub fn resolve(&self, table: &str, epoch: u64) -> Option<Arc<TableVersion>> {
        let list = self.tables.get(table)?;
        let idx = list.partition_point(|(e, _)| *e <= epoch);
        if idx == 0 {
            return None;
        }
        list[idx - 1].1.clone()
    }

    /// The most recently published state of `table` (drop tombstones
    /// resolve to `None`).
    pub fn latest(&self, table: &str) -> Option<Arc<TableVersion>> {
        self.tables.get(table)?.last()?.1.clone()
    }

    /// Names of tables visible at `epoch`, in catalog order.
    pub fn tables_at(&self, epoch: u64) -> Vec<String> {
        self.tables
            .keys()
            .filter(|t| self.resolve(t, epoch).is_some())
            .cloned()
            .collect()
    }

    /// Reclaim versions no pinned reader can reach: for every table,
    /// drop all versions superseded before `min_pinned` (the oldest
    /// epoch any reader still holds). The version a reader at
    /// `min_pinned` resolves — the latest published at or before it —
    /// and everything after it survive. Returns how many versions were
    /// reclaimed.
    pub fn gc(&mut self, min_pinned: u64) -> u64 {
        let mut reclaimed = 0;
        self.tables.retain(|_, list| {
            let keep_from = list.partition_point(|(e, _)| *e <= min_pinned).max(1) - 1;
            reclaimed += keep_from as u64;
            list.drain(..keep_from);
            // A table whose only surviving version is a tombstone is
            // fully dead: no reachable epoch resolves it.
            if list.len() == 1 && list[0].1.is_none() && list[0].0 <= min_pinned {
                reclaimed += 1;
                return false;
            }
            true
        });
        reclaimed
    }

    /// Total versions currently retained across all tables.
    pub fn versions_retained(&self) -> u64 {
        self.tables.values().map(|l| l.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aim2_model::{Atom, AtomType, Value};

    fn schema() -> TableSchema {
        TableSchema::relation("T").with_atom("A", AtomType::Int)
    }

    fn row(v: i64) -> Tuple {
        Tuple::new(vec![Value::Atom(Atom::Int(v))])
    }

    fn version(vals: &[(u64, i64)]) -> Arc<TableVersion> {
        Arc::new(TableVersion::new(
            schema(),
            vals.iter().map(|(k, v)| (*k, row(*v))).collect(),
        ))
    }

    fn sum(v: &TableVersion) -> i64 {
        v.rows
            .iter()
            .map(|(_, t)| match t.field(0).unwrap() {
                Value::Atom(a) => a.as_int().unwrap(),
                _ => 0,
            })
            .sum()
    }

    #[test]
    fn resolve_picks_latest_at_or_before_epoch() {
        let mut s = EpochStore::new();
        s.publish("T", 0, Some(version(&[(1, 10)])));
        s.publish("T", 2, Some(version(&[(1, 20)])));
        assert_eq!(sum(&s.resolve("T", 0).unwrap()), 10);
        assert_eq!(sum(&s.resolve("T", 1).unwrap()), 10);
        assert_eq!(sum(&s.resolve("T", 2).unwrap()), 20);
        assert_eq!(sum(&s.resolve("T", 9).unwrap()), 20);
        assert!(s.resolve("U", 9).is_none());
    }

    #[test]
    fn drop_tombstone_hides_table_from_later_epochs() {
        let mut s = EpochStore::new();
        s.publish("T", 1, Some(version(&[(1, 10)])));
        s.publish("T", 3, None);
        assert!(s.resolve("T", 2).is_some());
        assert!(s.resolve("T", 3).is_none());
        assert!(s.latest("T").is_none());
        assert_eq!(s.tables_at(2), vec!["T".to_string()]);
        assert!(s.tables_at(3).is_empty());
    }

    #[test]
    fn patched_applies_updates_deletes_appends_in_order() {
        let base = version(&[(1, 10), (2, 20), (3, 30)]);
        let updates: BTreeMap<u64, Tuple> = [(2, row(25)), (9, row(90))].into_iter().collect();
        let deletes = [3u64].into_iter().collect();
        let next = base.patched(&updates, &deletes);
        let keys: Vec<u64> = next.rows.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 2, 9]);
        assert_eq!(sum(&next), 10 + 25 + 90);
        // The base is untouched.
        assert_eq!(sum(&base), 60);
    }

    #[test]
    fn rekeyed_preserves_order_and_content() {
        let base = version(&[(1, 10), (2, 20)]);
        let renames: BTreeMap<u64, u64> = [(2u64, 7u64)].into_iter().collect();
        let next = base.rekeyed(&renames);
        let keys: Vec<u64> = next.rows.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 7]);
        assert_eq!(sum(&next), 30);
    }

    #[test]
    fn gc_keeps_resolvable_versions() {
        let mut s = EpochStore::new();
        s.publish("T", 0, Some(version(&[(1, 1)])));
        s.publish("T", 2, Some(version(&[(1, 2)])));
        s.publish("T", 4, Some(version(&[(1, 3)])));
        assert_eq!(s.versions_retained(), 3);
        // A reader pinned at 3 resolves epoch 2's version; only epoch
        // 0's is unreachable.
        assert_eq!(s.gc(3), 1);
        assert_eq!(sum(&s.resolve("T", 3).unwrap()), 2);
        assert_eq!(sum(&s.resolve("T", 4).unwrap()), 3);
        // Everyone at the tip: only the latest survives.
        assert_eq!(s.gc(4), 1);
        assert_eq!(s.versions_retained(), 1);
        assert_eq!(sum(&s.resolve("T", 4).unwrap()), 3);
    }

    #[test]
    fn gc_reclaims_fully_dead_dropped_tables() {
        let mut s = EpochStore::new();
        s.publish("T", 1, Some(version(&[(1, 1)])));
        s.publish("T", 2, None);
        // A reader pinned at 1 still needs the pre-drop state.
        assert_eq!(s.gc(1), 0);
        assert!(s.resolve("T", 1).is_some());
        // Once every pin is past the drop, the table vanishes entirely.
        assert_eq!(s.gc(2), 2);
        assert_eq!(s.versions_retained(), 0);
        assert!(s.resolve("T", 2).is_none());
    }
}
