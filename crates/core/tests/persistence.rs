//! Checkpoint / reopen: a file-backed database survives a restart with
//! its objects, indexes, text indexes, and version history intact.

use aim2::{Database, DbConfig};
use aim2_model::{fixtures, Atom, Date, Path};
use aim2_storage::minidir::LayoutKind;

fn config(dir: &std::path::Path) -> DbConfig {
    DbConfig {
        data_dir: Some(dir.to_path_buf()),
        page_size: 1024,
        buffer_frames: 32,
        default_layout: LayoutKind::Ss3,
        ..DbConfig::default()
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("aim2_persist_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn checkpoint_and_reopen_full_database() {
    let dir = temp_dir("full");
    {
        let mut db = Database::with_config(config(&dir));
        db.execute(
            "CREATE TABLE DEPARTMENTS ( DNO INTEGER, MGRNO INTEGER,
               PROJECTS { PNO INTEGER, PNAME STRING,
                          MEMBERS { EMPNO INTEGER, FUNCTION STRING } },
               BUDGET INTEGER, EQUIP { QU INTEGER, TYPE STRING } ) WITH VERSIONS",
        )
        .unwrap();
        db.execute(
            "CREATE TABLE EMPLOYEES-1NF ( EMPNO INTEGER, LNAME STRING, FNAME STRING, SEX STRING )",
        )
        .unwrap();
        db.execute(
            "CREATE TABLE REPORTS ( REPNO STRING, AUTHORS < NAME STRING >, TITLE TEXT,
                                    DESCRIPTORS { WORD STRING, WEIGHT DOUBLE } )",
        )
        .unwrap();
        db.set_today(Date::parse_iso("1984-01-01").unwrap());
        for t in fixtures::departments_value().tuples {
            db.insert_tuple("DEPARTMENTS", t).unwrap();
        }
        for t in fixtures::employees_1nf_value().tuples {
            db.insert_tuple("EMPLOYEES-1NF", t).unwrap();
        }
        for t in fixtures::reports_value().tuples {
            db.insert_tuple("REPORTS", t).unwrap();
        }
        db.execute("CREATE INDEX f ON DEPARTMENTS (PROJECTS.MEMBERS.FUNCTION)")
            .unwrap();
        db.execute("CREATE TEXT INDEX t ON REPORTS (TITLE)")
            .unwrap();
        // Some history.
        db.set_today(Date::parse_iso("1985-01-01").unwrap());
        db.execute("UPDATE x IN DEPARTMENTS SET x.BUDGET = 777000 WHERE x.DNO = 314")
            .unwrap();
        db.checkpoint().unwrap();
    } // drop: everything leaves memory

    let mut db = Database::open(config(&dir)).unwrap();
    assert_eq!(
        db.table_names(),
        vec!["DEPARTMENTS", "EMPLOYEES-1NF", "REPORTS"]
    );
    // Objects intact (including the update).
    let (_, v) = db.query("SELECT * FROM DEPARTMENTS").unwrap();
    assert_eq!(v.len(), 3);
    let (_, b) = db
        .query("SELECT x.BUDGET FROM x IN DEPARTMENTS WHERE x.DNO = 314")
        .unwrap();
    assert_eq!(
        b.tuples[0].fields[0].as_atom().unwrap().as_int(),
        Some(777_000)
    );
    // Flat table intact.
    let (_, e) = db.query("SELECT * FROM EMPLOYEES-1NF").unwrap();
    assert_eq!(e.len(), 20);
    // The attribute index answers without a rebuild.
    let idx = db.index_mut("DEPARTMENTS", "f").unwrap();
    assert_eq!(
        idx.lookup(&Atom::Str("Consultant".into())).unwrap().len(),
        3
    );
    // The text index was rebuilt.
    let (hits, _) = db
        .text_search("REPORTS", &Path::parse("TITLE"), "*comput*")
        .unwrap();
    assert_eq!(hits.len(), 1);
    // The version history survived — the ASOF query still answers.
    let (_, old) = db
        .query("SELECT x.BUDGET FROM x IN DEPARTMENTS ASOF '1984-06-01' WHERE x.DNO = 314")
        .unwrap();
    assert_eq!(
        old.tuples[0].fields[0].as_atom().unwrap().as_int(),
        Some(320_000)
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn reopened_database_remains_fully_usable() {
    let dir = temp_dir("usable");
    {
        let mut db = Database::with_config(config(&dir));
        db.execute("CREATE TABLE T ( K INTEGER, S { V INTEGER, U { W STRING } } ) USING SS3")
            .unwrap();
        for k in 0..20i64 {
            db.execute(&format!(
                "INSERT INTO T VALUES ({k}, {{({}, {{('w{k}')}}), ({}, {{}})}})",
                k * 2,
                k * 2 + 1
            ))
            .unwrap();
        }
        db.checkpoint().unwrap();
    }
    let mut db = Database::open(config(&dir)).unwrap();
    // DML continues after reopen: inserts, element DML, deletes.
    db.execute("INSERT INTO T VALUES (100, {})").unwrap();
    db.execute("INSERT INTO x.S FROM x IN T WHERE x.K = 3 VALUES (99, {})")
        .unwrap();
    db.execute("DELETE x FROM x IN T WHERE x.K = 0").unwrap();
    let (_, v) = db.query("SELECT x.K FROM x IN T").unwrap();
    assert_eq!(v.len(), 20, "20 - 1 + 1");
    let (_, s) = db
        .query("SELECT y.V FROM x IN T, y IN x.S WHERE x.K = 3")
        .unwrap();
    assert_eq!(s.len(), 3);
    // Checkpoint again and reopen once more.
    db.checkpoint().unwrap();
    drop(db);
    let mut db = Database::open(config(&dir)).unwrap();
    let (_, v) = db.query("SELECT x.K FROM x IN T").unwrap();
    assert_eq!(v.len(), 20);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_requires_data_dir() {
    let mut db = Database::in_memory();
    assert!(db.checkpoint().is_err());
}

#[test]
fn open_missing_catalog_errors() {
    let dir = temp_dir("missing");
    std::fs::create_dir_all(&dir).unwrap();
    assert!(Database::open(config(&dir)).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_catalog_rejected() {
    let dir = temp_dir("corrupt");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join(aim2::persist::CATALOG_FILE), b"garbage!").unwrap();
    assert!(Database::open(config(&dir)).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn ddl_roundtrip_via_schema_to_ddl() {
    let schema = fixtures::departments_schema();
    let ddl = aim2::persist::schema_to_ddl(&schema, LayoutKind::Ss1, true);
    let mut db = Database::in_memory();
    db.execute(&ddl).unwrap();
    assert_eq!(db.schema("DEPARTMENTS").unwrap(), schema);
    let reports_ddl =
        aim2::persist::schema_to_ddl(&fixtures::reports_schema(), LayoutKind::Ss3, false);
    db.execute(&reports_ddl).unwrap();
    assert_eq!(db.schema("REPORTS").unwrap(), fixtures::reports_schema());
}

#[test]
fn random_dml_then_checkpoint_reopen_preserves_state() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    for seed in 0..3u64 {
        let dir = temp_dir(&format!("rand{seed}"));
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
        let expected;
        {
            let mut db = Database::with_config(config(&dir));
            db.execute("CREATE TABLE T ( K INTEGER, B INTEGER, S { P INTEGER, M { F STRING } } )")
                .unwrap();
            db.execute("CREATE INDEX sp ON T (S.P)").unwrap();
            let mut next_k = 0i64;
            for step in 0..40 {
                match rng.gen_range(0..5) {
                    0 | 1 => {
                        let k = next_k;
                        next_k += 1;
                        db.execute(&format!(
                            "INSERT INTO T VALUES ({k}, {}, {{({}, {{('f{k}')}})}})",
                            k * 3,
                            k * 10
                        ))
                        .unwrap();
                    }
                    2 if next_k > 0 => {
                        let pick = rng.gen_range(0..next_k);
                        db.execute(&format!(
                            "UPDATE x IN T SET x.B = {} WHERE x.K = {pick}",
                            step * 7
                        ))
                        .unwrap();
                    }
                    3 if next_k > 0 => {
                        let pick = rng.gen_range(0..next_k);
                        db.execute(&format!(
                            "INSERT INTO x.S FROM x IN T WHERE x.K = {pick} VALUES ({}, {{}})",
                            100_000 + step
                        ))
                        .unwrap();
                    }
                    4 if next_k > 0 => {
                        let pick = rng.gen_range(0..next_k);
                        db.execute(&format!("DELETE x FROM x IN T WHERE x.K = {pick}"))
                            .unwrap();
                    }
                    _ => {}
                }
            }
            expected = db.query("SELECT * FROM T").unwrap().1.tuples;
            db.checkpoint().unwrap();
        }
        let mut db = Database::open(config(&dir)).unwrap();
        let (_, got) = db.query("SELECT * FROM T").unwrap();
        let want = aim2_model::TableValue {
            kind: aim2_model::TableKind::Relation,
            tuples: expected,
        };
        assert!(
            got.semantically_eq(&want),
            "seed {seed} diverged after reopen"
        );
        // The persisted attribute index still answers consistently.
        let (_, via_query) = db.query("SELECT y.P FROM x IN T, y IN x.S").unwrap();
        let indexed = db
            .index_mut("T", "sp")
            .unwrap()
            .lookup_range(None, None)
            .unwrap()
            .len();
        assert_eq!(indexed, via_query.len(), "seed {seed}: index out of sync");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
