//! End-to-end tests of the integrated database: DDL, DML (whole objects
//! and parts), queries, index maintenance, text search, time versions,
//! and file-backed operation.

use aim2::database::ExecResult;
use aim2::{Database, DbConfig};
use aim2_model::{fixtures, Atom, Date, Path};
use aim2_storage::minidir::LayoutKind;

/// DDL for the paper's schema, Tables 1–8.
const DDL: &str = "
CREATE TABLE DEPARTMENTS (
  DNO INTEGER, MGRNO INTEGER,
  PROJECTS { PNO INTEGER, PNAME STRING,
             MEMBERS { EMPNO INTEGER, FUNCTION STRING } },
  BUDGET INTEGER,
  EQUIP { QU INTEGER, TYPE STRING } ) USING SS3;
CREATE TABLE EMPLOYEES-1NF ( EMPNO INTEGER, LNAME STRING, FNAME STRING, SEX STRING );
CREATE TABLE REPORTS ( REPNO STRING, AUTHORS < NAME STRING >, TITLE TEXT,
                       DESCRIPTORS { WORD STRING, WEIGHT DOUBLE } );
";

fn load_paper_db() -> Database {
    let mut db = Database::in_memory();
    db.execute_script(DDL).unwrap();
    for t in &fixtures::departments_value().tuples {
        db.insert_tuple("DEPARTMENTS", t.clone()).unwrap();
    }
    for t in &fixtures::employees_1nf_value().tuples {
        db.insert_tuple("EMPLOYEES-1NF", t.clone()).unwrap();
    }
    for t in &fixtures::reports_value().tuples {
        db.insert_tuple("REPORTS", t.clone()).unwrap();
    }
    db
}

#[test]
fn ddl_creates_paper_schema() {
    let db = load_paper_db();
    let s = db.schema("DEPARTMENTS").unwrap();
    assert_eq!(s.depth(), 3);
    assert_eq!(s, fixtures::departments_schema());
    let r = db.schema("REPORTS").unwrap();
    assert_eq!(r, fixtures::reports_schema());
    let e = db.schema("EMPLOYEES-1NF").unwrap();
    assert!(e.is_flat());
}

#[test]
fn select_star_roundtrips_table5() {
    let mut db = load_paper_db();
    let (_, v) = db.query("SELECT * FROM DEPARTMENTS").unwrap();
    assert!(v.semantically_eq(&fixtures::departments_value()));
}

#[test]
fn insert_via_language() {
    let mut db = Database::in_memory();
    db.execute("CREATE TABLE T ( A INTEGER, S { B STRING } )")
        .unwrap();
    let r = db
        .execute("INSERT INTO T VALUES (1, {('x'), ('y')})")
        .unwrap();
    assert_eq!(r.count(), Some(1));
    let (_, v) = db.query("SELECT * FROM T").unwrap();
    assert_eq!(v.len(), 1);
    assert_eq!(v.tuples[0].fields[1].as_table().unwrap().len(), 2);
}

#[test]
fn example5_and_example8_through_the_facade() {
    let mut db = load_paper_db();
    let (_, v) = db
        .query(
            "SELECT x.DNO, x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS \
             WHERE EXISTS y IN x.EQUIP : y.TYPE = 'PC/AT'",
        )
        .unwrap();
    assert_eq!(v.len(), 2);
    let (_, v) = db
        .query("SELECT x.AUTHORS, x.TITLE FROM x IN REPORTS WHERE x.AUTHORS[1] = 'Jones A.'")
        .unwrap();
    assert_eq!(v.len(), 1);
}

#[test]
fn partial_insert_update_delete() {
    let mut db = load_paper_db();
    // Add a project to department 314 (§5: insert parts of complex
    // tuples).
    let r = db
        .execute(
            "INSERT INTO x.PROJECTS FROM x IN DEPARTMENTS WHERE x.DNO = 314 \
             VALUES (99, 'AIM', {(11111, 'Leader')})",
        )
        .unwrap();
    assert_eq!(r.count(), Some(1));
    let (_, v) = db
        .query("SELECT y.PNO FROM x IN DEPARTMENTS, y IN x.PROJECTS WHERE x.DNO = 314")
        .unwrap();
    assert_eq!(v.len(), 3);

    // Add a member to project 99.
    db.execute(
        "INSERT INTO y.MEMBERS FROM x IN DEPARTMENTS, y IN x.PROJECTS \
         WHERE x.DNO = 314 AND y.PNO = 99 VALUES (22222, 'Staff')",
    )
    .unwrap();

    // Rename the project and raise the budget.
    let r = db
        .execute(
            "UPDATE x IN DEPARTMENTS, y IN x.PROJECTS \
             SET y.PNAME = 'AIM-II', x.BUDGET = 999000 \
             WHERE x.DNO = 314 AND y.PNO = 99",
        )
        .unwrap();
    assert_eq!(r.count(), Some(2));
    let (_, v) = db
        .query(
            "SELECT y.PNAME, x.BUDGET FROM x IN DEPARTMENTS, y IN x.PROJECTS \
             WHERE y.PNO = 99",
        )
        .unwrap();
    assert_eq!(
        v.tuples[0].fields[0].as_atom().unwrap().as_str(),
        Some("AIM-II")
    );
    assert_eq!(
        v.tuples[0].fields[1].as_atom().unwrap().as_int(),
        Some(999_000)
    );

    // Delete the project element again.
    let r = db
        .execute("DELETE y FROM x IN DEPARTMENTS, y IN x.PROJECTS WHERE y.PNO = 99")
        .unwrap();
    assert_eq!(r.count(), Some(1));
    let (_, v) = db
        .query("SELECT y.PNO FROM x IN DEPARTMENTS, y IN x.PROJECTS WHERE x.DNO = 314")
        .unwrap();
    assert_eq!(v.len(), 2, "back to projects 17 and 23");
}

#[test]
fn delete_whole_object() {
    let mut db = load_paper_db();
    let r = db
        .execute("DELETE x FROM x IN DEPARTMENTS WHERE x.DNO = 417")
        .unwrap();
    assert_eq!(r.count(), Some(1));
    let (_, v) = db.query("SELECT x.DNO FROM x IN DEPARTMENTS").unwrap();
    assert_eq!(v.len(), 2);
}

#[test]
fn delete_multiple_elements_of_one_subtable() {
    let mut db = load_paper_db();
    // Delete ALL Staff members of dept 218's project (two of them) —
    // exercises descending-ordinal deletion.
    let r = db
        .execute(
            "DELETE z FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS \
             WHERE x.DNO = 218 AND z.FUNCTION = 'Staff'",
        )
        .unwrap();
    assert_eq!(r.count(), Some(2));
    let (_, v) = db
        .query(
            "SELECT z.EMPNO FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS \
             WHERE x.DNO = 218",
        )
        .unwrap();
    assert_eq!(v.len(), 4, "6 members - 2 staff");
}

#[test]
fn index_maintenance_through_dml() {
    let mut db = load_paper_db();
    db.execute("CREATE INDEX fidx ON DEPARTMENTS (PROJECTS.MEMBERS.FUNCTION) USING HIERARCHICAL")
        .unwrap();
    let check = |db: &mut Database, expect: usize| {
        let idx = db.index_mut("DEPARTMENTS", "fidx").unwrap();
        assert_eq!(
            idx.lookup(&Atom::Str("Consultant".into())).unwrap().len(),
            expect
        );
    };
    check(&mut db, 3);
    // A new consultant joins project 23.
    db.execute(
        "INSERT INTO y.MEMBERS FROM x IN DEPARTMENTS, y IN x.PROJECTS \
         WHERE y.PNO = 23 VALUES (55555, 'Consultant')",
    )
    .unwrap();
    check(&mut db, 4);
    // One is promoted away.
    db.execute(
        "UPDATE x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS \
         SET z.FUNCTION = 'Leader' WHERE z.EMPNO = 44512",
    )
    .unwrap();
    check(&mut db, 3);
    // A whole department goes.
    db.execute("DELETE x FROM x IN DEPARTMENTS WHERE x.DNO = 218")
        .unwrap();
    check(&mut db, 2); // 56019 (314) + 55555 (314/23)
}

#[test]
fn text_index_answers_sec5_query() {
    let mut db = load_paper_db();
    db.execute("CREATE TEXT INDEX tix ON REPORTS (TITLE)")
        .unwrap();
    let (hits, verified) = db
        .text_search("REPORTS", &Path::parse("TITLE"), "*comput*")
        .unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0][0].as_str(), Some("0291"));
    assert_eq!(verified, 1, "fragments pruned the other two reports");
    // The evaluator's CONTAINS agrees (index-free path).
    let (_, v) = db
        .query("SELECT x.REPNO FROM x IN REPORTS WHERE x.TITLE CONTAINS '*comput*'")
        .unwrap();
    assert_eq!(v.len(), 1);
    // Text index follows DML.
    db.execute("INSERT INTO REPORTS VALUES ('0300', <('Turing A.')>, 'Computable Numbers', {})")
        .unwrap();
    let (hits, _) = db
        .text_search("REPORTS", &Path::parse("TITLE"), "*comput*")
        .unwrap();
    assert_eq!(hits.len(), 2);
}

#[test]
fn versioned_table_asof_query() {
    let mut db = Database::in_memory();
    db.execute(
        "CREATE TABLE DEPARTMENTS ( DNO INTEGER, MGRNO INTEGER, \
           PROJECTS { PNO INTEGER, PNAME STRING, \
                      MEMBERS { EMPNO INTEGER, FUNCTION STRING } }, \
           BUDGET INTEGER, EQUIP { QU INTEGER, TYPE STRING } ) WITH VERSIONS",
    )
    .unwrap();
    // 1984-01-01: department 314 exists with projects 17 and 11.
    db.set_today(Date::parse_iso("1984-01-01").unwrap());
    db.execute(
        "INSERT INTO DEPARTMENTS VALUES (314, 56194, \
           {(17, 'CGA', {(39582, 'Leader'), (56019, 'Consultant')}), \
            (11, 'DOC', {(69011, 'Leader')})}, 280000, {(2, '3278')})",
    )
    .unwrap();
    // 1984-06-01: project 11 cancelled, 23 started.
    db.set_today(Date::parse_iso("1984-06-01").unwrap());
    db.execute("DELETE y FROM x IN DEPARTMENTS, y IN x.PROJECTS WHERE y.PNO = 11")
        .unwrap();
    db.execute(
        "INSERT INTO x.PROJECTS FROM x IN DEPARTMENTS WHERE x.DNO = 314 \
         VALUES (23, 'HEAP', {(58912, 'Staff')})",
    )
    .unwrap();
    // The paper's ASOF query.
    let (_, v) = db
        .query(
            "SELECT y.PNO, y.PNAME FROM x IN DEPARTMENTS ASOF '1984-01-15', y IN x.PROJECTS \
             WHERE x.DNO = 314",
        )
        .unwrap();
    let pnos: Vec<i64> = v
        .tuples
        .iter()
        .map(|t| t.fields[0].as_atom().unwrap().as_int().unwrap())
        .collect();
    assert_eq!(pnos, vec![17, 11], "projects as of January 15th, 1984");
    // Today's state differs.
    let (_, now) = db
        .query("SELECT y.PNO FROM x IN DEPARTMENTS, y IN x.PROJECTS WHERE x.DNO = 314")
        .unwrap();
    assert_eq!(now.len(), 2);
    // Walk-through-time is available below the language (as in the
    // paper).
    // (Same-date mutations coalesce into one version per date.)
    let versions = db.versions("DEPARTMENTS").unwrap();
    assert_eq!(versions.version_count(), 2);
    let h = db.handles("DEPARTMENTS").unwrap()[0];
    let hist = db
        .versions("DEPARTMENTS")
        .unwrap()
        .object_history(h, Date::MIN, Date::MAX);
    assert_eq!(hist.len(), 2, "two validity intervals");
    // Querying a non-versioned table ASOF errors.
    let mut db2 = load_paper_db();
    assert!(db2
        .query("SELECT x.DNO FROM x IN DEPARTMENTS ASOF '1984-01-15'")
        .is_err());
}

#[test]
fn file_backed_database() {
    let dir = std::env::temp_dir().join(format!("aim2_db_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut db = Database::with_config(DbConfig {
        data_dir: Some(dir.clone()),
        page_size: 512,
        buffer_frames: 16,
        default_layout: LayoutKind::Ss3,
        ..DbConfig::default()
    });
    db.execute_script(DDL).unwrap();
    for t in &fixtures::departments_value().tuples {
        db.insert_tuple("DEPARTMENTS", t.clone()).unwrap();
    }
    let (_, v) = db.query("SELECT * FROM DEPARTMENTS").unwrap();
    assert!(v.semantically_eq(&fixtures::departments_value()));
    assert!(
        std::fs::read_dir(&dir).unwrap().count() >= 3,
        "segment files on disk"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn partial_retrieval_saves_page_accesses() {
    let mut db = load_paper_db();
    let stats = db.stats().clone();
    stats.reset();
    // Query touching only BUDGET — PROJECTS/MEMBERS/EQUIP must be
    // pruned by the referenced-path analysis.
    let _ = db
        .query("SELECT x.BUDGET FROM x IN DEPARTMENTS WHERE x.DNO = 314")
        .unwrap();
    let narrow = stats.snapshot().subtuple_reads;
    stats.reset();
    let _ = db.query("SELECT * FROM DEPARTMENTS").unwrap();
    let full = stats.snapshot().subtuple_reads;
    assert!(
        narrow < full,
        "partial retrieval reads fewer subtuples ({narrow} < {full})"
    );
}

#[test]
fn layouts_selectable_per_table() {
    for layout in ["SS1", "SS2", "SS3"] {
        let mut db = Database::in_memory();
        db.execute(&format!(
            "CREATE TABLE T ( A INTEGER, S {{ B INTEGER, U {{ C INTEGER }} }} ) USING {layout}"
        ))
        .unwrap();
        db.execute("INSERT INTO T VALUES (1, {(2, {(3)})})")
            .unwrap();
        let (_, v) = db.query("SELECT * FROM T").unwrap();
        assert_eq!(v.len(), 1, "layout {layout}");
    }
    let mut db = Database::in_memory();
    assert!(db
        .execute("CREATE TABLE T ( A INTEGER, S { B INTEGER } ) USING SS9")
        .is_err());
}

#[test]
fn errors_surface_cleanly() {
    let mut db = Database::in_memory();
    assert!(db.execute("SELECT x.A FROM x IN NOPE").is_err());
    assert!(db.execute("CREATE TABLE T ( A BLOB )").is_err());
    db.execute("CREATE TABLE T ( A INTEGER )").unwrap();
    assert!(
        db.execute("CREATE TABLE T ( B INTEGER )").is_err(),
        "duplicate"
    );
    assert!(db.execute("INSERT INTO T VALUES ('wrong')").is_err());
    assert!(db.execute("DROP TABLE NOPE").is_err());
    db.execute("DROP TABLE T").unwrap();
    assert!(db.execute("SELECT x.A FROM x IN T").is_err());
    // Attribute indexes require NF² tables (flat tables have no MDs).
    db.execute("CREATE TABLE F ( A INTEGER )").unwrap();
    assert!(db.execute("CREATE INDEX i ON F (A)").is_err());
}

#[test]
fn execute_returns_proper_variants() {
    let mut db = Database::in_memory();
    let r = db
        .execute("CREATE TABLE T ( A INTEGER, S { B INTEGER } )")
        .unwrap();
    assert!(matches!(r, ExecResult::Ok(_)));
    let r = db.execute("INSERT INTO T VALUES (1, {})").unwrap();
    assert_eq!(r.count(), Some(1));
    let r = db.execute("SELECT * FROM T").unwrap();
    assert!(matches!(r, ExecResult::Table(..)));
}

#[test]
fn flat_table_dml() {
    let mut db = Database::in_memory();
    db.execute("CREATE TABLE E ( EMPNO INTEGER, NAME STRING )")
        .unwrap();
    db.execute("INSERT INTO E VALUES (1, 'Ada')").unwrap();
    db.execute("INSERT INTO E VALUES (2, 'Bob')").unwrap();
    db.execute("UPDATE x IN E SET x.NAME = 'Alan' WHERE x.EMPNO = 2")
        .unwrap();
    let (_, v) = db
        .query("SELECT x.NAME FROM x IN E WHERE x.EMPNO = 2")
        .unwrap();
    assert_eq!(
        v.tuples[0].fields[0].as_atom().unwrap().as_str(),
        Some("Alan")
    );
    db.execute("DELETE x FROM x IN E WHERE x.EMPNO = 1")
        .unwrap();
    let (_, v) = db.query("SELECT x.EMPNO FROM x IN E").unwrap();
    assert_eq!(v.len(), 1);
}

#[test]
fn multiple_set_items_on_one_variable_compose() {
    // Regression: `SET x.A = 1, x.B = 2` must apply BOTH; naively
    // rebuilding the atom vector per item from the pre-update snapshot
    // silently undoes the first write.
    let mut db = load_paper_db();
    db.execute("UPDATE x IN DEPARTMENTS SET x.MGRNO = 11111, x.BUDGET = 222222 WHERE x.DNO = 314")
        .unwrap();
    let (_, v) = db
        .query("SELECT x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS WHERE x.DNO = 314")
        .unwrap();
    assert_eq!(
        v.tuples[0].fields[0].as_atom().unwrap().as_int(),
        Some(11111)
    );
    assert_eq!(
        v.tuples[0].fields[1].as_atom().unwrap().as_int(),
        Some(222_222)
    );
    // Same at element level (and mixed with a flat-table update shape).
    db.execute(
        "UPDATE x IN DEPARTMENTS, y IN x.PROJECTS SET y.PNO = 18, y.PNAME = 'CGB'
         WHERE x.DNO = 314 AND y.PNO = 17",
    )
    .unwrap();
    let (_, v) = db
        .query("SELECT y.PNO, y.PNAME FROM x IN DEPARTMENTS, y IN x.PROJECTS WHERE y.PNO = 18")
        .unwrap();
    assert_eq!(v.len(), 1);
    assert_eq!(
        v.tuples[0].fields[1].as_atom().unwrap().as_str(),
        Some("CGB")
    );
    // Flat tables too.
    db.execute(
        "UPDATE e IN EMPLOYEES-1NF SET e.FNAME = 'Max', e.SEX = 'male' WHERE e.EMPNO = 56019",
    )
    .unwrap();
    let (_, v) = db
        .query("SELECT e.FNAME, e.SEX FROM e IN EMPLOYEES-1NF WHERE e.EMPNO = 56019")
        .unwrap();
    assert_eq!(
        v.tuples[0].fields[0].as_atom().unwrap().as_str(),
        Some("Max")
    );
    assert_eq!(
        v.tuples[0].fields[1].as_atom().unwrap().as_str(),
        Some("male")
    );
}

#[test]
fn dml_rejects_duplicate_binding_vars_and_asof_targets() {
    let mut db = load_paper_db();
    assert!(db
        .execute("UPDATE x IN DEPARTMENTS, x IN x.PROJECTS SET x.PNAME = 'X'")
        .is_err());
    assert!(db
        .execute("DELETE x FROM x IN DEPARTMENTS ASOF '1984-01-15' WHERE x.DNO = 314")
        .is_err());
}
