//! Facade-level access-path selection: queries automatically use an
//! applicable attribute index to restrict the candidate objects, with
//! identical results and measurably less work.

use aim2::Database;
use aim2_bench::{gen_departments, WorkloadSpec};

fn db_with_workload() -> Database {
    let mut db = Database::in_memory();
    db.execute(
        "CREATE TABLE DEPARTMENTS ( DNO INTEGER, MGRNO INTEGER,
           PROJECTS { PNO INTEGER, PNAME STRING,
                      MEMBERS { EMPNO INTEGER, FUNCTION STRING } },
           BUDGET INTEGER, EQUIP { QU INTEGER, TYPE STRING } )",
    )
    .unwrap();
    let spec = WorkloadSpec {
        departments: 60,
        projects_per_dept: 4,
        members_per_project: 6,
        equip_per_dept: 3,
        seed: 11,
    };
    for t in gen_departments(&spec).tuples {
        db.insert_tuple("DEPARTMENTS", t).unwrap();
    }
    db
}

const QUERY: &str = "SELECT x.DNO FROM x IN DEPARTMENTS
     WHERE EXISTS y IN x.PROJECTS : y.PNO = 17 AND
           EXISTS z IN y.MEMBERS : z.FUNCTION = 'Consultant'";

#[test]
fn index_assisted_query_agrees_with_full_scan() {
    let mut db = db_with_workload();
    let (_, scan_result) = db.query(QUERY).unwrap();
    assert!(db.last_plan().contains("full scan"), "{}", db.last_plan());

    db.execute("CREATE INDEX f ON DEPARTMENTS (PROJECTS.MEMBERS.FUNCTION)")
        .unwrap();
    let (_, indexed_result) = db.query(QUERY).unwrap();
    assert!(
        db.last_plan().contains("index f"),
        "plan: {}",
        db.last_plan()
    );
    assert!(indexed_result.semantically_eq(&scan_result));
}

#[test]
fn index_reduces_subtuple_reads() {
    let mut db = db_with_workload();
    db.execute("CREATE INDEX p ON DEPARTMENTS (PROJECTS.PNO)")
        .unwrap();
    let stats = db.stats().clone();

    // Indexed: PNO = 17 exists in exactly one department.
    stats.reset();
    let (_, v) = db
        .query("SELECT x.DNO FROM x IN DEPARTMENTS WHERE EXISTS y IN x.PROJECTS : y.PNO = 17")
        .unwrap();
    let indexed_reads = stats.snapshot().subtuple_reads;
    assert_eq!(v.len(), 1);
    assert!(
        db.last_plan().contains("1 candidate object(s) of 60"),
        "{}",
        db.last_plan()
    );

    // Unindexed equivalent (no matching index on PNAME).
    stats.reset();
    let (_, v2) = db
        .query(
            "SELECT x.DNO FROM x IN DEPARTMENTS WHERE EXISTS y IN x.PROJECTS : y.PNAME = 'P00017'",
        )
        .unwrap();
    let scan_reads = stats.snapshot().subtuple_reads;
    assert_eq!(v2.len(), 1);
    assert!(
        indexed_reads * 5 < scan_reads,
        "indexed {indexed_reads} vs scan {scan_reads}"
    );
}

#[test]
fn restriction_is_only_a_prefilter_predicate_still_applies() {
    // The index matches objects *containing* the key anywhere; the
    // evaluator must still reject combinations where the conjunct binds
    // differently. Duplicate PNOs across departments exercise this.
    let mut db = Database::in_memory();
    db.execute("CREATE TABLE T ( K INTEGER, S { P INTEGER, M { F STRING } } )")
        .unwrap();
    db.execute("INSERT INTO T VALUES (1, {(7, {('yes')})})")
        .unwrap();
    db.execute("INSERT INTO T VALUES (2, {(7, {('no')})})")
        .unwrap();
    db.execute("INSERT INTO T VALUES (3, {(8, {('yes')})})")
        .unwrap();
    db.execute("CREATE INDEX sp ON T (S.P)").unwrap();
    let (_, v) = db
        .query(
            "SELECT x.K FROM x IN T
             WHERE EXISTS y IN x.S : y.P = 7 AND EXISTS z IN y.M : z.F = 'yes'",
        )
        .unwrap();
    assert!(db.last_plan().contains("index sp"), "{}", db.last_plan());
    let ks: Vec<i64> = v
        .tuples
        .iter()
        .map(|t| t.fields[0].as_atom().unwrap().as_int().unwrap())
        .collect();
    assert_eq!(
        ks,
        vec![1],
        "K=2 is in the index superset but fails the predicate"
    );
}

#[test]
fn multi_table_queries_fall_back_to_scan() {
    let mut db = db_with_workload();
    db.execute("CREATE TABLE OTHER ( DNO INTEGER, NOTE { X STRING } )")
        .unwrap();
    db.execute("INSERT INTO OTHER VALUES (100, {})").unwrap();
    db.execute("CREATE INDEX f ON DEPARTMENTS (PROJECTS.MEMBERS.FUNCTION)")
        .unwrap();
    let _ = db
        .query(
            "SELECT x.DNO, OTHERS = o.DNO FROM x IN DEPARTMENTS, o IN OTHER
             WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS : z.FUNCTION = 'Consultant'",
        )
        .unwrap();
    assert!(db.last_plan().contains("full scan"), "{}", db.last_plan());
}

#[test]
fn explain_describes_plan_and_pruning() {
    let mut db = db_with_workload();
    let r = db.execute(&format!("EXPLAIN {QUERY}")).unwrap();
    let aim2::database::ExecResult::Ok(plan) = r else {
        panic!("EXPLAIN returns a description")
    };
    assert!(plan.contains("full scan"), "{plan}");
    assert!(plan.contains("partial retrieval skips [EQUIP]"), "{plan}");
    db.execute("CREATE INDEX f ON DEPARTMENTS (PROJECTS.MEMBERS.FUNCTION)")
        .unwrap();
    let aim2::database::ExecResult::Ok(plan) = db.execute(&format!("EXPLAIN {QUERY}")).unwrap()
    else {
        panic!()
    };
    assert!(plan.contains("index f"), "{plan}");
    assert!(plan.contains("candidate object(s)"), "{plan}");
}

#[test]
fn contains_uses_the_text_index_when_present() {
    // §5: the CONTAINS query "will be supported by the text index in
    // case that one has been created on TITLE".
    let mut db = Database::in_memory();
    db.execute(
        "CREATE TABLE REPORTS ( REPNO STRING, AUTHORS < NAME STRING >, TITLE TEXT,
                                DESCRIPTORS { WORD STRING, WEIGHT DOUBLE } )",
    )
    .unwrap();
    for t in aim2_model::fixtures::reports_value().tuples {
        db.insert_tuple("REPORTS", t).unwrap();
    }
    let q = "SELECT x.REPNO, x.AUTHORS, x.TITLE FROM x IN REPORTS
             WHERE x.TITLE CONTAINS '*comput*' AND EXISTS y IN x.AUTHORS : y.NAME = 'Jones A.'";
    let (_, without) = db.query(q).unwrap();
    assert!(db.last_plan().contains("full scan"), "{}", db.last_plan());

    db.execute("CREATE TEXT INDEX tix ON REPORTS (TITLE)")
        .unwrap();
    let (_, with) = db.query(q).unwrap();
    assert!(
        db.last_plan().contains("text index tix"),
        "{}",
        db.last_plan()
    );
    assert!(
        db.last_plan().contains("1 candidate object(s) of 3"),
        "{}",
        db.last_plan()
    );
    assert!(with.semantically_eq(&without));
    assert_eq!(with.len(), 1);
}
