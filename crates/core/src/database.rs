//! The [`Database`] facade.

use crate::catalog::{Catalog, IndexEntry, TableEntry, TableStorage, TextIndexEntry};
use crate::error::DbError;
use crate::slowlog::{SlowLog, SlowQueryRecord};
use crate::Result;
use aim2_exec::provider::{row_batch, ColumnBatch, ObjectCursor, ScanRequest, TableProvider};
use aim2_exec::{AnalyzedPlan, Evaluator};
use aim2_index::address::Scheme;
use aim2_index::NfIndex;
use aim2_lang::ast::{self, AttrDecl, Binding, Source, Stmt};
use aim2_lang::parser::parse_stmt;
use aim2_model::{
    Atom, AtomType, AttrKind, Date, Path, TableKind, TableSchema, TableValue, Tuple, Value,
};
use aim2_obs::MetricsSnapshot;
use aim2_storage::buffer::BufferPool;
use aim2_storage::colstore::{
    cold_key, split_cold_key, zone_may_contain, zone_may_intersect, DecodedBlock, BLOCK_ROWS,
};
use aim2_storage::disk::{Disk, FileDisk, MemDisk};
use aim2_storage::faultdisk::{FaultDisk, FaultInjector};
use aim2_storage::flatstore::FlatStore;
use aim2_storage::minidir::LayoutKind;
use aim2_storage::object::{ElemLoc, ObjectHandle, ObjectStore};
use aim2_storage::segment::Segment;
use aim2_storage::stats::Stats;
use aim2_storage::tid::Tid;
use aim2_storage::wal::{SharedWal, Wal, WAL_FILE};
use aim2_text::TextIndex;
use aim2_time::VersionedTable;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Database configuration.
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// Page size in bytes (AIM-II era: small pages; default 4096).
    pub page_size: usize,
    /// Buffer pool frames per segment.
    pub buffer_frames: usize,
    /// Storage structure for new NF² tables without a `USING` clause —
    /// SS3, as AIM-II chose.
    pub default_layout: LayoutKind,
    /// When set, segments are files under this directory; else memory.
    pub data_dir: Option<PathBuf>,
    /// When set, every write (data pages, WAL appends, the catalog temp
    /// file) is routed through this deterministic fault injector — the
    /// crash-consistency harness's handle on the database.
    pub fault: Option<FaultInjector>,
    /// When set, queries running at least this long are recorded in the
    /// slow-query log ([`Database::slow_log`]) with their plan, stats
    /// delta, and span tree.
    pub slow_query_threshold: Option<Duration>,
    /// When true, every query mints a sampled trace context and records
    /// its completed span tree in the flight recorder
    /// (`stats().recorder()`); the shell's `.trace` renders it.
    pub trace_queries: bool,
    /// Capacity of the flight-recorder ring holding completed traces.
    pub flight_recorder_capacity: usize,
}

impl Default for DbConfig {
    fn default() -> DbConfig {
        DbConfig {
            page_size: 4096,
            buffer_frames: 256,
            default_layout: LayoutKind::Ss3,
            data_dir: None,
            fault: None,
            slow_query_threshold: None,
            trace_queries: false,
            flight_recorder_capacity: aim2_obs::DEFAULT_FLIGHT_CAPACITY,
        }
    }
}

/// Result of [`Database::execute`].
#[derive(Debug, Clone, PartialEq)]
pub enum ExecResult {
    /// A query result.
    Table(TableSchema, TableValue),
    /// Rows/objects affected by DML.
    Count(usize),
    /// DDL acknowledgement.
    Ok(String),
}

impl ExecResult {
    /// The result table, if this was a query.
    pub fn into_table(self) -> Result<(TableSchema, TableValue)> {
        match self {
            ExecResult::Table(s, v) => Ok((s, v)),
            other => Err(DbError::Catalog(format!("not a query result: {other:?}"))),
        }
    }

    /// The affected-count, if this was DML.
    pub fn count(&self) -> Option<usize> {
        match self {
            ExecResult::Count(n) => Some(*n),
            _ => None,
        }
    }
}

/// The integrated DBMS.
pub struct Database {
    config: DbConfig,
    catalog: Catalog,
    stats: Stats,
    /// Logical clock for version recording (the prototype's transaction
    /// timestamps; tests and examples advance it explicitly).
    today: Date,
    seg_counter: u32,
    /// Human-readable description of the last query's access path.
    last_plan: String,
    /// Write-ahead log shared by every buffer pool (file-backed only).
    wal: Option<SharedWal>,
    /// Checkpoint epoch currently in progress. The on-disk catalog
    /// always records the previously committed epoch (`epoch - 1`).
    epoch: u32,
    /// Objects [`Database::integrity_check`] found corrupt, keyed by
    /// `(table, root TID)`. Reads of a quarantined object return
    /// [`DbError::ObjectQuarantined`]; scans skip it; everything else
    /// keeps serving. In-memory state — rebuilt by re-running the check.
    quarantine: BTreeSet<(String, Tid)>,
    /// Ring of queries that exceeded `slow_query_threshold`.
    slow_log: SlowLog,
    /// Statement text currently executing (slow-log attribution).
    current_sql: String,
}

/// One qualified DML target combination.
struct DmlMatch {
    handle: Option<ObjectHandle>,
    flat_tid: Option<Tid>,
    frames: Vec<(String, TableSchema, Tuple)>,
    locs: Vec<(String, ElemLoc)>,
}

impl Database {
    /// An in-memory database with default configuration.
    pub fn in_memory() -> Database {
        Database::with_config(DbConfig::default())
    }

    /// A database with explicit configuration.
    pub fn with_config(config: DbConfig) -> Database {
        let stats = Stats::with_flight_capacity(config.flight_recorder_capacity);
        Database {
            config,
            catalog: Catalog::new(),
            stats,
            today: Date::from_ymd(1986, 5, 28).expect("valid date"), // SIGMOD '86
            seg_counter: 0,
            last_plan: String::new(),
            wal: None,
            epoch: 1,
            quarantine: BTreeSet::new(),
            slow_log: SlowLog::default(),
            current_sql: String::new(),
        }
    }

    /// Shared access counters (buffer hits/misses, subtuple traffic, ...).
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The logical date used for version recording.
    pub fn today(&self) -> Date {
        self.today
    }

    /// Advance the logical clock (versioned tables timestamp mutations
    /// with this).
    pub fn set_today(&mut self, d: Date) {
        self.today = d;
    }

    /// Table names in creation order.
    pub fn table_names(&self) -> Vec<String> {
        self.catalog.table_names()
    }

    /// Lazily create the write-ahead log (file-backed databases only).
    /// Must happen before any segment exists so every pool can attach.
    pub(crate) fn ensure_wal(&mut self) -> Result<()> {
        if self.wal.is_some() {
            return Ok(());
        }
        let Some(dir) = &self.config.data_dir else {
            return Ok(());
        };
        std::fs::create_dir_all(dir).map_err(aim2_storage::StorageError::Io)?;
        let wal = Wal::create(
            dir.join(WAL_FILE),
            self.epoch,
            self.config.page_size,
            self.stats.clone(),
            self.config.fault.clone(),
        )?;
        self.wal = Some(Arc::new(Mutex::new(wal)));
        Ok(())
    }

    /// Wrap a raw disk in the configured fault injector, if any.
    fn maybe_faulted(&self, disk: Box<dyn Disk>) -> Box<dyn Disk> {
        match &self.config.fault {
            Some(inj) => Box::new(FaultDisk::new(disk, inj.clone())),
            None => disk,
        }
    }

    fn make_segment(&mut self, hint: &str) -> Result<(Segment, Option<String>)> {
        self.ensure_wal()?;
        self.seg_counter += 1;
        let mut file_name = None;
        let disk: Box<dyn Disk> = match &self.config.data_dir {
            Some(dir) => {
                std::fs::create_dir_all(dir).map_err(aim2_storage::StorageError::Io)?;
                let name = format!("{:04}_{}.seg", self.seg_counter, sanitize(hint));
                let file = dir.join(&name);
                file_name = Some(name);
                Box::new(FileDisk::open(file, self.config.page_size)?)
            }
            None => Box::new(MemDisk::new(self.config.page_size)),
        };
        let pool = BufferPool::new(
            self.maybe_faulted(disk),
            self.config.buffer_frames,
            self.stats.clone(),
        );
        if let (Some(wal), Some(name)) = (&self.wal, &file_name) {
            pool.attach_wal(wal.clone(), name.clone());
        }
        Ok((Segment::new(pool), file_name))
    }

    /// Open an existing segment file (catalog reload).
    fn open_segment(&self, name: &str) -> Result<Segment> {
        let dir = self
            .config
            .data_dir
            .as_ref()
            .ok_or_else(|| DbError::Catalog("reopening segments requires a data_dir".into()))?;
        let disk = FileDisk::open(dir.join(name), self.config.page_size)?;
        let pool = BufferPool::new(
            self.maybe_faulted(Box::new(disk)),
            self.config.buffer_frames,
            self.stats.clone(),
        );
        if let Some(wal) = &self.wal {
            pool.attach_wal(wal.clone(), name);
        }
        Ok(Segment::new(pool))
    }

    // =================================================================
    // Statement execution
    // =================================================================

    /// Parse and execute one statement.
    pub fn execute(&mut self, sql: &str) -> Result<ExecResult> {
        let stmt = parse_stmt(sql)?;
        self.current_sql = sql.trim().to_string();
        let out = self.execute_stmt(&stmt);
        self.current_sql.clear();
        out
    }

    /// Execute a pre-parsed statement.
    pub fn execute_stmt(&mut self, stmt: &Stmt) -> Result<ExecResult> {
        match stmt {
            Stmt::Query(q) => {
                let (schema, value) = self.run_query(q)?;
                Ok(ExecResult::Table(schema, value))
            }
            Stmt::Explain(q) => Ok(ExecResult::Ok(self.explain_query(q)?)),
            Stmt::CreateTable(ct) => self.create_table_stmt(ct),
            Stmt::CreateIndex(ci) => self.create_index_stmt(ci),
            Stmt::DropTable(name) => {
                self.catalog.remove(name)?;
                Ok(ExecResult::Ok(format!("dropped table {name}")))
            }
            Stmt::Insert(ins) => self.insert_stmt(ins),
            Stmt::Update(up) => self.update_stmt(up),
            Stmt::Delete(del) => self.delete_stmt(del),
        }
    }

    /// Run several `;`-separated statements; returns the last result.
    pub fn execute_script(&mut self, sql: &str) -> Result<ExecResult> {
        let mut last = ExecResult::Ok("empty script".into());
        for stmt in split_statements(sql) {
            last = self.execute(&stmt)?;
        }
        Ok(last)
    }

    /// Convenience: run a query and get its result table.
    pub fn query(&mut self, sql: &str) -> Result<(TableSchema, TableValue)> {
        self.execute(sql)?.into_table()
    }

    // =================================================================
    // DDL
    // =================================================================

    fn create_table_stmt(&mut self, ct: &ast::CreateTable) -> Result<ExecResult> {
        let (schema, layout, versioned) = self.schema_from_create(ct)?;
        self.create_table(schema, layout, versioned)?;
        Ok(ExecResult::Ok(format!("created table {}", ct.name)))
    }

    /// Derive `(schema, layout, versioned)` from a CREATE TABLE AST
    /// (shared by execution and catalog reload).
    pub(crate) fn schema_from_create(
        &self,
        ct: &ast::CreateTable,
    ) -> Result<(TableSchema, LayoutKind, bool)> {
        let kind = if ct.ordered {
            TableKind::List
        } else {
            TableKind::Relation
        };
        let schema = build_schema(&ct.name, kind, &ct.attrs)?;
        let layout = match ct.using.as_deref() {
            None => self.config.default_layout,
            Some("SS1") | Some("ss1") => LayoutKind::Ss1,
            Some("SS2") | Some("ss2") => LayoutKind::Ss2,
            Some("SS3") | Some("ss3") => LayoutKind::Ss3,
            Some(other) => {
                return Err(DbError::Catalog(format!(
                    "unknown storage structure `{other}` (expected SS1, SS2 or SS3)"
                )))
            }
        };
        Ok((schema, layout, ct.versioned))
    }

    /// Programmatic table creation.
    pub fn create_table(
        &mut self,
        schema: TableSchema,
        layout: LayoutKind,
        versioned: bool,
    ) -> Result<()> {
        let (seg, seg_file) = self.make_segment(&schema.name)?;
        // §4.1: flat (1NF) tables have no Mini Directories at all — they
        // get plain heap storage; NF² tables get complex-object storage.
        let storage = if schema.is_flat() {
            TableStorage::Flat(FlatStore::new(seg))
        } else {
            TableStorage::Nf2(ObjectStore::new(seg, layout))
        };
        let versions = versioned.then(|| VersionedTable::new(schema.kind));
        self.catalog.add(TableEntry {
            schema,
            storage,
            indexes: Vec::new(),
            text_indexes: Vec::new(),
            versions,
            layout,
            seg_file,
        })
    }

    fn create_index_stmt(&mut self, ci: &ast::CreateIndex) -> Result<ExecResult> {
        if ci.text {
            return self.create_text_index(&ci.name, &ci.table, &ci.path);
        }
        let scheme = match ci.using.as_deref().map(str::to_ascii_uppercase).as_deref() {
            None | Some("HIERARCHICAL") => Scheme::Hierarchical,
            Some("ROOTTID") => Scheme::RootTid,
            Some("DATATID") => Scheme::DataTid,
            Some("MDPATH") => Scheme::MdPath,
            Some(other) => {
                return Err(DbError::Catalog(format!(
                    "unknown address scheme `{other}`"
                )))
            }
        };
        let (seg, seg_file) = self.make_segment(&format!("idx_{}", ci.name))?;
        let entry = self.catalog.require_mut(&ci.table)?;
        let schema = entry.schema.clone();
        let os = entry.nf2_mut()?;
        let mut index = NfIndex::create(seg, &schema, &ci.path, scheme)?;
        index.build(os, &schema)?;
        entry.indexes.push(IndexEntry {
            name: ci.name.clone(),
            index,
            seg_file,
        });
        Ok(ExecResult::Ok(format!(
            "created index {} on {} ({})",
            ci.name, ci.table, ci.path
        )))
    }

    fn create_text_index(&mut self, name: &str, table: &str, attr: &Path) -> Result<ExecResult> {
        let entry = self.catalog.require_mut(table)?;
        let schema = entry.schema.clone();
        if attr.len() != 1 {
            return Err(DbError::Catalog(
                "text indexes cover first-level TEXT attributes".into(),
            ));
        }
        let def = schema
            .attr(&attr.segments()[0])
            .ok_or_else(|| DbError::Catalog(format!("no attribute {attr} on {table}")))?;
        match def.kind {
            AttrKind::Atomic(AtomType::Text) | AttrKind::Atomic(AtomType::Str) => {}
            _ => {
                return Err(DbError::Catalog(format!(
                    "attribute {attr} is not text-indexable"
                )))
            }
        }
        let mut index = TextIndex::new();
        // Index existing rows.
        match &mut entry.storage {
            TableStorage::Nf2(os) => {
                for h in os.handles()? {
                    let atoms = os.read_first_level_atoms(h)?;
                    if let Some(text) = text_of(&schema, attr, &atoms) {
                        index.add_document(doc_id(h.0), &text);
                    }
                }
            }
            TableStorage::Flat(fs) => {
                // Cold rows register under their packed cold key, hot
                // rows under their TID doc id.
                for ord in 0..fs.cold_blocks().len() {
                    for row in 0..fs.cold_blocks()[ord].rows {
                        let t = fs.materialize_cold_row(ord, row)?;
                        let atoms: Vec<Atom> = t
                            .fields
                            .iter()
                            .filter_map(|v| v.as_atom().cloned())
                            .collect();
                        if let Some(text) = text_of(&schema, attr, &atoms) {
                            index.add_document(cold_key(ord, row), &text);
                        }
                    }
                }
                for tid in fs.tids().to_vec() {
                    let t = fs.read(tid)?;
                    let atoms: Vec<Atom> = t
                        .fields
                        .iter()
                        .filter_map(|v| v.as_atom().cloned())
                        .collect();
                    if let Some(text) = text_of(&schema, attr, &atoms) {
                        index.add_document(doc_id(tid), &text);
                    }
                }
            }
        }
        entry.text_indexes.push(TextIndexEntry {
            name: name.to_string(),
            attr: attr.clone(),
            index,
        });
        Ok(ExecResult::Ok(format!(
            "created text index {name} on {table} ({attr})"
        )))
    }

    /// Masked text search via a table's text index (§5); returns the
    /// matching objects' first-level atoms plus the number of candidates
    /// verified (the bench metric).
    pub fn text_search(
        &mut self,
        table: &str,
        attr: &Path,
        mask: &str,
    ) -> Result<(Vec<Vec<Atom>>, usize)> {
        let entry = self.catalog.require_mut(table)?;
        let tix = entry
            .text_indexes
            .iter()
            .find(|t| &t.attr == attr)
            .ok_or_else(|| DbError::Catalog(format!("no text index on {table}({attr})")))?;
        let pattern = aim2_text::Pattern::parse(mask);
        let (hits, verified) = tix.index.search(&pattern);
        let mut out = Vec::with_capacity(hits.len());
        match &mut entry.storage {
            TableStorage::Nf2(os) => {
                for h in os.handles()? {
                    if hits.contains(&doc_id(h.0)) {
                        out.push(os.read_first_level_atoms(h)?);
                    }
                }
            }
            TableStorage::Flat(fs) => {
                for ord in 0..fs.cold_blocks().len() {
                    for row in 0..fs.cold_blocks()[ord].rows {
                        if hits.contains(&cold_key(ord, row)) {
                            let t = fs.materialize_cold_row(ord, row)?;
                            out.push(
                                t.fields
                                    .iter()
                                    .filter_map(|v| v.as_atom().cloned())
                                    .collect(),
                            );
                        }
                    }
                }
                for tid in fs.tids().to_vec() {
                    if hits.contains(&doc_id(tid)) {
                        let t = fs.read(tid)?;
                        out.push(
                            t.fields
                                .iter()
                                .filter_map(|v| v.as_atom().cloned())
                                .collect(),
                        );
                    }
                }
            }
        }
        Ok((out, verified))
    }

    // =================================================================
    // DML
    // =================================================================

    fn insert_stmt(&mut self, ins: &ast::Insert) -> Result<ExecResult> {
        match &ins.target {
            Source::Table(table) => {
                let schema = self
                    .catalog
                    .get(table)
                    .ok_or_else(|| DbError::Catalog(format!("no such table: {table}")))?
                    .schema
                    .clone();
                let tuple = aim2_exec::value::lit_tuple(&schema, &ins.values)?;
                self.insert_tuple(table, tuple)?;
                Ok(ExecResult::Count(1))
            }
            Source::PathOf { var, path } => {
                // Partial insert: add an element to a subtable of every
                // qualifying object (§5: insert parts of complex tuples).
                let matches = self.collect_matches(&ins.from, ins.where_.as_ref())?;
                let root_table = root_table_name(&ins.from)?;
                let mut count = 0;
                for m in matches {
                    let (_, _, loc, level_schema) = locate_var(&m, var)?;
                    let attr_idx = level_schema
                        .attr_index(&single_segment(path)?)
                        .ok_or_else(|| DbError::Catalog(format!("no attribute {path} at {var}")))?;
                    let sub_schema = level_schema.attrs[attr_idx]
                        .kind
                        .as_table()
                        .ok_or_else(|| DbError::Catalog(format!("{path} is not a subtable")))?
                        .clone();
                    let elem = aim2_exec::value::lit_tuple(&sub_schema, &ins.values)?;
                    let handle = m.handle.ok_or_else(|| {
                        DbError::Catalog("partial insert requires an NF² table".into())
                    })?;
                    self.mutate_object(&root_table, handle, |schema, os| {
                        os.insert_element(schema, handle, &loc, attr_idx, &elem)
                            .map_err(Into::into)
                    })?;
                    count += 1;
                }
                Ok(ExecResult::Count(count))
            }
        }
    }

    /// Programmatic whole-tuple insert.
    pub fn insert_tuple(&mut self, table: &str, tuple: Tuple) -> Result<ObjectHandleOrTid> {
        let entry = self.catalog.require_mut(table)?;
        let schema = entry.schema.clone();
        let value_for_versions = tuple.clone();
        let key = match &mut entry.storage {
            TableStorage::Nf2(os) => {
                let h = os.insert_object(&schema, &tuple)?;
                ObjectHandleOrTid::Handle(h)
            }
            TableStorage::Flat(fs) => ObjectHandleOrTid::Tid(fs.insert(&tuple)?),
        };
        // Maintain indexes and text indexes.
        if let ObjectHandleOrTid::Handle(h) = key {
            Self::index_all(entry, &schema, h)?;
        }
        Self::text_index_row(entry, &schema, key, Some(&value_for_versions));
        // Version recording (flat rows version under their TID-derived
        // handle — a TID is exactly as stable as an object handle here).
        if let Some(v) = &mut entry.versions {
            let h = match key {
                ObjectHandleOrTid::Handle(h) => h,
                ObjectHandleOrTid::Tid(tid) => ObjectHandle(tid),
            };
            v.record_state(h, self.today, value_for_versions);
        }
        Ok(key)
    }

    fn update_stmt(&mut self, up: &ast::Update) -> Result<ExecResult> {
        let root_table = root_table_name(&up.from)?;
        self.melt_if_cold(&root_table)?;
        let matches = self.collect_matches(&up.from, up.where_.as_ref())?;
        let mut count = 0;
        for m in &matches {
            // Group SET items per target variable so multiple assignments
            // to the same (sub)object compose instead of clobbering each
            // other's writes.
            let mut var_order: Vec<&String> = Vec::new();
            for (var, _, _) in &up.set {
                if !var_order.contains(&var) {
                    var_order.push(var);
                }
            }
            for var in var_order {
                let (_, frame_tuple, loc, level_schema) = locate_var(m, var)?;
                match (m.handle, m.flat_tid) {
                    (Some(handle), _) => {
                        let mut atoms: Vec<Atom> = frame_tuple
                            .atomic_fields(&level_schema)
                            .into_iter()
                            .cloned()
                            .collect();
                        for (v, path, lit) in &up.set {
                            if v != var {
                                continue;
                            }
                            let (pos, new_atom) = set_item(&level_schema, var, path, lit)?;
                            atoms[pos] = new_atom;
                            count += 1;
                        }
                        let loc = loc.clone();
                        self.mutate_object(&root_table, handle, |schema, os| {
                            os.update_atoms(schema, handle, &loc, &atoms)
                                .map_err(Into::into)
                        })?;
                    }
                    (None, Some(tid)) => {
                        let mut t = frame_tuple.clone();
                        for (v, path, lit) in &up.set {
                            if v != var {
                                continue;
                            }
                            let attr = single_segment(path)?;
                            let attr_idx = level_schema.attr_index(&attr).ok_or_else(|| {
                                DbError::Catalog(format!("no attribute {attr} at {var}"))
                            })?;
                            let (_, new_atom) = set_item(&level_schema, var, path, lit)?;
                            t.fields[attr_idx] = Value::Atom(new_atom);
                            count += 1;
                        }
                        let today = self.today;
                        let entry = self.catalog.require_mut(&root_table)?;
                        match &mut entry.storage {
                            TableStorage::Flat(fs) => fs.update(tid, &t)?,
                            TableStorage::Nf2(_) => unreachable!(),
                        }
                        if let Some(v) = &mut entry.versions {
                            v.record_state(ObjectHandle(tid), today, t);
                        }
                    }
                    _ => unreachable!("match has a key"),
                }
            }
        }
        Ok(ExecResult::Count(count))
    }

    fn delete_stmt(&mut self, del: &ast::Delete) -> Result<ExecResult> {
        let root_table = root_table_name(&del.from)?;
        self.melt_if_cold(&root_table)?;
        let matches = self.collect_matches(&del.from, del.where_.as_ref())?;
        let root_var = &del.from[0].var;
        let mut count = 0;
        if &del.var == root_var {
            // Whole-object deletes; deduplicate handles (a multi-binding
            // FROM can qualify the same object repeatedly).
            let mut seen = Vec::new();
            for m in &matches {
                match (m.handle, m.flat_tid) {
                    (Some(h), _) if !seen.contains(&h.0) => {
                        seen.push(h.0);
                        self.delete_object(&root_table, h)?;
                        count += 1;
                    }
                    (None, Some(tid)) if !seen.contains(&tid) => {
                        seen.push(tid);
                        let today = self.today;
                        let entry = self.catalog.require_mut(&root_table)?;
                        if let TableStorage::Flat(fs) = &mut entry.storage {
                            fs.delete(tid)?;
                        }
                        if let Some(v) = &mut entry.versions {
                            v.record_delete(ObjectHandle(tid), today);
                        }
                        count += 1;
                    }
                    _ => {}
                }
            }
        } else {
            // Element deletes: group by (handle, parent loc, attr) and
            // delete in descending element order so ordinals stay valid.
            let mut targets: Vec<(ObjectHandle, ElemLoc, usize, usize)> = Vec::new();
            for m in &matches {
                let (_, _, loc, _) = locate_var(m, &del.var)?;
                let handle = m.handle.ok_or_else(|| {
                    DbError::Catalog("element delete requires an NF² table".into())
                })?;
                let Some(&(attr_idx, elem_idx)) = loc.steps.last() else {
                    return Err(DbError::Catalog(format!(
                        "`{}` does not identify a subtable element",
                        del.var
                    )));
                };
                let parent = ElemLoc {
                    steps: loc.steps[..loc.steps.len() - 1].to_vec(),
                };
                if !targets.iter().any(|(h, p, a, e)| {
                    *h == handle && p == &parent && *a == attr_idx && *e == elem_idx
                }) {
                    targets.push((handle, parent, attr_idx, elem_idx));
                }
            }
            targets.sort_by_key(|t| std::cmp::Reverse(t.3)); // descending elem idx
            for (handle, parent, attr_idx, elem_idx) in targets {
                self.mutate_object(&root_table, handle, |schema, os| {
                    os.delete_element(schema, handle, &parent, attr_idx, elem_idx)
                        .map_err(Into::into)
                })?;
                count += 1;
            }
        }
        Ok(ExecResult::Count(count))
    }

    /// Delete one whole object, maintaining indexes, text docs, and
    /// versions.
    pub fn delete_object(&mut self, table: &str, handle: ObjectHandle) -> Result<()> {
        self.check_quarantine(table, handle.0)?;
        let entry = self.catalog.require_mut(table)?;
        let schema = entry.schema.clone();
        Self::unindex_all(entry, &schema, handle)?;
        for tix in &mut entry.text_indexes {
            tix.index.remove_document(doc_id(handle.0));
        }
        let os = entry.nf2_mut()?;
        os.delete_object(handle)?;
        if let Some(v) = &mut entry.versions {
            v.record_delete(handle, self.today);
        }
        Ok(())
    }

    /// Apply a mutation to one object with index/text/version
    /// maintenance wrapped around it.
    fn mutate_object(
        &mut self,
        table: &str,
        handle: ObjectHandle,
        f: impl FnOnce(&TableSchema, &mut ObjectStore) -> Result<()>,
    ) -> Result<()> {
        let today = self.today;
        let entry = self.catalog.require_mut(table)?;
        let schema = entry.schema.clone();
        Self::unindex_all(entry, &schema, handle)?;
        {
            let os = entry.nf2_mut()?;
            f(&schema, os)?;
        }
        Self::index_all(entry, &schema, handle)?;
        let new_state = entry.nf2_mut()?.read_object(&schema, handle)?;
        Self::text_index_row(
            entry,
            &schema,
            ObjectHandleOrTid::Handle(handle),
            Some(&new_state),
        );
        if let Some(v) = &mut entry.versions {
            v.record_state(handle, today, new_state);
        }
        Ok(())
    }

    fn unindex_all(entry: &mut TableEntry, schema: &TableSchema, h: ObjectHandle) -> Result<()> {
        let TableEntry {
            storage, indexes, ..
        } = entry;
        if let TableStorage::Nf2(os) = storage {
            for ie in indexes {
                ie.index.unindex_object(os, schema, h)?;
            }
        }
        Ok(())
    }

    fn index_all(entry: &mut TableEntry, schema: &TableSchema, h: ObjectHandle) -> Result<()> {
        let TableEntry {
            storage, indexes, ..
        } = entry;
        if let TableStorage::Nf2(os) = storage {
            for ie in indexes {
                ie.index.index_object(os, schema, h)?;
            }
        }
        Ok(())
    }

    fn text_index_row(
        entry: &mut TableEntry,
        schema: &TableSchema,
        key: ObjectHandleOrTid,
        state: Option<&Tuple>,
    ) {
        if entry.text_indexes.is_empty() {
            return;
        }
        let id = match key {
            ObjectHandleOrTid::Handle(h) => doc_id(h.0),
            ObjectHandleOrTid::Tid(t) => doc_id(t),
        };
        for tix in &mut entry.text_indexes {
            match state {
                Some(tuple) => {
                    let atoms: Vec<Atom> =
                        tuple.atomic_fields(schema).into_iter().cloned().collect();
                    if let Some(text) = text_of(schema, &tix.attr, &atoms) {
                        tix.index.add_document(id, &text);
                    }
                }
                None => tix.index.remove_document(id),
            }
        }
    }

    // =================================================================
    // DML binding enumeration
    // =================================================================

    /// Enumerate qualifying binding combinations for DML.
    fn collect_matches(
        &mut self,
        from: &[Binding],
        where_: Option<&ast::Expr>,
    ) -> Result<Vec<DmlMatch>> {
        if from.is_empty() {
            return Err(DbError::Catalog("DML requires a FROM binding".into()));
        }
        let root = &from[0];
        let Source::Table(table) = &root.source else {
            return Err(DbError::Catalog(
                "the first DML binding must range over a stored table".into(),
            ));
        };
        if from.iter().any(|b| b.asof.is_some()) {
            return Err(DbError::Catalog("DML cannot target ASOF states".into()));
        }
        for (i, b) in from.iter().enumerate() {
            if from[..i].iter().any(|p| p.var == b.var) {
                return Err(DbError::Catalog(format!(
                    "duplicate DML binding variable `{}`",
                    b.var
                )));
            }
        }
        let quarantined = self.quarantined_in(table);
        let entry = self.catalog.require_mut(table)?;
        let schema = entry.schema.clone();
        // Materialize root rows with their identities (quarantined
        // objects are not DML-addressable).
        let mut roots: Vec<(Option<ObjectHandle>, Option<Tid>, Tuple)> = Vec::new();
        match &mut entry.storage {
            TableStorage::Nf2(os) => {
                for h in os.handles()? {
                    if quarantined.contains(&h.0) {
                        continue;
                    }
                    roots.push((Some(h), None, os.read_object(&schema, h)?));
                }
            }
            TableStorage::Flat(fs) => {
                for tid in fs.tids().to_vec() {
                    roots.push((None, Some(tid), fs.read(tid)?));
                }
            }
        }
        // Expand the binding chain into combinations with element locs.
        let mut combos: Vec<DmlMatch> = Vec::new();
        for (handle, flat_tid, tuple) in roots {
            let seed = DmlMatch {
                handle,
                flat_tid,
                frames: vec![(root.var.clone(), schema.clone(), tuple)],
                locs: vec![(root.var.clone(), ElemLoc::object())],
            };
            expand_bindings(&from[1..], seed, &mut combos)?;
        }
        // Filter by predicate.
        match where_ {
            None => Ok(combos),
            Some(pred) => {
                let mut out = Vec::new();
                for m in combos {
                    let keep = Evaluator::new(self).eval_predicate(&m.frames, pred)?;
                    if keep {
                        out.push(m);
                    }
                }
                Ok(out)
            }
        }
    }
}

/// Identity of an inserted row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectHandleOrTid {
    Handle(ObjectHandle),
    Tid(Tid),
}

impl ObjectHandleOrTid {
    /// The NF² object handle, if applicable.
    pub fn handle(self) -> Option<ObjectHandle> {
        match self {
            ObjectHandleOrTid::Handle(h) => Some(h),
            ObjectHandleOrTid::Tid(_) => None,
        }
    }
}

fn expand_bindings(rest: &[Binding], m: DmlMatch, out: &mut Vec<DmlMatch>) -> Result<()> {
    let Some((b, tail)) = rest.split_first() else {
        out.push(m);
        return Ok(());
    };
    let Source::PathOf { var, path } = &b.source else {
        return Err(DbError::Catalog(
            "secondary DML bindings must range over attributes of earlier variables".into(),
        ));
    };
    let (_, level_schema, tuple, loc) = {
        let (v, t, l, s) = locate_var(&m, var)?;
        (v, s, t.clone(), l)
    };
    let attr = single_segment(path)?;
    let attr_idx = level_schema
        .attr_index(&attr)
        .ok_or_else(|| DbError::Catalog(format!("no attribute {attr} at {var}")))?;
    let sub_schema = level_schema.attrs[attr_idx]
        .kind
        .as_table()
        .ok_or_else(|| DbError::Catalog(format!("{attr} is not a subtable")))?
        .clone();
    let Some(Value::Table(tv)) = tuple.fields.get(attr_idx) else {
        return Err(DbError::Catalog("schema/value mismatch".into()));
    };
    for (i, elem) in tv.tuples.iter().enumerate() {
        let mut next = DmlMatch {
            handle: m.handle,
            flat_tid: m.flat_tid,
            frames: m.frames.clone(),
            locs: m.locs.clone(),
        };
        next.frames
            .push((b.var.clone(), sub_schema.clone(), elem.clone()));
        next.locs
            .push((b.var.clone(), loc.clone().then(attr_idx, i)));
        expand_bindings(tail, next, out)?;
    }
    Ok(())
}

/// Find a variable's frame, loc, and schema level within a match.
fn locate_var<'m>(m: &'m DmlMatch, var: &str) -> Result<(String, &'m Tuple, ElemLoc, TableSchema)> {
    let frame = m
        .frames
        .iter()
        .find(|(v, _, _)| v == var)
        .ok_or_else(|| DbError::Catalog(format!("unknown variable `{var}` in DML")))?;
    let loc = m
        .locs
        .iter()
        .find(|(v, _)| v == var)
        .map(|(_, l)| l.clone())
        .expect("frame implies loc");
    Ok((var.to_string(), &frame.2, loc, frame.1.clone()))
}

/// Resolve one SET item against a schema level: the position of the
/// target attribute among the level's atomic attributes, and the coerced
/// new atom.
fn set_item(
    level_schema: &TableSchema,
    var: &str,
    path: &Path,
    lit: &ast::Lit,
) -> Result<(usize, Atom)> {
    let attr = single_segment(path)?;
    let attr_idx = level_schema
        .attr_index(&attr)
        .ok_or_else(|| DbError::Catalog(format!("no attribute {attr} at {var}")))?;
    let AttrKind::Atomic(ty) = level_schema.attrs[attr_idx].kind else {
        return Err(DbError::Catalog(format!(
            "SET targets atomic attributes; {attr} is a subtable"
        )));
    };
    let new_atom = match (lit, ty) {
        (ast::Lit::Str(s), AtomType::Date) => Atom::Date(Date::parse_iso(s)?),
        (ast::Lit::Str(s), AtomType::Text) => Atom::Text(s.clone()),
        _ => aim2_exec::value::lit_atom(lit)?,
    }
    .coerce(ty)?;
    let pos = level_schema
        .atomic_indices()
        .iter()
        .position(|&i| i == attr_idx)
        .expect("atomic attr");
    Ok((pos, new_atom))
}

fn single_segment(path: &Path) -> Result<String> {
    match path.segments() {
        [one] => Ok(one.clone()),
        _ => Err(DbError::Catalog(format!(
            "`{path}`: bind intermediate subtables with their own variables"
        ))),
    }
}

fn root_table_name(from: &[Binding]) -> Result<String> {
    match from.first().map(|b| &b.source) {
        Some(Source::Table(t)) => Ok(t.clone()),
        _ => Err(DbError::Catalog(
            "the first DML binding must range over a stored table".into(),
        )),
    }
}

fn text_of(schema: &TableSchema, attr: &Path, first_level_atoms: &[Atom]) -> Option<String> {
    let idx = schema.attr_index(&attr.segments()[0])?;
    let pos = schema.atomic_indices().iter().position(|&i| i == idx)?;
    first_level_atoms
        .get(pos)
        .and_then(|a| a.as_str())
        .map(str::to_string)
}

fn doc_id(tid: Tid) -> u64 {
    ((tid.page.0 as u64) << 16) | tid.slot.0 as u64
}

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect()
}

fn split_statements(sql: &str) -> Vec<String> {
    // Split on `;` outside string literals.
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for ch in sql.chars() {
        match ch {
            '\'' => {
                in_str = !in_str;
                cur.push(ch);
            }
            ';' if !in_str => {
                if !cur.trim().is_empty() {
                    out.push(std::mem::take(&mut cur));
                } else {
                    cur.clear();
                }
            }
            _ => cur.push(ch),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

fn build_schema(name: &str, kind: TableKind, decls: &[AttrDecl]) -> Result<TableSchema> {
    let mut attrs = Vec::with_capacity(decls.len());
    for d in decls {
        match d {
            AttrDecl::Atomic { name, ty } => {
                let ty = AtomType::parse_keyword(ty)
                    .ok_or_else(|| DbError::Catalog(format!("unknown type `{ty}`")))?;
                attrs.push(aim2_model::AttrDef::atomic(name.clone(), ty));
            }
            AttrDecl::Table {
                name,
                ordered,
                attrs: inner,
            } => {
                let sub_kind = if *ordered {
                    TableKind::List
                } else {
                    TableKind::Relation
                };
                let sub = build_schema(name, sub_kind, inner)?;
                attrs.push(aim2_model::AttrDef::table(name.clone(), sub));
            }
        }
    }
    TableSchema::new(name, kind, attrs).map_err(DbError::Model)
}

// =====================================================================
// Access-path selection (the §4.2 machinery applied to whole queries)
// =====================================================================

impl Database {
    /// A description of the access path chosen for the last query
    /// ("full scan of DEPARTMENTS" / "index f: 3 candidates of 200").
    pub fn last_plan(&self) -> &str {
        &self.last_plan
    }

    /// Describe the physical plan a query would take, without running
    /// it: the operator tree, the access path the provider would choose
    /// for the root scan, and — per scan — which subtable paths partial
    /// retrieval will skip.
    pub fn explain_query(&mut self, q: &ast::Query) -> Result<String> {
        let plan = Evaluator::new(self).plan_query(q)?;
        Ok(plan.to_string().trim_end().to_string())
    }

    /// Evaluate a query through the cursor pipeline, recording its
    /// rendered physical plan in [`Database::last_plan`]. Index
    /// pre-restriction happens inside [`TableProvider::open_scan`]
    /// (§4.2's point: hierarchical index addresses identify candidate
    /// objects; the evaluator re-checks the full predicate on that
    /// superset).
    fn run_query(&mut self, q: &ast::Query) -> Result<(TableSchema, TableValue)> {
        self.last_plan = "full scan".to_string();
        let threshold = self.config.slow_query_threshold;
        let trace = self
            .config
            .trace_queries
            .then(aim2_obs::TraceContext::sampled);
        let capture = trace.is_some() || threshold.is_some();
        let before = capture.then(|| self.stats.snapshot());
        if capture {
            aim2_obs::begin_capture();
            aim2_obs::set_trace_context(trace);
        }
        let started = Instant::now();
        let out = {
            let _t = self.stats.time_query();
            let (out, plan) = {
                let mut ev = Evaluator::new(self);
                let out = ev.eval_query(q);
                (out, ev.take_plan())
            };
            if let Some(p) = plan {
                self.last_plan = p.to_string().trim_end().to_string();
            }
            out
        };
        if capture {
            let elapsed = started.elapsed();
            let spans = aim2_obs::end_capture();
            aim2_obs::set_trace_context(None);
            let delta = before
                .expect("snapshot taken while capturing")
                .delta(&self.stats.snapshot());
            let slow = threshold.is_some_and(|t| elapsed >= t);
            if let Some(ctx) = trace {
                let mut t = aim2_obs::Trace::from_spans(
                    ctx,
                    self.current_sql.as_str(),
                    spans.clone(),
                    delta.objects_decoded,
                    delta.atoms_decoded,
                );
                t.slow = slow;
                self.stats.recorder().record(t);
            }
            if slow {
                self.slow_log.push(SlowQueryRecord {
                    statement: self.current_sql.clone(),
                    plan: self.last_plan.clone(),
                    elapsed,
                    delta,
                    spans,
                    trace_id: trace.map_or(0, |c| c.trace_id),
                });
            }
        }
        Ok(out?)
    }

    /// Run a query with EXPLAIN ANALYZE instrumentation: the result
    /// table plus the physical plan annotated with per-operator row
    /// counts, decode deltas, and wall times. The timing-free rendering
    /// also becomes [`Database::last_plan`].
    pub fn analyze(&mut self, sql: &str) -> Result<(TableSchema, TableValue, AnalyzedPlan)> {
        let stmt = parse_stmt(sql)?;
        match &stmt {
            Stmt::Query(q) | Stmt::Explain(q) => self.analyze_query(q),
            _ => Err(DbError::Catalog("ANALYZE takes a query".into())),
        }
    }

    /// [`Database::analyze`] for a pre-parsed query.
    pub fn analyze_query(
        &mut self,
        q: &ast::Query,
    ) -> Result<(TableSchema, TableValue, AnalyzedPlan)> {
        let started = Instant::now();
        let (out, analysis) = {
            let _t = self.stats.time_query();
            let mut ev = Evaluator::new(self);
            ev.enable_analyze();
            let out = ev.eval_query(q);
            (out, ev.take_analysis())
        };
        let (schema, value) = out?;
        let mut ap = analysis.unwrap_or_default();
        ap.total_wall_ns = started.elapsed().as_nanos() as u64;
        self.last_plan = ap.render(false).trim_end().to_string();
        Ok((schema, value, ap))
    }

    /// Point-in-time engine metrics: every Stats counter, the derived
    /// gauges, and the latency histograms — serializable to JSON and
    /// Prometheus text (the shell's `.metrics`).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.stats.metrics_snapshot()
    }

    /// The slow-query log (populated when
    /// [`DbConfig::slow_query_threshold`] is set).
    pub fn slow_log(&self) -> &SlowLog {
        &self.slow_log
    }

    /// Mutable slow-query log (the shell's `.slow off` clears it).
    pub fn slow_log_mut(&mut self) -> &mut SlowLog {
        &mut self.slow_log
    }

    /// Change the slow-query threshold at run time (`None` disables
    /// recording; existing records are kept).
    pub fn set_slow_query_threshold(&mut self, t: Option<Duration>) {
        self.config.slow_query_threshold = t;
    }

    /// Toggle per-query tracing at run time (see
    /// [`DbConfig::trace_queries`]). Completed traces land in
    /// `stats().recorder()`; the shell's `.trace` renders them.
    pub fn set_tracing(&mut self, on: bool) {
        self.config.trace_queries = on;
    }

    /// Whether queries currently mint trace contexts.
    pub fn tracing(&self) -> bool {
        self.config.trace_queries
    }

    /// If a scan request carries conjuncts an index on its table can
    /// answer, return the candidate handles (a superset of the
    /// qualifying objects) and the access-path description.
    fn pick_index_restriction(
        &mut self,
        table: &str,
        conjuncts: &[(Path, Atom)],
        contains: &[(Path, String)],
    ) -> Result<Option<(Vec<ObjectHandle>, String)>> {
        if conjuncts.is_empty() && contains.is_empty() {
            return Ok(None);
        }
        let Some(entry) = self.catalog.get_mut(table) else {
            return Ok(None);
        };
        let total = match &mut entry.storage {
            TableStorage::Nf2(os) => os.handles()?.len(),
            TableStorage::Flat(_) => return Ok(None),
        };
        for (path, key) in conjuncts {
            for ie in &mut entry.indexes {
                if &ie.index.attr_path() == path {
                    let addrs = ie.index.lookup(key)?;
                    let mut handles: Vec<ObjectHandle> = addrs
                        .iter()
                        .filter_map(|a| a.root().map(ObjectHandle))
                        .collect();
                    if handles.len() != addrs.len() {
                        continue; // data-TID scheme: roots unknown
                    }
                    handles.sort();
                    handles.dedup();
                    let plan = format!(
                        "index {} on {table}({path}) = {key}: {} candidate object(s) of {total}",
                        ie.name,
                        handles.len()
                    );
                    return Ok(Some((handles, plan)));
                }
            }
        }
        // §5: "(the query) will be supported by the text index in case
        // that one has been created on TITLE" — a top-level CONTAINS
        // conjunct restricts candidates via the word-fragment index.
        for (attr, mask) in contains {
            let Some(tix) = entry.text_indexes.iter().find(|t| &t.attr == attr) else {
                continue;
            };
            let pattern = aim2_text::Pattern::parse(mask);
            let (hits, _) = tix.index.search(&pattern);
            let TableStorage::Nf2(os) = &mut entry.storage else {
                continue;
            };
            let mut handles: Vec<ObjectHandle> = Vec::new();
            for h in os.handles()? {
                if hits.contains(&doc_id(h.0)) {
                    handles.push(h);
                }
            }
            let plan = format!(
                "text index {} on {table}({attr}) CONTAINS '{mask}': {} candidate object(s) of {total}",
                tix.name,
                handles.len()
            );
            return Ok(Some((handles, plan)));
        }
        Ok(None)
    }
}

// =====================================================================
// The evaluator's table provider (cursor pipeline endpoint)
// =====================================================================

impl TableProvider for Database {
    fn table_schema(&mut self, name: &str) -> aim2_exec::Result<TableSchema> {
        self.catalog
            .get(name)
            .map(|t| t.schema.clone())
            .ok_or_else(|| aim2_exec::ExecError::NoSuchTable(name.to_string()))
    }

    fn open_scan(&mut self, req: &ScanRequest) -> aim2_exec::Result<ObjectCursor> {
        let name = req.table.as_str();
        let entry = self
            .catalog
            .get_mut(name)
            .ok_or_else(|| aim2_exec::ExecError::NoSuchTable(name.to_string()))?;
        if let Some(t) = req.asof {
            // Version snapshots are reconstructed tables — the cursor
            // buffers them (no page-level pull to push into).
            let versions = entry.versions.as_ref().ok_or_else(|| {
                aim2_exec::ExecError::Semantic(format!(
                    "table {name} was not declared WITH VERSIONS"
                ))
            })?;
            let rows = versions.table_asof(t).tuples;
            return Ok(ObjectCursor::buffered(
                req,
                "full scan (version snapshot)",
                rows,
            ));
        }
        let quarantined = self.quarantined_in(name);
        let schema = self
            .catalog
            .get(name)
            .expect("checked above")
            .schema
            .clone();
        match &mut self.catalog.get_mut(name).expect("checked above").storage {
            TableStorage::Flat(fs) => {
                if fs.cold_blocks().is_empty() {
                    let keys = fs
                        .tids()
                        .iter()
                        .filter(|t| !quarantined.contains(t))
                        .map(|t| t.to_u64())
                        .collect();
                    return Ok(ObjectCursor::keyed(req, "full scan", keys));
                }
                // Tiered table: cold rows come first (they are the
                // oldest), then the hot heap, so every execution mode
                // sees insertion order. Pushed single-attribute
                // conjuncts check each block's zone maps *before* any
                // decode: a block whose min/max cannot satisfy them is
                // skipped wholesale.
                let eqs: Vec<(usize, &Atom)> = req
                    .conjuncts
                    .iter()
                    .filter_map(|(p, a)| match p.segments() {
                        [one] => schema.attr_index(one).map(|i| (i, a)),
                        _ => None,
                    })
                    .collect();
                let ranges: Vec<(usize, _)> = req
                    .ranges
                    .iter()
                    .filter_map(|(p, r)| match p.segments() {
                        [one] => schema.attr_index(one).map(|i| (i, r)),
                        _ => None,
                    })
                    .collect();
                let total = fs.cold_blocks().len();
                let mut pruned = 0usize;
                let mut keys: Vec<u64> = Vec::new();
                for (ord, meta) in fs.cold_blocks().iter().enumerate() {
                    if quarantined.contains(&meta.tid) {
                        continue;
                    }
                    let keep = eqs
                        .iter()
                        .all(|(i, a)| meta.zones.get(*i).is_none_or(|z| zone_may_contain(z, a)))
                        && ranges.iter().all(|(i, r)| {
                            meta.zones
                                .get(*i)
                                .is_none_or(|z| zone_may_intersect(z, r.lo.as_ref(), r.hi.as_ref()))
                        });
                    if !keep {
                        pruned += 1;
                        self.stats.inc_colstore_block_pruned();
                        continue;
                    }
                    keys.extend((0..meta.rows).map(|row| cold_key(ord, row)));
                }
                let hot: Vec<u64> = fs
                    .tids()
                    .iter()
                    .filter(|t| !quarantined.contains(t))
                    .map(|t| t.to_u64())
                    .collect();
                let path = format!(
                    "columnar scan: {total} cold blocks ({pruned} pruned by zone maps) + {} hot rows",
                    hot.len()
                );
                keys.extend(hot);
                Ok(ObjectCursor::keyed(req, &path, keys))
            }
            TableStorage::Nf2(_) => {
                // Conjuncts pushed down with the request may be answered
                // by an index: restrict the cursor to candidate objects.
                if let Some((handles, plan)) = self
                    .pick_index_restriction(name, &req.conjuncts, &req.contains)
                    .map_err(|e| aim2_exec::ExecError::Semantic(e.to_string()))?
                {
                    let keys = handles
                        .iter()
                        .filter(|h| !quarantined.contains(&h.0))
                        .map(|h| h.0.to_u64())
                        .collect();
                    return Ok(ObjectCursor::keyed(req, &plan, keys));
                }
                let entry = self.catalog.get_mut(name).expect("checked above");
                let TableStorage::Nf2(os) = &mut entry.storage else {
                    unreachable!()
                };
                let keys = os
                    .handles()
                    .map_err(aim2_exec::ExecError::Storage)?
                    .into_iter()
                    .filter(|h| !quarantined.contains(&h.0))
                    .map(|h| h.0.to_u64())
                    .collect();
                Ok(ObjectCursor::keyed(req, "full scan", keys))
            }
        }
    }

    fn next_row(&mut self, cur: &mut ObjectCursor) -> aim2_exec::Result<Option<Tuple>> {
        if cur.asof.is_some() {
            return Ok(cur.next_buffered());
        }
        let Some(key) = cur.next_key() else {
            return Ok(None);
        };
        if let Some((block, row)) = split_cold_key(key) {
            let table = cur.table.clone();
            return self.read_cold(&table, block, row);
        }
        let tid = Tid::from_u64(key);
        let entry = self
            .catalog
            .get_mut(cur.table.as_str())
            .ok_or_else(|| aim2_exec::ExecError::NoSuchTable(cur.table.clone()))?;
        let schema = entry.schema.clone();
        match &mut entry.storage {
            TableStorage::Flat(fs) => fs
                .read(tid)
                .map(Some)
                .map_err(aim2_exec::ExecError::Storage),
            TableStorage::Nf2(os) => {
                let h = ObjectHandle(tid);
                let t = if cur.projection.is_some() {
                    os.read_object_projected(&schema, h, &|p| cur.keep(p))
                } else {
                    os.read_object(&schema, h)
                }
                .map_err(aim2_exec::ExecError::Storage)?;
                Ok(Some(t))
            }
        }
    }

    fn close_scan(&mut self, cur: ObjectCursor) {
        // A cursor abandoned mid-scan is an early termination: rows
        // after the exit point were never decoded. (A cursor closed
        // without pulls — e.g. EXPLAIN's access-path probe — is not.)
        if cur.pulled() > 0 && !cur.exhausted() {
            self.stats.inc_cursor_early_exit();
        }
        self.stats.record_cursor_lifetime(cur.age_ns());
    }

    fn next_batch(
        &mut self,
        cur: &mut ObjectCursor,
        max_rows: usize,
    ) -> aim2_exec::Result<Option<ColumnBatch>> {
        if cur.is_local() {
            return row_batch(self, cur, max_rows);
        }
        let Some(first) = cur.peek_key() else {
            return Ok(None);
        };
        let Some((block, _)) = split_cold_key(first) else {
            // Hot run. Cold keys sort first within a cursor, so from
            // here on everything is heap rows — the transposing
            // adapter serves them.
            return row_batch(self, cur, max_rows);
        };
        // Cold run: drain this block's keys and serve them straight
        // from the decoded columns — one block decode amortized over
        // the whole batch.
        let keys = cur.take_keys(
            max_rows.max(1),
            |k| matches!(split_cold_key(k), Some((b, _)) if b == block),
        );
        let table = cur.table.clone();
        let decoded = self.read_cold_decoded(&table, block)?;
        let schema = self
            .catalog
            .get(&table)
            .ok_or_else(|| aim2_exec::ExecError::NoSuchTable(table.clone()))?
            .schema
            .clone();
        // Equality short-circuit: a pushed `attr = lit` whose literal
        // is absent from the block's dictionary rules out every row of
        // the block without touching a single code.
        for (p, a) in &cur.conjuncts {
            let [one] = p.segments() else { continue };
            let Some(i) = schema.attr_index(one) else {
                continue;
            };
            if decoded
                .columns
                .get(i)
                .is_some_and(|c| c.code_of(a).is_none())
            {
                return Ok(Some(ColumnBatch {
                    columns: vec![Vec::new(); decoded.columns.len()],
                    len: 0,
                }));
            }
        }
        let rows: Vec<usize> = keys
            .iter()
            .filter_map(|&k| split_cold_key(k))
            .map(|(_, r)| r as usize)
            .collect();
        let mut columns: Vec<Vec<Value>> =
            vec![Vec::with_capacity(rows.len()); decoded.columns.len()];
        for &r in &rows {
            for (c, col) in decoded.columns.iter().enumerate() {
                let a = col.atom(r).cloned().ok_or_else(|| {
                    aim2_exec::ExecError::Storage(aim2_storage::StorageError::Corrupt(
                        "cold block code out of range".into(),
                    ))
                })?;
                columns[c].push(Value::Atom(a));
            }
        }
        // Decode accounting parity with the row path: one object and
        // `arity` atoms per materialized row.
        self.stats.add_objects_decoded(rows.len() as u64);
        self.stats
            .add_atoms_decoded((rows.len() * decoded.columns.len()) as u64);
        Ok(Some(ColumnBatch {
            columns,
            len: rows.len(),
        }))
    }

    fn decode_counters(&mut self) -> (u64, u64) {
        (self.stats.objects_decoded(), self.stats.atoms_decoded())
    }

    fn colstore_counters(&mut self) -> (u64, u64, u64) {
        (
            self.stats.colstore_blocks_pruned(),
            self.stats.colstore_blocks_decoded(),
            self.stats.colstore_values_scanned(),
        )
    }

    fn note_values_scanned(&mut self, n: u64) {
        self.stats.add_colstore_values_scanned(n);
    }
}

impl Database {
    /// The active configuration.
    pub fn config(&self) -> &DbConfig {
        &self.config
    }

    pub(crate) fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    pub(crate) fn seg_counter(&self) -> u32 {
        self.seg_counter
    }

    pub(crate) fn set_seg_counter(&mut self, v: u32) {
        self.seg_counter = v;
    }

    pub(crate) fn open_segment_pub(&self, name: &str) -> Result<Segment> {
        self.open_segment(name)
    }

    /// The checkpoint epoch currently in progress. The on-disk catalog
    /// always records `epoch() - 1` (the last committed one).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    pub(crate) fn set_epoch(&mut self, e: u32) {
        self.epoch = e;
    }

    pub(crate) fn wal_handle(&self) -> Option<SharedWal> {
        self.wal.clone()
    }

    /// The shared write-ahead log, if this database is file-backed (the
    /// transaction layer's group committer batches syncs on it).
    pub fn shared_wal(&self) -> Option<SharedWal> {
        self.wal.clone()
    }

    /// Run `f` over every buffer pool of the database: each table's data
    /// segment and all of its index segments.
    pub(crate) fn for_each_pool(
        &mut self,
        mut f: impl FnMut(&mut BufferPool) -> aim2_storage::Result<()>,
    ) -> Result<()> {
        for name in self.catalog.table_names() {
            let entry = self.catalog.require_mut(&name)?;
            match &mut entry.storage {
                TableStorage::Nf2(os) => f(os.segment_mut().pool_mut())?,
                TableStorage::Flat(fs) => f(fs.segment_mut().pool_mut())?,
            }
            for ie in &mut entry.indexes {
                f(ie.index.segment_mut().pool_mut())?;
            }
        }
        Ok(())
    }

    /// Flush one table's buffer pools (table segment + its indexes).
    pub(crate) fn flush_table(&mut self, name: &str) -> Result<()> {
        let entry = self.catalog.require_mut(name)?;
        match &mut entry.storage {
            TableStorage::Nf2(os) => os.segment_mut().pool_mut().flush_all()?,
            TableStorage::Flat(fs) => fs.segment_mut().pool_mut().flush_all()?,
        }
        for ie in &mut entry.indexes {
            ie.index.segment_mut().pool_mut().flush_all()?;
        }
        Ok(())
    }

    /// Append WAL before-images for one table's dirty pages (table
    /// segment + its indexes) with the log sync *deferred*: returns the
    /// highest WAL sequence appended, which a committing transaction
    /// hands to [`aim2_storage::wal::GroupCommit::sync_through`] so
    /// concurrent commits share one physical `fsync`. The pages
    /// themselves stay in the buffer pools and reach disk through the
    /// WAL-safe eviction and checkpoint paths.
    pub fn log_table_dirty(&mut self, name: &str) -> Result<Option<u64>> {
        let mut max_seq = None;
        let entry = self.catalog.require_mut(name)?;
        let mut bump = |seq: Option<u64>| {
            if let Some(s) = seq {
                max_seq = Some(max_seq.map_or(s, |m: u64| m.max(s)));
            }
        };
        match &mut entry.storage {
            TableStorage::Nf2(os) => bump(os.segment_mut().pool_mut().log_dirty()?),
            TableStorage::Flat(fs) => bump(fs.segment_mut().pool_mut().log_dirty()?),
        }
        for ie in &mut entry.indexes {
            bump(ie.index.segment_mut().pool_mut().log_dirty()?);
        }
        Ok(max_seq)
    }

    /// (Re)build a text index over a table's current rows (catalog
    /// reload; text indexes are derived state).
    pub(crate) fn rebuild_text_index(
        &mut self,
        table: &str,
        name: &str,
        attr: &Path,
    ) -> Result<()> {
        self.create_text_index(name, table, attr)?;
        Ok(())
    }

    /// Direct access to a table's NF² object store (benches, planner).
    pub fn object_store_mut(&mut self, table: &str) -> Result<&mut ObjectStore> {
        self.catalog.require_mut(table)?.nf2_mut()
    }

    /// Direct access to a named attribute index (benches, planner).
    pub fn index_mut(&mut self, table: &str, index_name: &str) -> Result<&mut NfIndex> {
        let entry = self.catalog.require_mut(table)?;
        entry
            .indexes
            .iter_mut()
            .find(|i| i.name == index_name)
            .map(|i| &mut i.index)
            .ok_or_else(|| DbError::Catalog(format!("no such index: {index_name}")))
    }

    /// A table's schema.
    pub fn schema(&self, table: &str) -> Result<TableSchema> {
        self.catalog
            .get(table)
            .map(|t| t.schema.clone())
            .ok_or_else(|| DbError::Catalog(format!("no such table: {table}")))
    }

    /// Handles of an NF² table's objects.
    pub fn handles(&mut self, table: &str) -> Result<Vec<ObjectHandle>> {
        Ok(self.catalog.require_mut(table)?.nf2_mut()?.handles()?)
    }

    /// Objects currently quarantined, as `(table, root TID)` pairs.
    pub fn quarantined(&self) -> Vec<(String, Tid)> {
        self.quarantine.iter().cloned().collect()
    }

    /// Whether one object is quarantined.
    pub fn is_quarantined(&self, table: &str, object: Tid) -> bool {
        self.quarantine.contains(&(table.to_string(), object))
    }

    /// Lift a table's quarantine entries (after salvage or repair).
    pub fn clear_quarantine(&mut self, table: &str) {
        self.quarantine.retain(|(t, _)| t != table);
    }

    pub(crate) fn quarantine_insert(&mut self, table: &str, object: Tid) -> bool {
        let fresh = self.quarantine.insert((table.to_string(), object));
        if fresh {
            self.stats.inc_object_quarantined();
        }
        fresh
    }

    /// Quarantined root TIDs of one table.
    pub(crate) fn quarantined_in(&self, table: &str) -> BTreeSet<Tid> {
        self.quarantine
            .iter()
            .filter(|(t, _)| t == table)
            .map(|(_, o)| *o)
            .collect()
    }

    fn check_quarantine(&self, table: &str, object: Tid) -> Result<()> {
        if self.is_quarantined(table, object) {
            return Err(DbError::ObjectQuarantined {
                table: table.to_string(),
                object,
            });
        }
        Ok(())
    }

    /// Auto-quarantine on corruption-class read failures: the first read
    /// surfaces the storage error, every later one gets the typed
    /// quarantine error without touching the damaged pages again.
    fn note_read_error(&mut self, table: &str, object: Tid, e: &DbError) {
        use aim2_storage::StorageError as SE;
        if matches!(
            e,
            DbError::Storage(SE::Corrupt(_) | SE::CorruptPage { .. } | SE::CorruptData(_))
        ) {
            self.quarantine_insert(table, object);
        }
    }

    /// Read one whole object of an NF² table — the "check-out" read the
    /// paper's local address spaces (§4.1) enable, and the unit the
    /// transaction layer locks on.
    pub fn read_object(&mut self, table: &str, handle: ObjectHandle) -> Result<Tuple> {
        self.check_quarantine(table, handle.0)?;
        let entry = self.catalog.require_mut(table)?;
        let schema = entry.schema.clone();
        let out = entry
            .nf2_mut()?
            .read_object(&schema, handle)
            .map_err(DbError::from);
        if let Err(e) = &out {
            self.note_read_error(table, handle.0, e);
        }
        out
    }

    /// Read just the atomic attributes at `loc` inside an object — the
    /// before-image the transaction layer records so an aborted update
    /// can be undone *in place* (the handle stays stable for waiters).
    pub fn read_object_atoms(
        &mut self,
        table: &str,
        handle: ObjectHandle,
        loc: &ElemLoc,
    ) -> Result<Vec<Atom>> {
        self.check_quarantine(table, handle.0)?;
        let entry = self.catalog.require_mut(table)?;
        let schema = entry.schema.clone();
        let out = entry
            .nf2_mut()?
            .read_atoms_at(&schema, handle, loc)
            .map_err(DbError::from);
        if let Err(e) = &out {
            self.note_read_error(table, handle.0, e);
        }
        out
    }

    /// Update the atomic attributes of one (sub)tuple of an object, with
    /// index/text/version maintenance — the object-granularity write the
    /// transaction layer exposes through checked-out sessions.
    pub fn update_object_atoms(
        &mut self,
        table: &str,
        handle: ObjectHandle,
        loc: &ElemLoc,
        atoms: &[Atom],
    ) -> Result<()> {
        self.check_quarantine(table, handle.0)?;
        self.mutate_object(table, handle, |schema, os| {
            os.update_atoms(schema, handle, loc, atoms)
                .map_err(Into::into)
        })
    }

    /// The logical contents of a table (whole tuples, storage-agnostic)
    /// — the transaction layer's undo snapshot.
    pub fn snapshot_table(&mut self, table: &str) -> Result<Vec<Tuple>> {
        let quarantined = self.quarantined_in(table);
        let entry = self.catalog.require_mut(table)?;
        let schema = entry.schema.clone();
        match &mut entry.storage {
            TableStorage::Nf2(os) => {
                let mut out = Vec::new();
                for h in os.handles()? {
                    if quarantined.contains(&h.0) {
                        continue; // unreadable; salvage is the way back
                    }
                    out.push(os.read_object(&schema, h)?);
                }
                Ok(out)
            }
            TableStorage::Flat(fs) => {
                let mut out = Vec::new();
                for (ord, meta) in fs.cold_blocks().to_vec().iter().enumerate() {
                    if quarantined.contains(&meta.tid) {
                        continue; // unreadable; salvage is the way back
                    }
                    for row in 0..meta.rows {
                        out.push(fs.materialize_cold_row(ord, row)?);
                    }
                }
                for tid in fs.tids().to_vec() {
                    out.push(fs.read(tid)?);
                }
                Ok(out)
            }
        }
    }

    /// Like [`Database::snapshot_table`], but each tuple is paired with
    /// its storage key (root TID packed to `u64`) in scan order — the
    /// whole-table state a committing transaction publishes to the MVCC
    /// epoch store, keyed so later object-granularity commits can patch
    /// individual rows instead of re-snapshotting.
    pub fn snapshot_table_keyed(&mut self, table: &str) -> Result<Vec<(u64, Tuple)>> {
        let quarantined = self.quarantined_in(table);
        let entry = self.catalog.require_mut(table)?;
        let schema = entry.schema.clone();
        match &mut entry.storage {
            TableStorage::Nf2(os) => {
                let mut out = Vec::new();
                for h in os.handles()? {
                    if quarantined.contains(&h.0) {
                        continue; // unreadable; salvage is the way back
                    }
                    out.push((h.0.to_u64(), os.read_object(&schema, h)?));
                }
                Ok(out)
            }
            TableStorage::Flat(fs) => {
                let mut out = Vec::new();
                for (ord, meta) in fs.cold_blocks().to_vec().iter().enumerate() {
                    if quarantined.contains(&meta.tid) {
                        continue; // unreadable; salvage is the way back
                    }
                    for row in 0..meta.rows {
                        out.push((cold_key(ord, row), fs.materialize_cold_row(ord, row)?));
                    }
                }
                for tid in fs.tids().to_vec() {
                    out.push((tid.to_u64(), fs.read(tid)?));
                }
                Ok(out)
            }
        }
    }

    /// Replace a table's contents with a previous [`Database::snapshot_table`]
    /// — transaction rollback. Every current row/object is deleted and
    /// the snapshot reinserted through the regular maintenance paths, so
    /// attribute indexes and text indexes stay consistent. NF² object
    /// handles are reassigned; on versioned tables the restored states
    /// re-record under the current date, overwriting the aborted same-date
    /// entries.
    pub fn restore_table(&mut self, table: &str, tuples: Vec<Tuple>) -> Result<()> {
        // Rollback rewrites the heap row-wise; thaw any cold tier first
        // so the delete loop below sees every live row.
        self.melt_if_cold(table)?;
        let entry = self.catalog.require_mut(table)?;
        match &mut entry.storage {
            TableStorage::Nf2(os) => {
                for h in os.handles()? {
                    self.delete_object(table, h)?;
                }
            }
            TableStorage::Flat(fs) => {
                let tids = fs.tids().to_vec();
                let today = self.today;
                for tid in tids {
                    fs.delete(tid)?;
                    if let Some(v) = &mut entry.versions {
                        v.record_delete(ObjectHandle(tid), today);
                    }
                }
            }
        }
        for t in tuples {
            self.insert_tuple(table, t)?;
        }
        Ok(())
    }

    /// Restore one NF² object to a previous state (object-granularity
    /// rollback): the current object is deleted and the old state
    /// reinserted, yielding a fresh handle.
    pub fn restore_object(
        &mut self,
        table: &str,
        handle: ObjectHandle,
        old: Tuple,
    ) -> Result<ObjectHandle> {
        self.delete_object(table, handle)?;
        let key = self.insert_tuple(table, old)?;
        key.handle()
            .ok_or_else(|| DbError::Catalog("restore_object on a flat table".into()))
    }

    // =================================================================
    // Tiered cold store (columnar blocks)
    // =================================================================

    /// Freeze a flat table's hot heap rows into immutable columnar cold
    /// blocks of up to [`BLOCK_ROWS`] rows each. The blocks ride the
    /// table's own segment (same buffer pool, WAL, checkpoint), the
    /// per-column zone maps land in the catalog, and text indexes are
    /// rebuilt over the hot+cold union. Returns `(blocks built, rows
    /// frozen)`. Refused for NF² and versioned tables — version
    /// recording rewrites rows, which cold blocks cannot do in place.
    pub fn compact_table(&mut self, table: &str) -> Result<(usize, u64)> {
        let entry = self.catalog.require_mut(table)?;
        if entry.versions.is_some() {
            return Err(DbError::Catalog(format!(
                "cannot compact versioned table {table}"
            )));
        }
        let TableStorage::Flat(fs) = &mut entry.storage else {
            return Err(DbError::Catalog(format!(
                "compact targets flat (1NF) tables; {table} is NF²"
            )));
        };
        let (blocks, rows) = {
            let _t = self.stats.time_colstore_compact();
            fs.freeze(BLOCK_ROWS)?
        };
        if blocks > 0 {
            self.rebuild_flat_text_indexes(table)?;
            self.log_table_dirty(table)?;
        }
        Ok((blocks, rows))
    }

    /// Per-table tier occupancy: `(table, hot rows/objects, cold
    /// blocks, cold rows)`. NF² tables report their object count as hot
    /// and an empty cold tier.
    pub fn table_tiers(&mut self) -> Result<Vec<(String, usize, usize, u64)>> {
        let mut out = Vec::new();
        for name in self.catalog.table_names() {
            let entry = self.catalog.require_mut(&name)?;
            let row = match &mut entry.storage {
                TableStorage::Flat(fs) => (
                    name.clone(),
                    fs.len(),
                    fs.cold_blocks().len(),
                    fs.cold_row_count(),
                ),
                TableStorage::Nf2(os) => (name.clone(), os.handles()?.len(), 0, 0),
            };
            out.push(row);
        }
        Ok(out)
    }

    /// Thaw a table's cold tier before row-wise DML ("melt on write"):
    /// cold blocks are immutable, so updates and deletes first return
    /// every frozen row to the heap. No-op for hot-only and NF² tables.
    fn melt_if_cold(&mut self, table: &str) -> Result<()> {
        let Some(entry) = self.catalog.get_mut(table) else {
            return Ok(()); // DML reports the missing table itself
        };
        let TableStorage::Flat(fs) = &mut entry.storage else {
            return Ok(());
        };
        if fs.cold_blocks().is_empty() {
            return Ok(());
        }
        fs.melt()?;
        self.clear_quarantine(table);
        self.rebuild_flat_text_indexes(table)?;
        self.log_table_dirty(table)?;
        Ok(())
    }

    /// Recompute every text index of a flat table from its current
    /// hot+cold contents. Cold rows register under their packed cold
    /// key, hot rows under their TID doc id; tier moves invalidate
    /// both, so compaction and melting rebuild rather than patch.
    fn rebuild_flat_text_indexes(&mut self, table: &str) -> Result<()> {
        let entry = self.catalog.require_mut(table)?;
        if entry.text_indexes.is_empty() {
            return Ok(());
        }
        let schema = entry.schema.clone();
        let TableStorage::Flat(fs) = &mut entry.storage else {
            return Ok(());
        };
        let mut docs: Vec<(u64, Vec<Atom>)> = Vec::new();
        for ord in 0..fs.cold_blocks().len() {
            for row in 0..fs.cold_blocks()[ord].rows {
                let t = fs.materialize_cold_row(ord, row)?;
                docs.push((
                    cold_key(ord, row),
                    t.fields
                        .iter()
                        .filter_map(|v| v.as_atom().cloned())
                        .collect(),
                ));
            }
        }
        for tid in fs.tids().to_vec() {
            let t = fs.read(tid)?;
            docs.push((
                doc_id(tid),
                t.fields
                    .iter()
                    .filter_map(|v| v.as_atom().cloned())
                    .collect(),
            ));
        }
        for tix in &mut entry.text_indexes {
            tix.index = TextIndex::new();
            for (id, atoms) in &docs {
                if let Some(text) = text_of(&schema, &tix.attr, atoms) {
                    tix.index.add_document(*id, &text);
                }
            }
        }
        Ok(())
    }

    /// Materialize one cold row for the cursor pipeline, quarantining
    /// the block on corruption-class failures — a cold block is one
    /// record, damaged as a unit, so its home TID is the quarantine
    /// key and later scans skip the whole block.
    fn read_cold(
        &mut self,
        table: &str,
        block: usize,
        row: u32,
    ) -> aim2_exec::Result<Option<Tuple>> {
        let (out, block_tid) = {
            let entry = self
                .catalog
                .get_mut(table)
                .ok_or_else(|| aim2_exec::ExecError::NoSuchTable(table.to_string()))?;
            let TableStorage::Flat(fs) = &mut entry.storage else {
                return Err(aim2_exec::ExecError::Semantic(format!(
                    "cold row key on non-flat table {table}"
                )));
            };
            let tid = fs.cold_blocks().get(block).map(|m| m.tid);
            (fs.materialize_cold_row(block, row), tid)
        };
        match out {
            Ok(t) => Ok(Some(t)),
            Err(e) => {
                self.quarantine_cold_error(table, block_tid, &e);
                Err(aim2_exec::ExecError::Storage(e))
            }
        }
    }

    /// Decode one whole cold block for a batch pull (same quarantine
    /// policy as [`Database::read_cold`]).
    fn read_cold_decoded(
        &mut self,
        table: &str,
        block: usize,
    ) -> aim2_exec::Result<Arc<DecodedBlock>> {
        let (out, block_tid) = {
            let entry = self
                .catalog
                .get_mut(table)
                .ok_or_else(|| aim2_exec::ExecError::NoSuchTable(table.to_string()))?;
            let TableStorage::Flat(fs) = &mut entry.storage else {
                return Err(aim2_exec::ExecError::Semantic(format!(
                    "cold row key on non-flat table {table}"
                )));
            };
            let tid = fs.cold_blocks().get(block).map(|m| m.tid);
            (fs.read_cold_block(block), tid)
        };
        out.map_err(|e| {
            self.quarantine_cold_error(table, block_tid, &e);
            aim2_exec::ExecError::Storage(e)
        })
    }

    /// Auto-quarantine a cold block on corruption-class decode
    /// failures. Unlike [`Database::note_read_error`] this includes
    /// checksum mismatches: the block CRC guards the whole record.
    fn quarantine_cold_error(
        &mut self,
        table: &str,
        block_tid: Option<Tid>,
        e: &aim2_storage::StorageError,
    ) {
        use aim2_storage::StorageError as SE;
        if matches!(
            e,
            SE::Corrupt(_) | SE::CorruptPage { .. } | SE::CorruptData(_) | SE::ChecksumMismatch(_)
        ) {
            if let Some(tid) = block_tid {
                self.quarantine_insert(table, tid);
            }
        }
    }

    /// The version store of a versioned table (walk-through-time lives
    /// at this API level, as in the paper).
    pub fn versions(&self, table: &str) -> Result<&VersionedTable> {
        self.catalog
            .get(table)
            .ok_or_else(|| DbError::Catalog(format!("no such table: {table}")))?
            .versions
            .as_ref()
            .ok_or_else(|| DbError::Catalog(format!("table {table} is not versioned")))
    }
}

#[cfg(test)]
mod send_tests {
    /// The transaction layer wraps `Database` in `Mutex` inside an `Arc`
    /// and hands sessions to worker threads — that only works if the
    /// whole object graph (pools, disks, WAL handle) is `Send`.
    #[test]
    fn database_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<super::Database>();
    }
}
