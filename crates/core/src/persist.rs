//! Catalog persistence: checkpoint and reopen file-backed databases.
//!
//! [`Database::checkpoint`] flushes every buffer pool and writes a
//! catalog file (`catalog.aim2`) into the data directory; a later
//! [`Database::open`] re-attaches the stores, indexes, and version
//! chains. Schemas are persisted as their own DDL text (the language
//! roundtrips, so the DDL *is* the catalog's schema record); runtime
//! state (directory pages, free pages, flat TID lists, B+-tree roots,
//! version chains) is written in the engine's own binary encoding. Text
//! indexes are rebuilt from stored data at open (they are derived
//! state).
//!
//! Consistency model: the checkpoint is taken with mutations quiesced
//! (the engine is single-user, like the 1986 prototype) and is **atomic
//! under crashes**. Work between checkpoints forms an *epoch*: every
//! page write-back during epoch `N` first logs the page's before-image
//! to the shared write-ahead log (`wal.aim2`, see
//! [`aim2_storage::wal`]). The checkpoint then flushes all pools, syncs
//! the segment files, and commits by atomically renaming a fresh
//! catalog file stamped with epoch `N`; only after that commit point is
//! the WAL reset to epoch `N + 1`. [`Database::open`] compares the two
//! epochs: a WAL one ahead of the catalog means the crash hit mid-epoch
//! and every logged before-image is written back (rolling the segments
//! to exactly the committed checkpoint); a WAL at or behind the catalog
//! is a stale leftover of a committed epoch and is discarded. WAL
//! frames are CRC-checksummed — a torn tail (the crash interrupting the
//! final append) is detected, counted, and safely dropped, while
//! corruption mid-log surfaces as a typed checksum error.

use crate::catalog::{IndexEntry, TableEntry, TableStorage};
use crate::database::{Database, DbConfig};
use crate::error::DbError;
use crate::Result;
use aim2_index::address::Scheme;
use aim2_index::NfIndex;
use aim2_lang::ast::Stmt;
use aim2_lang::parser::parse_stmt;
use aim2_model::encode::{decode_atom, decode_tuple, encode_atom, encode_tuple};
use aim2_model::{AttrKind, Date, Path, TableKind, TableSchema};
use aim2_storage::colstore::ColdBlockMeta;
use aim2_storage::flatstore::FlatStore;
use aim2_storage::minidir::LayoutKind;
use aim2_storage::object::{ObjectHandle, ObjectStore};
use aim2_storage::tid::{PageId, SlotNo, Tid};
use aim2_storage::wal::{read_wal, WAL_FILE};
use aim2_storage::StorageError;
use aim2_time::{VersionChain, VersionedTable};
use std::io::{Seek, SeekFrom, Write};

const MAGIC: &[u8; 8] = b"AIM2CAT4";
/// Previous catalog format, still readable: identical except that flat
/// table entries carry no cold-block directory (every table reopens
/// hot-only).
const MAGIC_V3: &[u8; 8] = b"AIM2CAT3";
/// Two formats back, still readable: additionally, segment entries
/// carry no page-count (extent) field, so recovery cannot truncate
/// stale post-checkpoint pages for such files.
const MAGIC_V2: &[u8; 8] = b"AIM2CAT2";

/// The catalog file name inside the data directory.
pub const CATALOG_FILE: &str = "catalog.aim2";

// ---------------------------------------------------------------------
// Byte-level helpers
// ---------------------------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_tid(out: &mut Vec<u8>, t: Tid) {
    t.encode(out);
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn err(msg: &str) -> DbError {
        DbError::Catalog(format!("corrupt catalog file: {msg}"))
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        let s = self
            .buf
            .get(self.pos..self.pos + n)
            .ok_or_else(|| Self::err("truncated"))?;
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn i32(&mut self) -> Result<i32> {
        Ok(i32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let b = self.bytes(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| Self::err("bad UTF-8"))
    }

    fn tid(&mut self) -> Result<Tid> {
        let b = self.bytes(Tid::ENCODED_LEN)?;
        let mut pos = 0;
        Tid::decode(b, &mut pos).ok_or_else(|| Self::err("bad TID"))
    }

    fn atom(&mut self) -> Result<aim2_model::Atom> {
        decode_atom(self.buf, &mut self.pos).map_err(DbError::Model)
    }

    fn done(&self) -> bool {
        self.pos >= self.buf.len()
    }
}

fn scheme_code(s: Scheme) -> u8 {
    match s {
        Scheme::DataTid => 0,
        Scheme::RootTid => 1,
        Scheme::MdPath => 2,
        Scheme::Hierarchical => 3,
    }
}

fn scheme_from(c: u8) -> Result<Scheme> {
    Ok(match c {
        0 => Scheme::DataTid,
        1 => Scheme::RootTid,
        2 => Scheme::MdPath,
        3 => Scheme::Hierarchical,
        _ => return Err(Reader::err("bad scheme code")),
    })
}

/// Render a schema back to the DDL that creates it (the parser/printer
/// roundtrip makes the DDL the canonical schema serialization).
pub fn schema_to_ddl(schema: &TableSchema, layout: LayoutKind, versioned: bool) -> String {
    fn attrs(s: &TableSchema, out: &mut String) {
        for (i, a) in s.attrs.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            match &a.kind {
                AttrKind::Atomic(ty) => {
                    out.push_str(&a.name);
                    out.push(' ');
                    out.push_str(&ty.to_string());
                }
                AttrKind::Table(sub) => {
                    out.push_str(&a.name);
                    out.push_str(if sub.kind == TableKind::List {
                        " < "
                    } else {
                        " { "
                    });
                    attrs(sub, out);
                    out.push_str(if sub.kind == TableKind::List {
                        " >"
                    } else {
                        " }"
                    });
                }
            }
        }
    }
    let mut out = format!(
        "CREATE {} {} ( ",
        if schema.kind == TableKind::List {
            "LIST"
        } else {
            "TABLE"
        },
        schema.name
    );
    attrs(schema, &mut out);
    out.push_str(" )");
    out.push_str(match layout {
        LayoutKind::Ss1 => " USING SS1",
        LayoutKind::Ss2 => " USING SS2",
        LayoutKind::Ss3 => " USING SS3",
    });
    if versioned {
        out.push_str(" WITH VERSIONS");
    }
    out
}

/// Shrink segment file `name` to its checkpoint-committed extent of
/// `pages` raw disk pages. Pages beyond that extent were allocated in
/// an epoch that never committed; the WAL holds no before-image for
/// them (allocation was their entire history), so truncation is their
/// undo. Missing files and already-short files are left alone — the
/// former are recreated empty on open, the latter are impossible for a
/// committed checkpoint and resolve to the extent the file does have.
fn truncate_segment(dir: &std::path::Path, name: &str, pages: u32, page_size: usize) -> Result<()> {
    let path = dir.join(name);
    let want = pages as u64 * page_size as u64;
    match std::fs::metadata(&path) {
        Ok(m) if m.len() > want => {
            let f = std::fs::OpenOptions::new()
                .write(true)
                .open(&path)
                .map_err(StorageError::Io)?;
            f.set_len(want).map_err(StorageError::Io)?;
            f.sync_data().map_err(StorageError::Io)?;
            Ok(())
        }
        _ => Ok(()),
    }
}

impl Database {
    /// Flush all buffer pools and write the catalog file, atomically
    /// committing the current epoch. Requires a file-backed database
    /// (a `data_dir`).
    pub fn checkpoint(&mut self) -> Result<()> {
        let _t = self.stats().time_checkpoint();
        let dir = self
            .config()
            .data_dir
            .clone()
            .ok_or_else(|| DbError::Catalog("checkpoint requires a data_dir".into()))?;
        self.ensure_wal()?;
        let epoch = self.epoch();
        let mut out = Vec::with_capacity(4096);
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, epoch);
        put_u32(&mut out, self.seg_counter());
        let names = self.table_names();
        put_u32(&mut out, names.len() as u32);
        for name in &names {
            self.flush_table(name)?;
            let entry = self.catalog_mut().require_mut(name)?;
            put_str(
                &mut out,
                &schema_to_ddl(&entry.schema, entry.layout, entry.versions.is_some()),
            );
            put_str(
                &mut out,
                entry
                    .seg_file
                    .as_deref()
                    .ok_or_else(|| DbError::Catalog("table segment has no file".into()))?,
            );
            // Committed extent of the segment file, in raw disk pages.
            // Recovery truncates the file back to this length: pages
            // allocated after the checkpoint carry no WAL before-image
            // (they are "fresh"), so cutting them off *is* their undo.
            // Without it a crashed epoch leaves stale, never-initialized
            // page images that a reopened segment would try to use.
            let seg_pages = match &mut entry.storage {
                TableStorage::Flat(fs) => fs.segment_mut().num_pages(),
                TableStorage::Nf2(os) => os.segment_mut().num_pages(),
            };
            put_u32(&mut out, seg_pages);
            match &entry.storage {
                TableStorage::Flat(fs) => {
                    out.push(0);
                    put_u32(&mut out, fs.tids().len() as u32);
                    for t in fs.tids() {
                        put_tid(&mut out, *t);
                    }
                    // Cold-block directory (v4): each block's home TID,
                    // row count, and per-column zone maps. The block
                    // payloads themselves live in the table segment and
                    // are checkpointed with its pages.
                    put_u32(&mut out, fs.cold_blocks().len() as u32);
                    for b in fs.cold_blocks() {
                        put_tid(&mut out, b.tid);
                        put_u32(&mut out, b.rows);
                        put_u32(&mut out, b.zones.len() as u32);
                        for (lo, hi) in &b.zones {
                            encode_atom(lo, &mut out);
                            encode_atom(hi, &mut out);
                        }
                    }
                }
                TableStorage::Nf2(os) => {
                    out.push(1);
                    put_u32(&mut out, os.dir_pages().len() as u32);
                    for p in os.dir_pages() {
                        put_u32(&mut out, p.0);
                    }
                    put_u32(&mut out, os.free_pages().len() as u32);
                    for p in os.free_pages() {
                        put_u32(&mut out, p.0);
                    }
                }
            }
            // Version chains.
            match &entry.versions {
                None => out.push(0),
                Some(v) => {
                    out.push(1);
                    let chains: Vec<_> = v.chains().collect();
                    put_u32(&mut out, chains.len() as u32);
                    for (h, chain) in chains {
                        put_tid(&mut out, h.0);
                        put_u32(&mut out, chain.entries().len() as u32);
                        for (d, state) in chain.entries() {
                            out.extend_from_slice(&d.0.to_le_bytes());
                            match state {
                                None => out.push(0),
                                Some(t) => {
                                    out.push(1);
                                    let mut tb = Vec::new();
                                    encode_tuple(t, &mut tb);
                                    put_u32(&mut out, tb.len() as u32);
                                    out.extend_from_slice(&tb);
                                }
                            }
                        }
                    }
                }
            }
            // Attribute indexes.
            put_u32(&mut out, entry.indexes.len() as u32);
            for ie in &mut entry.indexes {
                put_str(&mut out, &ie.name);
                put_str(&mut out, &ie.index.attr_path().to_string());
                out.push(scheme_code(ie.index.scheme()));
                put_str(
                    &mut out,
                    ie.seg_file
                        .as_deref()
                        .ok_or_else(|| DbError::Catalog("index segment has no file".into()))?,
                );
                // Committed extent (see the table segment note above).
                put_u32(&mut out, ie.index.segment_mut().num_pages());
                let (root, order) = ie.index.tree_root();
                put_tid(&mut out, root);
                put_u32(&mut out, order as u32);
            }
            // Text indexes (rebuilt at open; persist definitions only).
            put_u32(&mut out, entry.text_indexes.len() as u32);
            for tix in &entry.text_indexes {
                put_str(&mut out, &tix.name);
                put_str(&mut out, &tix.attr.to_string());
            }
        }
        // Everything is flushed (with before-images safely logged);
        // force the segment files to stable storage before committing.
        self.for_each_pool(|p| p.sync_disk())?;
        // Commit point: temp file then atomic rename. The temp write
        // goes through the fault injector like any other write, so the
        // harness can crash the checkpoint itself — a torn or missing
        // temp file is never renamed and the previous epoch stays
        // committed.
        let tmp = dir.join(format!("{CATALOG_FILE}.tmp"));
        if let Some(inj) = &self.config().fault {
            if let Some(torn) = inj.plan_write(out.len()).map_err(DbError::Storage)? {
                let _ = std::fs::write(&tmp, &out[..torn]);
                return Err(DbError::Storage(StorageError::Io(std::io::Error::other(
                    "fault injection: catalog write torn, disk stopped",
                ))));
            }
        }
        std::fs::write(&tmp, &out).map_err(StorageError::Io)?;
        std::fs::rename(&tmp, dir.join(CATALOG_FILE)).map_err(StorageError::Io)?;
        // The epoch is durable: retire its before-images and start the
        // next one. (A crash inside `reset` leaves a header-less WAL,
        // which recovery correctly treats as "nothing to replay".)
        if let Some(wal) = self.wal_handle() {
            wal.lock()
                .expect("wal mutex poisoned")
                .reset(epoch + 1)
                .map_err(DbError::Storage)?;
        }
        self.for_each_pool(|p| {
            p.note_checkpoint();
            Ok(())
        })?;
        self.set_epoch(epoch + 1);
        Ok(())
    }

    /// Open a previously checkpointed database from a data directory
    /// with default configuration — the `AsRef<Path>` convenience over
    /// [`Database::open`].
    pub fn open_dir(dir: impl AsRef<std::path::Path>) -> Result<Database> {
        Database::open(DbConfig {
            data_dir: Some(dir.as_ref().to_path_buf()),
            ..DbConfig::default()
        })
    }

    /// Open a previously checkpointed database from `config.data_dir`,
    /// running crash recovery first if the write-ahead log shows an
    /// epoch that never committed. A missing directory or catalog file
    /// is a typed error ([`DbError::DataDirMissing`] /
    /// [`DbError::NotADatabase`]), never a panic.
    pub fn open(config: DbConfig) -> Result<Database> {
        let dir = config
            .data_dir
            .clone()
            .ok_or_else(|| DbError::Catalog("open requires a data_dir".into()))?;
        if !dir.is_dir() {
            return Err(DbError::DataDirMissing(dir));
        }
        let bytes = match std::fs::read(dir.join(CATALOG_FILE)) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(DbError::NotADatabase(dir));
            }
            Err(e) => return Err(DbError::Storage(StorageError::Io(e))),
        };
        let mut db = Database::with_config(config);
        let mut r = Reader::new(&bytes);
        let magic = r.bytes(8)?;
        // Legacy catalogs lack the cold-block directory (v3) and
        // per-segment extents (v2); everything else is identical, so
        // read them with the missing sections skipped.
        let (has_extents, has_cold) = match magic {
            m if m == MAGIC => (true, true),
            m if m == MAGIC_V3 => (true, false),
            m if m == MAGIC_V2 => (false, false),
            _ => return Err(Reader::err("bad magic")),
        };
        let cat_epoch = r.u32()?;
        // Recovery happens on the raw segment files, before any of them
        // is opened through a buffer pool.
        let _recovery_timer = db.stats().time_recovery();
        match read_wal(dir.join(WAL_FILE), db.stats()).map_err(DbError::Storage)? {
            Some(c) if c.epoch == cat_epoch + 1 => {
                // The crash hit mid-epoch: the catalog's epoch committed
                // but `c.epoch` did not. Roll every logged page back to
                // its checkpoint image.
                for fr in &c.frames {
                    let mut f = std::fs::OpenOptions::new()
                        .write(true)
                        .open(dir.join(&fr.seg))
                        .map_err(StorageError::Io)?;
                    f.seek(SeekFrom::Start(fr.pid.0 as u64 * c.page_size as u64))
                        .map_err(StorageError::Io)?;
                    f.write_all(&fr.data).map_err(StorageError::Io)?;
                    f.sync_data().map_err(StorageError::Io)?;
                    db.stats().inc_wal_replay();
                }
            }
            Some(c) if c.epoch <= cat_epoch => {
                // Stale log of an epoch that committed (the crash fell
                // between the catalog rename and the WAL reset): the
                // segments already hold the committed state.
            }
            Some(c) => {
                return Err(Reader::err(&format!(
                    "WAL epoch {} is more than one ahead of catalog epoch {cat_epoch}",
                    c.epoch
                )));
            }
            None => {} // no log, or a header torn mid-create: nothing ran
        }
        // Start the next epoch with a fresh log; segment pools attach to
        // it as they open below.
        db.set_epoch(cat_epoch + 1);
        db.ensure_wal()?;
        let seg_counter = r.u32()?;
        let ntables = r.u32()?;
        let mut referenced = std::collections::HashSet::new();
        let raw_page_size = db.config().page_size;
        for _ in 0..ntables {
            let ddl = r.str()?;
            let seg_file = r.str()?;
            referenced.insert(seg_file.clone());
            if has_extents {
                // Drop pages allocated after the committed checkpoint:
                // they have no before-image in the WAL (allocation is
                // their only history), so truncation is their undo. A
                // reopened segment must never see their stale,
                // never-initialized on-disk images.
                truncate_segment(&dir, &seg_file, r.u32()?, raw_page_size)?;
            }
            let Stmt::CreateTable(ct) = parse_stmt(&ddl)? else {
                return Err(Reader::err("catalog DDL is not CREATE TABLE"));
            };
            let (schema, layout, versioned) = db.schema_from_create(&ct)?;
            let seg = db.open_segment_pub(&seg_file)?;
            let storage = match r.u8()? {
                0 => {
                    let n = r.u32()? as usize;
                    let mut tids = Vec::with_capacity(n);
                    for _ in 0..n {
                        tids.push(r.tid()?);
                    }
                    let mut fs = FlatStore::reopen(seg, tids);
                    if has_cold {
                        let nblocks = r.u32()? as usize;
                        let mut cold = Vec::with_capacity(nblocks);
                        for _ in 0..nblocks {
                            let tid = r.tid()?;
                            let rows = r.u32()?;
                            let ncols = r.u32()? as usize;
                            let mut zones = Vec::with_capacity(ncols);
                            for _ in 0..ncols {
                                let lo = r.atom()?;
                                let hi = r.atom()?;
                                zones.push((lo, hi));
                            }
                            cold.push(ColdBlockMeta { tid, rows, zones });
                        }
                        fs.set_cold(cold);
                    }
                    TableStorage::Flat(fs)
                }
                1 => {
                    let n = r.u32()? as usize;
                    let mut dir_pages = Vec::with_capacity(n);
                    for _ in 0..n {
                        dir_pages.push(PageId(r.u32()?));
                    }
                    let n = r.u32()? as usize;
                    let mut free_pages = Vec::with_capacity(n);
                    for _ in 0..n {
                        free_pages.push(PageId(r.u32()?));
                    }
                    TableStorage::Nf2(ObjectStore::reopen(seg, layout, dir_pages, free_pages))
                }
                _ => return Err(Reader::err("bad storage kind")),
            };
            // Version chains.
            let versions = match r.u8()? {
                0 => None,
                1 => {
                    let mut vt = VersionedTable::new(schema.kind);
                    let nchains = r.u32()? as usize;
                    for _ in 0..nchains {
                        let handle = ObjectHandle(r.tid()?);
                        let nentries = r.u32()? as usize;
                        let mut entries = Vec::with_capacity(nentries);
                        for _ in 0..nentries {
                            let d = Date(r.i32()?);
                            let state = match r.u8()? {
                                0 => None,
                                1 => {
                                    let len = r.u32()? as usize;
                                    let tb = r.bytes(len)?;
                                    let mut pos = 0;
                                    Some(decode_tuple(tb, &mut pos).map_err(DbError::Model)?)
                                }
                                _ => return Err(Reader::err("bad chain entry flag")),
                            };
                            entries.push((d, state));
                        }
                        vt.set_chain(handle, VersionChain::from_entries(entries));
                    }
                    Some(vt)
                }
                _ => return Err(Reader::err("bad versions flag")),
            };
            if !versioned && versions.is_some() {
                return Err(Reader::err("versions present for unversioned table"));
            }
            // Attribute indexes.
            let nindexes = r.u32()? as usize;
            let mut indexes = Vec::with_capacity(nindexes);
            for _ in 0..nindexes {
                let name = r.str()?;
                let path = Path::parse(&r.str()?);
                let scheme = scheme_from(r.u8()?)?;
                let iseg_file = r.str()?;
                referenced.insert(iseg_file.clone());
                if has_extents {
                    truncate_segment(&dir, &iseg_file, r.u32()?, raw_page_size)?;
                }
                let root = r.tid()?;
                let order = r.u32()? as usize;
                let iseg = db.open_segment_pub(&iseg_file)?;
                let index = NfIndex::reopen(iseg, &schema, &path, scheme, root, order)?;
                indexes.push(IndexEntry {
                    name,
                    index,
                    seg_file: Some(iseg_file),
                });
            }
            // Text index definitions.
            let ntext = r.u32()? as usize;
            let mut text_defs = Vec::with_capacity(ntext);
            for _ in 0..ntext {
                let name = r.str()?;
                let attr = Path::parse(&r.str()?);
                text_defs.push((name, attr));
            }
            db.catalog_mut().add(TableEntry {
                schema: schema.clone(),
                storage,
                indexes,
                text_indexes: Vec::new(),
                versions,
                layout,
                seg_file: Some(seg_file),
            })?;
            // Rebuild derived text indexes from the stored rows.
            for (name, attr) in text_defs {
                db.rebuild_text_index(&schema.name, &name, &attr)?;
            }
        }
        if !r.done() {
            return Err(Reader::err("trailing bytes"));
        }
        // Remove segment files the committed catalog does not reference:
        // leftovers of tables or indexes created in an epoch that never
        // committed. Their pages were all allocated mid-epoch (hence
        // never before-imaged), so recovery cannot restore them — and a
        // later segment of the same generated name must not inherit
        // their stale bytes.
        for entry in std::fs::read_dir(&dir).map_err(StorageError::Io)? {
            let entry = entry.map_err(StorageError::Io)?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".seg") && !referenced.contains(&name) {
                let _ = std::fs::remove_file(entry.path());
            }
        }
        db.set_seg_counter(seg_counter);
        Ok(db)
    }
}

#[allow(dead_code)]
fn _assert_tid_slot_roundtrip() {
    // Compile-time reminder that handles persist as TIDs.
    let _ = (PageId(0), SlotNo(0));
}
