//! Facade-level errors.

use std::fmt;
use std::path::PathBuf;

/// Anything that can go wrong executing a statement.
#[derive(Debug)]
pub enum DbError {
    Parse(aim2_lang::ParseError),
    Exec(aim2_exec::ExecError),
    Storage(aim2_storage::StorageError),
    Index(aim2_index::IndexError),
    Model(aim2_model::ModelError),
    /// Catalog-level problems (duplicate table, unknown table, bad DDL
    /// option, mutating a read path, ...).
    Catalog(String),
    /// [`Database::open`](crate::Database::open) was pointed at a data
    /// directory that does not exist.
    DataDirMissing(PathBuf),
    /// The data directory exists but holds no catalog file — it is not
    /// (yet) a database.
    NotADatabase(PathBuf),
    /// The object was quarantined by [`integrity_check`]
    /// (crate::Database::integrity_check) — its pages or metadata are
    /// corrupt, and reads would return garbage. Other objects of the
    /// same table keep serving.
    ObjectQuarantined {
        table: String,
        object: aim2_storage::tid::Tid,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse(e) => write!(f, "{e}"),
            DbError::Exec(e) => write!(f, "{e}"),
            DbError::Storage(e) => write!(f, "{e}"),
            DbError::Index(e) => write!(f, "{e}"),
            DbError::Model(e) => write!(f, "{e}"),
            DbError::Catalog(m) => write!(f, "catalog error: {m}"),
            DbError::DataDirMissing(p) => {
                write!(f, "data directory does not exist: {}", p.display())
            }
            DbError::NotADatabase(p) => write!(
                f,
                "no database found in {} (missing catalog file)",
                p.display()
            ),
            DbError::ObjectQuarantined { table, object } => write!(
                f,
                "object {object} of table {table} is quarantined (corrupt; run salvage)"
            ),
        }
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::Parse(e) => Some(e),
            DbError::Exec(e) => Some(e),
            DbError::Storage(e) => Some(e),
            DbError::Index(e) => Some(e),
            DbError::Model(e) => Some(e),
            DbError::Catalog(_)
            | DbError::DataDirMissing(_)
            | DbError::NotADatabase(_)
            | DbError::ObjectQuarantined { .. } => None,
        }
    }
}

impl From<aim2_lang::ParseError> for DbError {
    fn from(e: aim2_lang::ParseError) -> Self {
        DbError::Parse(e)
    }
}
impl From<aim2_exec::ExecError> for DbError {
    fn from(e: aim2_exec::ExecError) -> Self {
        DbError::Exec(e)
    }
}
impl From<aim2_storage::StorageError> for DbError {
    fn from(e: aim2_storage::StorageError) -> Self {
        DbError::Storage(e)
    }
}
impl From<aim2_index::IndexError> for DbError {
    fn from(e: aim2_index::IndexError) -> Self {
        DbError::Index(e)
    }
}
impl From<aim2_model::ModelError> for DbError {
    fn from(e: aim2_model::ModelError) -> Self {
        DbError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn display_catalog() {
        let e = super::DbError::Catalog("duplicate table T".into());
        assert!(e.to_string().contains("duplicate table"));
    }
}
