//! The catalog: per-table storage, indexes, and version stores.

use crate::error::DbError;
use crate::Result;
use aim2_index::NfIndex;
use aim2_model::{Path, TableSchema};
use aim2_storage::flatstore::FlatStore;
use aim2_storage::object::ObjectStore;
use aim2_text::TextIndex;
use aim2_time::VersionedTable;

/// Physical storage of one table. Flat (1NF) tables get heap storage
/// with no Mini Directories at all (§4.1); NF² tables get complex-object
/// storage under their declared layout.
pub enum TableStorage {
    Nf2(ObjectStore),
    Flat(FlatStore),
}

/// One attribute index registered on a table.
pub struct IndexEntry {
    pub name: String,
    pub index: NfIndex,
    /// Segment file name (file-backed databases; persisted in the
    /// catalog checkpoint).
    pub seg_file: Option<String>,
}

/// One text index registered on a table (§5).
pub struct TextIndexEntry {
    pub name: String,
    /// The indexed TEXT attribute (first-level).
    pub attr: Path,
    pub index: TextIndex,
}

/// Everything the database knows about one table.
pub struct TableEntry {
    pub schema: TableSchema,
    pub storage: TableStorage,
    pub indexes: Vec<IndexEntry>,
    pub text_indexes: Vec<TextIndexEntry>,
    /// Present when declared `WITH VERSIONS`.
    pub versions: Option<VersionedTable>,
    /// Storage layout declared at creation (meaningful for NF² tables).
    pub layout: aim2_storage::minidir::LayoutKind,
    /// Segment file name (file-backed databases).
    pub seg_file: Option<String>,
}

impl TableEntry {
    /// The NF² object store, or an error for flat tables.
    pub fn nf2_mut(&mut self) -> Result<&mut ObjectStore> {
        match &mut self.storage {
            TableStorage::Nf2(os) => Ok(os),
            TableStorage::Flat(_) => Err(DbError::Catalog(format!(
                "table {} is flat (1NF); operation requires an NF² table",
                self.schema.name
            ))),
        }
    }
}

/// The catalog proper.
#[derive(Default)]
pub struct Catalog {
    tables: Vec<TableEntry>,
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a new table; errors on duplicate names.
    pub fn add(&mut self, entry: TableEntry) -> Result<()> {
        if self.get(&entry.schema.name).is_some() {
            return Err(DbError::Catalog(format!(
                "table {} already exists",
                entry.schema.name
            )));
        }
        self.tables.push(entry);
        Ok(())
    }

    /// Remove a table, returning its entry (DROP TABLE).
    pub fn remove(&mut self, name: &str) -> Result<TableEntry> {
        let idx = self
            .tables
            .iter()
            .position(|t| t.schema.name == name)
            .ok_or_else(|| DbError::Catalog(format!("no such table: {name}")))?;
        Ok(self.tables.remove(idx))
    }

    /// Look up a table by name.
    pub fn get(&self, name: &str) -> Option<&TableEntry> {
        self.tables.iter().find(|t| t.schema.name == name)
    }

    /// Mutable lookup by name.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut TableEntry> {
        self.tables.iter_mut().find(|t| t.schema.name == name)
    }

    /// Mutable lookup that errors with a clear message when absent.
    pub fn require_mut(&mut self, name: &str) -> Result<&mut TableEntry> {
        self.get_mut(name)
            .ok_or_else(|| DbError::Catalog(format!("no such table: {name}")))
    }

    /// All table names, in creation order.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.iter().map(|t| t.schema.name.clone()).collect()
    }
}
