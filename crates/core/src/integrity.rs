//! Database-level integrity: the full-database walker and salvage.
//!
//! [`Database::integrity_check`] runs the storage-level walker
//! ([`aim2_storage::check`]) over every table and index segment, adds
//! the one check only this layer can do — index entries pointing at
//! live root TIDs — and quarantines every object the report attributes
//! damage to. [`Database::salvage`] then rebuilds a fresh database from
//! whatever still reads cleanly: the disaster path when quarantine
//! containment is not enough.

use crate::catalog::{TableEntry, TableStorage};
use crate::database::{Database, DbConfig};
use crate::error::DbError;
use crate::Result;
use aim2_index::address::Scheme;
use aim2_lang::ast::{self, Stmt};
use aim2_model::Tuple;
use aim2_storage::check::{self, CheckKind, Finding, IntegrityReport};
use aim2_storage::object::{ObjectHandle, ObjectStore};
use aim2_storage::page::PageRef;
use aim2_storage::tid::Tid;
use std::collections::BTreeSet;
use std::path::Path;

/// Root enumeration that survives a corrupt directory page: pages that
/// fail to read are skipped (the walker has already reported them)
/// instead of failing the whole listing as [`ObjectStore::handles`]
/// does.
fn robust_handles(os: &mut ObjectStore) -> Vec<ObjectHandle> {
    let mut out = Vec::new();
    for pid in os.dir_pages().to_vec() {
        let slots = os.segment_mut().pool_mut().with_page(pid, |buf| {
            PageRef::new(buf)
                .live_records()
                .map(|(s, _)| s)
                .collect::<Vec<_>>()
        });
        if let Ok(slots) = slots {
            out.extend(slots.into_iter().map(|s| ObjectHandle(Tid::new(pid, s))));
        }
    }
    out
}

fn scheme_keyword(s: Scheme) -> &'static str {
    match s {
        Scheme::Hierarchical => "HIERARCHICAL",
        Scheme::RootTid => "ROOTTID",
        Scheme::DataTid => "DATATID",
        Scheme::MdPath => "MDPATH",
    }
}

impl Database {
    /// Walk the whole database and report every integrity violation:
    /// page checksums and slotted-page structure, MD-tree shape vs.
    /// schema, Mini-TID resolution, page-list / free-space accounting,
    /// entry-group order, and index entries pointing at live roots.
    ///
    /// Never fail-fast: damage is collected, and every object the
    /// report can attribute damage to is **quarantined** — subsequent
    /// reads of it return [`DbError::ObjectQuarantined`] while the rest
    /// of the table keeps serving. Re-running the check rebuilds the
    /// quarantine from the current on-disk state.
    pub fn integrity_check(&mut self) -> Result<IntegrityReport> {
        let mut report = IntegrityReport::new();
        for name in self.table_names() {
            let entry = self.catalog_mut().require_mut(&name)?;
            let schema = entry.schema.clone();
            let TableEntry {
                storage, indexes, ..
            } = entry;
            match storage {
                TableStorage::Nf2(os) => {
                    check::check_object_store(os, &schema, &name, &mut report)?
                }
                TableStorage::Flat(fs) => check::check_flat_store(fs, &schema, &name, &mut report)?,
            }
            for ie in indexes.iter_mut() {
                check::check_segment_pages(ie.index.segment_mut(), &name, &mut report)?;
                let addrs = match ie.index.lookup_range(None, None) {
                    Ok(a) => a,
                    Err(e) => {
                        report.record(Finding {
                            table: name.clone(),
                            object: None,
                            check: CheckKind::IndexLiveness,
                            detail: format!("index {} unreadable: {e}", ie.name),
                        });
                        continue;
                    }
                };
                let TableStorage::Nf2(os) = storage else {
                    continue;
                };
                let live: BTreeSet<Tid> = robust_handles(os).into_iter().map(|h| h.0).collect();
                for a in addrs {
                    report.bump(CheckKind::IndexLiveness);
                    if let Some(root) = a.root() {
                        if !live.contains(&root) {
                            report.record(Finding {
                                table: name.clone(),
                                object: None,
                                check: CheckKind::IndexLiveness,
                                detail: format!(
                                    "index {} entry points at dead root {root}",
                                    ie.name
                                ),
                            });
                        }
                    }
                }
            }
        }
        for (table, object) in report.corrupt_objects() {
            self.quarantine_insert(&table, object);
        }
        Ok(report)
    }

    /// Rebuild a fresh database under `dest_dir` from every object that
    /// still reads cleanly. Quarantined and unreadable objects are
    /// skipped; schemas, layouts, attribute indexes, and text indexes
    /// are recreated from the catalog; the result is checkpointed.
    /// Versioned tables salvage their *current* state only — history
    /// lives in the catalog file, which salvage does not try to repair.
    ///
    /// Returns the new database and the number of objects carried over.
    pub fn salvage(&mut self, dest_dir: impl AsRef<Path>) -> Result<(Database, usize)> {
        let mut out = Database::with_config(DbConfig {
            data_dir: Some(dest_dir.as_ref().to_path_buf()),
            fault: None,
            ..self.config().clone()
        });
        out.set_today(self.today());
        let mut carried = 0usize;
        for name in self.table_names() {
            let quarantined = self.quarantined_in(&name);
            let entry = self.catalog_mut().require_mut(&name)?;
            let schema = entry.schema.clone();
            let layout = entry.layout;
            let versioned = entry.versions.is_some();
            // Survivor rows first (so index recreation below sees them).
            let mut survivors: Vec<Tuple> = Vec::new();
            match &mut entry.storage {
                TableStorage::Nf2(os) => {
                    for h in robust_handles(os) {
                        if quarantined.contains(&h.0) {
                            continue;
                        }
                        if let Ok(t) = os.read_object(&schema, h) {
                            survivors.push(t);
                        }
                    }
                }
                TableStorage::Flat(fs) => {
                    // Cold rows first — they are the oldest. A block
                    // that fails to decode (or sits in quarantine) is
                    // skipped as a unit; readable blocks contribute
                    // every row.
                    for (ord, meta) in fs.cold_blocks().to_vec().iter().enumerate() {
                        if quarantined.contains(&meta.tid) {
                            continue;
                        }
                        for row in 0..meta.rows {
                            if let Ok(t) = fs.materialize_cold_row(ord, row) {
                                survivors.push(t);
                            }
                        }
                    }
                    for tid in fs.tids().to_vec() {
                        if quarantined.contains(&tid) {
                            continue;
                        }
                        if let Ok(t) = fs.read(tid) {
                            survivors.push(t);
                        }
                    }
                }
            }
            let index_defs: Vec<(String, String, Scheme)> = entry
                .indexes
                .iter()
                .map(|ie| {
                    (
                        ie.name.clone(),
                        ie.index.attr_path().to_string(),
                        ie.index.scheme(),
                    )
                })
                .collect();
            let text_defs: Vec<(String, String)> = entry
                .text_indexes
                .iter()
                .map(|t| (t.name.clone(), t.attr.to_string()))
                .collect();
            out.create_table(schema, layout, versioned)?;
            for t in survivors {
                out.insert_tuple(&name, t)?;
                self.stats().inc_salvaged_object();
                carried += 1;
            }
            for (iname, path, scheme) in index_defs {
                out.execute_stmt(&Stmt::CreateIndex(ast::CreateIndex {
                    name: iname,
                    table: name.clone(),
                    path: aim2_model::Path::parse(&path),
                    text: false,
                    using: Some(scheme_keyword(scheme).to_string()),
                }))?;
            }
            for (tname, attr) in text_defs {
                out.execute_stmt(&Stmt::CreateIndex(ast::CreateIndex {
                    name: tname,
                    table: name.clone(),
                    path: aim2_model::Path::parse(&attr),
                    text: true,
                    using: None,
                }))?;
            }
        }
        out.checkpoint()?;
        Ok((out, carried))
    }
}

// Keep the unused-import lint honest when the error type is only named
// in doc comments above.
#[allow(unused_imports)]
use DbError as _;
