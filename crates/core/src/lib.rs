//! # aim2 — the integrated AIM-II DBMS facade
//!
//! Ties the reproduction together the way the prototype's run-time
//! system did: a [`Database`] owns the catalog and, per table, its
//! storage (an SS1/SS2/SS3 [`aim2_storage::object::ObjectStore`] for NF²
//! tables, a flat heap for 1NF tables), its attribute indexes
//! ([`aim2_index::NfIndex`], hierarchical addressing by default), its
//! text indexes (§5), and its version store (`WITH VERSIONS`, §5).
//!
//! The whole language runs through [`Database::execute`]:
//!
//! ```
//! use aim2::Database;
//! let mut db = Database::in_memory();
//! db.execute("CREATE TABLE DEPTS ( DNO INTEGER, \
//!             PROJECTS { PNO INTEGER, PNAME STRING } )").unwrap();
//! db.execute("INSERT INTO DEPTS VALUES (314, {(17, 'CGA')})").unwrap();
//! let result = db.execute("SELECT x.DNO FROM x IN DEPTS \
//!                          WHERE EXISTS y IN x.PROJECTS : y.PNO = 17").unwrap();
//! assert_eq!(result.into_table().unwrap().1.len(), 1);
//! ```

pub mod catalog;
pub mod database;
pub mod error;
pub mod integrity;
pub mod persist;
pub mod slowlog;

pub use aim2_exec::{AnalyzedPlan, OpMetrics};
pub use aim2_obs::MetricsSnapshot;
pub use aim2_storage::check::{CheckKind, Finding, IntegrityReport};
pub use database::{Database, DbConfig, ExecResult};
pub use error::DbError;
pub use slowlog::{SlowLog, SlowQueryRecord, SLOW_LOG_CAPACITY};

/// Result alias.
pub type Result<T> = std::result::Result<T, DbError>;
