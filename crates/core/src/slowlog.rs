//! The slow-query log: a bounded ring of queries that ran over the
//! configured threshold.
//!
//! When [`crate::DbConfig::slow_query_threshold`] is set, every query
//! the facade runs is timed end-to-end; one that exceeds the threshold
//! is recorded with its statement text, its rendered physical plan, the
//! Stats counter deltas it caused, and the span tree captured while it
//! ran. The log is a fixed-capacity ring ([`SLOW_LOG_CAPACITY`] by
//! default): the newest record evicts the oldest, so a long session
//! cannot grow it without bound. The shell's `.slow` renders it.

use aim2_obs::{render_spans, SpanEvent};
use aim2_storage::stats::StatsSnapshot;
use std::collections::VecDeque;
use std::fmt;
use std::time::Duration;

/// Default ring capacity of a [`SlowLog`].
pub const SLOW_LOG_CAPACITY: usize = 32;

/// One query that ran over the slow-query threshold.
#[derive(Debug, Clone)]
pub struct SlowQueryRecord {
    /// The statement text as submitted (empty for pre-parsed queries).
    pub statement: String,
    /// The rendered physical plan (timing-free ANALYZE form when
    /// analysis ran, the plain plan otherwise).
    pub plan: String,
    /// End-to-end execution time.
    pub elapsed: Duration,
    /// Stats counter deltas caused by this query.
    pub delta: StatsSnapshot,
    /// Span tree captured while the query ran.
    pub spans: Vec<SpanEvent>,
    /// Trace id active while the query ran (0 = untraced), linking the
    /// slow-log entry to the flight recorder's full span tree.
    pub trace_id: u64,
}

impl fmt::Display for SlowQueryRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "[{:.1}ms] {}",
            self.elapsed.as_secs_f64() * 1e3,
            if self.statement.is_empty() {
                "(pre-parsed query)"
            } else {
                &self.statement
            }
        )?;
        if self.trace_id != 0 {
            writeln!(f, "  trace: {:#018x}", self.trace_id)?;
        }
        for line in self.plan.lines() {
            writeln!(f, "  {line}")?;
        }
        writeln!(f, "  stats delta: {}", self.delta)?;
        if !self.spans.is_empty() {
            for line in render_spans(&self.spans).lines() {
                writeln!(f, "  | {line}")?;
            }
        }
        Ok(())
    }
}

/// Bounded ring of [`SlowQueryRecord`]s.
#[derive(Debug)]
pub struct SlowLog {
    capacity: usize,
    records: VecDeque<SlowQueryRecord>,
}

impl Default for SlowLog {
    fn default() -> SlowLog {
        SlowLog::with_capacity(SLOW_LOG_CAPACITY)
    }
}

impl SlowLog {
    /// An empty log holding at most `capacity` records.
    pub fn with_capacity(capacity: usize) -> SlowLog {
        SlowLog {
            capacity: capacity.max(1),
            records: VecDeque::new(),
        }
    }

    /// Append a record, evicting the oldest when full.
    pub fn push(&mut self, rec: SlowQueryRecord) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        self.records.push_back(rec);
    }

    /// Records, oldest first.
    pub fn records(&self) -> impl DoubleEndedIterator<Item = &SlowQueryRecord> {
        self.records.iter()
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Maximum number of records the ring holds.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drop all records.
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(n: usize) -> SlowQueryRecord {
        SlowQueryRecord {
            statement: format!("SELECT {n}"),
            plan: "Project [x]".into(),
            elapsed: Duration::from_millis(n as u64),
            delta: StatsSnapshot::default(),
            spans: Vec::new(),
            trace_id: 0,
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut log = SlowLog::with_capacity(3);
        for n in 0..5 {
            log.push(rec(n));
        }
        assert_eq!(log.len(), 3);
        let stmts: Vec<&str> = log.records().map(|r| r.statement.as_str()).collect();
        assert_eq!(stmts, ["SELECT 2", "SELECT 3", "SELECT 4"]);
    }

    #[test]
    fn display_includes_plan_and_delta() {
        let mut log = SlowLog::default();
        assert_eq!(log.capacity(), SLOW_LOG_CAPACITY);
        log.push(rec(7));
        let shown = log.records().next().unwrap().to_string();
        assert!(shown.starts_with("[7.0ms] SELECT 7"));
        assert!(shown.contains("  Project [x]"));
        assert!(shown.contains("stats delta:"));
        assert!(!shown.contains("trace:"), "untraced records stay silent");
    }

    #[test]
    fn display_links_trace_id_when_present() {
        let shown = SlowQueryRecord {
            trace_id: 0xabcd,
            ..rec(3)
        }
        .to_string();
        assert!(shown.contains("trace: 0x000000000000abcd"));
    }
}
