//! `aim2` — the interactive shell for the AIM-II reproduction.
//!
//! ```text
//! cargo run -p aim2 --bin aim2                 # in-memory session
//! cargo run -p aim2 --bin aim2 -- --data DIR   # file-backed (reopens a
//!                                              # checkpointed catalog)
//! cargo run -p aim2 --bin aim2 -- script.sql   # run a script, then exit
//! ```
//!
//! Statements end with `;`. Dot-commands:
//! `.help`, `.tables`, `.schema NAME`, `.stats [reset|verbose]`,
//! `.explain QUERY`, `.analyze QUERY`, `.metrics [json|prom]`,
//! `.slow [MILLIS|off]`, `.today YYYY-MM-DD`, `.checkpoint`,
//! `.compact TABLE`, `.tiers`, `.integrity`, `.salvage DIR`,
//! `.load demo`, `.quit`.

use aim2::{Database, DbConfig};
use aim2_model::{fixtures, render, Date};
use std::io::{BufRead, Write};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut data_dir: Option<std::path::PathBuf> = None;
    let mut script: Option<String> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--data" => data_dir = args.next().map(Into::into),
            "--help" | "-h" => {
                println!("usage: aim2 [--data DIR] [script.sql]");
                return;
            }
            other => script = Some(other.to_string()),
        }
    }

    let mut db = match &data_dir {
        Some(dir) if dir.join(aim2::persist::CATALOG_FILE).exists() => {
            let cfg = DbConfig {
                data_dir: data_dir.clone(),
                ..DbConfig::default()
            };
            match Database::open(cfg) {
                Ok(db) => {
                    eprintln!("reopened database in {}", dir.display());
                    db
                }
                Err(e) => {
                    eprintln!("cannot open {}: {e}", dir.display());
                    std::process::exit(1);
                }
            }
        }
        Some(_) => Database::with_config(DbConfig {
            data_dir: data_dir.clone(),
            ..DbConfig::default()
        }),
        None => Database::in_memory(),
    };

    if let Some(path) = script {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        if let Err(e) = run_script(&mut db, &text) {
            eprintln!("{e}");
            std::process::exit(1);
        }
        return;
    }

    eprintln!("AIM-II extended NF² DBMS — .help for commands, ; ends statements");
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            eprint!("aim2> ");
        } else {
            eprint!("  ..> ");
        }
        let _ = std::io::stderr().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('.') {
            if !dot_command(&mut db, trimmed) {
                break;
            }
            continue;
        }
        buffer.push_str(&line);
        if trimmed.ends_with(';') {
            let stmt = std::mem::take(&mut buffer);
            execute_and_print(&mut db, &stmt);
        }
    }
}

fn run_script(db: &mut Database, text: &str) -> Result<(), String> {
    for stmt in split_script(text) {
        execute_and_print(db, &stmt);
    }
    Ok(())
}

fn split_script(text: &str) -> Vec<String> {
    // Reuse the engine's statement splitting by deferring to
    // execute_script semantics: split on ; outside strings.
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for ch in text.chars() {
        match ch {
            '\'' => {
                in_str = !in_str;
                cur.push(ch);
            }
            ';' if !in_str => {
                if !cur.trim().is_empty() {
                    out.push(std::mem::take(&mut cur));
                } else {
                    cur.clear();
                }
            }
            _ => cur.push(ch),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

fn execute_and_print(db: &mut Database, sql: &str) {
    let sql = sql.trim().trim_end_matches(';');
    if sql.is_empty() {
        return;
    }
    match db.execute(sql) {
        Ok(aim2::database::ExecResult::Table(schema, value)) => {
            print!("{}", render::render_table(&schema, &value));
            println!("({} row(s))", value.len());
        }
        Ok(aim2::database::ExecResult::Count(n)) => println!("({n} affected)"),
        Ok(aim2::database::ExecResult::Ok(msg)) => println!("{msg}"),
        Err(aim2::DbError::Parse(e)) => eprintln!("{}", e.render(sql)),
        Err(e) => eprintln!("error: {e}"),
    }
}

/// Returns false to quit.
fn dot_command(db: &mut Database, cmd: &str) -> bool {
    let mut parts = cmd.splitn(2, ' ');
    match parts.next().unwrap_or("") {
        ".quit" | ".exit" | ".q" => return false,
        ".help" => {
            println!(
                ".tables              list tables\n\
                 .schema NAME         show a table's structure\n\
                 .stats [reset|verbose]  access counters; `reset` zeroes them,\n\
                                      `verbose` shows zero-valued groups too\n\
                 .explain QUERY       show the physical plan without running it\n\
                 .analyze QUERY       run the query, show the plan annotated with\n\
                                      per-operator rows, decode deltas, and times\n\
                 .metrics [json|prom] engine metrics (counters, gauges, latency\n\
                                      histograms); JSON or Prometheus text\n\
                 .slow [MILLIS|off]   show the slow-query log; MILLIS sets the\n\
                                      threshold, `off` disables and clears it\n\
                 .trace [on|off|last|slow|ID] per-query span traces: `on` mints a\n\
                                      trace per query, `last`/`slow`/hex ID render\n\
                                      recorded traces from the flight recorder\n\
                 .today [YYYY-MM-DD]  show/set the logical date (versions)\n\
                 .checkpoint          flush + write the catalog (file-backed)\n\
                 .compact TABLE       freeze a flat table's rows into columnar\n\
                                      cold blocks (dictionary + zone maps)\n\
                 .tiers               per-table hot rows / cold blocks / cold rows\n\
                 .integrity           walk the database, quarantine corrupt objects\n\
                 .salvage DIR         rebuild survivors into a fresh database at DIR\n\
                 .load demo           load the paper's Tables 1-8\n\
                 .quit                leave\n\
                 Statements (end with ;): SELECT, EXPLAIN SELECT, CREATE TABLE/LIST,\n\
                 CREATE [TEXT] INDEX, INSERT, UPDATE, DELETE, DROP TABLE"
            );
        }
        ".tables" => {
            for t in db.table_names() {
                println!("{t}");
            }
        }
        ".schema" => match parts.next() {
            Some(name) => match db.schema(name.trim()) {
                Ok(s) => println!("{}", render::render_header(&s)),
                Err(e) => eprintln!("{e}"),
            },
            None => eprintln!("usage: .schema NAME"),
        },
        ".stats" => match parts.next().map(str::trim) {
            Some("reset") => {
                db.stats().reset();
                println!("stats reset");
            }
            Some("verbose") => print!("{}", db.stats().snapshot().verbose()),
            Some(other) if !other.is_empty() => {
                eprintln!("usage: .stats [reset|verbose]");
            }
            _ => println!("{}", db.stats().snapshot()),
        },
        ".explain" => match parts.next().map(str::trim).filter(|q| !q.is_empty()) {
            Some(query) => {
                let query = query.trim_end_matches(';');
                match db.execute(&format!("EXPLAIN {query}")) {
                    Ok(aim2::database::ExecResult::Ok(plan)) => println!("{plan}"),
                    Ok(_) => eprintln!("EXPLAIN returned no plan"),
                    Err(aim2::DbError::Parse(e)) => eprintln!("{}", e.render(query)),
                    Err(e) => eprintln!("{e}"),
                }
            }
            None => eprintln!("usage: .explain SELECT ..."),
        },
        ".analyze" => match parts.next().map(str::trim).filter(|q| !q.is_empty()) {
            Some(query) => match db.analyze(query.trim_end_matches(';')) {
                Ok((schema, value, analyzed)) => {
                    print!("{}", render::render_table(&schema, &value));
                    println!("({} row(s))", value.len());
                    print!("{analyzed}");
                }
                Err(aim2::DbError::Parse(e)) => eprintln!("{}", e.render(query)),
                Err(e) => eprintln!("{e}"),
            },
            None => eprintln!("usage: .analyze SELECT ..."),
        },
        ".metrics" => match parts.next().map(str::trim) {
            Some("json") => println!("{}", db.metrics().to_json()),
            Some("prom") => print!("{}", db.metrics().to_prometheus()),
            Some(other) if !other.is_empty() => eprintln!("usage: .metrics [json|prom]"),
            _ => print!("{}", db.metrics()),
        },
        ".slow" => match parts.next().map(str::trim) {
            Some("off") => {
                db.set_slow_query_threshold(None);
                db.slow_log_mut().clear();
                println!("slow-query log disabled and cleared");
            }
            Some(ms) if !ms.is_empty() => match ms.parse::<u64>() {
                Ok(ms) => {
                    db.set_slow_query_threshold(Some(std::time::Duration::from_millis(ms)));
                    println!("slow-query threshold = {ms}ms");
                }
                Err(_) => eprintln!("usage: .slow [MILLIS|off]"),
            },
            _ => {
                if db.slow_log().is_empty() {
                    println!("(slow-query log empty)");
                } else {
                    for rec in db.slow_log().records() {
                        print!("{rec}");
                    }
                }
            }
        },
        ".trace" => match parts.next().map(str::trim) {
            Some("on") => {
                db.set_tracing(true);
                println!("tracing on: every query records a span tree (see .trace last)");
            }
            Some("off") => {
                db.set_tracing(false);
                println!("tracing off");
            }
            Some("slow") => {
                let slow = db.stats().recorder().slow();
                if slow.is_empty() {
                    println!("(no slow traces recorded)");
                }
                for t in slow {
                    print!("{}", t.render_text());
                }
            }
            Some(id) if !id.is_empty() && id != "last" => {
                let parsed = u64::from_str_radix(id.trim_start_matches("0x"), 16)
                    .or_else(|_| id.parse::<u64>());
                match parsed {
                    Ok(id) => match db.stats().recorder().find(id) {
                        Some(t) => print!("{}", t.render_text()),
                        None => println!("no trace {id:#018x} retained"),
                    },
                    Err(_) => eprintln!("usage: .trace [on|off|last|slow|ID]"),
                }
            }
            _ => match db.stats().recorder().last() {
                Some(t) => print!("{}", t.render_text()),
                None => println!("(no traces recorded; try `.trace on`)"),
            },
        },
        ".today" => match parts.next() {
            Some(d) => match Date::parse_iso(d.trim()) {
                Ok(d) => {
                    db.set_today(d);
                    println!("today = {d}");
                }
                Err(e) => eprintln!("{e}"),
            },
            None => println!("today = {}", db.today()),
        },
        ".checkpoint" => match db.checkpoint() {
            Ok(()) => println!("checkpointed"),
            Err(e) => eprintln!("{e}"),
        },
        ".compact" => match parts.next().map(str::trim).filter(|t| !t.is_empty()) {
            Some(table) => match db.compact_table(table) {
                Ok((blocks, rows)) => {
                    println!("compacted {table}: {rows} row(s) frozen into {blocks} block(s)")
                }
                Err(e) => eprintln!("{e}"),
            },
            None => eprintln!("usage: .compact TABLE"),
        },
        ".tiers" => match db.table_tiers() {
            Ok(tiers) => {
                println!(
                    "{:<24} {:>8} {:>12} {:>10}",
                    "table", "hot", "cold blocks", "cold rows"
                );
                for (name, hot, blocks, rows) in tiers {
                    println!("{name:<24} {hot:>8} {blocks:>12} {rows:>10}");
                }
            }
            Err(e) => eprintln!("{e}"),
        },
        ".integrity" => match db.integrity_check() {
            Ok(report) => print!("{report}"),
            Err(e) => eprintln!("{e}"),
        },
        ".salvage" => match parts.next().map(str::trim).filter(|d| !d.is_empty()) {
            Some(dir) => match db.salvage(dir) {
                Ok((_, carried)) => println!("salvaged {carried} object(s) into {dir}"),
                Err(e) => eprintln!("{e}"),
            },
            None => eprintln!("usage: .salvage DIR"),
        },
        ".load" if parts.next().map(str::trim) == Some("demo") => match load_demo(db) {
            Ok(()) => println!("loaded the paper's DEPARTMENTS / 1NF tables / REPORTS"),
            Err(e) => eprintln!("{e}"),
        },
        other => eprintln!("unknown command {other}; try .help"),
    }
    true
}

fn load_demo(db: &mut Database) -> aim2::Result<()> {
    db.execute_script(
        "CREATE TABLE DEPARTMENTS ( DNO INTEGER, MGRNO INTEGER,
           PROJECTS { PNO INTEGER, PNAME STRING,
                      MEMBERS { EMPNO INTEGER, FUNCTION STRING } },
           BUDGET INTEGER, EQUIP { QU INTEGER, TYPE STRING } );
         CREATE TABLE DEPARTMENTS-1NF ( DNO INTEGER, MGRNO INTEGER, BUDGET INTEGER );
         CREATE TABLE PROJECTS-1NF ( PNO INTEGER, PNAME STRING, DNO INTEGER );
         CREATE TABLE MEMBERS-1NF ( EMPNO INTEGER, PNO INTEGER, DNO INTEGER, FUNCTION STRING );
         CREATE TABLE EQUIP-1NF ( DNO INTEGER, QU INTEGER, TYPE STRING );
         CREATE TABLE EMPLOYEES-1NF ( EMPNO INTEGER, LNAME STRING, FNAME STRING, SEX STRING );
         CREATE TABLE REPORTS ( REPNO STRING, AUTHORS < NAME STRING >, TITLE TEXT,
                                DESCRIPTORS { WORD STRING, WEIGHT DOUBLE } )",
    )?;
    for (table, value) in [
        ("DEPARTMENTS", fixtures::departments_value()),
        ("DEPARTMENTS-1NF", fixtures::departments_1nf_value()),
        ("PROJECTS-1NF", fixtures::projects_1nf_value()),
        ("MEMBERS-1NF", fixtures::members_1nf_value()),
        ("EQUIP-1NF", fixtures::equip_1nf_value()),
        ("EMPLOYEES-1NF", fixtures::employees_1nf_value()),
        ("REPORTS", fixtures::reports_value()),
    ] {
        for t in value.tuples {
            db.insert_tuple(table, t)?;
        }
    }
    Ok(())
}
