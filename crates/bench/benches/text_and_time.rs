//! Experiments TXT and ASOF — the §5 extras.
//!
//! * `text_search` — the word-fragment index vs a full scan for the
//!   paper's `*comput*` mask, at growing document counts. Expected: the
//!   index cost grows with the *result*, the scan with the *corpus*.
//! * `asof_reconstruction` — ASOF reads against version chains of
//!   growing length. Expected: point lookups stay cheap (binary search
//!   per chain).

use aim2_model::value::build::{a, rel, tup};
use aim2_model::{Date, TableKind};
use aim2_storage::object::ObjectHandle;
use aim2_storage::tid::{PageId, SlotNo, Tid};
use aim2_text::{Pattern, TextIndex};
use aim2_time::VersionedTable;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const WORDS: [&str; 12] = [
    "database",
    "system",
    "storage",
    "relation",
    "hierarchy",
    "computer",
    "index",
    "query",
    "minicomputer",
    "optimization",
    "recovery",
    "concurrency",
];

fn corpus(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            let w1 = WORDS[i % WORDS.len()];
            let w2 = WORDS[(i * 5 + 1) % WORDS.len()];
            let w3 = WORDS[(i * 7 + 3) % WORDS.len()];
            format!("report {i} on {w1} and {w2} for {w3} engineering")
        })
        .collect()
}

fn text_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("text_search_comput");
    let pattern = Pattern::parse("*comput*");
    for n in [100usize, 1000, 10_000] {
        let docs = corpus(n);
        let mut idx = TextIndex::new();
        for (i, d) in docs.iter().enumerate() {
            idx.add_document(i as u64, d);
        }
        group.bench_with_input(BenchmarkId::new("fragment_index", n), &(), |b, _| {
            b.iter(|| black_box(idx.search(&pattern)))
        });
        group.bench_with_input(BenchmarkId::new("full_scan", n), &(), |b, _| {
            b.iter(|| black_box(idx.scan_search(&pattern)))
        });
    }
    group.finish();
}

fn asof_reconstruction(c: &mut Criterion) {
    let mut group = c.benchmark_group("asof_reconstruction");
    for versions in [2usize, 16, 128] {
        let mut vt = VersionedTable::new(TableKind::Relation);
        // 50 objects, each with `versions` states.
        for obj in 0..50u32 {
            let h = ObjectHandle(Tid::new(PageId(obj), SlotNo(0)));
            for v in 0..versions {
                let day = Date::from_ymd(1980, 1, 1).unwrap();
                let t = Date(day.0 + (v as i32) * 30);
                vt.record_state(h, t, tup(vec![a(obj as i64), a(v as i64), rel(vec![])]));
            }
        }
        let probe = Date::from_ymd(1981, 6, 15).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(versions), &(), |b, _| {
            b.iter(|| black_box(vt.table_asof(probe)))
        });
    }
    group.finish();
}

criterion_group!(benches, text_search, asof_reconstruction);
criterion_main!(benches);
