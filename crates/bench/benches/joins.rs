//! Experiments MAT, F3/T7, F1 — hierarchies as materialized joins.
//!
//! * `materialized_join` — Example 4's observation: "hierarchical tables
//!   can be used to store pre-computed (materialized) joins". Unnesting
//!   the stored hierarchy vs re-computing the 3-way flat join, at
//!   growing scale. Expected: the NF² unnest wins by a growing factor.
//! * `nest_unnest` — the algebra operators themselves (Fig 3 / Table 7).
//! * `ims_vs_nf2` — Fig 1: record-at-a-time GN navigation over the full
//!   database vs one declarative query through the evaluator.

use aim2_bench::{flatten_departments, fresh_segment, gen_departments, WorkloadSpec};
use aim2_exec::algebra::{equijoin, nest, unnest, unnest_path};
use aim2_exec::{Evaluator, MemProvider};
use aim2_lang::parser::parse_query;
use aim2_model::{fixtures, AtomType, TableSchema};
use aim2_storage::ims::{Cursor, ImsStore};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn members_schema() -> TableSchema {
    TableSchema::relation("MEMBERS-1NF")
        .with_atom("EMPNO", AtomType::Int)
        .with_atom("PNO", AtomType::Int)
        .with_atom("DNO", AtomType::Int)
        .with_atom("FUNCTION", AtomType::Str)
}

fn materialized_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("materialized_join");
    group.sample_size(10);
    for depts in [10usize, 50, 200] {
        let spec = WorkloadSpec {
            departments: depts,
            projects_per_dept: 5,
            members_per_project: 8,
            equip_per_dept: 3,
            seed: 1,
        };
        let schema = fixtures::departments_schema();
        let nf2 = gen_departments(&spec);
        let (d1, p1, m1) = flatten_departments(&nf2);
        let ds = fixtures::departments_1nf_schema();
        let ps = fixtures::projects_1nf_schema();
        let ms = members_schema();

        // --- Target: the GROUPED (hierarchical) result — the CAD access
        // pattern. The stored NF² hierarchy IS the materialized join.
        group.bench_with_input(
            BenchmarkId::new("grouped_nf2_stored", depts),
            &(),
            |b, _| b.iter(|| black_box(nf2.clone())),
        );
        group.bench_with_input(
            BenchmarkId::new("grouped_flat_join_nest", depts),
            &(),
            |b, _| {
                b.iter(|| {
                    // Rebuild members-per-project from the flat tables:
                    // join members to projects, then nest twice (Fig 3's
                    // work, which the NF² table has pre-computed).
                    let (js, jv) = equijoin(&ms, &m1, "PNO", &ps, &p1, "PNO").unwrap();
                    let (ns, nv) = nest(&js, &jv, &["EMPNO", "FUNCTION"], "MEMBERS").unwrap();
                    let (js2, jv2) = equijoin(&ns, &nv, "DNO", &ds, &d1, "DNO").unwrap();
                    black_box(nest(&js2, &jv2, &["PNO", "PNAME", "MEMBERS"], "PROJECTS").unwrap())
                })
            },
        );

        // --- Target: the FLAT result (Example 4 / Table 7). The fused
        // unnest walks the hierarchy once; the flat side recomputes the
        // 3-way join.
        let keep = ["DNO", "MGRNO", "PNO", "PNAME", "EMPNO", "FUNCTION"];
        group.bench_with_input(BenchmarkId::new("flat_nf2_unnest", depts), &(), |b, _| {
            b.iter(|| {
                black_box(unnest_path(&schema, &nf2, &["PROJECTS", "MEMBERS"], &keep).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("flat_3way_join", depts), &(), |b, _| {
            b.iter(|| {
                let (js, jv) = equijoin(&ps, &p1, "DNO", &ds, &d1, "DNO").unwrap();
                black_box(equijoin(&ms, &m1, "PNO", &js, &jv, "PNO").unwrap())
            })
        });
    }
    group.finish();
}

fn nest_unnest(c: &mut Criterion) {
    let spec = WorkloadSpec {
        departments: 100,
        projects_per_dept: 5,
        members_per_project: 8,
        equip_per_dept: 3,
        seed: 2,
    };
    let nf2 = gen_departments(&spec);
    let (_, _, m1) = flatten_departments(&nf2);
    let schema = fixtures::departments_schema();
    let ms = members_schema();
    let mut group = c.benchmark_group("nest_unnest");
    group.bench_function("unnest_projects", |b| {
        b.iter(|| black_box(unnest(&schema, &nf2, "PROJECTS").unwrap()))
    });
    group.bench_function("nest_members_by_project", |b| {
        b.iter(|| black_box(nest(&ms, &m1, &["EMPNO", "FUNCTION"], "MS").unwrap()))
    });
    group.finish();
}

fn ims_vs_nf2(c: &mut Criterion) {
    let spec = WorkloadSpec {
        departments: 50,
        projects_per_dept: 4,
        members_per_project: 6,
        equip_per_dept: 3,
        seed: 4,
    };
    let schema = fixtures::departments_schema();
    let value = gen_departments(&spec);
    let mut group = c.benchmark_group("ims_vs_nf2");
    group.sample_size(10);

    let mut ims = ImsStore::from_schema(fresh_segment(1024, 512), &schema);
    for t in &value.tuples {
        ims.load_record(&schema, t).unwrap();
    }
    group.bench_function("ims_gn_full_traversal", |b| {
        b.iter(|| {
            let mut cur = Cursor::default();
            let mut n = 0u32;
            while ims.gn(&mut cur).unwrap().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });

    let mut provider = MemProvider::new();
    provider.add(schema.clone(), value.clone());
    let q = parse_query(
        "SELECT x.DNO, x.MGRNO, y.PNO, z.EMPNO FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS",
    )
    .unwrap();
    group.bench_function("nf2_declarative_query", |b| {
        b.iter(|| {
            let mut ev = Evaluator::new(&mut provider);
            black_box(ev.eval_query(&q).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, materialized_join, nest_unnest, ims_vs_nf2);
criterion_main!(benches);
