//! Experiments CLU, MOVE, LOR — the §4.1 storage claims.
//!
//! * `clustering_cold_read` — cold whole-object read with a cleared
//!   buffer pool: the clustered (page-list) policy touches ~object-size
//!   pages; the scattered baseline faults once per subtuple region.
//! * `object_move` — page-level move (MD) vs record-by-record move with
//!   pointer rewriting (Lorie /LP83/).
//! * `lorie_partial` — reading ONE subtable: the MD store navigates the
//!   directory; the Lorie store chases the whole child chain through
//!   data records.

use aim2_bench::{fresh_segment, gen_departments, loaded_store, WorkloadSpec};
use aim2_model::{fixtures, Path};
use aim2_storage::lorie::LorieStore;
use aim2_storage::minidir::LayoutKind;
use aim2_storage::object::{ClusterPolicy, ObjectStore};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        departments: 32,
        projects_per_dept: 5,
        members_per_project: 8,
        equip_per_dept: 4,
        seed: 3,
    }
}

fn clustering_cold_read(c: &mut Criterion) {
    let schema = fixtures::departments_schema();
    let value = gen_departments(&spec());
    let mut group = c.benchmark_group("clustering_cold_read");
    group.sample_size(10);
    for (name, policy) in [
        ("clustered", ClusterPolicy::Clustered),
        ("scattered", ClusterPolicy::Scattered),
    ] {
        let (mut os, handles) = loaded_store(LayoutKind::Ss3, policy, 512, 1024, &schema, &value);
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
            let mut i = 0;
            b.iter(|| {
                os.segment_mut().pool_mut().clear_cache().unwrap();
                let h = handles[i % handles.len()];
                i += 1;
                black_box(os.read_object(&schema, h).unwrap())
            })
        });
    }
    group.finish();
}

fn object_move(c: &mut Criterion) {
    let schema = fixtures::departments_schema();
    let dept = fixtures::department_314();
    let mut group = c.benchmark_group("object_move");
    group.sample_size(10);

    group.bench_function("md_page_list", |b| {
        let mut os = ObjectStore::new(fresh_segment(512, 256), LayoutKind::Ss3);
        let h = os.insert_object(&schema, &dept).unwrap();
        b.iter(|| {
            os.move_object(h).unwrap();
            black_box(h)
        })
    });

    group.bench_function("lorie_chains", |b| {
        let mut ls = LorieStore::new(fresh_segment(512, 256));
        let mut root = ls.insert_object(&schema, &dept).unwrap();
        b.iter(|| {
            root = ls.move_object(&schema, root).unwrap();
            black_box(root)
        })
    });
    group.finish();
}

fn partial_subtable_read(c: &mut Criterion) {
    let schema = fixtures::departments_schema();
    // Large objects: many projects, tiny EQUIP — "it should not be
    // necessary to scan a complex object more or less entirely if only
    // one piece of data is needed" (§4.1). The Lorie layout must chase
    // the whole first-level child chain (40 projects + equipment); the
    // MD layout follows one C pointer.
    let value = gen_departments(&WorkloadSpec {
        departments: 16,
        projects_per_dept: 40,
        members_per_project: 6,
        equip_per_dept: 3,
        seed: 5,
    });
    let equip = Path::parse("EQUIP");
    let mut group = c.benchmark_group("one_subtable_read");

    let (mut os, handles) = loaded_store(
        LayoutKind::Ss3,
        ClusterPolicy::Clustered,
        512,
        1024,
        &schema,
        &value,
    );
    group.bench_function("md_directory", |b| {
        let mut i = 0;
        b.iter(|| {
            let h = handles[i % handles.len()];
            i += 1;
            black_box(
                os.read_object_projected(&schema, h, &|p| equip.is_prefix_of(p))
                    .unwrap(),
            )
        })
    });

    let mut ls = LorieStore::new(fresh_segment(512, 1024));
    let roots: Vec<_> = value
        .tuples
        .iter()
        .map(|t| ls.insert_object(&schema, t).unwrap())
        .collect();
    group.bench_function("lorie_child_chain", |b| {
        let mut i = 0;
        b.iter(|| {
            let r = roots[i % roots.len()];
            i += 1;
            black_box(ls.read_subtable(&schema, r, "EQUIP").unwrap())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    clustering_cold_read,
    object_move,
    partial_subtable_read
);
criterion_main!(benches);
