//! Concurrent-session throughput over the transaction layer.
//!
//! Two questions the lock manager must answer well:
//! * `concurrent_read_scaling` — read-only sessions take compatible S
//!   table locks, so aggregate throughput should scale as threads grow
//!   from 1 to 8 (each sample runs a fixed total number of queries,
//!   split across the threads; falling wall-time = scaling).
//! * `mixed_writers_readers` — N writers transferring between objects
//!   (IX table + X object locks) while M readers sum balances under S,
//!   per storage layout (SS1/SS2/SS3) and the flat 1NF heap. This is
//!   the check-out workload of §4.1 under contention.
//!
//! Everything is seeded and thread counts are fixed, so the work per
//! sample is identical across runs; only the interleaving varies.

use aim2::{Database, DbConfig};
use aim2_model::{Atom, Value};
use aim2_storage::minidir::LayoutKind;
use aim2_storage::object::ElemLoc;
use aim2_txn::{Session, SharedDatabase};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::{Arc, Barrier};

const ACCOUNTS: i64 = 24;
const INITIAL: i64 = 1000;
const TOTAL_READS: usize = 64; // per sample, split across reader threads
const WRITER_TXNS: usize = 8; // per writer per sample
const SEED: u64 = 0xC0FFEE;

#[derive(Clone, Copy)]
enum Variant {
    Nf2(LayoutKind),
    Flat,
}

impl Variant {
    const ALL: [Variant; 4] = [
        Variant::Nf2(LayoutKind::Ss1),
        Variant::Nf2(LayoutKind::Ss2),
        Variant::Nf2(LayoutKind::Ss3),
        Variant::Flat,
    ];

    fn name(self) -> &'static str {
        match self {
            Variant::Nf2(LayoutKind::Ss1) => "ss1",
            Variant::Nf2(LayoutKind::Ss2) => "ss2",
            Variant::Nf2(LayoutKind::Ss3) => "ss3",
            Variant::Flat => "flat",
        }
    }
}

struct Lcg(u64);

impl Lcg {
    fn range(&mut self, n: u64) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) % n
    }
}

fn setup(v: Variant) -> SharedDatabase {
    let mut db = Database::with_config(DbConfig::default());
    match v {
        Variant::Nf2(layout) => {
            let using = match layout {
                LayoutKind::Ss1 => "SS1",
                LayoutKind::Ss2 => "SS2",
                LayoutKind::Ss3 => "SS3",
            };
            db.execute(&format!(
                "CREATE TABLE ACCOUNTS ( ANO INTEGER, BAL INTEGER, \
                 HIST {{ SEQ INTEGER }} ) USING {using}"
            ))
            .unwrap();
            for i in 0..ACCOUNTS {
                db.execute(&format!(
                    "INSERT INTO ACCOUNTS VALUES ({i}, {INITIAL}, {{(0)}})"
                ))
                .unwrap();
            }
        }
        Variant::Flat => {
            db.execute("CREATE TABLE ACCOUNTS ( ANO INTEGER, BAL INTEGER )")
                .unwrap();
            for i in 0..ACCOUNTS {
                db.execute(&format!("INSERT INTO ACCOUNTS VALUES ({i}, {INITIAL})"))
                    .unwrap();
            }
        }
    }
    SharedDatabase::new(db)
}

fn int_atom(v: &Value) -> i64 {
    match v {
        Value::Atom(Atom::Int(i)) => *i,
        other => panic!("expected integer atom, got {other:?}"),
    }
}

fn sum_balances(s: &mut Session) -> i64 {
    let (_, rows) = s.query("SELECT x.BAL FROM x IN ACCOUNTS").unwrap();
    rows.tuples.iter().map(|t| int_atom(&t.fields[0])).sum()
}

/// One object-granularity transfer, retried until it commits.
fn transfer_nf2(shared: &SharedDatabase, from: usize, to: usize, amount: i64) {
    loop {
        let mut s = shared.session();
        let run = (|| {
            let handles = s.handles("ACCOUNTS")?;
            let (hf, ht) = (handles[from], handles[to]);
            let tf = s.checkout("ACCOUNTS", hf)?;
            let tt = s.checkout("ACCOUNTS", ht)?;
            let bf = int_atom(&tf.fields[1]);
            let bt = int_atom(&tt.fields[1]);
            s.update_atoms(
                "ACCOUNTS",
                hf,
                &ElemLoc::object(),
                &[Atom::Int(from as i64), Atom::Int(bf - amount)],
            )?;
            s.update_atoms(
                "ACCOUNTS",
                ht,
                &ElemLoc::object(),
                &[Atom::Int(to as i64), Atom::Int(bt + amount)],
            )?;
            s.commit()
        })();
        match run {
            Ok(()) => return,
            Err(e) if e.is_retryable() => {
                if s.txn_id().is_some() {
                    s.rollback().unwrap();
                }
            }
            Err(e) => panic!("transfer failed: {e}"),
        }
    }
}

/// One statement-level transfer (S → X upgrade), retried until commit.
fn transfer_flat(shared: &SharedDatabase, from: usize, to: usize, amount: i64) {
    loop {
        let mut s = shared.session();
        let run = (|| {
            let (_, rows) = s.query(&format!(
                "SELECT x.ANO, x.BAL FROM x IN ACCOUNTS \
                 WHERE x.ANO = {from} OR x.ANO = {to}"
            ))?;
            let bal = |ano: i64| {
                rows.tuples
                    .iter()
                    .find(|t| int_atom(&t.fields[0]) == ano)
                    .map(|t| int_atom(&t.fields[1]))
                    .unwrap()
            };
            let (bf, bt) = (bal(from as i64), bal(to as i64));
            s.execute(&format!(
                "UPDATE x IN ACCOUNTS SET x.BAL = {} WHERE x.ANO = {from}",
                bf - amount
            ))?;
            s.execute(&format!(
                "UPDATE x IN ACCOUNTS SET x.BAL = {} WHERE x.ANO = {to}",
                bt + amount
            ))?;
            s.commit()
        })();
        match run {
            Ok(()) => return,
            Err(e) if e.is_retryable() => {
                if s.txn_id().is_some() {
                    s.rollback().unwrap();
                }
            }
            Err(e) => panic!("transfer failed: {e}"),
        }
    }
}

/// Fixed total work split over `threads` readers; wall-time per sample
/// drops as S-lock parallelism pays off.
fn concurrent_read_scaling(c: &mut Criterion) {
    let shared = setup(Variant::Nf2(LayoutKind::Ss3));
    let mut group = c.benchmark_group("concurrent_read_scaling");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("t{threads}")),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let barrier = Arc::new(Barrier::new(threads));
                    let joins: Vec<_> = (0..threads)
                        .map(|_| {
                            let shared = shared.clone();
                            let barrier = barrier.clone();
                            std::thread::spawn(move || {
                                barrier.wait();
                                let mut acc = 0i64;
                                for _ in 0..TOTAL_READS / threads {
                                    let mut s = shared.session();
                                    acc += sum_balances(&mut s);
                                    s.commit().unwrap();
                                }
                                acc
                            })
                        })
                        .collect();
                    let total: i64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
                    black_box(total)
                })
            },
        );
    }
    group.finish();
}

/// 2 writers × 2 readers per layout: object check-out writes against
/// statement reads under the multi-granularity protocol.
fn mixed_writers_readers(c: &mut Criterion) {
    let mut group = c.benchmark_group("mixed_writers_readers");
    group.sample_size(10);
    for v in Variant::ALL {
        let shared = setup(v);
        group.bench_with_input(BenchmarkId::from_parameter(v.name()), &v, |b, &v| {
            b.iter(|| {
                const WRITERS: usize = 2;
                const READERS: usize = 2;
                let barrier = Arc::new(Barrier::new(WRITERS + READERS));
                let mut joins = Vec::new();
                for w in 0..WRITERS {
                    let shared = shared.clone();
                    let barrier = barrier.clone();
                    joins.push(std::thread::spawn(move || {
                        let mut rng = Lcg(SEED ^ (w as u64 + 1));
                        barrier.wait();
                        for _ in 0..WRITER_TXNS {
                            let from = rng.range(ACCOUNTS as u64) as usize;
                            let to = ((from + 1) as u64 + rng.range(ACCOUNTS as u64 - 1)) as usize
                                % ACCOUNTS as usize;
                            match v {
                                Variant::Nf2(_) => transfer_nf2(&shared, from, to, 1),
                                Variant::Flat => transfer_flat(&shared, from, to, 1),
                            }
                        }
                    }));
                }
                for _ in 0..READERS {
                    let shared = shared.clone();
                    let barrier = barrier.clone();
                    joins.push(std::thread::spawn(move || {
                        barrier.wait();
                        for _ in 0..WRITER_TXNS {
                            let mut s = shared.session();
                            black_box(sum_balances(&mut s));
                            s.commit().unwrap();
                        }
                    }));
                }
                for j in joins {
                    j.join().unwrap();
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, concurrent_read_scaling, mixed_writers_readers);
criterion_main!(benches);
