//! Ablations of the reproduction's own design knobs:
//!
//! * `projection_pushdown` — the referenced-path analysis of §4.1's
//!   partial-retrieval demand, on vs off, for a narrow query over large
//!   objects;
//! * `page_size` — whole-object read across page sizes (MD navigation
//!   amortizes over fewer, larger pages);
//! * `buffer_frames` — cold scans under shrinking buffer pools
//!   (file-backed, so misses cost real I/O).

use aim2_bench::{gen_departments, loaded_store, StoreProvider, WorkloadSpec};
use aim2_exec::Evaluator;
use aim2_lang::parser::parse_query;
use aim2_model::fixtures;
use aim2_storage::buffer::BufferPool;
use aim2_storage::disk::FileDisk;
use aim2_storage::minidir::LayoutKind;
use aim2_storage::object::{ClusterPolicy, ObjectStore};
use aim2_storage::segment::Segment;
use aim2_storage::stats::Stats;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn projection_pushdown(c: &mut Criterion) {
    let schema = fixtures::departments_schema();
    let value = gen_departments(&WorkloadSpec {
        departments: 48,
        projects_per_dept: 8,
        members_per_project: 10,
        equip_per_dept: 3,
        seed: 21,
    });
    let (store, _) = loaded_store(
        LayoutKind::Ss3,
        ClusterPolicy::Clustered,
        4096,
        1024,
        &schema,
        &value,
    );
    let mut provider = StoreProvider::single("DEPARTMENTS", schema, store);
    let q = parse_query("SELECT x.DNO FROM x IN DEPARTMENTS WHERE EXISTS e IN x.EQUIP : e.QU > 3")
        .unwrap();
    let mut group = c.benchmark_group("projection_pushdown");
    for on in [true, false] {
        group.bench_with_input(
            BenchmarkId::from_parameter(if on { "on" } else { "off" }),
            &on,
            |b, &on| {
                b.iter(|| {
                    let mut ev = Evaluator::new(&mut provider);
                    ev.projection_pushdown = on;
                    black_box(ev.eval_query(&q).unwrap())
                })
            },
        );
    }
    group.finish();
}

fn page_size(c: &mut Criterion) {
    let schema = fixtures::departments_schema();
    let value = gen_departments(&WorkloadSpec {
        departments: 32,
        projects_per_dept: 6,
        members_per_project: 8,
        equip_per_dept: 4,
        seed: 22,
    });
    let mut group = c.benchmark_group("page_size_object_read");
    for ps in [512usize, 2048, 8192] {
        let (mut os, handles) = loaded_store(
            LayoutKind::Ss3,
            ClusterPolicy::Clustered,
            ps,
            1024,
            &schema,
            &value,
        );
        group.bench_with_input(BenchmarkId::from_parameter(ps), &(), |b, _| {
            let mut i = 0;
            b.iter(|| {
                let h = handles[i % handles.len()];
                i += 1;
                black_box(os.read_object(&schema, h).unwrap())
            })
        });
    }
    group.finish();
}

fn buffer_frames(c: &mut Criterion) {
    let schema = fixtures::departments_schema();
    let value = gen_departments(&WorkloadSpec {
        departments: 64,
        projects_per_dept: 5,
        members_per_project: 8,
        equip_per_dept: 3,
        seed: 23,
    });
    let dir = std::env::temp_dir().join(format!("aim2_bench_bp_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut group = c.benchmark_group("buffer_frames_scan");
    group.sample_size(10);
    for frames in [4usize, 32, 512] {
        let file = dir.join(format!("frames_{frames}.seg"));
        let _ = std::fs::remove_file(&file);
        let disk = FileDisk::open(&file, 1024).unwrap();
        let pool = BufferPool::new(Box::new(disk), frames, Stats::new());
        let mut os = ObjectStore::new(Segment::new(pool), LayoutKind::Ss3);
        let handles: Vec<_> = value
            .tuples
            .iter()
            .map(|t| os.insert_object(&schema, t).unwrap())
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(frames), &(), |b, _| {
            b.iter(|| {
                let mut n = 0usize;
                for h in &handles {
                    n += os.read_object(&schema, *h).unwrap().arity();
                }
                black_box(n)
            })
        });
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn index_maintenance(c: &mut Criterion) {
    // Cost of keeping an attribute index consistent through object
    // mutations (the facade unindexes + re-indexes the touched object).
    use aim2_index::address::Scheme;
    use aim2_index::index::NfIndex;
    use aim2_model::Path;

    let schema = fixtures::departments_schema();
    let value = gen_departments(&WorkloadSpec {
        departments: 64,
        projects_per_dept: 5,
        members_per_project: 8,
        equip_per_dept: 3,
        seed: 31,
    });
    let mut group = c.benchmark_group("index_maintenance");
    for scheme in [Scheme::RootTid, Scheme::Hierarchical] {
        let (mut store, handles) = loaded_store(
            LayoutKind::Ss3,
            ClusterPolicy::Clustered,
            4096,
            1024,
            &schema,
            &value,
        );
        let mut idx = NfIndex::create(
            aim2_bench::fresh_segment(4096, 256),
            &schema,
            &Path::parse("PROJECTS.MEMBERS.FUNCTION"),
            scheme,
        )
        .unwrap();
        idx.build(&mut store, &schema).unwrap();
        group.bench_with_input(
            BenchmarkId::new("reindex_one_object", scheme.name()),
            &(),
            |b, _| {
                let mut i = 0;
                b.iter(|| {
                    let h = handles[i % handles.len()];
                    i += 1;
                    idx.unindex_object(&mut store, &schema, h).unwrap();
                    idx.index_object(&mut store, &schema, h).unwrap();
                    black_box(h)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    projection_pushdown,
    page_size,
    buffer_frames,
    index_maintenance
);
criterion_main!(benches);
