//! Experiment F7 / Q-EX — §4.2's three queries under each address
//! scheme, at scale.
//!
//! Expected shape (the paper's argument, measured):
//! * query 1 (objects with key): data-TID falls back to a full scan —
//!   slowest by far; root-TID and hierarchical are index-speed;
//! * query 2 (subobjects with key): hierarchical answers from the index;
//!   root-TID must walk each candidate object's subtables;
//! * query 3 (conjunctive): only hierarchical (Fig 7b) joins `P2 = F2`
//!   in the index; the others verify a superset by scanning.

use aim2_bench::{fresh_segment, gen_departments, loaded_store, WorkloadSpec};
use aim2_exec::planner::Sec42Planner;
use aim2_index::address::Scheme;
use aim2_index::index::NfIndex;
use aim2_model::{fixtures, Atom, Path};
use aim2_storage::minidir::LayoutKind;
use aim2_storage::object::ClusterPolicy;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn setup(
    scheme: Scheme,
) -> (
    aim2_model::TableSchema,
    aim2_storage::object::ObjectStore,
    NfIndex,
    NfIndex,
) {
    let schema = fixtures::departments_schema();
    let spec = WorkloadSpec {
        departments: 200,
        projects_per_dept: 5,
        members_per_project: 8,
        equip_per_dept: 3,
        seed: 7,
    };
    let value = gen_departments(&spec);
    let (mut os, _) = loaded_store(
        LayoutKind::Ss3,
        ClusterPolicy::Clustered,
        4096,
        1024,
        &schema,
        &value,
    );
    let mut f_idx = NfIndex::create(
        fresh_segment(4096, 256),
        &schema,
        &Path::parse("PROJECTS.MEMBERS.FUNCTION"),
        scheme,
    )
    .unwrap();
    f_idx.build(&mut os, &schema).unwrap();
    let mut p_idx = NfIndex::create(
        fresh_segment(4096, 256),
        &schema,
        &Path::parse("PROJECTS.PNO"),
        scheme,
    )
    .unwrap();
    p_idx.build(&mut os, &schema).unwrap();
    (schema, os, f_idx, p_idx)
}

fn q1_objects_with(c: &mut Criterion) {
    let mut group = c.benchmark_group("sec42_q1_departments_with_consultant");
    group.sample_size(10);
    for scheme in Scheme::ALL {
        let (schema, mut os, mut f_idx, _) = setup(scheme);
        group.bench_with_input(BenchmarkId::from_parameter(scheme.name()), &(), |b, _| {
            b.iter(|| {
                let mut planner = Sec42Planner::new(&mut os, &schema);
                black_box(
                    planner
                        .objects_with(&mut f_idx, &Atom::Str("Consultant".into()))
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn q2_subobjects_with(c: &mut Criterion) {
    let mut group = c.benchmark_group("sec42_q2_projects_with_consultant");
    group.sample_size(10);
    for scheme in Scheme::ALL {
        let (schema, mut os, mut f_idx, _) = setup(scheme);
        group.bench_with_input(BenchmarkId::from_parameter(scheme.name()), &(), |b, _| {
            b.iter(|| {
                let mut planner = Sec42Planner::new(&mut os, &schema);
                black_box(
                    planner
                        .subobjects_with(&mut f_idx, &Atom::Str("Consultant".into()))
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn q3_conjunctive(c: &mut Criterion) {
    let mut group = c.benchmark_group("sec42_q3_conjunctive_pno_and_function");
    group.sample_size(10);
    for scheme in Scheme::ALL {
        let (schema, mut os, mut f_idx, mut p_idx) = setup(scheme);
        group.bench_with_input(BenchmarkId::from_parameter(scheme.name()), &(), |b, _| {
            b.iter(|| {
                let mut planner = Sec42Planner::new(&mut os, &schema);
                black_box(
                    planner
                        .conjunctive(
                            &mut p_idx,
                            &Atom::Int(17),
                            &mut f_idx,
                            &Atom::Str("Consultant".into()),
                        )
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, q1_objects_with, q2_subobjects_with, q3_conjunctive);
criterion_main!(benches);
