//! Experiment F6 — the storage-structure alternatives of Fig 6.
//!
//! Measures what §4.1 argues qualitatively: SS1/SS2/SS3 trade Mini
//! Directory size against access characteristics. Groups:
//! * `ss_insert`  — building complex objects under each layout;
//! * `ss_read`    — whole-object materialization;
//! * `ss_partial` — partial retrieval of one subtable (EQUIP), where
//!   structure/data separation pays off.
//!
//! Expected shape: SS2 builds the fewest MD subtuples (fastest insert);
//! reads are close across layouts; partial reads touch a small fraction
//! of the full-read cost under every layout.

use aim2_bench::{gen_departments, loaded_store, WorkloadSpec};
use aim2_model::{fixtures, Path};
use aim2_storage::minidir::LayoutKind;
use aim2_storage::object::{ClusterPolicy, ObjectStore};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        departments: 64,
        projects_per_dept: 6,
        members_per_project: 10,
        equip_per_dept: 5,
        seed: 42,
    }
}

fn ss_insert(c: &mut Criterion) {
    let schema = fixtures::departments_schema();
    let value = gen_departments(&spec());
    let mut group = c.benchmark_group("ss_insert");
    group.sample_size(10);
    for layout in LayoutKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(layout.name()),
            &layout,
            |b, &layout| {
                b.iter(|| {
                    let mut os = ObjectStore::new(aim2_bench::fresh_segment(4096, 512), layout);
                    for t in &value.tuples {
                        black_box(os.insert_object(&schema, t).unwrap());
                    }
                })
            },
        );
    }
    group.finish();
}

fn ss_read(c: &mut Criterion) {
    let schema = fixtures::departments_schema();
    let value = gen_departments(&spec());
    let mut group = c.benchmark_group("ss_read");
    for layout in LayoutKind::ALL {
        let (mut os, handles) =
            loaded_store(layout, ClusterPolicy::Clustered, 4096, 512, &schema, &value);
        group.bench_with_input(
            BenchmarkId::from_parameter(layout.name()),
            &layout,
            |b, _| {
                let mut i = 0;
                b.iter(|| {
                    let h = handles[i % handles.len()];
                    i += 1;
                    black_box(os.read_object(&schema, h).unwrap())
                })
            },
        );
    }
    group.finish();
}

fn ss_partial(c: &mut Criterion) {
    let schema = fixtures::departments_schema();
    let value = gen_departments(&spec());
    let equip = Path::parse("EQUIP");
    let mut group = c.benchmark_group("ss_partial_equip_only");
    for layout in LayoutKind::ALL {
        let (mut os, handles) =
            loaded_store(layout, ClusterPolicy::Clustered, 4096, 512, &schema, &value);
        group.bench_with_input(
            BenchmarkId::from_parameter(layout.name()),
            &layout,
            |b, _| {
                let mut i = 0;
                b.iter(|| {
                    let h = handles[i % handles.len()];
                    i += 1;
                    black_box(
                        os.read_object_projected(&schema, h, &|p| equip.is_prefix_of(p))
                            .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, ss_insert, ss_read, ss_partial);
criterion_main!(benches);
