//! Emit `BENCH_SERVER.json` — the network service layer under
//! concurrent clients.
//!
//! ```text
//! cargo run --release -p aim2-bench --bin bench_server
//! ```
//!
//! One `aim2-server` on a loopback socket serves the paper fixture;
//! N client connections (1 → 64) each loop a read-only snapshot
//! transaction over the §3/§5 paper query suite, reassembling every
//! streamed result. Per cell the harness records completed queries,
//! throughput, exact p50/p95/p99 per-query latency (connect-to-last-
//! frame, measured client-side), and the engine's `txn.lock_wait`
//! delta — which must stay **zero**: every network read runs on an
//! MVCC snapshot and never touches the lock manager.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use aim2::Database;
use aim2_model::fixtures;
use aim2_net::{Client, Server, ServerConfig};
use aim2_txn::SharedDatabase;

const CONN_COUNTS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];
const CELL_MS: u64 = 250;
const FETCH: u32 = 64;

/// The §3/§5 example corpus — the same statements the equivalence
/// suites pin, here exercised for throughput.
const PAPER_QUERIES: &[&str] = &[
    "SELECT x.DNO, x.MGRNO, x.PROJECTS, x.BUDGET, x.EQUIP FROM x IN DEPARTMENTS",
    "SELECT * FROM DEPARTMENTS",
    "SELECT x.DNO, x.MGRNO,
        PROJECTS = (SELECT y.PNO, y.PNAME,
            MEMBERS = (SELECT z.EMPNO, z.FUNCTION FROM z IN y.MEMBERS)
            FROM y IN x.PROJECTS),
        x.BUDGET,
        EQUIP = (SELECT v.QU, v.TYPE FROM v IN x.EQUIP)
     FROM x IN DEPARTMENTS",
    "SELECT x.DNO, x.MGRNO, y.PNO, y.PNAME, z.EMPNO, z.FUNCTION
     FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS",
    "SELECT x.DNO, x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS
     WHERE EXISTS y IN x.EQUIP : y.TYPE = 'PC/AT'",
    "SELECT x.DNO, x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS
     WHERE ALL y IN x.PROJECTS : ALL z IN y.MEMBERS : z.FUNCTION = 'Consultant'",
    "SELECT x.AUTHORS, x.TITLE FROM x IN REPORTS WHERE x.AUTHORS[1] = 'Jones A.'",
    "SELECT x.DNO FROM x IN DEPARTMENTS
     WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS : z.FUNCTION = 'Consultant'",
    "SELECT x.REPNO, x.AUTHORS, x.TITLE FROM x IN REPORTS
     WHERE x.TITLE CONTAINS '*comput*' AND EXISTS y IN x.AUTHORS : y.NAME = 'Jones A.'",
];

fn paper_db() -> Database {
    let mut db = Database::in_memory();
    db.execute_script(
        "CREATE TABLE DEPARTMENTS ( DNO INTEGER, MGRNO INTEGER,
           PROJECTS { PNO INTEGER, PNAME STRING,
                      MEMBERS { EMPNO INTEGER, FUNCTION STRING } },
           BUDGET INTEGER, EQUIP { QU INTEGER, TYPE STRING } );
         CREATE TABLE EMPLOYEES-1NF ( EMPNO INTEGER, LNAME STRING, FNAME STRING, SEX STRING );
         CREATE TABLE REPORTS ( REPNO STRING, AUTHORS < NAME STRING >, TITLE TEXT,
                                DESCRIPTORS { WORD STRING, WEIGHT DOUBLE } )",
    )
    .unwrap();
    for (table, value) in [
        ("DEPARTMENTS", fixtures::departments_value()),
        ("EMPLOYEES-1NF", fixtures::employees_1nf_value()),
        ("REPORTS", fixtures::reports_value()),
    ] {
        for t in value.tuples {
            db.insert_tuple(table, t).unwrap();
        }
    }
    db
}

struct Cell {
    conns: usize,
    queries: u64,
    elapsed: Duration,
    p50_ns: u64,
    p95_ns: u64,
    p99_ns: u64,
    lock_waits: u64,
    snapshot_reads: u64,
}

impl Cell {
    fn queries_per_sec(&self) -> f64 {
        self.queries as f64 / self.elapsed.as_secs_f64()
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn run_cell(conns: usize) -> Cell {
    let shared = SharedDatabase::new(paper_db());
    let stats = shared.stats();
    let lock_waits_before = stats.lock_waits();
    let snapshot_reads_before = stats.snapshot_reads();
    let mut handle = Server::start(
        shared,
        ServerConfig {
            max_conns: 2 * CONN_COUNTS[CONN_COUNTS.len() - 1],
            max_inflight: 2 * CONN_COUNTS[CONN_COUNTS.len() - 1],
            ..ServerConfig::default()
        },
    )
    .expect("start server");
    let addr = handle.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(conns + 1));
    let latencies = Arc::new(Mutex::new(Vec::<u64>::new()));
    let mut joins = Vec::new();
    for _ in 0..conns {
        let stop = stop.clone();
        let barrier = barrier.clone();
        let latencies = latencies.clone();
        joins.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr, "bench_server").expect("connect");
            let mut local = Vec::new();
            barrier.wait();
            while !stop.load(Ordering::Relaxed) {
                client.begin(true).expect("begin read-only");
                for sql in PAPER_QUERIES {
                    let t = Instant::now();
                    client.query_fetch(sql, FETCH).expect("query");
                    local.push(t.elapsed().as_nanos() as u64);
                }
                client.commit().expect("commit");
            }
            let _ = client.goodbye();
            latencies.lock().unwrap().extend(local);
        }));
    }

    barrier.wait();
    let started = Instant::now();
    std::thread::sleep(Duration::from_millis(CELL_MS));
    stop.store(true, Ordering::Relaxed);
    for j in joins {
        j.join().expect("bench client panicked");
    }
    let elapsed = started.elapsed();
    handle.shutdown();

    let mut lat = Arc::try_unwrap(latencies)
        .expect("latency vec still shared")
        .into_inner()
        .unwrap();
    lat.sort_unstable();
    Cell {
        conns,
        queries: lat.len() as u64,
        elapsed,
        p50_ns: percentile(&lat, 0.50),
        p95_ns: percentile(&lat, 0.95),
        p99_ns: percentile(&lat, 0.99),
        lock_waits: stats.lock_waits() - lock_waits_before,
        snapshot_reads: stats.snapshot_reads() - snapshot_reads_before,
    }
}

fn main() {
    let mut cells = Vec::new();
    for &conns in &CONN_COUNTS {
        let cell = run_cell(conns);
        eprintln!(
            "conns={conns:<3} queries/s={:>9.0} p50={:>7}ns p95={:>8}ns p99={:>8}ns lock_waits={}",
            cell.queries_per_sec(),
            cell.p50_ns,
            cell.p95_ns,
            cell.p99_ns,
            cell.lock_waits,
        );
        cells.push(cell);
    }

    let rate = |conns: usize| {
        cells
            .iter()
            .find(|c| c.conns == conns)
            .map(Cell::queries_per_sec)
            .unwrap_or(0.0)
    };
    let scaling_1_to_64 = rate(64) / rate(1).max(1e-9);
    let total_lock_waits: u64 = cells.iter().map(|c| c.lock_waits).sum();

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"server_read_scaling\",\n");
    out.push_str(&format!(
        "  \"workload\": {{\"queries\": {}, \"fetch\": {FETCH}, \"cell_ms\": {CELL_MS}, \"txn\": \"begin_read_only; paper suite; commit\"}},\n",
        PAPER_QUERIES.len()
    ));
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"conns\": {}, \"queries\": {}, \"queries_per_sec\": {:.1}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"lock_waits\": {}, \"snapshot_reads\": {}}}{}\n",
            c.conns,
            c.queries,
            c.queries_per_sec(),
            c.p50_ns,
            c.p95_ns,
            c.p99_ns,
            c.lock_waits,
            c.snapshot_reads,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"summary\": {{\"throughput_scaling_1_to_64\": {scaling_1_to_64:.1}, \"reader_lock_waits\": {total_lock_waits}}}\n"
    ));
    out.push_str("}\n");

    std::fs::write("BENCH_SERVER.json", &out).expect("write BENCH_SERVER.json");
    println!("{out}");
    eprintln!("wrote BENCH_SERVER.json (1→64 conn scaling: {scaling_1_to_64:.1}x, reader lock waits: {total_lock_waits})");
}
