//! Emit `BENCH_QUERY.json` — materialized vs streaming execution across
//! physical layouts.
//!
//! ```text
//! cargo run --release -p aim2-bench --bin bench_query
//! ```
//!
//! For each layout (SS1, SS2, SS3 and the flat 1NF heap) the harness
//! runs a selective query (an EXISTS over a large table whose witness is
//! the first object) and a full scan, once through the streaming cursor
//! pipeline and once through the reference materializing evaluator
//! (`Evaluator::materialize = true`). It records wall-clock latency plus
//! the decode counters (`objects_decoded`, `atoms_decoded`,
//! `cursor_early_exits`) that explain the latency — the streamed
//! selective query touches a constant number of objects while the
//! materialized one drains the table.
//!
//! A second section (`"columnar"`) measures the tiered cold store: the
//! same selective equality scan over a 100 000-row flat heap, once
//! against the hot row heap and once after `compact_table` froze the
//! rows into dictionary-encoded columnar blocks. Zone maps prune every
//! block but the one holding the key, so the columnar run decodes two
//! orders of magnitude fewer atoms; the JSON records the pruning
//! counters (`blocks_pruned`, `blocks_decoded`, `values_scanned`) that
//! prove it.

use aim2_bench::{gen_departments, StoreProvider, WorkloadSpec};
use aim2_exec::Evaluator;
use aim2_lang::parser::parse_query;
use aim2_model::value::build::a;
use aim2_model::{fixtures, AtomType, TableKind, TableSchema, TableValue, Tuple};
use aim2_storage::buffer::BufferPool;
use aim2_storage::disk::MemDisk;
use aim2_storage::flatstore::FlatStore;
use aim2_storage::minidir::LayoutKind;
use aim2_storage::object::ObjectStore;
use aim2_storage::segment::Segment;
use aim2_storage::stats::Stats;
use std::time::Instant;

const WARMUP: usize = 3;
const ITERS: usize = 25;

const SPEC: WorkloadSpec = WorkloadSpec {
    departments: 60,
    projects_per_dept: 4,
    members_per_project: 6,
    equip_per_dept: 3,
    seed: 11,
};

const SELECTIVE: &str = "SELECT s.DNO FROM s IN SMALL WHERE EXISTS y IN BIG : y.DNO = 100";
const FULL: &str = "SELECT * FROM BIG";

fn small_schema() -> TableSchema {
    TableSchema::relation("SMALL").with_atom("DNO", AtomType::Int)
}

fn small_value() -> TableValue {
    TableValue {
        kind: TableKind::Relation,
        tuples: vec![Tuple::new(vec![a(1i64)])],
    }
}

fn segment(stats: &Stats) -> Segment {
    Segment::new(BufferPool::new(
        Box::new(MemDisk::new(4096)),
        256,
        stats.clone(),
    ))
}

fn nf2_provider(layout: LayoutKind, stats: &Stats) -> StoreProvider {
    let mut big_schema = fixtures::departments_schema();
    big_schema.name = "BIG".into();
    let mut big = ObjectStore::new(segment(stats), layout);
    for t in &gen_departments(&SPEC).tuples {
        big.insert_object(&big_schema, t).unwrap();
    }
    let mut small = ObjectStore::new(segment(stats), layout);
    for t in &small_value().tuples {
        small.insert_object(&small_schema(), t).unwrap();
    }
    let mut p = StoreProvider::single("BIG", big_schema, big);
    p.add_nf2("SMALL", small_schema(), small);
    p
}

fn flat_provider(stats: &Stats) -> StoreProvider {
    let mut big_schema = fixtures::departments_1nf_schema();
    big_schema.name = "BIG".into();
    let (flat, _, _) = aim2_bench::flatten_departments(&gen_departments(&SPEC));
    let mut big = FlatStore::new(segment(stats));
    big.load(&flat).unwrap();
    let mut small = FlatStore::new(segment(stats));
    small.load(&small_value()).unwrap();
    let mut p = StoreProvider::default();
    p.add_flat("BIG", big_schema, big);
    p.add_flat("SMALL", small_schema(), small);
    p
}

struct Measurement {
    mode: &'static str,
    latency_us: f64,
    objects_decoded: u64,
    atoms_decoded: u64,
    early_exits: u64,
}

fn measure(
    provider: &mut StoreProvider,
    stats: &Stats,
    src: &str,
    materialize: bool,
) -> Measurement {
    let q = parse_query(src).unwrap();
    let run = |provider: &mut StoreProvider| {
        let mut ev = Evaluator::new(provider);
        ev.materialize = materialize;
        ev.eval_query(&q).unwrap()
    };
    for _ in 0..WARMUP {
        run(provider);
    }
    // Counters for exactly one evaluation.
    stats.reset();
    run(provider);
    let snap = stats.snapshot();
    // Latency as the mean over ITERS runs.
    let t0 = Instant::now();
    for _ in 0..ITERS {
        run(provider);
    }
    let latency_us = t0.elapsed().as_secs_f64() * 1e6 / ITERS as f64;
    Measurement {
        mode: if materialize {
            "materialized"
        } else {
            "streaming"
        },
        latency_us,
        objects_decoded: snap.objects_decoded,
        atoms_decoded: snap.atoms_decoded,
        early_exits: snap.cursor_early_exits,
    }
}

fn json_measurement(m: &Measurement) -> String {
    format!(
        "{{\"mode\": \"{}\", \"latency_us\": {:.1}, \"objects_decoded\": {}, \
         \"atoms_decoded\": {}, \"cursor_early_exits\": {}}}",
        m.mode, m.latency_us, m.objects_decoded, m.atoms_decoded, m.early_exits
    )
}

type ProviderBuilder = Box<dyn Fn(&Stats) -> StoreProvider>;

// ====================================================================
// Columnar cold-store section
// ====================================================================

const COLD_ROWS: i64 = 100_000;
/// A key deep in the heap: zone maps leave exactly one block live.
const COLD_KEY: i64 = 99_500;

struct ColdMeasurement {
    mode: &'static str,
    latency_us: f64,
    objects_decoded: u64,
    atoms_decoded: u64,
    blocks_pruned: u64,
    blocks_decoded: u64,
    values_scanned: u64,
}

fn measure_cold(db: &mut aim2::Database, sql: &str, mode: &'static str) -> ColdMeasurement {
    // Counters come from the *first* run, while the block decode cache
    // is still cold — so `blocks_decoded` records the real decode work
    // (warmup would serve the one live block from cache and hide it).
    db.stats().reset();
    db.execute(sql).unwrap();
    let snap = db.stats().snapshot();
    for _ in 0..WARMUP {
        db.execute(sql).unwrap();
    }
    let t0 = Instant::now();
    for _ in 0..ITERS {
        db.execute(sql).unwrap();
    }
    ColdMeasurement {
        mode,
        latency_us: t0.elapsed().as_secs_f64() * 1e6 / ITERS as f64,
        objects_decoded: snap.objects_decoded,
        atoms_decoded: snap.atoms_decoded,
        blocks_pruned: snap.colstore_blocks_pruned,
        blocks_decoded: snap.colstore_blocks_decoded,
        values_scanned: snap.colstore_values_scanned,
    }
}

fn json_cold(m: &ColdMeasurement) -> String {
    format!(
        "{{\"mode\": \"{}\", \"latency_us\": {:.1}, \"objects_decoded\": {}, \
         \"atoms_decoded\": {}, \"blocks_pruned\": {}, \"blocks_decoded\": {}, \
         \"values_scanned\": {}}}",
        m.mode,
        m.latency_us,
        m.objects_decoded,
        m.atoms_decoded,
        m.blocks_pruned,
        m.blocks_decoded,
        m.values_scanned
    )
}

fn columnar_section() -> String {
    let mut db = aim2::Database::in_memory();
    db.execute("CREATE TABLE BIG ( K INTEGER, V INTEGER, W INTEGER, X INTEGER )")
        .unwrap();
    for i in 0..COLD_ROWS {
        db.insert_tuple(
            "BIG",
            Tuple::new(vec![a(i), a(i % 997), a(i % 31), a(i % 7)]),
        )
        .unwrap();
    }
    let sql = format!("SELECT b.V FROM b IN BIG WHERE b.K = {COLD_KEY}");
    let row = measure_cold(&mut db, &sql, "row_heap");
    let (blocks, frozen) = db.compact_table("BIG").unwrap();
    let col = measure_cold(&mut db, &sql, "columnar");
    eprintln!(
        "columnar: {frozen} rows -> {blocks} blocks; row {:.1}us ({} atoms) vs \
         columnar {:.1}us ({} atoms, {} blocks pruned, {} decoded)",
        row.latency_us,
        row.atoms_decoded,
        col.latency_us,
        col.atoms_decoded,
        col.blocks_pruned,
        col.blocks_decoded
    );
    format!(
        "  \"columnar\": {{\n    \"rows\": {COLD_ROWS},\n    \"blocks\": {blocks},\n    \
         \"sql\": \"{}\",\n    \"runs\": [\n      {},\n      {}\n    ]\n  }}",
        sql.replace('"', "\\\""),
        json_cold(&row),
        json_cold(&col)
    )
}

fn main() {
    let layouts: Vec<(&str, ProviderBuilder)> = vec![
        ("SS1", Box::new(|s| nf2_provider(LayoutKind::Ss1, s))),
        ("SS2", Box::new(|s| nf2_provider(LayoutKind::Ss2, s))),
        ("SS3", Box::new(|s| nf2_provider(LayoutKind::Ss3, s))),
        ("flat", Box::new(flat_provider)),
    ];
    let queries = [("selective_exists", SELECTIVE), ("full_scan", FULL)];

    let mut layout_objs = Vec::new();
    for (name, build) in &layouts {
        let stats = Stats::new();
        let mut provider = build(&stats);
        let mut query_objs = Vec::new();
        for (qname, src) in &queries {
            let streaming = measure(&mut provider, &stats, src, false);
            let materialized = measure(&mut provider, &stats, src, true);
            eprintln!(
                "{name:<5} {qname:<17} streaming {:>8.1}us ({} obj) vs materialized {:>8.1}us ({} obj)",
                streaming.latency_us,
                streaming.objects_decoded,
                materialized.latency_us,
                materialized.objects_decoded
            );
            query_objs.push(format!(
                "      {{\"query\": \"{}\", \"sql\": \"{}\", \"runs\": [\n        {},\n        {}\n      ]}}",
                qname,
                src.replace('"', "\\\""),
                json_measurement(&streaming),
                json_measurement(&materialized)
            ));
        }
        layout_objs.push(format!(
            "    {{\"layout\": \"{}\", \"queries\": [\n{}\n    ]}}",
            name,
            query_objs.join(",\n")
        ));
    }

    let columnar = columnar_section();

    let json = format!(
        "{{\n  \"bench\": \"query_streaming\",\n  \"workload\": {{\"departments\": {}, \
         \"projects_per_dept\": {}, \"members_per_project\": {}, \"equip_per_dept\": {}, \
         \"seed\": {}}},\n  \"iters\": {},\n  \"layouts\": [\n{}\n  ],\n{}\n}}\n",
        SPEC.departments,
        SPEC.projects_per_dept,
        SPEC.members_per_project,
        SPEC.equip_per_dept,
        SPEC.seed,
        ITERS,
        layout_objs.join(",\n"),
        columnar
    );
    std::fs::write("BENCH_QUERY.json", &json).expect("write BENCH_QUERY.json");
    eprintln!("wrote BENCH_QUERY.json");
    println!("{json}");
}
