//! Emit `BENCH_MVCC.json` — snapshot readers vs strict-2PL readers
//! under concurrent writers.
//!
//! ```text
//! cargo run --release -p aim2-bench --bin bench_mvcc
//! ```
//!
//! The workload is the paper's own access pattern (§4.1): application
//! threads reading complex objects out of one NF² `ACCOUNTS` table
//! while writer threads check objects out and patch atoms in place.
//! Each read transaction walks every object of the table
//! ([`aim2_txn::Session::handles`] + [`aim2_txn::Session::read_object`]);
//! each writer transaction checks out and updates a batch of objects,
//! holding its object X locks until commit. Each cell runs the same
//! duration in two modes:
//!
//! * `2pl` — readers open ordinary transactions: IS on the table plus
//!   an S lock **per object**, so every walk queues behind whichever
//!   objects the writers currently hold X — reader throughput flatlines
//!   no matter how many reader threads exist;
//! * `mvcc` — readers open read-only snapshot transactions
//!   ([`aim2_txn::Session::begin_read_only`]) and never touch the lock
//!   manager at all: the walk runs against the pinned epoch versions.
//!
//! Per cell the harness records completed read transactions, reads/sec,
//! and the `txn.lock_wait` / `txn.snapshot_reads` counter deltas that
//! explain the separation. The summary pins the headline ratio:
//! 32-thread snapshot readers vs 32-thread 2PL readers.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use aim2::Database;
use aim2_model::Atom;
use aim2_storage::object::ElemLoc;
use aim2_txn::{Session, SharedDatabase};

const ACCOUNTS: i64 = 16;
const READER_COUNTS: [usize; 6] = [1, 2, 4, 8, 16, 32];
const WRITERS: usize = 2;
/// Object updates per writer transaction: the object X locks are held
/// across all of them, the way a real batch write holds its locks to
/// commit.
const UPDATES_PER_TXN: i64 = 8;
const CELL_MS: u64 = 150;

fn setup() -> SharedDatabase {
    let mut db = Database::in_memory();
    db.execute(
        "CREATE TABLE ACCOUNTS ( ANO INTEGER, BAL INTEGER, HIST { SEQ INTEGER } ) USING SS3",
    )
    .unwrap();
    for a in 0..ACCOUNTS {
        db.execute(&format!("INSERT INTO ACCOUNTS VALUES ({a}, 1000, {{(0)}})"))
            .unwrap();
    }
    SharedDatabase::new(db)
}

/// One read transaction: walk every object of the table.
fn read_walk(s: &mut Session) -> bool {
    let Ok(handles) = s.handles("ACCOUNTS") else {
        return false;
    };
    for h in handles {
        if s.read_object("ACCOUNTS", h).is_err() {
            return false;
        }
    }
    true
}

struct Cell {
    mode: &'static str,
    readers: usize,
    reads: u64,
    elapsed: Duration,
    lock_waits: u64,
    snapshot_reads: u64,
}

impl Cell {
    fn reads_per_sec(&self) -> f64 {
        self.reads as f64 / self.elapsed.as_secs_f64()
    }
}

/// Run one (mode, reader-count) cell for [`CELL_MS`] and count the read
/// transactions that completed.
fn run_cell(mode: &'static str, readers: usize) -> Cell {
    let shared = setup();
    let stats = shared.stats();
    let lock_waits_before = stats.lock_waits();
    let snapshot_reads_before = stats.snapshot_reads();

    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(readers + WRITERS + 1));
    let mut joins = Vec::new();

    for w in 0..WRITERS {
        let shared = shared.clone();
        let stop = stop.clone();
        let barrier = barrier.clone();
        joins.push(std::thread::spawn(move || {
            barrier.wait();
            let mut i = 0i64;
            while !stop.load(Ordering::Relaxed) {
                let mut s = shared.session();
                let batch: Result<(), aim2_txn::TxnError> = (|| {
                    let handles = s.handles("ACCOUNTS")?;
                    for _ in 0..UPDATES_PER_TXN {
                        let account = ((w as i64 + WRITERS as i64 * i) % ACCOUNTS) as usize;
                        i += 1;
                        let h = handles[account];
                        s.checkout("ACCOUNTS", h)?;
                        s.update_atoms(
                            "ACCOUNTS",
                            h,
                            &ElemLoc::object(),
                            &[Atom::Int(account as i64), Atom::Int(1000 + (i % 7))],
                        )?;
                    }
                    Ok(())
                })();
                match batch {
                    Ok(()) => s.commit().unwrap(),
                    // Deadlock victim: roll back and move on.
                    Err(_) => {
                        let _ = s.rollback();
                    }
                }
            }
        }));
    }

    for _ in 0..readers {
        let shared = shared.clone();
        let stop = stop.clone();
        let reads = reads.clone();
        let barrier = barrier.clone();
        joins.push(std::thread::spawn(move || {
            barrier.wait();
            let mut s = shared.session();
            while !stop.load(Ordering::Relaxed) {
                if mode == "mvcc" {
                    s.begin_read_only().unwrap();
                }
                if read_walk(&mut s) && s.commit().is_ok() {
                    reads.fetch_add(1, Ordering::Relaxed);
                } else {
                    let _ = s.rollback();
                }
            }
        }));
    }

    barrier.wait();
    let started = Instant::now();
    std::thread::sleep(Duration::from_millis(CELL_MS));
    stop.store(true, Ordering::Relaxed);
    for j in joins {
        j.join().expect("bench thread panicked");
    }
    let elapsed = started.elapsed();

    Cell {
        mode,
        readers,
        reads: reads.load(Ordering::Relaxed),
        elapsed,
        lock_waits: stats.lock_waits() - lock_waits_before,
        snapshot_reads: stats.snapshot_reads() - snapshot_reads_before,
    }
}

fn main() {
    let mut cells = Vec::new();
    for mode in ["2pl", "mvcc"] {
        for &readers in &READER_COUNTS {
            let cell = run_cell(mode, readers);
            eprintln!(
                "{mode:>4} readers={readers:<2} reads/s={:>10.0} lock_waits={} snapshot_reads={}",
                cell.reads_per_sec(),
                cell.lock_waits,
                cell.snapshot_reads
            );
            cells.push(cell);
        }
    }

    let rate = |mode: &str, readers: usize| {
        cells
            .iter()
            .find(|c| c.mode == mode && c.readers == readers)
            .map(Cell::reads_per_sec)
            .unwrap_or(0.0)
    };
    let speedup_32 = rate("mvcc", 32) / rate("2pl", 32).max(1e-9);
    let mvcc_scaling = rate("mvcc", 32) / rate("mvcc", 1).max(1e-9);

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"mvcc_snapshot_reads\",\n");
    out.push_str(&format!(
        "  \"workload\": {{\"accounts\": {ACCOUNTS}, \"writers\": {WRITERS}, \"updates_per_txn\": {UPDATES_PER_TXN}, \"cell_ms\": {CELL_MS}, \"read\": \"object walk: handles + read_object per object\"}},\n"
    ));
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"readers\": {}, \"reads\": {}, \"reads_per_sec\": {:.1}, \"lock_waits\": {}, \"snapshot_reads\": {}}}{}\n",
            c.mode,
            c.readers,
            c.reads,
            c.reads_per_sec(),
            c.lock_waits,
            c.snapshot_reads,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"summary\": {{\"mvcc_over_2pl_at_32_readers\": {speedup_32:.1}, \"mvcc_scaling_1_to_32\": {mvcc_scaling:.1}}}\n"
    ));
    out.push_str("}\n");

    std::fs::write("BENCH_MVCC.json", &out).expect("write BENCH_MVCC.json");
    println!("{out}");
    eprintln!("wrote BENCH_MVCC.json (mvcc/2pl at 32 readers: {speedup_32:.1}x)");
}
