//! Regenerate every table and figure of Dadam et al., SIGMOD 1986.
//!
//! ```text
//! cargo run -p aim2-bench --bin reproduce
//! ```
//!
//! Each section prints the artifact and asserts the paper's stated facts
//! (the process exits non-zero if any reproduction check fails).
//! EXPERIMENTS.md records the paper-vs-measured summary.

use aim2::{Database, DbConfig};
use aim2_bench::{fresh_segment, gen_departments, loaded_store, WorkloadSpec};
use aim2_exec::planner::Sec42Planner;
use aim2_index::address::Scheme;
use aim2_index::index::NfIndex;
use aim2_index::tname::{Resolved, TupleName};
use aim2_model::{fixtures, render, Atom, Date, Path};
use aim2_net::{
    write_frame, Client, ClientConfig, ErrorCode, NetError, QueryOutcome, Request, Response,
    Server, ServerConfig, TraceFormat, PROTOCOL_VERSION,
};
use aim2_storage::faultdisk::FaultInjector;
use aim2_storage::ims::{Cursor, ImsStore};
use aim2_storage::lorie::LorieStore;
use aim2_storage::minidir::LayoutKind;
use aim2_storage::object::{ClusterPolicy, ElemLoc, ObjectStore};
use aim2_storage::wal::{read_wal, Wal};
use aim2_storage::{PageId, Stats, StorageError};
use aim2_txn::{SharedDatabase, TxnError};

fn heading(s: &str) {
    println!("\n================================================================");
    println!("{s}");
    println!("================================================================");
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    tables_1_to_4_and_8();
    table_5();
    table_6();
    let mut db = paper_database()?;
    table_7(&mut db)?;
    examples_1_to_8(&mut db)?;
    figure_1()?;
    figure_6()?;
    figure_7()?;
    figure_8()?;
    sec42_index_schemes()?;
    sec5_text(&mut db)?;
    sec5_asof()?;
    streaming()?;
    clustering()?;
    object_move()?;
    durability()?;
    integrity()?;
    observability()?;
    mvcc()?;
    network()?;
    tracing()?;
    println!("\nAll reproduction checks passed.");
    Ok(())
}

fn paper_database() -> Result<Database, Box<dyn std::error::Error>> {
    let mut db = Database::in_memory();
    db.execute_script(
        "CREATE TABLE DEPARTMENTS ( DNO INTEGER, MGRNO INTEGER,
           PROJECTS { PNO INTEGER, PNAME STRING,
                      MEMBERS { EMPNO INTEGER, FUNCTION STRING } },
           BUDGET INTEGER, EQUIP { QU INTEGER, TYPE STRING } );
         CREATE TABLE DEPARTMENTS-1NF ( DNO INTEGER, MGRNO INTEGER, BUDGET INTEGER );
         CREATE TABLE PROJECTS-1NF ( PNO INTEGER, PNAME STRING, DNO INTEGER );
         CREATE TABLE MEMBERS-1NF ( EMPNO INTEGER, PNO INTEGER, DNO INTEGER, FUNCTION STRING );
         CREATE TABLE EQUIP-1NF ( DNO INTEGER, QU INTEGER, TYPE STRING );
         CREATE TABLE EMPLOYEES-1NF ( EMPNO INTEGER, LNAME STRING, FNAME STRING, SEX STRING );
         CREATE TABLE REPORTS ( REPNO STRING, AUTHORS < NAME STRING >, TITLE TEXT,
                                DESCRIPTORS { WORD STRING, WEIGHT DOUBLE } )",
    )?;
    for (table, value) in [
        ("DEPARTMENTS", fixtures::departments_value()),
        ("DEPARTMENTS-1NF", fixtures::departments_1nf_value()),
        ("PROJECTS-1NF", fixtures::projects_1nf_value()),
        ("MEMBERS-1NF", fixtures::members_1nf_value()),
        ("EQUIP-1NF", fixtures::equip_1nf_value()),
        ("EMPLOYEES-1NF", fixtures::employees_1nf_value()),
        ("REPORTS", fixtures::reports_value()),
    ] {
        for t in value.tuples {
            db.insert_tuple(table, t)?;
        }
    }
    Ok(db)
}

fn tables_1_to_4_and_8() {
    heading("Tables 1-4 and 8 — the flat (1NF) representation");
    for (schema, value) in [
        (
            fixtures::departments_1nf_schema(),
            fixtures::departments_1nf_value(),
        ),
        (
            fixtures::projects_1nf_schema(),
            fixtures::projects_1nf_value(),
        ),
        (
            fixtures::members_1nf_schema(),
            fixtures::members_1nf_value(),
        ),
        (fixtures::equip_1nf_schema(), fixtures::equip_1nf_value()),
        (
            fixtures::employees_1nf_schema(),
            fixtures::employees_1nf_value(),
        ),
    ] {
        println!();
        print!("{}", render::render_table(&schema, &value));
    }
    println!("\n(4 tables are needed to represent the hierarchy in 1NF — §2.)");
}

fn table_5() {
    heading("Table 5 — DEPARTMENTS as an extended NF² table");
    let schema = fixtures::departments_schema();
    let value = fixtures::departments_value();
    print!("{}", render::render_table(&schema, &value));
    // Stored under the AIM-II layout and read back intact.
    let (mut os, handles) = loaded_store(
        LayoutKind::Ss3,
        ClusterPolicy::Clustered,
        4096,
        64,
        &schema,
        &value,
    );
    for (h, t) in handles.iter().zip(&value.tuples) {
        assert_eq!(&os.read_object(&schema, *h).unwrap(), t);
    }
    println!("stored under SS3 and read back identically: OK");
}

fn table_6() {
    heading("Table 6 — REPORTS with an ordered AUTHORS list");
    print!(
        "{}",
        render::render_table(&fixtures::reports_schema(), &fixtures::reports_value())
    );
    println!("(<AUTHORS> is ordered; {{DESCRIPTORS}} is unordered — §2.)");
}

fn table_7(db: &mut Database) -> Result<(), Box<dyn std::error::Error>> {
    heading("Table 7 — result of Example 4 (unnest)");
    let (schema, value) = db.query(
        "SELECT x.DNO, x.MGRNO, y.PNO, y.PNAME, z.EMPNO, z.FUNCTION
         FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS",
    )?;
    print!("{}", render::render_table(&schema, &value));
    assert!(value.semantically_eq(&fixtures::table7_value()));
    println!("matches the expected Table 7 row set: OK");
    Ok(())
}

fn examples_1_to_8(db: &mut Database) -> Result<(), Box<dyn std::error::Error>> {
    heading("Section 3 — Examples 1-8 (and Figures 2-5)");
    // Example 1.
    let (_, v) = db.query("SELECT * FROM DEPARTMENTS")?;
    assert!(v.semantically_eq(&fixtures::departments_value()));
    println!("Example 1 (SELECT * implicit structure): returns Table 5: OK");
    // Example 2 / Fig 2.
    let (_, v) = db.query(
        "SELECT x.DNO, x.MGRNO,
            PROJECTS = (SELECT y.PNO, y.PNAME,
                MEMBERS = (SELECT z.EMPNO, z.FUNCTION FROM z IN y.MEMBERS)
                FROM y IN x.PROJECTS),
            x.BUDGET,
            EQUIP = (SELECT v.QU, v.TYPE FROM v IN x.EQUIP)
         FROM x IN DEPARTMENTS",
    )?;
    assert!(v.semantically_eq(&fixtures::departments_value()));
    println!("Example 2 / Fig 2 (explicit structure): returns Table 5: OK");
    // Example 3 / Fig 3.
    let (_, v) = db.query(
        "SELECT x.DNO, x.MGRNO,
            PROJECTS = (SELECT y.PNO, y.PNAME,
                MEMBERS = (SELECT z.EMPNO, z.FUNCTION FROM z IN MEMBERS-1NF
                           WHERE z.PNO = y.PNO AND z.DNO = y.DNO)
                FROM y IN PROJECTS-1NF WHERE y.DNO = x.DNO),
            x.BUDGET,
            EQUIP = (SELECT v.QU, v.TYPE FROM v IN EQUIP-1NF WHERE v.DNO = x.DNO)
         FROM x IN DEPARTMENTS-1NF",
    )?;
    assert!(v.semantically_eq(&fixtures::departments_value()));
    println!("Example 3 / Fig 3 (nest from Tables 1-4): rebuilds Table 5: OK");
    // Example 4 was Table 7 above.
    println!("Example 4 (unnest): see Table 7 above: OK");
    // Example 5.
    let (_, v) = db.query(
        "SELECT x.DNO, x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS
         WHERE EXISTS y IN x.EQUIP : y.TYPE = 'PC/AT'",
    )?;
    let mut dnos: Vec<i64> = v
        .tuples
        .iter()
        .map(|t| t.fields[0].as_atom().unwrap().as_int().unwrap())
        .collect();
    dnos.sort_unstable();
    assert_eq!(dnos, vec![218, 314]);
    println!("Example 5 (EXISTS, PC/AT): departments {{314, 218}}: OK");
    // Example 6.
    let (_, v) = db.query(
        "SELECT x.DNO, x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS
         WHERE ALL y IN x.PROJECTS : ALL z IN y.MEMBERS : z.FUNCTION = 'Consultant'",
    )?;
    assert!(v.is_empty());
    println!("Example 6 (nested ALL): empty result, as the paper states: OK");
    // Example 7 / Fig 4.
    let (_, v) = db.query(
        "SELECT x.DNO, x.MGRNO,
            EMPLOYEES = (SELECT z.EMPNO, u.LNAME, u.FNAME, u.SEX, z.FUNCTION
                         FROM y IN x.PROJECTS, z IN y.MEMBERS, u IN EMPLOYEES-1NF
                         WHERE z.EMPNO = u.EMPNO)
         FROM x IN DEPARTMENTS",
    )?;
    assert_eq!(v.len(), 3);
    println!("Example 7 / Fig 4 (cross-level join, grouped by department): OK");
    // Fig 5.
    let (_, v) = db.query(
        "SELECT x.DNO, m.LNAME, m.SEX,
            EMPLOYEES = (SELECT z.EMPNO, u.LNAME, u.FNAME, u.SEX, z.FUNCTION
                         FROM y IN x.PROJECTS, z IN y.MEMBERS, u IN EMPLOYEES-1NF
                         WHERE z.EMPNO = u.EMPNO)
         FROM x IN DEPARTMENTS, m IN EMPLOYEES-1NF WHERE x.MGRNO = m.EMPNO",
    )?;
    assert_eq!(v.len(), 3);
    println!("Fig 5 (two join conditions — manager name and sex): OK");
    // Example 8.
    let (schema, v) =
        db.query("SELECT x.AUTHORS, x.TITLE FROM x IN REPORTS WHERE x.AUTHORS[1] = 'Jones A.'")?;
    assert_eq!(v.len(), 1);
    assert!(!schema.is_flat());
    println!("Example 8 (list subscript AUTHORS[1]): report 0179 only; result not flat: OK");
    Ok(())
}

fn figure_1() -> Result<(), Box<dyn std::error::Error>> {
    heading("Figure 1 — DEPARTMENTS as an IMS segment hierarchy (GN/GNP)");
    let schema = fixtures::departments_schema();
    let mut ims = ImsStore::from_schema(fresh_segment(1024, 32), &schema);
    for t in &fixtures::departments_value().tuples {
        ims.load_record(&schema, t)?;
    }
    println!("segment types (parent in brackets):");
    let types = ims.types().to_vec();
    for (i, t) in types.iter().enumerate() {
        match t.parent {
            Some(p) => println!("  {i}: {} [{}]", t.name, types[p].name),
            None => println!("  {i}: {} [root]", t.name),
        }
    }
    // Navigational retrieval of department 218 (the paper's contrast:
    // "GN/GNP ... are completely different from the high level language
    // constructs used in relational database systems").
    let mut c = Cursor::default();
    let hit = ims
        .gu(&mut c, "DEPARTMENTS", Some(&Atom::Int(218)))?
        .unwrap();
    println!("GU DEPARTMENTS(218) -> {:?}", hit.1);
    let mut gnp_calls = 0;
    while ims.gnp(&mut c)?.is_some() {
        gnp_calls += 1;
    }
    println!("GNP loop to fetch dept 218's subtree: {gnp_calls} navigational calls");
    assert_eq!(gnp_calls, 11);
    println!("(the same retrieval is ONE declarative NF² query — see Example 1)");
    Ok(())
}

fn figure_6() -> Result<(), Box<dyn std::error::Error>> {
    heading("Figure 6 — storage structures SS1 / SS2 / SS3 for department 314");
    let schema = fixtures::departments_schema();
    let dept = fixtures::department_314();
    let mut md_counts = Vec::new();
    for layout in LayoutKind::ALL {
        let mut os = ObjectStore::new(fresh_segment(4096, 64), layout);
        let h = os.insert_object(&schema, &dept)?;
        let prof = os.md_profile(h)?;
        println!(
            "\n--- {layout} (Fig 6{}) ---",
            match layout {
                LayoutKind::Ss1 => "a",
                LayoutKind::Ss2 => "b",
                LayoutKind::Ss3 => "c",
            }
        );
        print!("{}", os.dump_md_tree(h)?);
        println!(
            "MD subtuples: {}   data subtuples: {}   MD bytes: {}   data bytes: {}",
            prof.md_subtuples, prof.data_subtuples, prof.md_bytes, prof.data_bytes
        );
        md_counts.push(prof.md_subtuples);
    }
    println!(
        "\nMD-subtuple counts — SS1: {}, SS2: {}, SS3: {}",
        md_counts[0], md_counts[1], md_counts[2]
    );
    assert!(md_counts[0] > md_counts[2] && md_counts[2] > md_counts[1]);
    println!("paper's ordering SS1 > SS3 > SS2 confirmed (§4.1): OK");
    println!("(AIM-II chose SS3 as the compromise — the Database default here too)");
    Ok(())
}

fn figure_7() -> Result<(), Box<dyn std::error::Error>> {
    heading("Figure 7 — hierarchical index addresses: naive (7a) vs final (7b)");
    let schema = fixtures::departments_schema();
    let value = fixtures::departments_value();
    let (mut os, handles) = loaded_store(
        LayoutKind::Ss3,
        ClusterPolicy::Clustered,
        4096,
        64,
        &schema,
        &value,
    );
    let h314 = handles[0];

    // Naive form (Fig 7a): components are MD subtuples.
    let md_walk = os.walk_data_md_paths(&schema, h314)?;
    let p = md_walk
        .iter()
        .find(|e| e.attr_path.to_string() == "PROJECTS" && e.atoms[0] == Atom::Int(17))
        .unwrap()
        .clone();
    let f = md_walk
        .iter()
        .find(|e| e.atoms.first() == Some(&Atom::Int(56019)))
        .unwrap()
        .clone();
    println!(
        "naive P (PNO=17):            root + MD path {:?} + data {}",
        p.md_path, p.data
    );
    println!(
        "naive F (56019 Consultant):  root + MD path {:?} + data {}",
        f.md_path, f.data
    );
    let f23 = md_walk
        .iter()
        .find(|e| e.atoms.first() == Some(&Atom::Int(58912)))
        .unwrap();
    assert_eq!(p.md_path[0], f.md_path[0]);
    assert_eq!(p.md_path[0], f23.md_path[0]);
    println!(
        "P2 = F2 compares the PROJECTS *subtable* MD — equal even for members of \
         project 23: useless (the Fig 7a flaw)"
    );

    // Final form (Fig 7b): components are data subtuples.
    let walk = os.walk_data(&schema, h314)?;
    let p = walk
        .iter()
        .find(|e| e.attr_path.to_string() == "PROJECTS" && e.atoms[0] == Atom::Int(17))
        .unwrap()
        .clone();
    let f = walk
        .iter()
        .find(|e| e.atoms.first() == Some(&Atom::Int(56019)))
        .unwrap()
        .clone();
    println!("\nfinal P (PNO=17):            root + [{}]", p.data);
    println!(
        "final F (56019 Consultant):  root + [{} {}]",
        f.ancestors[0], f.data
    );
    assert_eq!(f.ancestors[0], p.data);
    println!(
        "P2 = F2 now compares the '17 CGA' *data subtuple* — identifies the complex \
         subobject: department 314 qualifies without scanning any data (§4.2): OK"
    );
    Ok(())
}

fn figure_8() -> Result<(), Box<dyn std::error::Error>> {
    heading("Figure 8 — tuple names (t-names)");
    let schema = fixtures::departments_schema();
    let mut os = ObjectStore::new(fresh_segment(4096, 64), LayoutKind::Ss3);
    let h = os.insert_object(&schema, &fixtures::department_314())?;
    let u = TupleName::of_object(h);
    let v = TupleName::of_subobject(&mut os, &schema, h, &ElemLoc::object().then(2, 0))?;
    let t = TupleName::of_subobject(
        &mut os,
        &schema,
        h,
        &ElemLoc::object().then(2, 0).then(2, 1),
    )?;
    let w = TupleName::of_subtable(&mut os, &schema, h, &ElemLoc::object(), 2)?;
    let x = TupleName::of_subtable(&mut os, &schema, h, &ElemLoc::object().then(2, 0), 2)?;
    println!("U (dept 314 as a whole):        {u}");
    println!("V (project 17 subobject):       {v}");
    println!("T ('56019 Consultant' tuple):   {t}");
    println!("W (PROJECTS subtable):          {w}");
    println!("X (MEMBERS subtable of p17):    {x}");
    let Resolved::Tuple(vt) = v.resolve(&mut os, &schema)? else {
        unreachable!()
    };
    assert_eq!(vt.fields[0].as_atom().unwrap(), &Atom::Int(17));
    let Resolved::Table(xt) = x.resolve(&mut os, &schema)? else {
        unreachable!()
    };
    assert_eq!(xt.len(), 3);
    assert!(w.as_index_address().is_err());
    println!("subtable t-names are rejected as index addresses (§4.3): OK");
    println!(
        "(the 1986 prototype had t-names designed but unimplemented; this realizes the design)"
    );
    Ok(())
}

fn sec42_index_schemes() -> Result<(), Box<dyn std::error::Error>> {
    heading("Section 4.2 — the three index queries under each address scheme");
    let schema = fixtures::departments_schema();
    let value = fixtures::departments_value();
    let consultant = Atom::Str("Consultant".into());
    println!(
        "{:<24} {:>14} {:>14} {:>12} {:>10}",
        "scheme", "q1 fetched", "q2 index-only", "q3 index-only", "fallback"
    );
    for scheme in Scheme::ALL {
        let (mut os, _) = loaded_store(
            LayoutKind::Ss3,
            ClusterPolicy::Clustered,
            4096,
            64,
            &schema,
            &value,
        );
        let mut f_idx = NfIndex::create(
            fresh_segment(4096, 64),
            &schema,
            &Path::parse("PROJECTS.MEMBERS.FUNCTION"),
            scheme,
        )?;
        f_idx.build(&mut os, &schema)?;
        let mut p_idx = NfIndex::create(
            fresh_segment(4096, 64),
            &schema,
            &Path::parse("PROJECTS.PNO"),
            scheme,
        )?;
        p_idx.build(&mut os, &schema)?;
        let mut planner = Sec42Planner::new(&mut os, &schema);
        let q1 = planner.objects_with(&mut f_idx, &consultant)?;
        let q2 = planner.subobjects_with(&mut f_idx, &consultant)?;
        let q3 = planner.conjunctive(&mut p_idx, &Atom::Int(17), &mut f_idx, &consultant)?;
        assert_eq!(q1.result, vec![Atom::Int(218), Atom::Int(314)]);
        assert_eq!(q2.result, vec![Atom::Int(17), Atom::Int(25)]);
        assert_eq!(q3.result, vec![Atom::Int(314)]);
        println!(
            "{:<24} {:>14} {:>14} {:>12} {:>10}",
            scheme.to_string(),
            q1.objects_fetched,
            q2.index_only,
            q3.index_only,
            q1.fallback_scan || q3.fallback_scan
        );
    }
    println!(
        "\nall schemes agree on the answers (DNOs {{314,218}}, PNOs {{17,25}}, DNO 314);\n\
         only the final hierarchical form (Fig 7b) answers queries 2 and 3 from the\n\
         index alone — the paper's conclusion: OK"
    );
    Ok(())
}

fn sec5_text(db: &mut Database) -> Result<(), Box<dyn std::error::Error>> {
    heading("Section 5 — text support: masked search '*comput*'");
    db.execute("CREATE TEXT INDEX tix ON REPORTS (TITLE)")?;
    let (hits, verified) = db.text_search("REPORTS", &Path::parse("TITLE"), "*comput*")?;
    println!(
        "text index: {} hit(s) ({} candidate(s) verified of 3 documents)",
        hits.len(),
        verified
    );
    let (_, v) = db.query(
        "SELECT x.REPNO, x.AUTHORS, x.TITLE FROM x IN REPORTS
         WHERE x.TITLE CONTAINS '*comput*' AND EXISTS y IN x.AUTHORS : y.NAME = 'Jones A.'",
    )?;
    assert_eq!(v.len(), 1);
    assert_eq!(
        v.tuples[0].fields[0].as_atom().unwrap().as_str(),
        Some("0291")
    );
    println!("the paper's query (CONTAINS + co-author Jones) returns report 0291: OK");
    Ok(())
}

fn sec5_asof() -> Result<(), Box<dyn std::error::Error>> {
    heading("Section 5 — time versions: the ASOF query");
    let mut db = Database::in_memory();
    db.execute(
        "CREATE TABLE DEPARTMENTS ( DNO INTEGER, MGRNO INTEGER,
           PROJECTS { PNO INTEGER, PNAME STRING,
                      MEMBERS { EMPNO INTEGER, FUNCTION STRING } },
           BUDGET INTEGER, EQUIP { QU INTEGER, TYPE STRING } ) WITH VERSIONS",
    )?;
    db.set_today(Date::parse_iso("1984-01-01")?);
    db.execute(
        "INSERT INTO DEPARTMENTS VALUES (314, 56194,
           {(17, 'CGA', {(39582, 'Leader'), (56019, 'Consultant')}),
            (11, 'DOC', {(69011, 'Leader')})}, 280000, {(2, '3278')})",
    )?;
    db.set_today(Date::parse_iso("1984-06-01")?);
    db.execute("DELETE y FROM x IN DEPARTMENTS, y IN x.PROJECTS WHERE y.PNO = 11")?;
    db.execute(
        "INSERT INTO x.PROJECTS FROM x IN DEPARTMENTS WHERE x.DNO = 314
         VALUES (23, 'HEAP', {(58912, 'Staff')})",
    )?;
    let (_, v) = db.query(
        "SELECT y.PNO, y.PNAME FROM x IN DEPARTMENTS ASOF '1984-01-15', y IN x.PROJECTS
         WHERE x.DNO = 314",
    )?;
    println!("projects of department 314 ASOF January 15th, 1984:");
    for t in &v.tuples {
        println!(
            "  PNO={} PNAME={}",
            t.fields[0].as_atom().unwrap(),
            t.fields[1].as_atom().unwrap()
        );
    }
    assert_eq!(v.len(), 2);
    let (_, now) =
        db.query("SELECT y.PNO FROM x IN DEPARTMENTS, y IN x.PROJECTS WHERE x.DNO = 314")?;
    println!(
        "(today the department has {} projects: 17 and 23)",
        now.len()
    );
    println!("walk-through-time stays below the language interface, as in the paper: OK");
    Ok(())
}

fn streaming() -> Result<(), Box<dyn std::error::Error>> {
    heading("Streaming execution — cursor pipeline with pushdown (§4.1 at query level)");
    use aim2_bench::StoreProvider;
    use aim2_exec::Evaluator;
    use aim2_lang::parser::parse_query;
    use aim2_storage::buffer::BufferPool;
    use aim2_storage::disk::MemDisk;
    use aim2_storage::segment::Segment;

    // One SMALL row drives an EXISTS probe into 60 BIG departments whose
    // witness is the very first object; the full scan is the baseline.
    let spec = WorkloadSpec {
        departments: 60,
        projects_per_dept: 4,
        members_per_project: 6,
        equip_per_dept: 3,
        seed: 11,
    };
    let selective =
        parse_query("SELECT s.DNO FROM s IN SMALL WHERE EXISTS y IN BIG : y.DNO = 100")?;
    let full = parse_query("SELECT * FROM BIG")?;
    let mut big_schema = fixtures::departments_schema();
    big_schema.name = "BIG".into();
    let small_schema =
        aim2_model::TableSchema::relation("SMALL").with_atom("DNO", aim2_model::AtomType::Int);
    let small_value = aim2_model::TableValue {
        kind: aim2_model::TableKind::Relation,
        tuples: vec![aim2_model::Tuple::new(vec![aim2_model::value::build::a(
            1i64,
        )])],
    };

    println!(
        "{:<8} {:>16} {:>16} {:>14} {:>14} {:>12}",
        "layout", "full objects", "full atoms", "sel. objects", "sel. atoms", "early exits"
    );
    for layout in LayoutKind::ALL {
        let stats = Stats::new();
        let seg = || {
            Segment::new(BufferPool::new(
                Box::new(MemDisk::new(4096)),
                256,
                stats.clone(),
            ))
        };
        let mut big = ObjectStore::new(seg(), layout);
        for t in &gen_departments(&spec).tuples {
            big.insert_object(&big_schema, t)?;
        }
        let mut small = ObjectStore::new(seg(), layout);
        for t in &small_value.tuples {
            small.insert_object(&small_schema, t)?;
        }
        let mut provider = StoreProvider::single("BIG", big_schema.clone(), big);
        provider.add_nf2("SMALL", small_schema.clone(), small);

        stats.reset();
        Evaluator::new(&mut provider).eval_query(&full)?;
        let f = stats.snapshot();
        stats.reset();
        Evaluator::new(&mut provider).eval_query(&selective)?;
        let s = stats.snapshot();
        assert!(s.objects_decoded < f.objects_decoded);
        assert!(s.atoms_decoded < f.atoms_decoded);
        assert!(s.cursor_early_exits >= 1);
        println!(
            "{:<8} {:>16} {:>16} {:>14} {:>14} {:>12}",
            layout.to_string(),
            f.objects_decoded,
            f.atoms_decoded,
            s.objects_decoded,
            s.atoms_decoded,
            s.cursor_early_exits
        );
    }
    println!(
        "\nthe EXISTS cursor closes at its first witness and projection pushdown\n\
         reaches read_object_projected, so the selective query decodes a fraction\n\
         of the objects AND atoms on every layout: OK"
    );

    // The physical plan is now a first-class artifact (EXPLAIN / .explain).
    let mut db = paper_database()?;
    db.execute("CREATE INDEX f ON DEPARTMENTS (PROJECTS.MEMBERS.FUNCTION)")?;
    let plan = db.explain_query(&parse_query(
        "SELECT x.DNO FROM x IN DEPARTMENTS
         WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS : z.FUNCTION = 'Consultant'",
    )?)?;
    println!("\nEXPLAIN of the paper's consultant query with index f in place:");
    for line in plan.lines() {
        println!("  {line}");
    }
    assert!(plan.contains("IndexScan"));
    println!("the planner emits an inspectable operator tree, index use visible: OK");
    Ok(())
}

fn clustering() -> Result<(), Box<dyn std::error::Error>> {
    heading("Section 4.1 — clustering via local address spaces");
    let schema = fixtures::departments_schema();
    let spec = WorkloadSpec {
        departments: 24,
        projects_per_dept: 4,
        members_per_project: 6,
        equip_per_dept: 3,
        seed: 7,
    };
    let value = gen_departments(&spec);
    for (name, policy) in [
        ("clustered (page list)", ClusterPolicy::Clustered),
        ("scattered (round-robin)", ClusterPolicy::Scattered),
    ] {
        let (mut os, handles) = loaded_store(LayoutKind::Ss3, policy, 512, 512, &schema, &value);
        let pages: usize = handles
            .iter()
            .map(|h| os.object_pages(*h).unwrap().len())
            .sum();
        // Cold whole-object read of one department.
        os.segment_mut().pool_mut().clear_cache()?;
        let stats = os.stats();
        let before = stats.snapshot();
        let _ = os.read_object(&schema, handles[5])?;
        let misses = before.delta(&stats.snapshot()).buf_misses;
        println!(
            "{name:<26} avg pages/object: {:>5.1}   cold read of one object: {misses} page faults",
            pages as f64 / handles.len() as f64
        );
    }
    println!("clustered objects live on a small page set — the §4.1 demand: OK");
    Ok(())
}

fn object_move() -> Result<(), Box<dyn std::error::Error>> {
    heading("Section 4.1 — object move (check-out): MD/page-list vs Lorie chains");
    let schema = fixtures::departments_schema();
    let dept = fixtures::department_314();

    let mut os = ObjectStore::new(fresh_segment(512, 64), LayoutKind::Ss3);
    let h = os.insert_object(&schema, &dept)?;
    let stats = os.stats();
    let before = stats.snapshot();
    os.move_object(h)?;
    let md_rewrites = before.delta(&stats.snapshot()).pointer_rewrites;

    let mut ls = LorieStore::new(fresh_segment(512, 64));
    let root = ls.insert_object(&schema, &dept)?;
    let lstats = ls.segment_mut().stats().clone();
    let before = lstats.snapshot();
    let _ = ls.move_object(&schema, root)?;
    let lorie_rewrites = before.delta(&lstats.snapshot()).pointer_rewrites;

    println!("pointer rewrites moving department 314:");
    println!("  Mini Directory + page list (AIM-II): {md_rewrites}");
    println!("  Lorie /LP83/ pointer chains:         {lorie_rewrites}");
    assert_eq!(md_rewrites, 0);
    assert!(lorie_rewrites >= 12);
    println!("\"only the page list must be updated\" (§4.1): OK");
    Ok(())
}

const DUR_DDL: &str = "CREATE TABLE DEPARTMENTS ( DNO INTEGER, MGRNO INTEGER,
    PROJECTS { PNO INTEGER, PNAME STRING,
               MEMBERS { EMPNO INTEGER, FUNCTION STRING } },
    BUDGET INTEGER, EQUIP { QU INTEGER, TYPE STRING } )";

/// The durability demo workload: load DEPARTMENTS, commit a checkpoint,
/// then mutate without ever committing again. Returns the committed
/// row set and the injector's write count at the commit point.
fn durability_workload(
    cfg: DbConfig,
) -> Result<(aim2_model::TableValue, u64), Box<dyn std::error::Error>> {
    let inj = cfg.fault.clone();
    let mut db = Database::with_config(cfg);
    db.execute(DUR_DDL)?;
    for t in fixtures::departments_value().tuples {
        db.insert_tuple("DEPARTMENTS", t)?;
    }
    db.checkpoint()?;
    let at_commit = inj.map(|i| i.writes()).unwrap_or(0);
    let (_, committed) = db.query("SELECT * FROM DEPARTMENTS")?;
    // Mid-epoch mutations — lost to the crash, and that's the point.
    db.execute("UPDATE x IN DEPARTMENTS SET x.BUDGET = 1 WHERE x.DNO = 218")?;
    db.execute("DELETE x FROM x IN DEPARTMENTS WHERE x.DNO = 314")?;
    Ok((committed, at_commit))
}

fn durability() -> Result<(), Box<dyn std::error::Error>> {
    heading("Durability — write-ahead log, crash recovery, fault injection");
    let base = std::env::temp_dir().join(format!("aim2_repro_dur_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let cfg = |fault: Option<FaultInjector>| DbConfig {
        page_size: 1024,
        buffer_frames: 2, // tiny pool: mid-epoch evictions reach the disk
        data_dir: Some(base.clone()),
        fault,
        ..DbConfig::default()
    };

    // A process death with an epoch in flight: dirty evictions have
    // overwritten committed pages, the before-images are in the WAL.
    let (committed, _) = durability_workload(cfg(None))?;
    let mut db = Database::open(cfg(None))?;
    let (_, after) = db.query("SELECT * FROM DEPARTMENTS")?;
    assert!(after.semantically_eq(&committed));
    println!(
        "process crash mid-epoch: recovery replayed {} before-image(s); \
         DEPARTMENTS equals the last checkpoint: OK",
        db.stats().wal_replays()
    );
    println!("recovery stats: {}", db.stats().snapshot());
    drop(db);

    // Deterministic power cuts: count every write the workload issues,
    // then re-run it with the disk dying at chosen points after the
    // checkpoint committed. (tests/crash_consistency.rs sweeps EVERY
    // point across all storage layouts; this is the demo cut.)
    let _ = std::fs::remove_dir_all(&base);
    let probe = FaultInjector::observer();
    durability_workload(cfg(Some(probe.clone())))?;
    let (at_commit, total) = {
        let _ = std::fs::remove_dir_all(&base);
        let p2 = FaultInjector::observer();
        let (_, at_commit) = durability_workload(cfg(Some(p2.clone())))?;
        (at_commit, p2.writes())
    };
    for cut in [at_commit + 1, (at_commit + total) / 2, total] {
        let _ = std::fs::remove_dir_all(&base);
        let inj = FaultInjector::stop_after(cut);
        let res = durability_workload(cfg(Some(inj.clone())));
        assert!(
            res.is_err() || cut >= total,
            "a write past the cut must fail"
        );
        let mut db = Database::open(cfg(None))?;
        let (_, v) = db.query("SELECT * FROM DEPARTMENTS")?;
        assert!(v.semantically_eq(&committed));
        println!("power cut after write {cut:>2} of {total}: reopened at the last checkpoint: OK");
    }

    // Torn writes are *detected*, not silently read: a torn tail (the
    // crash interrupting the final append) is dropped and counted; a bad
    // checksum mid-log is a typed error.
    let wdir = base.join("torn_demo");
    std::fs::create_dir_all(&wdir)?;
    let wal_path = wdir.join("demo.wal");
    let stats = Stats::new();
    let mut wal = Wal::create(&wal_path, 1, 64, stats.clone(), None)?;
    wal.append_before_image("a.seg", PageId(0), &[0xAA; 64])?;
    wal.append_before_image("a.seg", PageId(1), &[0xBB; 64])?;
    wal.sync()?;
    let len = std::fs::metadata(&wal_path)?.len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&wal_path)?
        .set_len(len - 7)?; // tear the final frame
    let c = read_wal(&wal_path, &stats)?.expect("log readable");
    assert!(c.torn_tail);
    assert_eq!(c.frames.len(), 1);
    println!(
        "torn WAL tail: checksum catches it, {} intact frame(s) kept, torn-detected={}",
        c.frames.len(),
        stats.torn_pages_detected()
    );
    let mut wal = Wal::create(&wal_path, 1, 64, stats.clone(), None)?;
    wal.append_before_image("a.seg", PageId(0), &[0xAA; 64])?;
    wal.append_before_image("a.seg", PageId(1), &[0xBB; 64])?;
    wal.sync()?;
    let mut bytes = std::fs::read(&wal_path)?;
    bytes[40] ^= 0xFF; // corrupt the FIRST frame — not a crash artifact
    std::fs::write(&wal_path, &bytes)?;
    match read_wal(&wal_path, &stats) {
        Err(StorageError::ChecksumMismatch(_)) => {
            println!("mid-log corruption: surfaced as a typed ChecksumMismatch error: OK")
        }
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }

    // Concurrent sessions: drive the lock manager through its three
    // observable behaviours with rendezvous (not timing), so the
    // printed counter deltas are exact.
    let cdir = base.join("conc_demo");
    let mut db = Database::with_config(DbConfig {
        page_size: 1024,
        buffer_frames: 2,
        data_dir: Some(cdir),
        ..DbConfig::default()
    });
    db.execute("CREATE TABLE ACCOUNTS ( ANO INTEGER, BAL INTEGER, HIST { SEQ INTEGER } )")?;
    db.execute("INSERT INTO ACCOUNTS VALUES (1, 100, {(0)})")?;
    db.execute("INSERT INTO ACCOUNTS VALUES (2, 200, {(0)})")?;
    db.checkpoint()?;
    let shared = SharedDatabase::new(db);
    let stats = shared.stats();
    let (lw0, da0, gc0) = (
        stats.lock_waits(),
        stats.deadlocks_aborted(),
        stats.group_commit_batches(),
    );

    // (1) A reader parks behind a statement writer's X table lock and
    // proceeds at commit — which group-commits the insert's
    // before-images (batch one).
    let mut w = shared.session();
    w.execute("INSERT INTO ACCOUNTS VALUES (3, 300, {(0)})")?;
    let shared2 = shared.clone();
    let reader = std::thread::spawn(move || {
        let mut r = shared2.session();
        let (_, rows) = r.query("SELECT x.ANO FROM x IN ACCOUNTS").unwrap();
        r.commit().unwrap();
        rows.len()
    });
    while stats.lock_waits() == lw0 {
        std::thread::yield_now();
    }
    w.commit()?;
    assert_eq!(reader.join().expect("reader panicked"), 3);

    // (2) Cross check-outs close a wait-for cycle: the requester is the
    // victim, rolls back, and the parked session proceeds.
    let mut a = shared.session();
    let handles = a.handles("ACCOUNTS")?;
    let (h1, h2) = (handles[0], handles[1]);
    a.checkout("ACCOUNTS", h1)?;
    let lw1 = stats.lock_waits();
    let shared2 = shared.clone();
    let other = std::thread::spawn(move || {
        let mut b = shared2.session();
        b.checkout("ACCOUNTS", h2).unwrap();
        b.checkout("ACCOUNTS", h1).unwrap(); // parks until `a` aborts
        b.commit().unwrap();
    });
    while stats.lock_waits() == lw1 {
        std::thread::yield_now();
    }
    let err = a.checkout("ACCOUNTS", h2).unwrap_err();
    assert!(matches!(err, TxnError::Deadlock { .. }), "{err}");
    a.rollback()?;
    other.join().expect("session thread panicked");

    // (3) A committed update after a fresh checkpoint is one more
    // physical WAL sync — batch two.
    shared.checkpoint()?;
    let mut s = shared.session();
    s.execute("UPDATE x IN ACCOUNTS SET x.BAL = 150 WHERE x.ANO = 1")?;
    s.commit()?;

    println!(
        "concurrent sessions: lock-waits={} deadlocks-aborted={} group-commit-batches={}",
        stats.lock_waits() - lw0,
        stats.deadlocks_aborted() - da0,
        stats.group_commit_batches() - gc0,
    );
    assert_eq!(stats.lock_waits() - lw0, 2);
    assert_eq!(stats.deadlocks_aborted() - da0, 1);
    assert_eq!(stats.group_commit_batches() - gc0, 2);

    let _ = std::fs::remove_dir_all(&base);
    Ok(())
}

fn integrity() -> Result<(), Box<dyn std::error::Error>> {
    heading("Integrity — page checksums, integrity_check, quarantine, salvage");
    let base = std::env::temp_dir().join(format!("aim2_repro_integ_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let cfg = DbConfig {
        page_size: 1024,
        buffer_frames: 4,
        data_dir: Some(base.join("db")),
        ..DbConfig::default()
    };

    let mut db = Database::with_config(cfg.clone());
    db.execute(DUR_DDL)?;
    for t in fixtures::departments_value().tuples {
        db.insert_tuple("DEPARTMENTS", t)?;
    }
    db.checkpoint()?;
    let report = db.integrity_check()?;
    assert!(report.is_clean());
    print!("fresh checkpointed database:\n{report}");

    // One bit of rot in a page of department 314's local address space.
    let victim = db.handles("DEPARTMENTS")?[0];
    let page = *db
        .object_store_mut("DEPARTMENTS")?
        .object_pages(victim)?
        .last()
        .unwrap();
    drop(db);
    let seg = std::fs::read_dir(base.join("db"))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| {
            p.extension().is_some_and(|x| x == "seg")
                && p.file_name()
                    .is_some_and(|n| n.to_string_lossy().contains("DEPARTMENTS"))
        })
        .expect("segment file");
    let mut bytes = std::fs::read(&seg)?;
    bytes[page.0 as usize * 1024 + 513] ^= 0x04;
    std::fs::write(&seg, &bytes)?;
    println!("\nflipped one bit in page {page} of the DEPARTMENTS segment");

    let mut db = Database::open(cfg)?;
    let report = db.integrity_check()?;
    assert!(!report.is_clean());
    print!("{report}");
    println!("quarantined object(s): {}", db.quarantined().len());
    let err = db.read_object("DEPARTMENTS", victim).unwrap_err();
    println!("reading the damaged department: {err}");
    let (_, v) = db.query("SELECT x.DNO FROM x IN DEPARTMENTS")?;
    assert_eq!(v.len(), 2);
    println!("scans keep serving the {} intact departments: OK", v.len());

    let (mut fresh, carried) = db.salvage(base.join("salvaged"))?;
    let report = fresh.integrity_check()?;
    assert!(report.is_clean());
    let (_, v) = fresh.query("SELECT x.DNO FROM x IN DEPARTMENTS")?;
    assert_eq!(v.len(), carried);
    println!("salvage carried {carried} object(s) into a fresh database; integrity: clean");
    let s = db.stats();
    println!(
        "integrity stats: checksum-verifications={} corrupt-pages-detected={} \
         objects-quarantined={} salvaged-objects={}",
        s.checksum_verifications(),
        s.corrupt_pages_detected(),
        s.objects_quarantined(),
        s.salvaged_objects(),
    );
    assert!(s.corrupt_pages_detected() >= 1);
    assert_eq!(s.objects_quarantined(), 1);
    assert_eq!(s.salvaged_objects() as usize, carried);
    println!("checksums catch the rot, quarantine contains it, salvage recovers the rest: OK");

    let _ = std::fs::remove_dir_all(&base);
    Ok(())
}

fn observability() -> Result<(), Box<dyn std::error::Error>> {
    heading("Observability — EXPLAIN ANALYZE, metric sites, latency histograms");
    let mut db = paper_database()?;
    db.stats().reset();

    // EXPLAIN ANALYZE of Example 5: the §4 access-count argument,
    // redistributed over the operator tree (timing-free rendering is
    // deterministic; wall times live in the interactive shell).
    let (_, v, ap) = db.analyze(
        "SELECT x.DNO, x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS
         WHERE EXISTS y IN x.EQUIP : y.TYPE = 'PC/AT'",
    )?;
    println!("EXPLAIN ANALYZE of Example 5 ({} row(s)):", v.len());
    print!("{}", ap.render(false));
    let delta = db.stats().snapshot();
    let sums_match = ap.total_objects_decoded() == delta.objects_decoded
        && ap.total_atoms_decoded() == delta.atoms_decoded;
    assert!(sums_match);
    println!("operator decode deltas sum to the query's Stats delta: {sums_match}");

    // Buffer hit rate over a deterministic repeated-scan workload.
    db.stats().reset();
    for _ in 0..5 {
        db.query("SELECT * FROM DEPARTMENTS")?;
    }
    let s = db.stats().snapshot();
    let rate = s.buf_hits as f64 / (s.buf_hits + s.buf_misses) as f64;
    println!(
        "buffer traffic over 5 repeated full scans: hits={} misses={} (hit rate {:.1}%)",
        s.buf_hits,
        s.buf_misses,
        rate * 100.0
    );
    assert!(rate > 0.5, "repeated scans must mostly hit the pool");

    // WAL latency histograms on a file-backed commit path. Wall-clock
    // values vary run to run, so the golden pins only their shape.
    let base = std::env::temp_dir().join(format!("aim2_repro_obs_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let mut fdb = Database::with_config(DbConfig {
        page_size: 1024,
        buffer_frames: 2, // tiny pool: evictions exercise the write path
        data_dir: Some(base.clone()),
        ..DbConfig::default()
    });
    fdb.execute(DUR_DDL)?;
    for t in fixtures::departments_value().tuples {
        fdb.insert_tuple("DEPARTMENTS", t)?;
    }
    fdb.checkpoint()?;
    // A post-checkpoint epoch: these mutations dirty committed pages, so
    // evictions and the second checkpoint append before-images and fsync.
    fdb.execute("UPDATE x IN DEPARTMENTS SET x.BUDGET = 1 WHERE x.DNO = 218")?;
    fdb.execute("DELETE x FROM x IN DEPARTMENTS WHERE x.DNO = 314")?;
    fdb.checkpoint()?;
    for (name, hist) in [
        (
            "storage.page_write",
            fdb.stats().histogram("storage.page_write"),
        ),
        ("wal.append", fdb.stats().histogram("wal.append")),
        ("wal.fsync", fdb.stats().histogram("wal.fsync")),
    ] {
        println!(
            "{name}: samples recorded: {}, p99 > 0: {}, p50 <= p99: {}",
            hist.count > 0,
            hist.p99() > 0,
            hist.p50() <= hist.p99()
        );
        assert!(hist.count > 0, "{name} must see the durable workload");
    }
    let prom = fdb.metrics().to_prometheus();
    println!(
        "metrics exposition covers counters, gauges, and summaries: {}",
        prom.contains("# TYPE aim2_buffer_hits counter")
            && prom.contains("# TYPE aim2_buffer_hit_rate gauge")
            && prom.contains("# TYPE aim2_wal_fsync_ns summary")
    );

    // The slow-query log with a zero threshold records everything.
    db.set_slow_query_threshold(Some(std::time::Duration::ZERO));
    db.query("SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.BUDGET >= 300000")?;
    let rec = db.slow_log().records().next_back().expect("recorded");
    println!(
        "slow-query log captured statement, plan, and span tree: {}",
        rec.statement.contains("x.BUDGET >= 300000")
            && rec.plan.contains("Scan DEPARTMENTS as x")
            && rec.spans.iter().any(|sp| sp.name == "db.query")
    );

    let _ = std::fs::remove_dir_all(&base);
    Ok(())
}

fn mvcc() -> Result<(), Box<dyn std::error::Error>> {
    heading("MVCC — lock-free snapshot readers over epoch versions");

    let mut db = Database::in_memory();
    db.execute("CREATE TABLE ACCOUNTS ( ANO INTEGER, BAL INTEGER )")?;
    db.execute("INSERT INTO ACCOUNTS VALUES (1, 100)")?;
    db.execute("INSERT INTO ACCOUNTS VALUES (2, 200)")?;
    let shared = SharedDatabase::new(db);
    let stats = shared.stats();
    let (sr0, vp0, gc0) = (
        stats.snapshot_reads(),
        stats.mvcc_versions_published(),
        stats.mvcc_gc_reclaimed(),
    );
    let sum = |s: &mut aim2_txn::Session| -> i64 {
        let (_, rows) = s.query("SELECT x.BAL FROM x IN ACCOUNTS").unwrap();
        rows.tuples
            .iter()
            .map(|t| match &t.fields[0] {
                aim2_model::Value::Atom(Atom::Int(i)) => *i,
                other => panic!("expected integer, got {other:?}"),
            })
            .sum()
    };

    // A read-only session pins the current commit epoch; a writer
    // commits over it under 2PL; the pinned snapshot is unmoved and the
    // reader never touched the lock manager.
    let mut r = shared.session();
    r.begin_read_only()?;
    let before = sum(&mut r);
    let mut w = shared.session();
    w.execute("UPDATE x IN ACCOUNTS SET x.BAL = 150 WHERE x.ANO = 1")?;
    w.commit()?;
    let pinned = sum(&mut r);
    let reader_locks = r.lock_acquisitions();
    println!(
        "snapshot pinned at epoch {:?}: sum before writer commit = {before}, after = {pinned}",
        r.snapshot_epoch()
    );
    println!("reader lock acquisitions: {reader_locks}");
    assert_eq!(before, 300);
    assert_eq!(pinned, 300, "pinned snapshot must not move");
    assert_eq!(reader_locks, 0, "snapshot reads must be lock-free");
    r.commit()?; // unpin: the superseded version is now unreachable

    // A fresh snapshot lands on the writer's epoch; the GC pass that
    // ran at unpin reclaimed exactly the superseded version.
    let mut r2 = shared.session();
    r2.begin_read_only()?;
    let after = sum(&mut r2);
    r2.commit()?;
    assert_eq!(after, 350);
    println!(
        "fresh snapshot sum = {after}; snapshot-reads={} versions-published={} gc-reclaimed={} versions-retained={}",
        stats.snapshot_reads() - sr0,
        stats.mvcc_versions_published() - vp0,
        stats.mvcc_gc_reclaimed() - gc0,
        stats.versions_retained().get(),
    );
    assert_eq!(stats.snapshot_reads() - sr0, 3);
    assert_eq!(stats.mvcc_versions_published() - vp0, 1);
    assert_eq!(stats.mvcc_gc_reclaimed() - gc0, 1);
    assert_eq!(stats.versions_retained().get(), 1);
    Ok(())
}

fn network() -> Result<(), Box<dyn std::error::Error>> {
    heading("Network service — streamed queries and typed errors over TCP");

    // Two identical in-memory databases: one behind `aim2-server`, one
    // queried in-process. Every statement must agree byte-for-byte.
    let build = || -> Result<Database, Box<dyn std::error::Error>> {
        let mut db = Database::in_memory();
        db.execute(
            "CREATE TABLE DEPARTMENTS ( DNO INTEGER, MGRNO INTEGER,
               PROJECTS { PNO INTEGER, PNAME STRING,
                          MEMBERS { EMPNO INTEGER, FUNCTION STRING } },
               BUDGET INTEGER, EQUIP { QU INTEGER, TYPE STRING } )",
        )?;
        for t in fixtures::departments_value().tuples {
            db.insert_tuple("DEPARTMENTS", t)?;
        }
        Ok(db)
    };
    let mut local = build()?;
    let shared = SharedDatabase::new(build()?);
    let stats = shared.stats();
    let base = stats.snapshot();
    let mut handle = Server::start(
        shared,
        ServerConfig {
            max_conns: 8,
            ..ServerConfig::default()
        },
    )?;
    let addr = handle.local_addr();

    let queries = [
        "SELECT * FROM DEPARTMENTS",
        "SELECT x.DNO, x.MGRNO,
            PROJECTS = (SELECT y.PNO, y.PNAME,
                MEMBERS = (SELECT z.EMPNO, z.FUNCTION FROM z IN y.MEMBERS)
                FROM y IN x.PROJECTS),
            x.BUDGET,
            EQUIP = (SELECT v.QU, v.TYPE FROM v IN x.EQUIP)
         FROM x IN DEPARTMENTS",
        "SELECT x.DNO, x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS
         WHERE EXISTS y IN x.EQUIP : y.TYPE = 'PC/AT'",
    ];
    let mut client = Client::connect(addr, "reproduce")?;
    let mut agree = 0;
    for sql in &queries {
        // fetch=2 forces every result to stream across several
        // suspended-portal round trips before reassembly.
        let over_tcp = match client.query_fetch(sql, 2)? {
            QueryOutcome::Table(schema, value) => (schema, value),
            other => panic!("expected a table over TCP, got {other:?}"),
        };
        let in_process = local.query(sql)?;
        assert_eq!(over_tcp, in_process, "TCP and in-process disagree: {sql}");
        agree += 1;
    }
    println!(
        "TCP results equal in-process results (fetch=2, multi-frame streams): {agree}/{} queries",
        queries.len()
    );

    // A read-only transaction over the wire runs on an MVCC snapshot:
    // its queries never touch the lock manager.
    let lw0 = stats.lock_waits();
    client.begin(true)?;
    client.query_fetch(queries[0], 2)?;
    client.commit()?;
    println!(
        "read-only txn over TCP: snapshot reads = {}, lock-wait delta = {}",
        stats.snapshot_reads() - base.snapshot_reads,
        stats.lock_waits() - lw0
    );
    assert_eq!(
        stats.lock_waits() - lw0,
        0,
        "network readers must be lock-free"
    );

    // Hostile frames draw typed Protocol errors, never a crash: a
    // header claiming ~3.9 GiB, and a Hello with one payload bit
    // flipped so the CRC cannot match.
    use std::io::Write as _;
    let expect_protocol_error =
        |raw: &mut std::net::TcpStream| -> Result<(), Box<dyn std::error::Error>> {
            let payload = aim2_net::read_frame(raw, aim2_net::DEFAULT_MAX_FRAME)?
                .expect("server must answer before closing");
            match Response::decode(&payload)? {
                Response::Error { code, .. } => {
                    assert_eq!(code, ErrorCode::Protocol as u32);
                    Ok(())
                }
                other => panic!("expected Protocol error, got {other:?}"),
            }
        };
    let mut raw = std::net::TcpStream::connect(addr)?;
    let mut header = Vec::new();
    header.extend_from_slice(&0xEEEE_EEEEu32.to_le_bytes());
    header.extend_from_slice(&0u32.to_le_bytes());
    raw.write_all(&header)?;
    expect_protocol_error(&mut raw)?;
    let mut raw = std::net::TcpStream::connect(addr)?;
    let mut framed = Vec::new();
    write_frame(
        &mut framed,
        &Request::Hello {
            version: PROTOCOL_VERSION,
            client: "corrupted".to_string(),
        }
        .encode(),
    )?;
    let last = framed.len() - 1;
    framed[last] ^= 0x01;
    raw.write_all(&framed)?;
    expect_protocol_error(&mut raw)?;
    println!("oversized frame and corrupt CRC both answered with typed Protocol errors");

    // The `net` counter group saw exactly this section's traffic.
    let d = base.delta(&stats.snapshot());
    println!(
        "net counters: queries={} rows-streamed={} rejected-frames={} frames-moved={}",
        d.net_queries,
        d.net_rows_streamed,
        d.net_rejected,
        d.net_frames_in > 0 && d.net_frames_out > 0
    );
    assert_eq!(d.net_queries, queries.len() as u64 + 1);
    assert_eq!(d.net_rejected, 2, "both hostile frames count as rejected");

    // Graceful shutdown notifies the idle connection before closing.
    handle.shutdown();
    let notified = match client.recv() {
        Ok(Response::Error { code, .. }) => code == ErrorCode::Shutdown as u32,
        Err(NetError::Closed) => true,
        other => panic!("expected Shutdown notice or clean close, got {other:?}"),
    };
    println!("graceful shutdown notified the idle client: {notified}");

    // Admission control: a 2-connection server turns the third away
    // with a retryable typed error, and admits it once a slot frees.
    let shared = SharedDatabase::new(build()?);
    let mut handle = Server::start(
        shared,
        ServerConfig {
            max_conns: 2,
            ..ServerConfig::default()
        },
    )?;
    let addr = handle.local_addr();
    let c1 = Client::connect(addr, "repro-1")?;
    let _c2 = Client::connect(addr, "repro-2")?;
    let turned_away = match Client::connect(addr, "repro-3") {
        Ok(_) => panic!("third connection must be rejected"),
        Err(NetError::Server {
            code, retryable, ..
        }) => code == ErrorCode::Admission && retryable,
        Err(other) => panic!("expected a typed Admission error, got {other:?}"),
    };
    println!("third connection rejected with retryable Admission error: {turned_away}");
    assert!(turned_away);
    c1.goodbye()?;
    let mut readmitted = None;
    for _ in 0..100 {
        match Client::connect(addr, "repro-3") {
            Ok(c) => {
                readmitted = Some(c);
                break;
            }
            Err(NetError::Server {
                retryable: true, ..
            }) => {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            Err(other) => panic!("unexpected error while retrying: {other:?}"),
        }
    }
    println!(
        "after one client said goodbye, the retry was admitted: {}",
        readmitted.is_some()
    );
    assert!(readmitted.is_some(), "freed slot must admit the retry");
    handle.shutdown();
    Ok(())
}

fn tracing() -> Result<(), Box<dyn std::error::Error>> {
    heading("Tracing — request-scoped span trees in the flight recorder");

    // Embedded: with tracing on, every statement leaves a span tree
    // whose stage self-times decompose the root `db.query` span.
    let mut db = paper_database()?;
    db.set_tracing(true);
    db.query(
        "SELECT x.DNO, x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS
         WHERE EXISTS y IN x.EQUIP : y.TYPE = 'PC/AT'",
    )?;
    let last = db
        .stats()
        .recorder()
        .last()
        .expect("traced query must be recorded");
    assert!(
        last.stage_total_ns() <= last.total_ns,
        "stage self-times must sum within the root span"
    );
    assert!(last.objects_decoded > 0, "paper query decodes objects");
    println!(
        "embedded trace (shell `.trace last`): root={}, stages sum within root, \
         decoded objects={} atoms={}",
        last.root, last.objects_decoded, last.atoms_decoded
    );

    // Over TCP: the *client* mints the 64-bit id, protocol v3 carries
    // it on the Query frame, and the server threads it through
    // admission → parse → execution → row streaming before parking the
    // finished tree in its per-database flight recorder. The client
    // then pulls that very trace back by id over the wire.
    let shared = SharedDatabase::new(paper_database()?);
    let stats = shared.stats();
    let mut handle = Server::start(shared, ServerConfig::default())?;
    let mut client = Client::connect_with(
        handle.local_addr(),
        ClientConfig {
            client_name: "reproduce-trace".to_string(),
            trace: true,
            ..ClientConfig::default()
        },
    )?;
    for sql in [
        "SELECT * FROM DEPARTMENTS",
        "SELECT x.DNO, x.BUDGET FROM x IN DEPARTMENTS WHERE x.BUDGET > 300000",
        "SELECT r.REPNO, r.TITLE FROM r IN REPORTS",
    ] {
        client.query_fetch(sql, 2)?;
    }
    let minted = client
        .last_client_trace()
        .expect("client records every attempt")
        .trace_id;
    assert_ne!(minted, 0, "traced statements mint a nonzero id");
    let text = client.trace_by_id(minted, TraceFormat::Text)?;
    assert!(
        text.contains(&format!("{minted:#018x}")),
        "same trace id on both ends"
    );
    let server_side = stats
        .recorder()
        .find(minted)
        .expect("server retains the client-minted trace");
    println!(
        "server-side trace fetched over the wire by the client-minted id: \
         root={}, stages present: {}",
        server_side.root,
        server_side
            .stages
            .iter()
            .map(|(s, _)| *s)
            .collect::<Vec<_>>()
            .join(", ")
    );

    // The Trace-verb round trip above happens-after the server finished
    // recording, so the recorder is now fully settled for export.
    for t in stats.recorder().recent() {
        assert!(
            t.stage_total_ns() <= t.total_ns,
            "every recorded trace obeys the sum-within-root invariant"
        );
    }
    let jsonl = stats.recorder().to_jsonl();
    assert!(jsonl.lines().count() >= 3, "all three queries were traced");
    std::fs::write("traces.jsonl", &jsonl)?;
    println!(
        "flight recorder exported: traces.jsonl ({} traces, {} lines)",
        stats.recorder().recorded(),
        jsonl.lines().count()
    );

    client.goodbye()?;
    handle.shutdown();
    Ok(())
}
