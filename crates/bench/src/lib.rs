//! # aim2-bench — workloads and harness support
//!
//! The paper has no quantitative evaluation section — its evidence is
//! worked examples (Tables 1–8) and design arguments (Figures 6–8). The
//! reproduction therefore provides:
//!
//! * `cargo run -p aim2-bench --bin reproduce` — regenerates **every**
//!   table and figure artifact of the paper, with the measured
//!   counter-level facts that back each §4 design claim;
//! * Criterion benches (one per claim; see `benches/`) that measure the
//!   claims at scale, on synthetic workloads generated here.
//!
//! The generator produces DEPARTMENTS-shaped hierarchies with tunable
//! fan-outs — the paper's own scale observation is that "a complex
//! object or subobject will usually have just a few non-atomic
//! attributes (say up to 10) whereas a subtable may consist of thousands
//! of tuples", which the `WorkloadSpec` knobs reproduce.

use aim2_model::value::build::{a, rel, tup};
use aim2_model::{fixtures, TableKind, TableSchema, TableValue, Tuple};
use aim2_storage::buffer::BufferPool;
use aim2_storage::disk::MemDisk;
use aim2_storage::minidir::LayoutKind;
use aim2_storage::object::{ClusterPolicy, ObjectStore};
use aim2_storage::segment::Segment;
use aim2_storage::stats::Stats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Size knobs for a synthetic DEPARTMENTS-like workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    pub departments: usize,
    pub projects_per_dept: usize,
    pub members_per_project: usize,
    pub equip_per_dept: usize,
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> WorkloadSpec {
        WorkloadSpec {
            departments: 100,
            projects_per_dept: 5,
            members_per_project: 8,
            equip_per_dept: 4,
            seed: 0xA1_42,
        }
    }
}

const FUNCTIONS: [&str; 5] = ["Leader", "Consultant", "Secretary", "Staff", "Engineer"];
const EQUIP_TYPES: [&str; 6] = ["3278", "3179", "PC", "PC/XT", "PC/AT", "4361"];

/// The DEPARTMENTS schema (same shape as the paper's Table 5).
pub fn departments_schema() -> TableSchema {
    fixtures::departments_schema()
}

/// Generate a synthetic DEPARTMENTS table per `spec`.
pub fn gen_departments(spec: &WorkloadSpec) -> TableValue {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut tuples = Vec::with_capacity(spec.departments);
    let mut empno = 10_000i64;
    for d in 0..spec.departments {
        let dno = 100 + d as i64;
        let mut projects = Vec::with_capacity(spec.projects_per_dept);
        for p in 0..spec.projects_per_dept {
            let pno = (d * spec.projects_per_dept + p) as i64;
            let mut members = Vec::with_capacity(spec.members_per_project);
            for _ in 0..spec.members_per_project {
                empno += 1;
                let func = FUNCTIONS[rng.gen_range(0..FUNCTIONS.len())];
                members.push(tup(vec![a(empno), a(func)]));
            }
            projects.push(tup(vec![a(pno), a(format!("P{pno:05}")), rel(members)]));
        }
        let mut equip = Vec::with_capacity(spec.equip_per_dept);
        for _ in 0..spec.equip_per_dept {
            equip.push(tup(vec![
                a(rng.gen_range(1..5) as i64),
                a(EQUIP_TYPES[rng.gen_range(0..EQUIP_TYPES.len())]),
            ]));
        }
        tuples.push(tup(vec![
            a(dno),
            a(50_000 + d as i64),
            rel(projects),
            a(rng.gen_range(100..900) as i64 * 1000),
            rel(equip),
        ]));
    }
    TableValue {
        kind: TableKind::Relation,
        tuples,
    }
}

/// The flat (1NF) projection of a generated DEPARTMENTS table — the
/// paper's Tables 1–3 shape, used by the materialized-join bench.
pub fn flatten_departments(nf2: &TableValue) -> (TableValue, TableValue, TableValue) {
    let mut depts = Vec::new();
    let mut projects = Vec::new();
    let mut members = Vec::new();
    for d in &nf2.tuples {
        let dno = d.fields[0].clone();
        let mgr = d.fields[1].clone();
        let budget = d.fields[3].clone();
        depts.push(Tuple::new(vec![dno.clone(), mgr.clone(), budget]));
        for p in &d.fields[2].as_table().unwrap().tuples {
            let pno = p.fields[0].clone();
            let pname = p.fields[1].clone();
            projects.push(Tuple::new(vec![pno.clone(), pname, dno.clone()]));
            for m in &p.fields[2].as_table().unwrap().tuples {
                members.push(Tuple::new(vec![
                    m.fields[0].clone(),
                    pno.clone(),
                    dno.clone(),
                    m.fields[1].clone(),
                ]));
            }
        }
    }
    let mk = |tuples| TableValue {
        kind: TableKind::Relation,
        tuples,
    };
    (mk(depts), mk(projects), mk(members))
}

/// A fresh in-memory segment with its own stats.
pub fn fresh_segment(page_size: usize, frames: usize) -> Segment {
    Segment::new(BufferPool::new(
        Box::new(MemDisk::new(page_size)),
        frames,
        Stats::new(),
    ))
}

/// An object store loaded with `value`, returning the handles.
pub fn loaded_store(
    layout: LayoutKind,
    policy: ClusterPolicy,
    page_size: usize,
    frames: usize,
    schema: &TableSchema,
    value: &TableValue,
) -> (ObjectStore, Vec<aim2_storage::object::ObjectHandle>) {
    let mut os = ObjectStore::new(fresh_segment(page_size, frames), layout).with_policy(policy);
    let handles = value
        .tuples
        .iter()
        .map(|t| os.insert_object(schema, t).expect("insert"))
        .collect();
    (os, handles)
}

/// Storage behind one [`StoreProvider`] table.
pub enum StoreBacking {
    /// NF² complex-object storage (SS1/SS2/SS3 layouts).
    Nf2(ObjectStore),
    /// Flat (1NF) heap storage.
    Flat(aim2_storage::flatstore::FlatStore),
}

/// A [`aim2_exec::TableProvider`] over raw stores — lets benches drive
/// the full cursor pipeline against real storage (NF² object stores or
/// flat heaps) with projection pushdown on or off, and measure decode
/// counters per layout.
#[derive(Default)]
pub struct StoreProvider {
    tables: Vec<(String, TableSchema, StoreBacking)>,
}

impl StoreProvider {
    /// A provider over a single NF² table.
    pub fn single(name: &str, schema: TableSchema, store: ObjectStore) -> StoreProvider {
        let mut p = StoreProvider::default();
        p.add_nf2(name, schema, store);
        p
    }

    /// Register an NF² object store as table `name`.
    pub fn add_nf2(&mut self, name: &str, schema: TableSchema, store: ObjectStore) -> &mut Self {
        self.tables
            .push((name.to_string(), schema, StoreBacking::Nf2(store)));
        self
    }

    /// Register a flat heap as table `name`.
    pub fn add_flat(
        &mut self,
        name: &str,
        schema: TableSchema,
        store: aim2_storage::flatstore::FlatStore,
    ) -> &mut Self {
        self.tables
            .push((name.to_string(), schema, StoreBacking::Flat(store)));
        self
    }

    fn entry(&mut self, name: &str) -> aim2_exec::Result<&mut (String, TableSchema, StoreBacking)> {
        self.tables
            .iter_mut()
            .find(|(n, _, _)| n == name)
            .ok_or_else(|| aim2_exec::ExecError::NoSuchTable(name.to_string()))
    }
}

impl aim2_exec::TableProvider for StoreProvider {
    fn table_schema(&mut self, name: &str) -> aim2_exec::Result<TableSchema> {
        self.entry(name).map(|(_, s, _)| s.clone())
    }

    fn open_scan(
        &mut self,
        req: &aim2_exec::ScanRequest,
    ) -> aim2_exec::Result<aim2_exec::ObjectCursor> {
        if req.asof.is_some() {
            return Err(aim2_exec::ExecError::Semantic(
                "bench stores are not versioned".into(),
            ));
        }
        let (_, _, backing) = self.entry(&req.table)?;
        let keys: Vec<u64> = match backing {
            StoreBacking::Nf2(os) => os
                .handles()
                .map_err(aim2_exec::ExecError::Storage)?
                .into_iter()
                .map(|h| h.0.to_u64())
                .collect(),
            StoreBacking::Flat(fs) => fs.tids().iter().map(|t| t.to_u64()).collect(),
        };
        Ok(aim2_exec::ObjectCursor::keyed(req, "full scan", keys))
    }

    fn next_row(&mut self, cur: &mut aim2_exec::ObjectCursor) -> aim2_exec::Result<Option<Tuple>> {
        let Some(key) = cur.next_key() else {
            return Ok(None);
        };
        let tid = aim2_storage::tid::Tid::from_u64(key);
        let (_, schema, backing) = self
            .tables
            .iter_mut()
            .find(|(n, _, _)| *n == cur.table)
            .ok_or_else(|| aim2_exec::ExecError::NoSuchTable(cur.table.clone()))?;
        match backing {
            StoreBacking::Nf2(os) => {
                let h = aim2_storage::object::ObjectHandle(tid);
                let t = if cur.projection.is_some() {
                    os.read_object_projected(schema, h, &|p| cur.keep(p))
                } else {
                    os.read_object(schema, h)
                }
                .map_err(aim2_exec::ExecError::Storage)?;
                Ok(Some(t))
            }
            StoreBacking::Flat(fs) => fs
                .read(tid)
                .map(Some)
                .map_err(aim2_exec::ExecError::Storage),
        }
    }

    fn next_batch(
        &mut self,
        cur: &mut aim2_exec::ObjectCursor,
        max_rows: usize,
    ) -> aim2_exec::Result<Option<aim2_exec::ColumnBatch>> {
        // Flat heaps batch a run of TIDs against one table lookup —
        // the bench-side analogue of the engine's columnar pull. NF²
        // stores keep the row path (projection pushdown happens per
        // object there).
        let (_, _, backing) = self
            .tables
            .iter_mut()
            .find(|(n, _, _)| *n == cur.table)
            .ok_or_else(|| aim2_exec::ExecError::NoSuchTable(cur.table.clone()))?;
        let StoreBacking::Flat(fs) = backing else {
            return aim2_exec::row_batch(self, cur, max_rows);
        };
        let keys = cur.take_keys(max_rows.max(1), |_| true);
        if keys.is_empty() {
            return Ok(None);
        }
        let mut rows = Vec::with_capacity(keys.len());
        for key in keys {
            rows.push(
                fs.read(aim2_storage::tid::Tid::from_u64(key))
                    .map_err(aim2_exec::ExecError::Storage)?,
            );
        }
        Ok(Some(aim2_exec::ColumnBatch::from_rows(rows)))
    }

    fn close_scan(&mut self, cur: aim2_exec::ObjectCursor) {
        // Same rule as the engine: a cursor abandoned after at least one
        // pull but before exhaustion is an early exit (EXISTS found its
        // witness, FORALL its counterexample).
        if let Ok((_, _, backing)) = self.entry(&cur.table) {
            let stats = match backing {
                StoreBacking::Nf2(os) => os.stats(),
                StoreBacking::Flat(fs) => fs.segment_mut().stats().clone(),
            };
            if cur.pulled() > 0 && !cur.exhausted() {
                stats.inc_cursor_early_exit();
            }
            stats.record_cursor_lifetime(cur.age_ns());
        }
    }

    fn decode_counters(&mut self) -> (u64, u64) {
        let (mut objects, mut atoms) = (0, 0);
        for (_, _, backing) in &mut self.tables {
            let stats = match backing {
                StoreBacking::Nf2(os) => os.stats(),
                StoreBacking::Flat(fs) => fs.segment_mut().stats().clone(),
            };
            objects += stats.objects_decoded();
            atoms += stats.atoms_decoded();
        }
        (objects, atoms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_and_valid() {
        let spec = WorkloadSpec {
            departments: 10,
            ..WorkloadSpec::default()
        };
        let v1 = gen_departments(&spec);
        let v2 = gen_departments(&spec);
        assert_eq!(v1, v2, "seeded generation is reproducible");
        v1.validate(&departments_schema()).unwrap();
        assert_eq!(v1.len(), 10);
    }

    #[test]
    fn flattening_counts_line_up() {
        let spec = WorkloadSpec {
            departments: 7,
            projects_per_dept: 3,
            members_per_project: 4,
            ..WorkloadSpec::default()
        };
        let nf2 = gen_departments(&spec);
        let (d, p, m) = flatten_departments(&nf2);
        assert_eq!(d.len(), 7);
        assert_eq!(p.len(), 21);
        assert_eq!(m.len(), 84);
    }

    #[test]
    fn loaded_store_roundtrips() {
        let spec = WorkloadSpec {
            departments: 5,
            ..WorkloadSpec::default()
        };
        let schema = departments_schema();
        let v = gen_departments(&spec);
        let (mut os, handles) = loaded_store(
            LayoutKind::Ss3,
            ClusterPolicy::Clustered,
            1024,
            64,
            &schema,
            &v,
        );
        for (h, t) in handles.iter().zip(&v.tuples) {
            assert_eq!(&os.read_object(&schema, *h).unwrap(), t);
        }
    }
}
