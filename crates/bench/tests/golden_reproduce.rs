//! Golden-file test: the `reproduce` binary's full output is compared
//! byte-for-byte against a checked-in transcript. Any drift in the
//! paper-reproduction numbers — page counts, fault counts, pointer
//! rewrites, recovery stats — shows up as a readable diff.
//!
//! To bless a new golden after an intentional change:
//!
//! ```text
//! BLESS=1 cargo test -p aim2-bench --test golden_reproduce
//! ```

use std::process::Command;

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/reproduce.txt");

#[test]
fn reproduce_output_matches_golden() {
    let out = Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .output()
        .expect("run reproduce");
    let combined = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        out.status.success(),
        "reproduce exited with {:?}:\n{combined}",
        out.status
    );

    if std::env::var_os("BLESS").is_some() {
        std::fs::write(GOLDEN, &combined).expect("bless golden file");
        return;
    }

    let golden = std::fs::read_to_string(GOLDEN).expect("read golden file");
    if combined != golden {
        let diff: Vec<String> = golden
            .lines()
            .zip(combined.lines())
            .enumerate()
            .filter(|(_, (want, got))| want != got)
            .take(20)
            .map(|(i, (want, got))| format!("line {}:\n  want: {want}\n  got:  {got}", i + 1))
            .collect();
        panic!(
            "reproduce output drifted from tests/golden/reproduce.txt \
             ({} golden lines, {} actual). First differing lines:\n{}\n\
             If the change is intentional, re-bless with BLESS=1.",
            golden.lines().count(),
            combined.lines().count(),
            diff.join("\n")
        );
    }
}
