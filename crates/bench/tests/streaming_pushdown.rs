//! Pushdown proof, per layout.
//!
//! ISSUE 4 acceptance: a selective query (EXISTS with an early witness)
//! must decode strictly fewer objects AND atoms than a full scan of the
//! same table, measured through the `objects_decoded` / `atoms_decoded`
//! counters, on every physical layout — SS1, SS2, SS3 and the flat heap.
//!
//! The savings come from two streaming mechanisms working together:
//! the quantifier cursor closes at the first witness (row-level early
//! termination), and projection pushdown reaches `read_object_projected`
//! so even the pulled objects decode only the paths the query touches
//! (atom-level partial retrieval, paper §4.1).

use aim2_bench::{gen_departments, StoreProvider, WorkloadSpec};
use aim2_exec::Evaluator;
use aim2_lang::parser::parse_query;
use aim2_model::value::build::a;
use aim2_model::{fixtures, AtomType, TableKind, TableSchema, TableValue, Tuple};
use aim2_storage::buffer::BufferPool;
use aim2_storage::disk::MemDisk;
use aim2_storage::flatstore::FlatStore;
use aim2_storage::minidir::LayoutKind;
use aim2_storage::object::ObjectStore;
use aim2_storage::segment::Segment;
use aim2_storage::stats::{Stats, StatsSnapshot};
use aim2_storage::tid::Tid;

const SPEC: WorkloadSpec = WorkloadSpec {
    departments: 60,
    projects_per_dept: 4,
    members_per_project: 6,
    equip_per_dept: 3,
    seed: 11,
};

// The first generated department has DNO = 100, so the EXISTS finds its
// witness in the first object pulled from BIG.
const SELECTIVE: &str = "SELECT s.DNO FROM s IN SMALL WHERE EXISTS y IN BIG : y.DNO = 100";
const FULL: &str = "SELECT * FROM BIG";

fn small_schema() -> TableSchema {
    TableSchema::relation("SMALL").with_atom("DNO", AtomType::Int)
}

fn small_value() -> TableValue {
    TableValue {
        kind: TableKind::Relation,
        tuples: vec![Tuple::new(vec![a(1i64)])],
    }
}

fn segment(stats: &Stats) -> Segment {
    Segment::new(BufferPool::new(
        Box::new(MemDisk::new(4096)),
        256,
        stats.clone(),
    ))
}

/// Run `src` through the cursor pipeline and return the decode-counter
/// delta it caused.
fn measure(provider: &mut StoreProvider, stats: &Stats, src: &str) -> StatsSnapshot {
    let q = parse_query(src).unwrap();
    stats.reset();
    let (_, v) = Evaluator::new(provider).eval_query(&q).unwrap();
    assert!(!v.tuples.is_empty(), "query must produce rows: {src}");
    stats.snapshot()
}

fn assert_selective_beats_full(layout: &str, provider: &mut StoreProvider, stats: &Stats) {
    let selective = measure(provider, stats, SELECTIVE);
    let full = measure(provider, stats, FULL);
    assert!(
        selective.objects_decoded < full.objects_decoded,
        "[{layout}] selective must decode fewer objects: {} vs {}",
        selective.objects_decoded,
        full.objects_decoded
    );
    assert!(
        selective.atoms_decoded < full.atoms_decoded,
        "[{layout}] selective must decode fewer atoms: {} vs {}",
        selective.atoms_decoded,
        full.atoms_decoded
    );
    assert!(
        selective.cursor_early_exits >= 1,
        "[{layout}] the BIG quantifier cursor must close early: {selective}"
    );
}

fn nf2_provider(layout: LayoutKind, stats: &Stats) -> StoreProvider {
    let mut big_schema = fixtures::departments_schema();
    big_schema.name = "BIG".into();
    let mut big = ObjectStore::new(segment(stats), layout);
    for t in &gen_departments(&SPEC).tuples {
        big.insert_object(&big_schema, t).unwrap();
    }
    let mut small = ObjectStore::new(segment(stats), layout);
    for t in &small_value().tuples {
        small.insert_object(&small_schema(), t).unwrap();
    }
    let mut p = StoreProvider::single("BIG", big_schema, big);
    p.add_nf2("SMALL", small_schema(), small);
    p
}

#[test]
fn pushdown_beats_full_scan_on_ss1() {
    let stats = Stats::new();
    let mut p = nf2_provider(LayoutKind::Ss1, &stats);
    assert_selective_beats_full("SS1", &mut p, &stats);
}

#[test]
fn pushdown_beats_full_scan_on_ss2() {
    let stats = Stats::new();
    let mut p = nf2_provider(LayoutKind::Ss2, &stats);
    assert_selective_beats_full("SS2", &mut p, &stats);
}

#[test]
fn pushdown_beats_full_scan_on_ss3() {
    let stats = Stats::new();
    let mut p = nf2_provider(LayoutKind::Ss3, &stats);
    assert_selective_beats_full("SS3", &mut p, &stats);
}

#[test]
fn pushdown_beats_full_scan_on_flat() {
    // Flat heap: BIG is the 1NF projection (DNO, MGRNO, BUDGET) of the
    // generated departments. No partial retrieval is possible on a flat
    // row, so the entire saving comes from early termination.
    let stats = Stats::new();
    let mut big_schema = fixtures::departments_1nf_schema();
    big_schema.name = "BIG".into();
    let (flat, _, _) = aim2_bench::flatten_departments(&gen_departments(&SPEC));
    let mut big = FlatStore::new(segment(&stats));
    big.load(&flat).unwrap();
    let mut small = FlatStore::new(segment(&stats));
    small.load(&small_value()).unwrap();
    let mut p = StoreProvider::default();
    p.add_flat("BIG", big_schema, big);
    p.add_flat("SMALL", small_schema(), small);
    assert_selective_beats_full("flat", &mut p, &stats);
}

#[test]
fn atom_savings_exceed_object_savings_on_ss3() {
    // SS3 keeps one mini-directory per subtable, so skipping PROJECTS
    // and EQUIP while probing DNO avoids decoding nearly all atoms of
    // even the objects that ARE pulled. The atom ratio must therefore be
    // far better than the object ratio alone explains.
    let stats = Stats::new();
    let mut p = nf2_provider(LayoutKind::Ss3, &stats);
    let selective = measure(&mut p, &stats, SELECTIVE);
    let full = measure(&mut p, &stats, FULL);
    // One SMALL row + one BIG witness ≈ 2 objects against 60.
    assert!(selective.objects_decoded <= 5, "{selective}");
    // A full department carries hundreds of atoms (4 projects × 6
    // members each, plus equipment); the projected witness decodes only
    // its DNO. Demand at least a 10× atom reduction.
    assert!(
        selective.atoms_decoded * 10 <= full.atoms_decoded,
        "partial retrieval should skip subtable atoms: {} vs {}",
        selective.atoms_decoded,
        full.atoms_decoded
    );
}

#[test]
fn tid_key_roundtrip_survives_provider_boundary() {
    // The cursor protocol ships Tids across the provider boundary as
    // packed u64 keys; a corrupt packing would read the wrong slot.
    let t = Tid {
        page: aim2_storage::PageId(0x1234),
        slot: aim2_storage::SlotNo(0x0042),
    };
    assert_eq!(Tid::from_u64(t.to_u64()), t);
}
