//! Compact binary encoding of atoms and data-subtuple payloads.
//!
//! The storage layer stores a complex (sub)object's first-level atomic
//! attribute values in one *data subtuple* (paper §4.1). This module
//! defines that byte format. The encoding is self-describing per field
//! (1 tag byte + payload) so that a data subtuple can be decoded without
//! the schema, which is what lets the subtuple manager stay
//! structure-agnostic — "data subtuples do not contain any structural
//! information about the complex objects they belong to" (§4.1), only
//! their own field values.
//!
//! Format per atom:
//! - tag `0x01` Int: 8-byte little-endian i64
//! - tag `0x02` Double: 8-byte LE f64 bits
//! - tag `0x03` Str / `0x04` Text: u32 LE length + UTF-8 bytes
//! - tag `0x05` Bool: 1 byte
//! - tag `0x06` Date: 4-byte LE i32
//!
//! A payload is simply the concatenation of its atoms' encodings.

use crate::atom::{Atom, Date};
use crate::error::ModelError;

const TAG_INT: u8 = 0x01;
const TAG_DOUBLE: u8 = 0x02;
const TAG_STR: u8 = 0x03;
const TAG_TEXT: u8 = 0x04;
const TAG_BOOL: u8 = 0x05;
const TAG_DATE: u8 = 0x06;

/// Append the encoding of `atom` to `out`.
pub fn encode_atom(atom: &Atom, out: &mut Vec<u8>) {
    match atom {
        Atom::Int(v) => {
            out.push(TAG_INT);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Atom::Double(v) => {
            out.push(TAG_DOUBLE);
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        Atom::Str(s) => {
            out.push(TAG_STR);
            encode_str(s, out);
        }
        Atom::Text(s) => {
            out.push(TAG_TEXT);
            encode_str(s, out);
        }
        Atom::Bool(v) => {
            out.push(TAG_BOOL);
            out.push(*v as u8);
        }
        Atom::Date(d) => {
            out.push(TAG_DATE);
            out.extend_from_slice(&d.0.to_le_bytes());
        }
    }
}

fn encode_str(s: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Encode a sequence of atoms as one data-subtuple payload.
pub fn encode_atoms<'a>(atoms: impl IntoIterator<Item = &'a Atom>) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    for a in atoms {
        encode_atom(a, &mut out);
    }
    out
}

/// Decode one atom from `buf` starting at `*pos`; advances `*pos`.
pub fn decode_atom(buf: &[u8], pos: &mut usize) -> Result<Atom, ModelError> {
    let err = |msg: &str| ModelError::Decode(msg.to_string());
    let tag = *buf.get(*pos).ok_or_else(|| err("truncated: no tag"))?;
    *pos += 1;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], ModelError> {
        let slice = buf
            .get(*pos..*pos + n)
            .ok_or_else(|| err("truncated payload"))?;
        *pos += n;
        Ok(slice)
    };
    match tag {
        TAG_INT => {
            let b: [u8; 8] = take(pos, 8)?.try_into().unwrap();
            Ok(Atom::Int(i64::from_le_bytes(b)))
        }
        TAG_DOUBLE => {
            let b: [u8; 8] = take(pos, 8)?.try_into().unwrap();
            Ok(Atom::Double(f64::from_bits(u64::from_le_bytes(b))))
        }
        TAG_STR | TAG_TEXT => {
            let lb: [u8; 4] = take(pos, 4)?.try_into().unwrap();
            let len = u32::from_le_bytes(lb) as usize;
            let bytes = take(pos, len)?;
            let s = std::str::from_utf8(bytes)
                .map_err(|_| err("invalid UTF-8"))?
                .to_string();
            Ok(if tag == TAG_STR {
                Atom::Str(s)
            } else {
                Atom::Text(s)
            })
        }
        TAG_BOOL => {
            let b = take(pos, 1)?[0];
            Ok(Atom::Bool(b != 0))
        }
        TAG_DATE => {
            let b: [u8; 4] = take(pos, 4)?.try_into().unwrap();
            Ok(Atom::Date(Date(i32::from_le_bytes(b))))
        }
        t => Err(ModelError::Decode(format!("unknown atom tag 0x{t:02x}"))),
    }
}

/// Decode a whole payload back into atoms.
pub fn decode_atoms(buf: &[u8]) -> Result<Vec<Atom>, ModelError> {
    let mut pos = 0;
    let mut out = Vec::new();
    while pos < buf.len() {
        out.push(decode_atom(buf, &mut pos)?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Self-describing encoding of whole nested values (catalog checkpoints,
// version stores). Data subtuples inside objects keep using the plain
// atom encoding above.
// ---------------------------------------------------------------------

const TAG_TABLE_REL: u8 = 0x10;
const TAG_TABLE_LIST: u8 = 0x11;

use crate::value::{TableValue, Tuple, Value};
use crate::TableKind;

/// Append the encoding of a (possibly nested) value.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Atom(a) => encode_atom(a, out),
        Value::Table(t) => encode_table(t, out),
    }
}

/// Append the encoding of a table value.
pub fn encode_table(t: &TableValue, out: &mut Vec<u8>) {
    out.push(match t.kind {
        TableKind::Relation => TAG_TABLE_REL,
        TableKind::List => TAG_TABLE_LIST,
    });
    out.extend_from_slice(&(t.tuples.len() as u32).to_le_bytes());
    for tuple in &t.tuples {
        encode_tuple(tuple, out);
    }
}

/// Append the encoding of a whole tuple (field count + fields).
pub fn encode_tuple(t: &Tuple, out: &mut Vec<u8>) {
    out.extend_from_slice(&(t.fields.len() as u16).to_le_bytes());
    for f in &t.fields {
        encode_value(f, out);
    }
}

/// Decode one (possibly nested) value.
pub fn decode_value(buf: &[u8], pos: &mut usize) -> Result<Value, ModelError> {
    let err = |m: &str| ModelError::Decode(m.to_string());
    match buf.get(*pos) {
        Some(&t @ (TAG_TABLE_REL | TAG_TABLE_LIST)) => {
            *pos += 1;
            let n = u32::from_le_bytes(
                buf.get(*pos..*pos + 4)
                    .ok_or_else(|| err("truncated table header"))?
                    .try_into()
                    .unwrap(),
            ) as usize;
            *pos += 4;
            // Clamp the pre-allocation by what the buffer could possibly
            // hold (every tuple costs at least its 2-byte arity header):
            // a corrupt or hostile count must not reserve gigabytes
            // before the first element decode fails.
            let mut tuples = Vec::with_capacity(n.min(buf.len().saturating_sub(*pos) / 2));
            for _ in 0..n {
                tuples.push(decode_tuple(buf, pos)?);
            }
            Ok(Value::Table(TableValue {
                kind: if t == TAG_TABLE_REL {
                    TableKind::Relation
                } else {
                    TableKind::List
                },
                tuples,
            }))
        }
        Some(_) => Ok(Value::Atom(decode_atom(buf, pos)?)),
        None => Err(err("empty value")),
    }
}

/// Decode one whole tuple.
pub fn decode_tuple(buf: &[u8], pos: &mut usize) -> Result<Tuple, ModelError> {
    let err = |m: &str| ModelError::Decode(m.to_string());
    let n = u16::from_le_bytes(
        buf.get(*pos..*pos + 2)
            .ok_or_else(|| err("truncated tuple header"))?
            .try_into()
            .unwrap(),
    ) as usize;
    *pos += 2;
    // Same allocation clamp as `decode_value`: a field costs at least
    // one tag byte, so the arity can never exceed the remaining bytes.
    let mut fields = Vec::with_capacity(n.min(buf.len().saturating_sub(*pos)));
    for _ in 0..n {
        fields.push(decode_value(buf, pos)?);
    }
    Ok(Tuple::new(fields))
}

// ---------------------------------------------------------------------
// Self-describing encoding of schemas (wire protocol, reusable by any
// layer that ships a TableSchema between processes).
// ---------------------------------------------------------------------

use crate::schema::{AttrDef, AttrKind, TableSchema};
use crate::AtomType;

const TAG_ATTR_ATOMIC: u8 = 0x00;
const TAG_ATTR_TABLE: u8 = 0x01;

fn atom_type_tag(t: AtomType) -> u8 {
    match t {
        AtomType::Int => 0,
        AtomType::Double => 1,
        AtomType::Str => 2,
        AtomType::Text => 3,
        AtomType::Bool => 4,
        AtomType::Date => 5,
    }
}

fn atom_type_from_tag(b: u8) -> Result<AtomType, ModelError> {
    Ok(match b {
        0 => AtomType::Int,
        1 => AtomType::Double,
        2 => AtomType::Str,
        3 => AtomType::Text,
        4 => AtomType::Bool,
        5 => AtomType::Date,
        t => return Err(ModelError::Decode(format!("unknown atom-type tag {t}"))),
    })
}

/// Append the recursive encoding of a (possibly nested) table schema:
/// name, kind, and per attribute either an atomic type or a sub-schema.
pub fn encode_schema(schema: &TableSchema, out: &mut Vec<u8>) {
    encode_str(&schema.name, out);
    out.push(match schema.kind {
        TableKind::Relation => TAG_TABLE_REL,
        TableKind::List => TAG_TABLE_LIST,
    });
    out.extend_from_slice(&(schema.attrs.len() as u16).to_le_bytes());
    for attr in &schema.attrs {
        match &attr.kind {
            AttrKind::Atomic(t) => {
                out.push(TAG_ATTR_ATOMIC);
                encode_str(&attr.name, out);
                out.push(atom_type_tag(*t));
            }
            AttrKind::Table(sub) => {
                out.push(TAG_ATTR_TABLE);
                encode_str(&attr.name, out);
                encode_schema(sub, out);
            }
        }
    }
}

/// Decode a schema produced by [`encode_schema`]. Structurally validated
/// through [`TableSchema::new`] (non-empty, unique attribute names), so
/// a hostile byte string can yield an error but never an invalid schema.
pub fn decode_schema(buf: &[u8], pos: &mut usize) -> Result<TableSchema, ModelError> {
    let err = |m: &str| ModelError::Decode(m.to_string());
    let name = decode_str(buf, pos)?;
    let kind = match buf.get(*pos) {
        Some(&TAG_TABLE_REL) => TableKind::Relation,
        Some(&TAG_TABLE_LIST) => TableKind::List,
        _ => return Err(err("bad table-kind tag in schema")),
    };
    *pos += 1;
    let n = u16::from_le_bytes(
        buf.get(*pos..*pos + 2)
            .ok_or_else(|| err("truncated schema attr count"))?
            .try_into()
            .unwrap(),
    ) as usize;
    *pos += 2;
    let mut attrs = Vec::with_capacity(n.min(buf.len().saturating_sub(*pos)));
    for _ in 0..n {
        let tag = *buf.get(*pos).ok_or_else(|| err("truncated attr tag"))?;
        *pos += 1;
        let attr_name = decode_str(buf, pos)?;
        match tag {
            TAG_ATTR_ATOMIC => {
                let t = *buf.get(*pos).ok_or_else(|| err("truncated atom type"))?;
                *pos += 1;
                attrs.push(AttrDef::atomic(attr_name, atom_type_from_tag(t)?));
            }
            TAG_ATTR_TABLE => {
                attrs.push(AttrDef::table(attr_name, decode_schema(buf, pos)?));
            }
            t => return Err(ModelError::Decode(format!("unknown attr tag {t}"))),
        }
    }
    TableSchema::new(name, kind, attrs)
}

/// Decode a string encoded by `encode_str` (u32 LE length + UTF-8).
fn decode_str(buf: &[u8], pos: &mut usize) -> Result<String, ModelError> {
    let err = |m: &str| ModelError::Decode(m.to_string());
    let lb: [u8; 4] = buf
        .get(*pos..*pos + 4)
        .ok_or_else(|| err("truncated string length"))?
        .try_into()
        .unwrap();
    *pos += 4;
    let len = u32::from_le_bytes(lb) as usize;
    let bytes = buf
        .get(*pos..*pos + len)
        .ok_or_else(|| err("truncated string body"))?;
    *pos += len;
    Ok(std::str::from_utf8(bytes)
        .map_err(|_| err("invalid UTF-8 in string"))?
        .to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(atoms: Vec<Atom>) {
        let bytes = encode_atoms(&atoms);
        let back = decode_atoms(&bytes).unwrap();
        assert_eq!(atoms, back);
    }

    #[test]
    fn roundtrip_all_types() {
        roundtrip(vec![
            Atom::Int(314),
            Atom::Int(-1),
            Atom::Int(i64::MAX),
            Atom::Double(3.25),
            Atom::Double(f64::NEG_INFINITY),
            Atom::Str("CGA".into()),
            Atom::Str(String::new()),
            Atom::Text("Concurrency and Concurrency Control".into()),
            Atom::Bool(true),
            Atom::Bool(false),
            Atom::Date(Date::parse_iso("1984-01-15").unwrap()),
        ]);
    }

    #[test]
    fn roundtrip_unicode() {
        roundtrip(vec![Atom::Str("Heidelberg — Tiergartenstraße 15".into())]);
    }

    #[test]
    fn str_and_text_keep_distinct_tags() {
        let b1 = encode_atoms(&[Atom::Str("x".into())]);
        let b2 = encode_atoms(&[Atom::Text("x".into())]);
        assert_ne!(b1, b2);
        assert_eq!(decode_atoms(&b2).unwrap(), vec![Atom::Text("x".into())]);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let bytes = encode_atoms(&[Atom::Int(7), Atom::Str("hello".into())]);
        for cut in 0..bytes.len() {
            // Every strict prefix must either decode to a shorter atom
            // list (if the cut falls on an atom boundary) or error.
            match decode_atoms(&bytes[..cut]) {
                Ok(atoms) => assert!(atoms.len() < 2),
                Err(ModelError::Decode(_)) => {}
                Err(e) => panic!("unexpected error {e}"),
            }
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(matches!(
            decode_atoms(&[0xff, 0, 0]),
            Err(ModelError::Decode(_))
        ));
    }

    #[test]
    fn bad_utf8_rejected() {
        let mut buf = vec![0x03];
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&[0xc3, 0x28]); // invalid UTF-8
        assert!(matches!(decode_atoms(&buf), Err(ModelError::Decode(_))));
    }

    #[test]
    fn empty_payload_decodes_to_no_atoms() {
        assert_eq!(decode_atoms(&[]).unwrap(), Vec::<Atom>::new());
    }

    #[test]
    fn nested_tuple_roundtrip() {
        let t = crate::fixtures::department_314();
        let mut buf = Vec::new();
        encode_tuple(&t, &mut buf);
        let mut pos = 0;
        let back = decode_tuple(&buf, &mut pos).unwrap();
        assert_eq!(back, t);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn nested_table_roundtrip_preserves_kinds() {
        let v = crate::fixtures::reports_value();
        let mut buf = Vec::new();
        encode_table(&v, &mut buf);
        let mut pos = 0;
        let back = decode_value(&buf, &mut pos).unwrap();
        let crate::value::Value::Table(back) = back else {
            panic!()
        };
        assert_eq!(back, v);
        // AUTHORS stayed a list.
        assert_eq!(
            back.tuples[0].fields[1].as_table().unwrap().kind,
            crate::TableKind::List
        );
    }

    #[test]
    fn schema_roundtrip_nested() {
        let sub = TableSchema::new(
            "AUTHORS",
            TableKind::List,
            vec![AttrDef::atomic("NAME", AtomType::Str)],
        )
        .unwrap();
        let schema = TableSchema::new(
            "REPORTS",
            TableKind::Relation,
            vec![
                AttrDef::atomic("RNO", AtomType::Int),
                AttrDef::table("AUTHORS", sub),
                AttrDef::atomic("BODY", AtomType::Text),
                AttrDef::atomic("ISSUED", AtomType::Date),
                AttrDef::atomic("FINAL", AtomType::Bool),
                AttrDef::atomic("SCORE", AtomType::Double),
            ],
        )
        .unwrap();
        let mut buf = Vec::new();
        encode_schema(&schema, &mut buf);
        let mut pos = 0;
        let back = decode_schema(&buf, &mut pos).unwrap();
        assert_eq!(back, schema);
        assert_eq!(pos, buf.len());
        // Every strict prefix errors rather than panicking.
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert!(decode_schema(&buf[..cut], &mut pos).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn hostile_counts_do_not_allocate() {
        // A table value claiming u32::MAX tuples in a 9-byte buffer must
        // fail on the missing bytes, not reserve gigabytes up front.
        let mut buf = vec![TAG_TABLE_REL];
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut pos = 0;
        assert!(decode_value(&buf, &mut pos).is_err());
        // Same for a tuple claiming u16::MAX fields.
        let buf = u16::MAX.to_le_bytes().to_vec();
        let mut pos = 0;
        assert!(decode_tuple(&buf, &mut pos).is_err());
        // And a schema claiming u16::MAX attributes.
        let mut buf = Vec::new();
        encode_str("T", &mut buf);
        buf.push(TAG_TABLE_REL);
        buf.extend_from_slice(&u16::MAX.to_le_bytes());
        let mut pos = 0;
        assert!(decode_schema(&buf, &mut pos).is_err());
    }

    #[test]
    fn truncated_nested_errors() {
        let t = crate::fixtures::department_314();
        let mut buf = Vec::new();
        encode_tuple(&t, &mut buf);
        for cut in [0, 1, 5, buf.len() / 2, buf.len() - 1] {
            let mut pos = 0;
            assert!(decode_tuple(&buf[..cut], &mut pos).is_err(), "cut {cut}");
        }
    }
}
