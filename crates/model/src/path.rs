//! Attribute paths.
//!
//! A [`Path`] names a (sub)attribute relative to a table level, e.g.
//! `PROJECTS.MEMBERS.FUNCTION` relative to DEPARTMENTS. Paths are how the
//! query language's dotted expressions (`x.PROJECTS`, `y.MEMBERS`) and the
//! storage layer's subtable addressing refer to structure.

use std::fmt;

/// A (possibly empty) sequence of attribute names.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Path {
    segs: Vec<String>,
}

impl Path {
    /// The empty path, denoting the table level itself.
    pub fn root() -> Path {
        Path::default()
    }

    /// Build from segments.
    pub fn new<S: Into<String>>(segs: impl IntoIterator<Item = S>) -> Path {
        Path {
            segs: segs.into_iter().map(Into::into).collect(),
        }
    }

    /// Parse a dotted path: `"PROJECTS.MEMBERS"`. An empty string parses
    /// to the root path.
    pub fn parse(s: &str) -> Path {
        if s.is_empty() {
            return Path::root();
        }
        Path {
            segs: s.split('.').map(str::to_string).collect(),
        }
    }

    /// The segments.
    pub fn segments(&self) -> &[String] {
        &self.segs
    }

    /// True for the root path.
    pub fn is_root(&self) -> bool {
        self.segs.is_empty()
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segs.len()
    }

    /// True if no segments.
    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }

    /// Extend with one more segment.
    pub fn child(&self, seg: &str) -> Path {
        let mut segs = self.segs.clone();
        segs.push(seg.to_string());
        Path { segs }
    }

    /// Append another path.
    pub fn join(&self, other: &Path) -> Path {
        let mut segs = self.segs.clone();
        segs.extend(other.segs.iter().cloned());
        Path { segs }
    }

    /// Drop the last segment; `None` on the root path. Returns
    /// `(parent, last)`.
    pub fn split_last(&self) -> Option<(Path, &str)> {
        let (last, init) = self.segs.split_last()?;
        Some((
            Path {
                segs: init.to_vec(),
            },
            last.as_str(),
        ))
    }

    /// First segment plus remainder, for recursive descent.
    pub fn split_first(&self) -> Option<(&str, Path)> {
        let (first, rest) = self.segs.split_first()?;
        Some((
            first.as_str(),
            Path {
                segs: rest.to_vec(),
            },
        ))
    }

    /// True if `self` is a prefix of `other`.
    pub fn is_prefix_of(&self, other: &Path) -> bool {
        other.segs.len() >= self.segs.len() && other.segs[..self.segs.len()] == self.segs[..]
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.segs.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            f.write_str(s)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let p = Path::parse("PROJECTS.MEMBERS.FUNCTION");
        assert_eq!(p.len(), 3);
        assert_eq!(p.to_string(), "PROJECTS.MEMBERS.FUNCTION");
        assert_eq!(Path::parse("").to_string(), "");
        assert!(Path::parse("").is_root());
    }

    #[test]
    fn child_and_join() {
        let p = Path::root().child("PROJECTS").child("MEMBERS");
        assert_eq!(p, Path::parse("PROJECTS.MEMBERS"));
        let q = Path::parse("PROJECTS").join(&Path::parse("MEMBERS.EMPNO"));
        assert_eq!(q, Path::parse("PROJECTS.MEMBERS.EMPNO"));
    }

    #[test]
    fn splits() {
        let p = Path::parse("A.B.C");
        let (parent, last) = p.split_last().unwrap();
        assert_eq!(parent, Path::parse("A.B"));
        assert_eq!(last, "C");
        let (first, rest) = p.split_first().unwrap();
        assert_eq!(first, "A");
        assert_eq!(rest, Path::parse("B.C"));
        assert!(Path::root().split_last().is_none());
    }

    #[test]
    fn prefixes() {
        assert!(Path::parse("A").is_prefix_of(&Path::parse("A.B")));
        assert!(Path::root().is_prefix_of(&Path::parse("A")));
        assert!(!Path::parse("A.B").is_prefix_of(&Path::parse("A")));
        assert!(!Path::parse("X").is_prefix_of(&Path::parse("A.B")));
    }
}
