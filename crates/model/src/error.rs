//! Error type for the model crate.

use std::fmt;

/// Errors raised while constructing or validating NF² schemas and values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// An attribute name was used twice within one table level.
    DuplicateAttribute(String),
    /// A table schema was declared with no attributes.
    EmptySchema(String),
    /// A path component did not name an attribute of the schema level it
    /// was applied to.
    NoSuchAttribute { table: String, attr: String },
    /// A path descended into an atomic attribute.
    NotATable { attr: String },
    /// A value did not conform to the schema (wrong arity, wrong atom type,
    /// atom where table expected, ...).
    TypeMismatch { expected: String, got: String },
    /// An atom literal could not be parsed (bad date, bad number, ...).
    BadLiteral { kind: &'static str, text: String },
    /// A byte buffer could not be decoded as the expected atoms.
    Decode(String),
    /// A list subscript was out of range or applied to a relation.
    BadSubscript { index: usize, len: usize },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DuplicateAttribute(a) => {
                write!(f, "duplicate attribute name `{a}` in table schema")
            }
            ModelError::EmptySchema(t) => write!(f, "table `{t}` declared with no attributes"),
            ModelError::NoSuchAttribute { table, attr } => {
                write!(f, "table `{table}` has no attribute `{attr}`")
            }
            ModelError::NotATable { attr } => {
                write!(f, "attribute `{attr}` is atomic; cannot descend into it")
            }
            ModelError::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: expected {expected}, got {got}")
            }
            ModelError::BadLiteral { kind, text } => {
                write!(f, "cannot parse `{text}` as {kind}")
            }
            ModelError::Decode(msg) => write!(f, "decode error: {msg}"),
            ModelError::BadSubscript { index, len } => {
                write!(
                    f,
                    "subscript [{index}] out of range for list of length {len}"
                )
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ModelError::NoSuchAttribute {
            table: "DEPARTMENTS".into(),
            attr: "FOO".into(),
        };
        let s = e.to_string();
        assert!(s.contains("DEPARTMENTS"));
        assert!(s.contains("FOO"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(ModelError::EmptySchema("T".into()));
        assert!(e.to_string().contains('T'));
    }
}
