//! NF² values: atoms, tuples, and (nested) table values.
//!
//! A [`TableValue`] is an instance of a [`TableSchema`]: a sequence of
//! [`Tuple`]s, each of whose fields is a [`Value`] — either an atom or a
//! nested `TableValue`. For unordered tables (relations) the tuple order
//! is not semantically meaningful; [`TableValue::semantically_eq`]
//! implements the paper-faithful comparison (bag semantics for relations,
//! sequence semantics for lists, recursively).

use crate::atom::Atom;
use crate::error::ModelError;
use crate::schema::{AttrKind, TableKind, TableSchema};
use std::fmt;

/// A value of one attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Atom(Atom),
    Table(TableValue),
}

impl Value {
    /// The atom, if atomic.
    pub fn as_atom(&self) -> Option<&Atom> {
        match self {
            Value::Atom(a) => Some(a),
            Value::Table(_) => None,
        }
    }

    /// The table value, if table-valued.
    pub fn as_table(&self) -> Option<&TableValue> {
        match self {
            Value::Table(t) => Some(t),
            Value::Atom(_) => None,
        }
    }

    /// Mutable table value, if table-valued.
    pub fn as_table_mut(&mut self) -> Option<&mut TableValue> {
        match self {
            Value::Table(t) => Some(t),
            Value::Atom(_) => None,
        }
    }

    /// Convenience constructor from anything atom-convertible.
    pub fn atom(a: impl Into<Atom>) -> Value {
        Value::Atom(a.into())
    }

    /// One-line description of the value's shape, for error messages.
    pub fn describe(&self) -> String {
        match self {
            Value::Atom(a) => a.atom_type().to_string(),
            Value::Table(t) => format!(
                "{} with {} tuple(s)",
                match t.kind {
                    TableKind::Relation => "relation",
                    TableKind::List => "list",
                },
                t.tuples.len()
            ),
        }
    }
}

/// One tuple: values for each attribute of a table level, in schema order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tuple {
    pub fields: Vec<Value>,
}

impl Tuple {
    pub fn new(fields: Vec<Value>) -> Tuple {
        Tuple { fields }
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Field by position.
    pub fn field(&self, i: usize) -> Option<&Value> {
        self.fields.get(i)
    }

    /// Project this tuple's atomic fields per the schema — exactly the
    /// payload of one *data subtuple* in the storage layer (paper §4.1).
    pub fn atomic_fields<'a>(&'a self, schema: &TableSchema) -> Vec<&'a Atom> {
        schema
            .atomic_indices()
            .into_iter()
            .filter_map(|i| self.fields.get(i).and_then(Value::as_atom))
            .collect()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, v) in self.fields.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            match v {
                Value::Atom(a) => write!(f, "{a}")?,
                Value::Table(t) => write!(f, "{t}")?,
            }
        }
        f.write_str(")")
    }
}

/// An instance of a table (or subtable): its kind plus tuples.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TableValue {
    pub kind: TableKindValue,
    pub tuples: Vec<Tuple>,
}

/// `TableKind` for values. Separate type alias kept simple: we reuse the
/// schema's [`TableKind`].
pub type TableKindValue = TableKind;

impl TableValue {
    /// An empty relation.
    pub fn relation() -> TableValue {
        TableValue {
            kind: TableKind::Relation,
            tuples: Vec::new(),
        }
    }

    /// An empty list.
    pub fn list() -> TableValue {
        TableValue {
            kind: TableKind::List,
            tuples: Vec::new(),
        }
    }

    /// Build from tuples.
    pub fn with_tuples(kind: TableKind, tuples: Vec<Tuple>) -> TableValue {
        TableValue { kind, tuples }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// 1-based list subscript, as in the paper's `x.AUTHORS[1]`
    /// (Example 8). Errors on relations — subscripts are only meaningful
    /// on ordered tables — and on out-of-range indices.
    pub fn subscript(&self, index_1based: usize) -> Result<&Tuple, ModelError> {
        if self.kind != TableKind::List || index_1based == 0 || index_1based > self.tuples.len() {
            return Err(ModelError::BadSubscript {
                index: index_1based,
                len: self.tuples.len(),
            });
        }
        Ok(&self.tuples[index_1based - 1])
    }

    /// Validate this value against `schema`, recursively: arity, atom
    /// types (with the coercions of [`Atom::conforms_to`]), table kinds.
    pub fn validate(&self, schema: &TableSchema) -> Result<(), ModelError> {
        if self.kind != schema.kind {
            return Err(ModelError::TypeMismatch {
                expected: format!("{:?} {}", schema.kind, schema.name),
                got: format!("{:?}", self.kind),
            });
        }
        for t in &self.tuples {
            validate_tuple(t, schema)?;
        }
        Ok(())
    }

    /// Paper-faithful equality: lists compare as sequences, relations as
    /// bags (order-insensitive, duplicate-sensitive), recursively.
    pub fn semantically_eq(&self, other: &TableValue) -> bool {
        if self.kind != other.kind || self.tuples.len() != other.tuples.len() {
            return false;
        }
        match self.kind {
            TableKind::List => self
                .tuples
                .iter()
                .zip(&other.tuples)
                .all(|(a, b)| tuple_sem_eq(a, b)),
            TableKind::Relation => {
                // Bag comparison via matching with used-flags (n is small
                // in tests; benches never call this).
                let mut used = vec![false; other.tuples.len()];
                'outer: for a in &self.tuples {
                    for (i, b) in other.tuples.iter().enumerate() {
                        if !used[i] && tuple_sem_eq(a, b) {
                            used[i] = true;
                            continue 'outer;
                        }
                    }
                    return false;
                }
                true
            }
        }
    }

    /// Sort tuples of this relation (recursively) by a canonical key, so
    /// two semantically equal relations render identically. Lists keep
    /// their order. Used by the render module and the `reproduce` binary.
    pub fn canonicalize(&mut self) {
        for t in &mut self.tuples {
            for v in &mut t.fields {
                if let Value::Table(sub) = v {
                    sub.canonicalize();
                }
            }
        }
        if self.kind == TableKind::Relation {
            self.tuples.sort_by(canonical_cmp);
        }
    }
}

fn validate_tuple(t: &Tuple, schema: &TableSchema) -> Result<(), ModelError> {
    if t.arity() != schema.attrs.len() {
        return Err(ModelError::TypeMismatch {
            expected: format!("{}-ary tuple for {}", schema.attrs.len(), schema.name),
            got: format!("{}-ary tuple", t.arity()),
        });
    }
    for (v, a) in t.fields.iter().zip(&schema.attrs) {
        match (&a.kind, v) {
            (AttrKind::Atomic(ty), Value::Atom(atom)) => {
                if !atom.conforms_to(*ty) {
                    return Err(ModelError::TypeMismatch {
                        expected: format!("{} for attribute {}", ty, a.name),
                        got: atom.atom_type().to_string(),
                    });
                }
            }
            (AttrKind::Table(sub), Value::Table(tv)) => tv.validate(sub)?,
            (AttrKind::Atomic(ty), Value::Table(_)) => {
                return Err(ModelError::TypeMismatch {
                    expected: format!("{} for attribute {}", ty, a.name),
                    got: "table".into(),
                })
            }
            (AttrKind::Table(_), Value::Atom(atom)) => {
                return Err(ModelError::TypeMismatch {
                    expected: format!("table for attribute {}", a.name),
                    got: atom.atom_type().to_string(),
                })
            }
        }
    }
    Ok(())
}

fn tuple_sem_eq(a: &Tuple, b: &Tuple) -> bool {
    a.fields.len() == b.fields.len()
        && a.fields.iter().zip(&b.fields).all(|(x, y)| match (x, y) {
            (Value::Atom(p), Value::Atom(q)) => p == q,
            (Value::Table(p), Value::Table(q)) => p.semantically_eq(q),
            _ => false,
        })
}

/// Arbitrary-but-total ordering over tuples for canonicalization.
fn canonical_cmp(a: &Tuple, b: &Tuple) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    for (x, y) in a.fields.iter().zip(&b.fields) {
        let o = match (x, y) {
            (Value::Atom(p), Value::Atom(q)) => p
                .partial_cmp_same(q)
                .unwrap_or_else(|| format!("{p:?}").cmp(&format!("{q:?}"))),
            (Value::Table(p), Value::Table(q)) => {
                let mut o = p.tuples.len().cmp(&q.tuples.len());
                if o == Ordering::Equal {
                    for (s, t) in p.tuples.iter().zip(&q.tuples) {
                        o = canonical_cmp(s, t);
                        if o != Ordering::Equal {
                            break;
                        }
                    }
                }
                o
            }
            (Value::Atom(_), Value::Table(_)) => Ordering::Less,
            (Value::Table(_), Value::Atom(_)) => Ordering::Greater,
        };
        if o != Ordering::Equal {
            return o;
        }
    }
    a.fields.len().cmp(&b.fields.len())
}

impl fmt::Display for TableValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (open, close) = self.kind.brackets();
        write!(f, "{open}")?;
        for (i, t) in self.tuples.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "{close}")
    }
}

/// Shorthand builders used heavily by fixtures and tests.
pub mod build {
    use super::*;

    /// Build a tuple from values.
    pub fn tup(fields: Vec<Value>) -> Tuple {
        Tuple::new(fields)
    }

    /// Atom value.
    pub fn a(v: impl Into<Atom>) -> Value {
        Value::Atom(v.into())
    }

    /// Relation value from tuples.
    pub fn rel(tuples: Vec<Tuple>) -> Value {
        Value::Table(TableValue::with_tuples(TableKind::Relation, tuples))
    }

    /// List value from tuples.
    pub fn list(tuples: Vec<Tuple>) -> Value {
        Value::Table(TableValue::with_tuples(TableKind::List, tuples))
    }
}

#[cfg(test)]
mod tests {
    use super::build::*;
    use super::*;
    use crate::atom::AtomType;
    use crate::fixtures;

    #[test]
    fn fixture_validates_against_schema() {
        let schema = fixtures::departments_schema();
        let value = fixtures::departments_value();
        value.validate(&schema).unwrap();
        assert_eq!(value.len(), 3); // departments 314, 218, 417
    }

    #[test]
    fn reports_fixture_validates() {
        fixtures::reports_value()
            .validate(&fixtures::reports_schema())
            .unwrap();
    }

    #[test]
    fn all_flat_fixtures_validate() {
        for (schema, value) in [
            (
                fixtures::departments_1nf_schema(),
                fixtures::departments_1nf_value(),
            ),
            (
                fixtures::projects_1nf_schema(),
                fixtures::projects_1nf_value(),
            ),
            (
                fixtures::members_1nf_schema(),
                fixtures::members_1nf_value(),
            ),
            (fixtures::equip_1nf_schema(), fixtures::equip_1nf_value()),
            (
                fixtures::employees_1nf_schema(),
                fixtures::employees_1nf_value(),
            ),
        ] {
            assert!(schema.is_flat());
            value.validate(&schema).unwrap();
        }
    }

    #[test]
    fn arity_mismatch_detected() {
        let schema = fixtures::equip_1nf_schema();
        let bad = TableValue::with_tuples(TableKind::Relation, vec![tup(vec![a(1)])]);
        assert!(matches!(
            bad.validate(&schema),
            Err(ModelError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn atom_type_mismatch_detected() {
        let schema = crate::schema::TableSchema::relation("T").with_atom("A", AtomType::Int);
        let bad = TableValue::with_tuples(TableKind::Relation, vec![tup(vec![a("x")])]);
        assert!(bad.validate(&schema).is_err());
    }

    #[test]
    fn table_vs_atom_mismatch_detected() {
        let schema = crate::schema::TableSchema::relation("T").with_atom("A", AtomType::Int);
        let bad = TableValue::with_tuples(TableKind::Relation, vec![tup(vec![rel(vec![])])]);
        assert!(bad.validate(&schema).is_err());
        let schema2 = crate::schema::TableSchema::relation("T")
            .with_table(crate::schema::TableSchema::relation("S").with_atom("B", AtomType::Int));
        let bad2 = TableValue::with_tuples(TableKind::Relation, vec![tup(vec![a(1)])]);
        assert!(bad2.validate(&schema2).is_err());
    }

    #[test]
    fn kind_mismatch_detected() {
        let schema = fixtures::equip_1nf_schema(); // relation
        let bad = TableValue::with_tuples(TableKind::List, vec![]);
        assert!(bad.validate(&schema).is_err());
    }

    #[test]
    fn subscript_is_one_based_and_lists_only() {
        let reports = fixtures::reports_value();
        // AUTHORS of report 0179 is <Jones A.> — first author Jones (Ex. 8).
        let authors = reports.tuples[0].fields[1].as_table().unwrap();
        assert_eq!(authors.kind, TableKind::List);
        let first = authors.subscript(1).unwrap();
        assert_eq!(
            first.fields[0].as_atom().unwrap().as_str(),
            Some("Jones A.")
        );
        assert!(authors.subscript(0).is_err());
        assert!(authors.subscript(99).is_err());
        let rel = TableValue::relation();
        assert!(rel.subscript(1).is_err());
    }

    #[test]
    fn semantic_eq_relations_ignore_order() {
        let t1 =
            TableValue::with_tuples(TableKind::Relation, vec![tup(vec![a(1)]), tup(vec![a(2)])]);
        let t2 =
            TableValue::with_tuples(TableKind::Relation, vec![tup(vec![a(2)]), tup(vec![a(1)])]);
        assert!(t1.semantically_eq(&t2));
        assert_ne!(t1, t2); // structural eq is order-sensitive
    }

    #[test]
    fn semantic_eq_lists_respect_order() {
        let t1 = TableValue::with_tuples(TableKind::List, vec![tup(vec![a(1)]), tup(vec![a(2)])]);
        let t2 = TableValue::with_tuples(TableKind::List, vec![tup(vec![a(2)]), tup(vec![a(1)])]);
        assert!(!t1.semantically_eq(&t2));
    }

    #[test]
    fn semantic_eq_is_duplicate_sensitive() {
        let t1 = TableValue::with_tuples(
            TableKind::Relation,
            vec![tup(vec![a(1)]), tup(vec![a(1)]), tup(vec![a(2)])],
        );
        let t2 = TableValue::with_tuples(
            TableKind::Relation,
            vec![tup(vec![a(1)]), tup(vec![a(2)]), tup(vec![a(2)])],
        );
        assert!(!t1.semantically_eq(&t2));
    }

    #[test]
    fn semantic_eq_recurses_into_subtables() {
        let mk = |x: i64, inner: Vec<i64>| {
            tup(vec![
                a(x),
                rel(inner.into_iter().map(|i| tup(vec![a(i)])).collect()),
            ])
        };
        let t1 = TableValue::with_tuples(TableKind::Relation, vec![mk(1, vec![10, 20])]);
        let t2 = TableValue::with_tuples(TableKind::Relation, vec![mk(1, vec![20, 10])]);
        let t3 = TableValue::with_tuples(TableKind::Relation, vec![mk(1, vec![20, 30])]);
        assert!(t1.semantically_eq(&t2));
        assert!(!t1.semantically_eq(&t3));
    }

    #[test]
    fn canonicalize_sorts_relations_not_lists() {
        let mut r =
            TableValue::with_tuples(TableKind::Relation, vec![tup(vec![a(2)]), tup(vec![a(1)])]);
        r.canonicalize();
        assert_eq!(r.tuples[0].fields[0].as_atom().unwrap().as_int(), Some(1));
        let mut l =
            TableValue::with_tuples(TableKind::List, vec![tup(vec![a(2)]), tup(vec![a(1)])]);
        l.canonicalize();
        assert_eq!(l.tuples[0].fields[0].as_atom().unwrap().as_int(), Some(2));
    }

    #[test]
    fn display_nested() {
        let v = TableValue::with_tuples(
            TableKind::Relation,
            vec![tup(vec![a(1), list(vec![tup(vec![a("x")])])])],
        );
        assert_eq!(v.to_string(), "{(1, <(x)>)}");
    }

    #[test]
    fn atomic_fields_follow_schema() {
        let schema = fixtures::departments_schema();
        let value = fixtures::departments_value();
        let atoms = value.tuples[0].atomic_fields(&schema);
        // DNO=314, MGRNO=56194, BUDGET=320000
        assert_eq!(atoms.len(), 3);
        assert_eq!(atoms[0].as_int(), Some(314));
        assert_eq!(atoms[1].as_int(), Some(56194));
        assert_eq!(atoms[2].as_int(), Some(320_000));
    }
}
