//! NF² table schemas.
//!
//! A [`TableSchema`] describes one table level: whether the table is a
//! *relation* (unordered, `{ }`) or a *list* (ordered, `< >`), and its
//! attributes in declaration order. Each attribute is either atomic or
//! again a table ([`AttrKind::Table`]) — this recursion is exactly the NF²
//! generalization of Section 2 of the paper.

use crate::atom::AtomType;
use crate::error::ModelError;
use crate::path::Path;
use std::fmt;

/// Whether a table is an unordered relation or an ordered list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TableKind {
    /// Unordered table — a *relation*; rendered with `{ }` in the paper.
    #[default]
    Relation,
    /// Ordered table — a *list*; rendered with `< >`. The storage layer
    /// represents the order by the sequence of entries in MD subtuples
    /// (paper §4.1).
    List,
}

impl TableKind {
    /// Opening/closing bracket characters used by the paper's notation.
    pub fn brackets(self) -> (char, char) {
        match self {
            TableKind::Relation => ('{', '}'),
            TableKind::List => ('<', '>'),
        }
    }
}

/// What kind of value an attribute holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrKind {
    /// An atomic value of the given type.
    Atomic(AtomType),
    /// A nested table (relation or list) — the defining feature of NF².
    Table(TableSchema),
}

impl AttrKind {
    /// True if this attribute is atomic.
    pub fn is_atomic(&self) -> bool {
        matches!(self, AttrKind::Atomic(_))
    }

    /// The nested schema, if table-valued.
    pub fn as_table(&self) -> Option<&TableSchema> {
        match self {
            AttrKind::Table(t) => Some(t),
            AttrKind::Atomic(_) => None,
        }
    }
}

/// One attribute of a table level: a name plus an [`AttrKind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrDef {
    pub name: String,
    pub kind: AttrKind,
}

impl AttrDef {
    /// An atomic attribute.
    pub fn atomic(name: impl Into<String>, ty: AtomType) -> AttrDef {
        AttrDef {
            name: name.into(),
            kind: AttrKind::Atomic(ty),
        }
    }

    /// A table-valued attribute.
    pub fn table(name: impl Into<String>, schema: TableSchema) -> AttrDef {
        AttrDef {
            name: name.into(),
            kind: AttrKind::Table(schema),
        }
    }
}

/// Schema of one (sub)table: its kind and attributes.
///
/// Constructed via [`TableSchema::relation`] / [`TableSchema::list`] plus
/// the builder methods, or all at once with [`TableSchema::new`]:
///
/// ```
/// use aim2_model::{TableSchema, AtomType};
/// let equip = TableSchema::relation("EQUIP")
///     .with_atom("QU", AtomType::Int)
///     .with_atom("TYPE", AtomType::Str);
/// assert!(equip.is_flat());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Name of the table (top level) or of the attribute holding it.
    pub name: String,
    pub kind: TableKind,
    pub attrs: Vec<AttrDef>,
}

impl TableSchema {
    /// Build a schema, checking attribute-name uniqueness and non-emptiness.
    pub fn new(
        name: impl Into<String>,
        kind: TableKind,
        attrs: Vec<AttrDef>,
    ) -> Result<TableSchema, ModelError> {
        let name = name.into();
        if attrs.is_empty() {
            return Err(ModelError::EmptySchema(name));
        }
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i].iter().any(|b| b.name == a.name) {
                return Err(ModelError::DuplicateAttribute(a.name.clone()));
            }
        }
        Ok(TableSchema { name, kind, attrs })
    }

    /// Start an (initially empty) unordered-table schema; add attributes
    /// with [`TableSchema::with_atom`] / [`TableSchema::with_table`].
    pub fn relation(name: impl Into<String>) -> TableSchema {
        TableSchema {
            name: name.into(),
            kind: TableKind::Relation,
            attrs: Vec::new(),
        }
    }

    /// Start an (initially empty) ordered-table schema.
    pub fn list(name: impl Into<String>) -> TableSchema {
        TableSchema {
            name: name.into(),
            kind: TableKind::List,
            attrs: Vec::new(),
        }
    }

    /// Builder: append an atomic attribute. Panics on duplicate names —
    /// builder use is for statically known schemas; use
    /// [`TableSchema::new`] for dynamic construction.
    pub fn with_atom(mut self, name: impl Into<String>, ty: AtomType) -> TableSchema {
        let name = name.into();
        assert!(
            self.attr_index(&name).is_none(),
            "duplicate attribute `{name}`"
        );
        self.attrs.push(AttrDef::atomic(name, ty));
        self
    }

    /// Builder: append a table-valued attribute.
    pub fn with_table(mut self, schema: TableSchema) -> TableSchema {
        assert!(
            self.attr_index(&schema.name).is_none(),
            "duplicate attribute `{}`",
            schema.name
        );
        let name = schema.name.clone();
        self.attrs.push(AttrDef::table(name, schema));
        self
    }

    /// Position of the attribute named `name` at this level.
    pub fn attr_index(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name == name)
    }

    /// The attribute named `name` at this level.
    pub fn attr(&self, name: &str) -> Option<&AttrDef> {
        self.attrs.iter().find(|a| a.name == name)
    }

    /// Indices of all atomic attributes at this level, in declaration
    /// order. These are exactly the values stored in one *data subtuple*
    /// by the storage layer (paper §4.1: "all first-level atomic attribute
    /// values ... are stored in one data subtuple").
    pub fn atomic_indices(&self) -> Vec<usize> {
        self.attrs
            .iter()
            .enumerate()
            .filter(|(_, a)| a.kind.is_atomic())
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of all table-valued attributes at this level.
    pub fn table_indices(&self) -> Vec<usize> {
        self.attrs
            .iter()
            .enumerate()
            .filter(|(_, a)| !a.kind.is_atomic())
            .map(|(i, _)| i)
            .collect()
    }

    /// True if every attribute is atomic — a flat (1NF) table, the special
    /// case the paper integrates ("normal tables are just special cases of
    /// NF² tables", §2).
    pub fn is_flat(&self) -> bool {
        self.attrs.iter().all(|a| a.kind.is_atomic())
    }

    /// Nesting depth: 1 for flat tables, 1 + max over subtables otherwise.
    /// DEPARTMENTS (Table 5) has depth 3.
    pub fn depth(&self) -> usize {
        1 + self
            .attrs
            .iter()
            .filter_map(|a| a.kind.as_table())
            .map(TableSchema::depth)
            .max()
            .unwrap_or(0)
    }

    /// Total number of (sub)table schemas including this one.
    /// DEPARTMENTS has 4: itself, PROJECTS, MEMBERS, EQUIP.
    pub fn table_count(&self) -> usize {
        1 + self
            .attrs
            .iter()
            .filter_map(|a| a.kind.as_table())
            .map(TableSchema::table_count)
            .sum::<usize>()
    }

    /// Resolve an attribute [`Path`] starting at this level; returns the
    /// `AttrDef` it denotes. `resolve_path(["PROJECTS","MEMBERS"])` on
    /// DEPARTMENTS yields the MEMBERS subtable definition.
    pub fn resolve_path(&self, path: &Path) -> Result<&AttrDef, ModelError> {
        let mut level = self;
        let mut last: Option<&AttrDef> = None;
        for (i, seg) in path.segments().iter().enumerate() {
            if let Some(prev) = last {
                level = prev.kind.as_table().ok_or_else(|| ModelError::NotATable {
                    attr: prev.name.clone(),
                })?;
            }
            let _ = i;
            last = Some(level.attr(seg).ok_or_else(|| ModelError::NoSuchAttribute {
                table: level.name.clone(),
                attr: seg.to_string(),
            })?);
        }
        last.ok_or_else(|| ModelError::NoSuchAttribute {
            table: self.name.clone(),
            attr: String::from("<empty path>"),
        })
    }

    /// Resolve a path that must end at a subtable; returns its schema.
    pub fn resolve_subtable(&self, path: &Path) -> Result<&TableSchema, ModelError> {
        let def = self.resolve_path(path)?;
        def.kind.as_table().ok_or_else(|| ModelError::NotATable {
            attr: def.name.clone(),
        })
    }

    /// Iterate over `(path, schema)` for this table and every subtable,
    /// pre-order. The path of `self` is empty.
    pub fn walk_subtables(&self) -> Vec<(Path, &TableSchema)> {
        let mut out = Vec::new();
        fn rec<'a>(s: &'a TableSchema, prefix: &Path, out: &mut Vec<(Path, &'a TableSchema)>) {
            out.push((prefix.clone(), s));
            for a in &s.attrs {
                if let AttrKind::Table(t) = &a.kind {
                    rec(t, &prefix.child(&a.name), out);
                }
            }
        }
        rec(self, &Path::root(), &mut out);
        out
    }
}

impl fmt::Display for TableSchema {
    /// Render in the paper's DDL-ish notation:
    /// `{DEPARTMENTS: DNO INTEGER, ..., PROJECTS {…}}`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (open, close) = self.kind.brackets();
        write!(f, "{open}{}: ", self.name)?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            match &a.kind {
                AttrKind::Atomic(ty) => write!(f, "{} {}", a.name, ty)?,
                AttrKind::Table(t) => write!(f, "{t}")?,
            }
        }
        write!(f, "{close}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    fn departments() -> TableSchema {
        fixtures::departments_schema()
    }

    #[test]
    fn departments_shape() {
        let d = departments();
        assert_eq!(d.kind, TableKind::Relation);
        assert_eq!(d.attrs.len(), 5);
        assert_eq!(d.depth(), 3);
        assert_eq!(d.table_count(), 4);
        assert!(!d.is_flat());
        assert_eq!(d.atomic_indices(), vec![0, 1, 3]); // DNO, MGRNO, BUDGET
        assert_eq!(d.table_indices(), vec![2, 4]); // PROJECTS, EQUIP
    }

    #[test]
    fn reports_has_ordered_authors() {
        let r = fixtures::reports_schema();
        let authors = r.resolve_subtable(&Path::parse("AUTHORS")).unwrap();
        assert_eq!(authors.kind, TableKind::List);
        let desc = r.resolve_subtable(&Path::parse("DESCRIPTORS")).unwrap();
        assert_eq!(desc.kind, TableKind::Relation);
    }

    #[test]
    fn path_resolution() {
        let d = departments();
        let members = d
            .resolve_subtable(&Path::parse("PROJECTS.MEMBERS"))
            .unwrap();
        assert_eq!(members.name, "MEMBERS");
        assert!(members.is_flat());

        let err = d.resolve_path(&Path::parse("PROJECTS.NOPE")).unwrap_err();
        assert!(matches!(err, ModelError::NoSuchAttribute { .. }));

        let err = d.resolve_path(&Path::parse("DNO.X")).unwrap_err();
        assert!(matches!(err, ModelError::NotATable { .. }));
    }

    #[test]
    fn duplicate_attr_rejected() {
        let err = TableSchema::new(
            "T",
            TableKind::Relation,
            vec![
                AttrDef::atomic("A", AtomType::Int),
                AttrDef::atomic("A", AtomType::Str),
            ],
        )
        .unwrap_err();
        assert_eq!(err, ModelError::DuplicateAttribute("A".into()));
    }

    #[test]
    fn empty_schema_rejected() {
        assert!(matches!(
            TableSchema::new("T", TableKind::Relation, vec![]),
            Err(ModelError::EmptySchema(_))
        ));
    }

    #[test]
    fn walk_subtables_preorder() {
        let d = departments();
        let walked: Vec<String> = d
            .walk_subtables()
            .iter()
            .map(|(p, s)| format!("{}:{}", p, s.name))
            .collect();
        assert_eq!(
            walked,
            vec![
                ":DEPARTMENTS",
                "PROJECTS:PROJECTS",
                "PROJECTS.MEMBERS:MEMBERS",
                "EQUIP:EQUIP"
            ]
        );
    }

    #[test]
    fn display_uses_paper_brackets() {
        let d = departments().to_string();
        assert!(d.starts_with("{DEPARTMENTS:"));
        assert!(d.contains("{PROJECTS:"));
        let r = fixtures::reports_schema().to_string();
        assert!(r.contains("<AUTHORS:"));
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn builder_panics_on_duplicate() {
        let _ = TableSchema::relation("T")
            .with_atom("A", AtomType::Int)
            .with_atom("A", AtomType::Int);
    }
}
